#!/usr/bin/env bash
# CI-style gate: format, lint, build, test, and a short FMM smoke bench.
# Run from the repository root:  ./scripts/check.sh
# Skip the slow pieces with:     CHECK_FAST=1 ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check 2>/dev/null || {
    echo "  (rustfmt unavailable or formatting diffs — rerun 'cargo fmt' locally)"
}

echo "== cargo clippy (ratcheted warning floor)"
if cargo clippy --version >/dev/null 2>&1; then
    CLIPPY_LOG=$(mktemp)
    cargo clippy --workspace --release 2>&1 | tee "$CLIPPY_LOG" | \
        grep -E "^(warning|error)" | grep -v "generated" | sort | uniq -c || true
    grep -q "^error" "$CLIPPY_LOG" && { echo "clippy errors found"; exit 1; } || true
    # warning ratchet: the committed floor only ever decreases — seed-era
    # style lints (loop-index patterns etc.) are grandfathered, new code
    # must not add to them (if you fixed some, lower scripts/clippy_floor.txt
    # in the same PR)
    WARN_COUNT=$(grep -E "^warning" "$CLIPPY_LOG" | grep -cv "generated" || true)
    CLIPPY_FLOOR=$(cat scripts/clippy_floor.txt)
    echo "== clippy warnings: $WARN_COUNT (committed floor: $CLIPPY_FLOOR)"
    rm -f "$CLIPPY_LOG"
    if [ "$WARN_COUNT" -gt "$CLIPPY_FLOOR" ]; then
        echo "ERROR: clippy warning count $WARN_COUNT rose above the committed floor $CLIPPY_FLOOR"
        echo "       (fix the new warnings; the floor only ever ratchets down)"
        exit 1
    fi
else
    echo "  (clippy unavailable — skipped)"
fi

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo doc (warning-free gate, library crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p linalg -p kernels -p octree -p sphharm -p patch -p collision \
    -p fmm -p vesicle -p bie -p forest -p sim -p bench -p driver

if [ "${CHECK_FAST:-0}" != "1" ]; then
    echo "== cargo test -q"
    TEST_LOG=$(mktemp)
    cargo test -q --release --workspace 2>&1 | tee "$TEST_LOG"
    # tier-1 test-count floor: catches refactors that silently drop tests
    # (the committed floor only ever ratchets up; see scripts/test_floor.txt)
    TEST_COUNT=$(grep -Eo '[0-9]+ passed' "$TEST_LOG" | awk '{s+=$1} END {print s+0}')
    FLOOR=$(cat scripts/test_floor.txt)
    echo "== tier-1 test count: $TEST_COUNT (committed floor: $FLOOR)"
    rm -f "$TEST_LOG"
    if [ "$TEST_COUNT" -lt "$FLOOR" ]; then
        echo "ERROR: test count $TEST_COUNT fell below the committed floor $FLOOR"
        echo "       (if tests were intentionally consolidated, lower scripts/test_floor.txt in the same PR)"
        exit 1
    fi
fi

echo "== fmm smoke bench (order 4, ~2 s)"
cargo run --release -p bench --bin fmm_bench -- --quick

echo "== collision smoke (sedimentation-like, 1 step, contact + finite-volume assert)"
# a small dense packing that reliably produces >10 contacts in one step
# (driver/tests/determinism.rs pins the same configuration high-contact):
# COL-stage regressions (broad phase, CSR assembly, batched mobility) fail
# here in seconds instead of only at the slow full-step bench — including
# partial ones that would still find a contact or two.
# dt_adaptive=false: the adaptive stepper (on by default) retries this
# config's first step at a reduced dt, which defuses the contact burst
# this smoke needs — the gate is pinned off so the COL pipeline still
# sees the full many-contact workload (the instability smoke below
# covers the controller itself)
cargo run --release -q -p driver -- sedimentation --steps 1 \
    --set tube_segments=1 --set patch_order=6 --set order=6 \
    --set fill_h=1.1 --set col_m=6 --set dt_adaptive=false \
    --no-output --quiet --assert-contacts 10

echo "== instability smoke (shear_pair, 1 oversized-dt step, retry + finite-state assert)"
# one deliberately oversized step (10x the scenario dt) with a volume-drift
# gate tight enough that the first attempt must fail: asserts the adaptive
# stepper actually rolled back and retried (dt_retries >= 1), every
# committed step's max edge stretch stayed finite and within the bound,
# and the final coefficients are finite — i.e. the transactional
# retry/backoff path works, not just the happy path
cargo run --release -q -p driver -- shear_pair --steps 1 \
    --set order=6 --set dt=0.2 --set dt_max_vol_drift=1e-4 \
    --no-output --quiet --assert-dt-retries 1

echo "== refined-vessel smoke (vessel_flow, 2 steps, wall_refine default + FMM backend)"
# two confined-flow steps on a refined wall (the vessel_flow registry
# default) through the FMM matvec backend: asserts the boundary solve
# stays below its iteration cap, every cell ends finite, AND the
# persistent wall FMM is actually reused — at most one frozen-tree build
# across both steps with >= 1 target replan per step, so a regression
# that silently falls back to per-step rebuilds fails the gate in
# seconds instead of only at the full-step bench
# (bie_qf=6 keeps the smoke fast. This guards the *plumbing* — refined
# surface build, FMM-backed matvec inside a full step, iteration cap,
# finite state, plan reuse. Port boundary data is rim-smooth since the
# mollified-quartic profile fix, which cut the refined cell-free floor
# ~4x (0.4 -> ~0.11, ratcheted by sim::domain's
# refined_serpentine_port_floor_improved, run in the test stage above);
# through-flow data still converges slowly (spectral tail), so this
# smoke keeps the iteration-cap assert rather than requiring
# convergence)
cargo run --release -q -p driver -- vessel_flow --steps 2 \
    --set tube_segments=1 --set patch_order=6 --set order=6 \
    --set bie_backend=fmm --set bie_qf=6 \
    --set fill_h=1.5 --no-output --quiet --assert-bie-below 30 \
    --assert-fmm-rebuilds 1

echo "== network smoke (bifurcation, 1 step, flux-balanced 3-port BCs + FMM backend)"
# one step of the Y-bifurcation (the branched-network scenario family)
# through the FMM matvec backend: asserts the three prescribed port
# fluxes cancel in the committed step to well below the 1e-6 acceptance
# tolerance (the discrete quadrature balances them to roundoff — see
# driver/tests/network.rs for the roundoff-tight pin) and that every
# cell ends finite, so a regression in the N-port BC assembly or the
# junction blend fails here in seconds
cargo run --release -q -p driver -- bifurcation --steps 1 \
    --set patch_order=6 --set order=6 \
    --set bie_backend=fmm --set bie_qf=6 \
    --no-output --quiet --assert-flux-balance 1e-6

echo "== driver smoke run (shear_pair, 2 steps at --threads 2 + checkpoint restart)"
# the first leg runs the real-parallel step path (--threads 2) so the CI
# gate exercises multi-worker dispatch end to end; the restart leg runs at
# the default thread count — trajectories are thread-count-invariant
# (driver/tests/determinism.rs pins this bit-exactly), so the restart
# continues the same trajectory
SMOKE_OUT=target/driver/check-smoke
rm -rf "$SMOKE_OUT"
cargo run --release -q -p driver -- shear_pair --steps 2 --set order=8 \
    --threads 2 --out "$SMOKE_OUT" --quiet
cargo run --release -q -p driver -- shear_pair --steps 1 --set order=8 \
    --out "$SMOKE_OUT" --quiet \
    --restart "$SMOKE_OUT/shear_pair_final.ckpt"

echo "== farm smoke (2-job manifest: crash after job 1, resume, shared-cache assert)"
# the simulation farm end to end on a tiny two-job manifest: leg 1 runs
# the queue with a simulated crash after the first job completes
# (--halt-after 1 exits zero with the second job marked halted); leg 2
# reruns the same manifest, which must skip the finished job, run the
# halted one to target, and report shared-cache telemetry — the vessel
# job's FMM solve+eval share operator tables, so >= 1 hit even in a cold
# process, and any regression that stops jobs from sharing immutable
# caches fails the assert
FARM_OUT=target/driver/farm-smoke
rm -rf "$FARM_OUT"
cargo run --release -q -p driver -- batch scenarios/farm_smoke.toml \
    --halt-after 1 --quiet
cargo run --release -q -p driver -- batch scenarios/farm_smoke.toml \
    --assert-cache-hits 1

echo "ALL CHECKS PASSED"
