#!/usr/bin/env bash
# CI-style gate: format, lint, build, test, and a short FMM smoke bench.
# Run from the repository root:  ./scripts/check.sh
# Skip the slow pieces with:     CHECK_FAST=1 ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check 2>/dev/null || {
    echo "  (rustfmt unavailable or formatting diffs — rerun 'cargo fmt' locally)"
}

echo "== cargo clippy"
if cargo clippy --version >/dev/null 2>&1; then
    # report-only: a handful of style lints remain in seed-era code
    # (loop-index patterns etc.); new code must not add to them
    cargo clippy --workspace --release 2>&1 | grep -E "^(warning|error)" | sort | uniq -c || true
    cargo clippy --workspace --release 2>&1 | grep -q "^error" && {
        echo "clippy errors found"; exit 1; } || true
else
    echo "  (clippy unavailable — skipped)"
fi

echo "== cargo build --release"
cargo build --release --workspace

if [ "${CHECK_FAST:-0}" != "1" ]; then
    echo "== cargo test -q"
    cargo test -q --release --workspace
fi

echo "== fmm smoke bench (order 4, ~2 s)"
cargo run --release -p bench --bin fmm_bench -- --quick

echo "ALL CHECKS PASSED"
