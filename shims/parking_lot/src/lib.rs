//! Offline stand-in for `parking_lot`: the `Mutex` subset the code base
//! uses, implemented over `std::sync::Mutex` with poison recovery (the
//! parking_lot semantics: a panic while holding the lock does not poison
//! it for later users).

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(5i32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
