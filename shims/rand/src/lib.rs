//! Offline stand-in for `rand` (0.9-style API surface).
//!
//! Provides exactly what the code base uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random_range` over half-open
//! ranges of floats and integers. The generator is SplitMix64 — not the
//! crates.io StdRng stream, which is irrelevant here because every use
//! feeds both sides of a comparison from the same stream.

use std::ops::Range;

pub mod prelude {
    pub use crate::{rngs::StdRng, Rng, SeedableRng};
}

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        #[inline]
        pub(crate) fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // one warmup step decorrelates small consecutive seeds
        let mut rng = rngs::StdRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        };
        let _ = rng.next_u64();
        rng
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range(rng: &mut rngs::StdRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut rngs::StdRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range: empty range");
                let u = rng.next_f64() as $t;
                range.start + (range.end - range.start) * u
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut rngs::StdRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Subset of `rand::Rng`.
pub trait Rng {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
    /// Uniform f64 in [0, 1) (`rng.random::<f64>()` equivalent).
    fn random_f64(&mut self) -> f64;
}

impl Rng for rngs::StdRng {
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
    #[inline]
    fn random_f64(&mut self) -> f64 {
        self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.random_range(-2.5f64..7.5);
            assert_eq!(x, b.random_range(-2.5f64..7.5));
            assert!((-2.5..7.5).contains(&x));
            let n = a.random_range(3usize..17);
            assert_eq!(n, b.random_range(3usize..17));
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.random_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.random_range(0.0..1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
