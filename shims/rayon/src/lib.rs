//! Offline stand-in for `rayon`.
//!
//! The iterator *facade* (`par_iter`, `into_par_iter`, `par_chunks_mut`,
//! `par_sort_unstable*`) is sequential: the methods return the ordinary
//! `std` iterators, so arbitrary combinator chains compile and behave
//! exactly like their serial counterparts.
//!
//! Real data parallelism is provided by [`par`]: scoped `std::thread`
//! workers pulling indices from an atomic counter. Hot paths (the FMM
//! evaluation engine, direct N-body) call these helpers explicitly.

pub mod par;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIteratorExt, ParallelSlice, ParallelSliceMut,
    };
}

/// Rayon-only combinators mapped onto their serial `std` equivalents.
pub trait ParallelIteratorExt: Iterator + Sized {
    /// rayon's `flat_map_iter` == serial `flat_map`.
    #[inline]
    fn flat_map_iter<U: IntoIterator, F: FnMut(Self::Item) -> U>(
        self,
        f: F,
    ) -> std::iter::FlatMap<Self, U, F> {
        self.flat_map(f)
    }
}

impl<I: Iterator> ParallelIteratorExt for I {}

/// Sequential facade for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Iter: Iterator;
    fn into_par_iter(self) -> Self::Iter;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Iter = C::IntoIter;
    #[inline]
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential facade for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    type Iter: Iterator;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;
    #[inline]
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential facade for `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    type Iter: Iterator;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    #[inline]
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential facade for `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Sequential facade for `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
    #[inline]
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    #[inline]
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }
}

/// Number of worker threads [`par`] uses (`available_parallelism`, capped
/// by the `RAYON_NUM_THREADS` environment variable if set).
pub fn current_num_threads() -> usize {
    par::num_threads()
}

/// Stand-in for `rayon::ThreadPoolBuilder`: `build().install(f)` runs `f`
/// with the [`par`] worker count overridden (process-wide, not scoped to a
/// pool — adequate for the scaling binaries that use it).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// See [`ThreadPoolBuilder`].
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<T: Send>(&self, f: impl FnOnce() -> T + Send) -> T {
        par::with_override(self.num_threads, f)
    }
}
