//! Real data parallelism: a persistent pool of parked worker threads plus
//! an atomic work counter per region. These helpers are what the hot
//! paths (FMM passes, direct N-body) call; they provide dynamic load
//! balancing without any dependency on a thread-pool crate.
//!
//! Workers are spawned once (lazily, on the first parallel region) and
//! parked on a condvar between regions, so a region costs a couple of
//! wakeups, not thread spawns — the FMM's batched M2L opens hundreds of
//! small regions per evaluate. Work items should still be coarse-grained
//! (a block of targets, not an element): every item dispatch is one
//! atomic RMW on a shared counter.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Runs `f` with the worker count forced to `n` (0 = no override).
/// Process-wide, not reentrant — used by `ThreadPool::install`.
pub fn with_override<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = OVERRIDE.swap(n, Ordering::SeqCst);
    let out = f();
    OVERRIDE.store(prev, Ordering::SeqCst);
    out
}

/// Worker-thread count: the active [`with_override`] if any, else
/// `RAYON_NUM_THREADS` if set, else `available_parallelism`.
pub fn num_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Covariant raw-pointer wrapper that is `Send + Sync`; used to hand each
/// worker disjoint output slots. Soundness argument: every helper below
/// guarantees each index/chunk is dispatched to exactly one worker.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Taking `self` makes closures capture the whole `SendPtr` (which is
    /// `Sync`) instead of the raw-pointer field (which is not) under
    /// edition-2021 disjoint capture.
    #[inline]
    fn get(self) -> *mut T {
        self.0
    }
}

/// The work-counter loop both workers and the submitting thread run.
fn drain(counter: &AtomicUsize, n: usize, f: &(dyn Fn(usize) + Sync), panicked: &AtomicBool) {
    loop {
        if panicked.load(Ordering::Relaxed) {
            break;
        }
        let i = counter.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            panicked.store(true, Ordering::Relaxed);
            break;
        }
    }
}

/// A submitted parallel region. `f` is a lifetime-erased borrow of the
/// caller's closure; the submitting thread does not return until
/// `slots == 0 && active == 0`, which is what keeps the erasure sound.
struct ActiveJob {
    f: SendPtr<()>, // type-erased `*const (dyn Fn(usize) + Sync)` payload
    call: unsafe fn(*const (), usize, &AtomicUsize, &AtomicBool),
    n: usize,
    counter: Arc<AtomicUsize>,
    panicked: Arc<AtomicBool>,
    /// Worker participation slots not yet claimed.
    slots: usize,
}

struct PoolState {
    job: Option<ActiveJob>,
    /// Claimed-but-unfinished worker participations of the current job.
    active: usize,
    /// Spawned (parked or working) worker threads.
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            job: None,
            active: 0,
            workers: 0,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    })
}

thread_local! {
    /// Set inside pool workers: nested parallel regions run serially
    /// instead of deadlocking on the (single-job) pool.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn worker_loop(shared: &'static Pool) {
    IN_WORKER.with(|w| w.set(true));
    let mut guard = shared.state.lock().unwrap_or_else(|p| p.into_inner());
    loop {
        if let Some(job) = guard.job.as_mut().filter(|j| j.slots > 0) {
            job.slots -= 1;
            let (fp, call, n) = (job.f, job.call, job.n);
            let counter = job.counter.clone();
            let panicked = job.panicked.clone();
            drop(guard);
            // SAFETY: the submitting thread blocks until active == 0, so
            // the erased closure borrow outlives this use.
            unsafe { call(fp.get() as *const (), n, &counter, &panicked) };
            guard = shared.state.lock().unwrap_or_else(|p| p.into_inner());
            guard.active -= 1;
            if guard.active == 0 {
                shared.done.notify_all();
            }
        } else {
            guard = shared.work.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Monomorphic trampoline: recovers the concrete closure type inside
/// workers. Generic over `F` so the pool itself stays object-free.
unsafe fn call_impl<F: Fn(usize) + Sync>(
    raw: *const (),
    n: usize,
    counter: &AtomicUsize,
    panicked: &AtomicBool,
) {
    let f = &*(raw as *const F);
    drain(counter, n, f, panicked);
}

/// Runs `f(i)` for every `i in 0..n` across the persistent worker pool,
/// pulling indices from a shared atomic counter (dynamic load balance).
/// The submitting thread participates in the work. Panics in any item are
/// resurfaced on the submitting thread after the region completes.
pub fn for_each_index<F: Fn(usize) + Sync>(n: usize, f: F) {
    let nt = num_threads().min(n);
    if nt <= 1 || n <= 1 || IN_WORKER.with(|w| w.get()) {
        // serial path (single thread, tiny n, or nested region inside a
        // pool worker): run inline, preserving panic payloads
        for i in 0..n {
            f(i);
        }
        return;
    }
    let shared = pool();
    let counter = Arc::new(AtomicUsize::new(0));
    let panicked = Arc::new(AtomicBool::new(false));
    {
        let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
        // single-job pool: a second top-level submitter waits its turn
        while st.job.is_some() || st.active > 0 {
            st = shared.done.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        while st.workers < nt - 1 {
            std::thread::Builder::new()
                .name("par-worker".into())
                .spawn(move || worker_loop(pool()))
                .expect("spawn pool worker");
            st.workers += 1;
        }
        st.job = Some(ActiveJob {
            // SAFETY: lifetime erasure of &f; run() blocks below until no
            // worker can still hold this pointer.
            f: SendPtr(&f as *const F as *mut ()),
            call: call_impl::<F>,
            n,
            counter: counter.clone(),
            panicked: panicked.clone(),
            slots: nt - 1,
        });
        st.active = nt - 1;
        shared.work.notify_all();
    }
    // The submitting thread works too. It is flagged as a worker for the
    // duration so a nested region inside `f` runs serially instead of
    // trying to submit a second job (single-job pool ⇒ deadlock).
    IN_WORKER.with(|w| w.set(true));
    drain(&counter, n, &f, &panicked);
    IN_WORKER.with(|w| w.set(false));
    // wait until every participation slot is claimed and finished — only
    // then may the borrow of `f` end
    let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
    while st.active > 0 || st.job.as_ref().is_some_and(|j| j.slots > 0) {
        st = shared.done.wait(st).unwrap_or_else(|p| p.into_inner());
    }
    st.job = None;
    shared.done.notify_all();
    drop(st);
    if panicked.load(Ordering::Relaxed) {
        panic!("parallel work item panicked");
    }
}

/// Parallel map over `0..n` collecting results in index order.
pub fn map_indexed<R: Send, F: Fn(usize) -> R + Sync>(n: usize, f: F) -> Vec<R> {
    let mut out: Vec<R> = Vec::with_capacity(n);
    let base = SendPtr(out.as_mut_ptr());
    for_each_index(n, |i| {
        // SAFETY: each index written exactly once, within capacity.
        unsafe { base.get().add(i).write(f(i)) };
    });
    // SAFETY: all n slots initialized above.
    unsafe { out.set_len(n) };
    out
}

/// Splits `data` into chunks of `chunk_size` and runs `f(chunk_index,
/// chunk)` across the worker threads. Chunks are disjoint, so each worker
/// gets exclusive mutable access.
pub fn chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(data: &mut [T], chunk_size: usize, f: F) {
    assert!(chunk_size > 0, "chunks_mut: zero chunk size");
    let len = data.len();
    let n = len.div_ceil(chunk_size);
    let base = SendPtr(data.as_mut_ptr());
    for_each_index(n, |i| {
        let start = i * chunk_size;
        let end = (start + chunk_size).min(len);
        // SAFETY: [start, end) ranges are disjoint across chunk indices and
        // in bounds; each index dispatched to exactly one worker.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, chunk);
    });
}

/// Sequential-access view of a block's rows inside a flat buffer. Produced
/// by [`for_each_row_block`]; `row(&mut self, ..)` ties each returned slice
/// to the view borrow so no two rows can be held at once.
pub struct RowBlock<'a, T> {
    base: SendPtr<T>,
    data_len: usize,
    row_len: usize,
    rows: &'a [u32],
}

impl<T> RowBlock<'_, T> {
    /// Number of rows in this block.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Mutable view of the `i`-th row of the block.
    pub fn row(&mut self, i: usize) -> &mut [T] {
        let r = self.rows[i] as usize;
        let start = r * self.row_len;
        assert!(
            start + self.row_len <= self.data_len,
            "row index out of bounds"
        );
        // SAFETY: in bounds (checked); rows are globally unique (checked by
        // the caller in debug builds) and blocks partition them, so no two
        // live references alias; &mut self prevents holding two rows from
        // the same block at once.
        unsafe { std::slice::from_raw_parts_mut(self.base.get().add(start), self.row_len) }
    }
}

/// Parallel scatter into disjoint rows of a flat row-major buffer: splits
/// `rows` into blocks of `block_size` consecutive entries and calls
/// `f(block_start, row_view)` for each block across the worker threads.
///
/// # Panics
/// `rows` must be pairwise distinct (checked in debug builds) — this is
/// what makes handing each worker mutable row access sound.
pub fn for_each_row_block<T: Send, F>(
    data: &mut [T],
    row_len: usize,
    rows: &[u32],
    block_size: usize,
    f: F,
) where
    F: Fn(usize, &mut RowBlock<'_, T>) + Sync,
{
    assert!(row_len > 0 && block_size > 0);
    #[cfg(debug_assertions)]
    {
        let mut sorted = rows.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[0] != w[1], "for_each_row_block: duplicate row {}", w[0]);
        }
    }
    let data_len = data.len();
    let base = SendPtr(data.as_mut_ptr());
    let nblocks = rows.len().div_ceil(block_size);
    for_each_index(nblocks, |bi| {
        let start = bi * block_size;
        let end = (start + block_size).min(rows.len());
        let mut view = RowBlock {
            base,
            data_len,
            row_len,
            rows: &rows[start..end],
        };
        f(start, &mut view);
    });
}

/// Parallel iteration over disjoint `[start, end)` ranges of a flat
/// buffer: calls `f(i, &mut data[ranges[i].0..ranges[i].1])` across the
/// worker threads.
///
/// # Panics
/// Ranges must be in bounds and pairwise disjoint (disjointness checked in
/// debug builds).
pub fn for_each_disjoint_range<T: Send, F>(data: &mut [T], ranges: &[(usize, usize)], f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    for &(s, e) in ranges {
        assert!(
            s <= e && e <= data.len(),
            "for_each_disjoint_range: out of bounds"
        );
    }
    #[cfg(debug_assertions)]
    {
        let mut sorted: Vec<(usize, usize)> =
            ranges.iter().copied().filter(|(s, e)| s != e).collect();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "for_each_disjoint_range: overlapping ranges"
            );
        }
    }
    let base = SendPtr(data.as_mut_ptr());
    for_each_index(ranges.len(), |i| {
        let (s, e) = ranges[i];
        // SAFETY: in bounds (checked above); ranges pairwise disjoint
        // (checked in debug builds); each index dispatched once.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(s), e - s) };
        f(i, slice);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_covers_all_indices() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        for_each_index(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_indexed_preserves_order() {
        let v = map_indexed(257, |i| i * i);
        assert_eq!(v.len(), 257);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn chunks_mut_is_exhaustive_and_disjoint() {
        let mut data = vec![0u32; 1003];
        chunks_mut(&mut data, 64, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + ci as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 64) as u32);
        }
    }

    #[test]
    fn row_block_scatter_hits_every_row_once() {
        let rows: Vec<u32> = vec![7, 3, 11, 0, 5, 9, 2];
        let mut data = vec![0.0f64; 12 * 4];
        for_each_row_block(&mut data, 4, &rows, 3, |start, view| {
            for i in 0..view.len() {
                let r = rows[start + i] as f64;
                for v in view.row(i).iter_mut() {
                    *v += r + 1.0;
                }
            }
        });
        for r in 0..12u32 {
            let expect = if rows.contains(&r) {
                r as f64 + 1.0
            } else {
                0.0
            };
            for c in 0..4 {
                assert_eq!(data[r as usize * 4 + c], expect, "row {r}");
            }
        }
    }

    #[test]
    fn disjoint_ranges_cover_exactly() {
        let mut data = vec![0u32; 20];
        let ranges = vec![(4usize, 9usize), (0, 2), (12, 20), (9, 12)];
        for_each_disjoint_range(&mut data, &ranges, |i, s| {
            for v in s.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert_eq!(&data[0..2], &[2, 2]);
        assert_eq!(data[2], 0);
        assert_eq!(data[3], 0);
        assert!(data[4..9].iter().all(|&v| v == 1));
        assert!(data[9..12].iter().all(|&v| v == 4));
        assert!(data[12..20].iter().all(|&v| v == 3));
    }

    /// Forces the pool path regardless of core count. Serialized because
    /// `with_override` is process-global.
    fn pooled<T>(f: impl FnOnce() -> T) -> T {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        with_override(4, f)
    }

    #[test]
    fn pool_covers_all_indices() {
        pooled(|| {
            let hits: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
            for_each_index(5000, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn pool_regions_reuse_workers_back_to_back() {
        pooled(|| {
            // hundreds of small regions — the batched-M2L shape
            for round in 0..300 {
                let sum = AtomicUsize::new(0);
                for_each_index(8, |i| {
                    sum.fetch_add(i + round, Ordering::Relaxed);
                });
                assert_eq!(sum.load(Ordering::Relaxed), 28 + 8 * round);
            }
        });
    }

    #[test]
    fn pool_resurfaces_worker_panics() {
        pooled(|| {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                for_each_index(64, |i| {
                    if i == 17 {
                        panic!("boom");
                    }
                });
            }));
            assert!(result.is_err(), "panic must propagate to the submitter");
            // the pool must still be usable afterwards
            let sum = AtomicUsize::new(0);
            for_each_index(32, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 496);
        });
    }

    #[test]
    fn pool_handles_nested_regions_serially() {
        pooled(|| {
            let hits: Vec<AtomicUsize> = (0..256).map(|_| AtomicUsize::new(0)).collect();
            for_each_index(16, |outer| {
                for_each_index(16, |inner| {
                    hits[outer * 16 + inner].fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn empty_input_is_fine() {
        for_each_index(0, |_| panic!("must not run"));
        let v: Vec<u8> = map_indexed(0, |_| 0u8);
        assert!(v.is_empty());
        chunks_mut::<u8, _>(&mut [], 8, |_, _| panic!("must not run"));
    }
}
