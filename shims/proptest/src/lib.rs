//! Offline stand-in for `proptest`: the `proptest!` macro with `x in
//! strategy` bindings, where strategies are half-open ranges. Each test
//! samples `cases` deterministic inputs (seeded from the test name), so
//! failures are reproducible run to run. No shrinking.

use std::ops::Range;

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Configuration subset: number of sampled cases.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 used to sample strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A samplable input domain (subset of proptest's `Strategy`).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_strategy_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_strategy_float!(f32, f64);

/// FNV-1a of the test name: a stable per-test seed.
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::name_seed(stringify!($name));
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::new(
                    base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items!{ $cfg; $($rest)* }
    };
}
