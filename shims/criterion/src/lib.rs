//! Offline stand-in for `criterion`: the macro/group/bencher API the
//! benches use, backed by a simple median-of-samples wall-clock harness.
//!
//! Run with `cargo bench` (optionally `cargo bench --bench X -- substring`
//! to filter benchmarks by name). Each benchmark is warmed up, then timed
//! for `sample_size` samples; the median, minimum, and mean are printed.
//! Target time per benchmark is bounded so full sweeps stay fast.

use std::time::{Duration, Instant};

/// Formats a duration with an appropriate unit.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Top-level harness state: name filter from the command line.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- foo` passes "foo"; ignore flags (e.g. --bench)
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = name.to_string();
        run_benchmark(&full, self.filter.as_deref(), 20, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.criterion.filter.as_deref(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.text);
        run_benchmark(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warmup: one call, plus enough to estimate per-iteration cost
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed();
        // inner iteration count so one sample is >= ~1 ms for cheap payloads
        let inner = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000)
                as usize
        } else {
            1
        };
        // bound total measurement time to ~3 s
        let budget = Duration::from_secs(3);
        let mut spent = Duration::ZERO;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..inner {
                std::hint::black_box(f());
            }
            let dt = t.elapsed();
            self.samples.push(dt / inner as u32);
            spent += dt;
            if spent > budget && self.samples.len() >= 2 {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    full_name: &str,
    filter: Option<&str>,
    sample_size: usize,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !full_name.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full_name:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{full_name:<50} median {:>12}   min {:>12}   mean {:>12}   ({} samples)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(mean),
        b.samples.len()
    );
}

/// Re-export for benches that import it from criterion.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
