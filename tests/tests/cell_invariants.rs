//! Integration: membrane invariants through the full simulation loop —
//! inextensible membranes must conserve area (and nearly conserve volume)
//! while deforming in shear flow (§5.3's invariant checks).

use linalg::Vec3;
use sim::{SimConfig, Simulation};
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, Cell, CellParams};

#[test]
fn single_cell_in_shear_conserves_area_and_volume() {
    let basis = SphBasis::new(10);
    let params = CellParams {
        kappa_b: 0.02,
        k_area: 2.0,
        ..Default::default()
    };
    let cells = vec![Cell::new(
        &basis,
        biconcave_coeffs(&basis, 1.0, Vec3::ZERO),
        params,
    )];
    let g0 = cells[0].geometry(&basis);
    let (a0, v0) = (g0.area(), g0.volume());
    let config = SimConfig {
        dt: 0.01,
        shear_rate: 0.5,
        ..Default::default()
    };
    let mut sim = Simulation::new(basis, cells, None, config);
    for _ in 0..10 {
        sim.step();
    }
    let g1 = sim.cells[0].geometry(&sim.basis);
    assert!(
        (g1.area() - a0).abs() / a0 < 2e-2,
        "area drift {} -> {}",
        a0,
        g1.area()
    );
    assert!(
        (g1.volume() - v0).abs() / v0 < 2e-2,
        "volume drift {} -> {}",
        v0,
        g1.volume()
    );
    // cell rotated/translated with the flow but stayed finite
    assert!(g1.centroid().is_finite());
}

#[test]
fn cell_tank_treads_in_shear() {
    // a cell in shear acquires x-velocity proportional to its z-position
    let basis = SphBasis::new(8);
    let params = CellParams::default();
    let z0 = 1.0;
    let cells = vec![Cell::new(
        &basis,
        biconcave_coeffs(&basis, 0.8, Vec3::new(0.0, 0.0, z0)),
        params,
    )];
    let config = SimConfig {
        dt: 0.02,
        shear_rate: 1.0,
        ..Default::default()
    };
    let mut sim = Simulation::new(basis, cells, None, config);
    let c0 = sim.cells[0].geometry(&sim.basis).centroid();
    for _ in 0..5 {
        sim.step();
    }
    let c1 = sim.cells[0].geometry(&sim.basis).centroid();
    let expect_dx = 1.0 * z0 * 5.0 * 0.02; // γ̇ z T
    assert!(
        ((c1.x - c0.x) - expect_dx).abs() < 0.25 * expect_dx,
        "advection: moved {} expected {}",
        c1.x - c0.x,
        expect_dx
    );
}
