//! Integration: the full boundary-solver pipeline (patches → quadrature →
//! Nyström GMRES → near/far evaluation) against an exact Stokes solution.

use bie::{BieOptions, CheckSpec, DoubleLayerSolver, MatvecBackend};
use kernels::{stokeslet, StokesDL, StokesEquiv};
use linalg::{GmresOptions, Vec3};
use patch::cube_sphere;

#[test]
fn confined_stokes_solution_reproduced() {
    let surface = cube_sphere(1.0, Vec3::ZERO, 1, 8);
    let opts = BieOptions {
        eta: 2,
        p_extrap: 8,
        check: CheckSpec::Linear {
            big_r: 0.15,
            small_r: 0.15,
        },
        backend: MatvecBackend::Dense,
        null_space: true,
        gmres: GmresOptions {
            tol: 5e-5,
            max_iters: 60,
            ..Default::default()
        },
        ..Default::default()
    };
    let solver = DoubleLayerSolver::new(surface, StokesDL, StokesEquiv { mu: 1.0 }, opts);
    let x0 = Vec3::new(2.0, -1.5, 0.8);
    let f0 = Vec3::new(-1.0, 0.3, 0.9);
    let mut g = Vec::with_capacity(solver.dim());
    for &y in &solver.quad.points {
        let u = stokeslet(y, x0, f0, 1.0);
        g.extend_from_slice(&[u.x, u.y, u.z]);
    }
    let (phi, res) = solver.solve(&g);
    // the paper observes ≤ 30 GMRES iterations in typical steps
    assert!(res.iterations <= 30, "GMRES iterations {}", res.iterations);
    // far + near targets in one evaluation
    let targets = vec![
        Vec3::new(0.2, 0.2, -0.1),
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(0.9, 0.1, 0.2), // near the wall
    ];
    let u = solver.eval_at(&phi, &targets);
    for (i, &t) in targets.iter().enumerate() {
        let exact = stokeslet(t, x0, f0, 1.0);
        let got = Vec3::new(u[i * 3], u[i * 3 + 1], u[i * 3 + 2]);
        assert!(
            (got - exact).norm() < 5e-3 * exact.norm(),
            "target {i}: {got:?} vs {exact:?}"
        );
    }
}
