//! Integration: the contact-free guarantee of §4 — two cells pushed
//! together in shear flow must never interpenetrate.

use collision::{detect_contacts, triangulate_latlon, DetectOptions};
use linalg::Vec3;
use sim::{SimConfig, Simulation};
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, Cell, CellParams};

fn min_separation_ok(sim: &Simulation, delta: f64) -> bool {
    // rebuild collision meshes and assert no interference at threshold δ/2
    let meshes: Vec<_> = sim
        .cells
        .iter()
        .map(|c| {
            let (pts, nlat, nlon, n, s) = c.collision_points(&sim.basis, 2);
            triangulate_latlon(&pts, nlat, nlon, n, s)
        })
        .collect();
    let obj: Vec<u32> = (0..meshes.len() as u32).collect();
    let contacts = detect_contacts(&meshes, None, &obj, DetectOptions::new(delta * 0.5));
    contacts.iter().all(|c| c.value >= -1e-9)
}

#[test]
fn shear_pair_never_interpenetrates() {
    let basis = SphBasis::new(8);
    let params = CellParams {
        kappa_b: 0.02,
        k_area: 2.0,
        ..Default::default()
    };
    // the upstream cell sits above the midplane so the shear u = [z,0,0]
    // carries it into the downstream cell; without contact handling the
    // surfaces would interpenetrate
    let cells = vec![
        Cell::new(
            &basis,
            biconcave_coeffs(&basis, 1.0, Vec3::new(-0.8, 0.0, 0.3)),
            params,
        ),
        Cell::new(
            &basis,
            biconcave_coeffs(&basis, 1.0, Vec3::new(0.8, 0.0, -0.3)),
            params,
        ),
    ];
    let delta = 0.06;
    let config = SimConfig {
        dt: 0.05, // aggressive step: collisions must activate
        shear_rate: 1.0,
        collision_delta: delta,
        ..Default::default()
    };
    let mut sim = Simulation::new(basis, cells, None, config);
    let mut saw_contact = false;
    for s in 0..20 {
        sim.step();
        saw_contact |= sim.last_stats.contacts > 0;
        assert!(
            min_separation_ok(&sim, delta),
            "interpenetration at step {s}"
        );
    }
    assert!(saw_contact, "test setup never activated contact resolution");
}
