//! Cross-crate property-based tests on core invariants.

use linalg::Vec3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rotated, translated cells keep their area and volume.
    #[test]
    fn cell_rigid_motion_invariants(seed in 0u64..1000, dx in -2.0f64..2.0, dz in -2.0f64..2.0) {
        let basis = sphharm::SphBasis::new(8);
        let coeffs = vesicle::biconcave_coeffs(&basis, 1.0, Vec3::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let rot = vesicle::rotated_coeffs(&basis, &coeffs, &mut rng);
        let mut cell = vesicle::Cell::new(&basis, rot, vesicle::CellParams::default());
        let g0 = cell.geometry(&basis);
        cell.translate(&basis, Vec3::new(dx, 0.0, dz));
        let g1 = cell.geometry(&basis);
        prop_assert!((g0.area() - g1.area()).abs() / g0.area() < 1e-9);
        prop_assert!((g0.volume() - g1.volume()).abs() / g0.volume() < 1e-9);
    }

    /// The candidate search never misses an intersecting box pair.
    #[test]
    fn candidate_search_complete(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let boxes: Vec<linalg::Aabb> = (0..30)
            .map(|_| {
                let c = Vec3::new(
                    rng.random_range(-2.0..2.0),
                    rng.random_range(-2.0..2.0),
                    rng.random_range(-2.0..2.0),
                );
                let e = Vec3::new(
                    rng.random_range(0.05..0.5),
                    rng.random_range(0.05..0.5),
                    rng.random_range(0.05..0.5),
                );
                linalg::Aabb::new(c - e, c + e)
            })
            .collect();
        let grid = octree::SpatialHash::new(octree::mean_diagonal_spacing(&boxes), Vec3::ZERO);
        let found: std::collections::HashSet<(u32, u32)> =
            octree::box_box_candidates_self(&boxes, &grid).into_iter().collect();
        for i in 0..boxes.len() {
            for j in i + 1..boxes.len() {
                if boxes[i].intersects(boxes[j]) {
                    prop_assert!(found.contains(&(i as u32, j as u32)));
                }
            }
        }
    }

    /// LCP solutions satisfy the complementarity conditions (Eq. 2.7).
    #[test]
    fn lcp_complementarity(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = rng.random_range(1..15usize);
        let mut b = linalg::Mat::from_fn(m, m, |_, _| rng.random_range(-0.4..0.4));
        for i in 0..m {
            b[(i, i)] = m as f64 + 1.0;
        }
        let q: Vec<f64> = (0..m).map(|_| rng.random_range(-2.0..2.0)).collect();
        let res = collision::solve_lcp(m, |x, y| b.matvec_into(x, y), &q, &collision::LcpOptions::default());
        prop_assert!(res.converged);
        let mut l = b.matvec(&res.lambda);
        for i in 0..m {
            l[i] += q[i];
            prop_assert!(res.lambda[i] >= -1e-9);
            prop_assert!(l[i] >= -1e-8);
            prop_assert!(res.lambda[i] * l[i] < 1e-7);
        }
    }
}
