//! Integration: the simulation must produce (nearly) identical dynamics
//! whether the cell–cell far field is summed directly or with the FMM —
//! the discretization is the same, only the summation algorithm changes.

use linalg::Vec3;
use sim::{SimConfig, Simulation};
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, Cell, CellParams};

fn make(force_fmm: bool) -> Simulation {
    let basis = SphBasis::new(8);
    let params = CellParams::default();
    let mut cells = Vec::new();
    for i in 0..4 {
        let c = Vec3::new(2.4 * (i % 2) as f64, 2.4 * (i / 2) as f64, 0.1 * i as f64);
        cells.push(Cell::new(&basis, biconcave_coeffs(&basis, 1.0, c), params));
    }
    let config = SimConfig {
        dt: 0.01,
        shear_rate: 0.3,
        // force the FMM path or the direct path
        fmm_pair_threshold: if force_fmm { 0.0 } else { f64::INFINITY },
        fmm: fmm::FmmOptions { order: 6, leaf_capacity: 80, max_depth: 10 },
        ..Default::default()
    };
    Simulation::new(basis, cells, None, config)
}

#[test]
fn direct_and_fmm_dynamics_agree() {
    let mut direct = make(false);
    let mut fast = make(true);
    for _ in 0..2 {
        direct.step();
        fast.step();
    }
    for (cd, cf) in direct.cells.iter().zip(&fast.cells) {
        let gd = cd.geometry(&direct.basis);
        let gf = cf.geometry(&fast.basis);
        let d = (gd.centroid() - gf.centroid()).norm();
        assert!(d < 1e-5, "centroid drift between direct and FMM: {d}");
    }
}
