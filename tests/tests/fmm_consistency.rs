//! Integration: the simulation must produce (nearly) identical dynamics
//! whether the cell–cell far field is summed directly or with the FMM —
//! the discretization is the same, only the summation algorithm changes.

use linalg::Vec3;
use sim::{SimConfig, Simulation};
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, Cell, CellParams};

fn make(force_fmm: bool) -> Simulation {
    let basis = SphBasis::new(8);
    let params = CellParams::default();
    let mut cells = Vec::new();
    for i in 0..4 {
        let c = Vec3::new(2.4 * (i % 2) as f64, 2.4 * (i / 2) as f64, 0.1 * i as f64);
        cells.push(Cell::new(&basis, biconcave_coeffs(&basis, 1.0, c), params));
    }
    let config = SimConfig {
        dt: 0.01,
        shear_rate: 0.3,
        // force the FMM path or the direct path
        fmm_pair_threshold: if force_fmm { 0.0 } else { f64::INFINITY },
        fmm: fmm::FmmOptions {
            order: 6,
            leaf_capacity: 80,
            max_depth: 10,
        },
        ..Default::default()
    };
    Simulation::new(basis, cells, None, config)
}

/// FMM vs direct summation for the Stokes double layer — the kernel the
/// boundary solver iterates — at orders 4 and 6: order 4 must reach ~3
/// digits, order 6 ~4+ digits and strictly better than order 4.
#[test]
fn stokes_double_layer_fmm_accuracy_orders_4_and_6() {
    use kernels::{direct_eval, StokesDL, StokesEquiv};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    let mut rng = StdRng::seed_from_u64(42);
    let n = 1200usize;
    let src: Vec<Vec3> = (0..n)
        .map(|_| {
            Vec3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            )
        })
        .collect();
    let trg: Vec<Vec3> = (0..500)
        .map(|_| {
            Vec3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            )
        })
        .collect();
    let mut data = Vec::with_capacity(n * 6);
    for _ in 0..n {
        for _ in 0..3 {
            data.push(rng.random_range(-1.0..1.0));
        }
        let nrm = Vec3::new(
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
        )
        .normalized();
        data.extend_from_slice(&[nrm.x, nrm.y, nrm.z]);
    }
    let sk = StokesDL;
    let ek = StokesEquiv { mu: 1.0 };
    let mut exact = vec![0.0; trg.len() * 3];
    direct_eval(&sk, &src, &data, &trg, &mut exact);
    let den: f64 = exact.iter().map(|v| v * v).sum::<f64>().sqrt();

    let mut errs = Vec::new();
    for order in [4usize, 6] {
        let approx = fmm::fmm_evaluate(
            &sk,
            &ek,
            &src,
            &data,
            &trg,
            fmm::FmmOptions {
                order,
                leaf_capacity: 60,
                max_depth: 10,
            },
        );
        let num: f64 = approx
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        errs.push(num / den);
    }
    assert!(errs[0] < 5e-3, "order 4 relative error {}", errs[0]);
    assert!(errs[1] < 1e-4, "order 6 relative error {}", errs[1]);
    assert!(
        errs[1] < errs[0] * 0.5,
        "order 6 must beat order 4: {errs:?}"
    );
}

#[test]
fn direct_and_fmm_dynamics_agree() {
    let mut direct = make(false);
    let mut fast = make(true);
    for _ in 0..2 {
        direct.step();
        fast.step();
    }
    for (cd, cf) in direct.cells.iter().zip(&fast.cells) {
        let gd = cd.geometry(&direct.basis);
        let gf = cf.geometry(&fast.basis);
        let d = (gd.centroid() - gf.centroid()).norm();
        assert!(d < 1e-5, "centroid drift between direct and FMM: {d}");
    }
}
