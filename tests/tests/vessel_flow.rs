//! Integration: end-to-end confined flow — cells inside a closed tube with
//! inlet/outlet boundary conditions, boundary solve, and contact handling
//! all active for a few steps.

use linalg::{GmresOptions, Vec3};
use patch::{capsule_tube, StraightLine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{cells_from_seeds, fill_seeds, SimConfig, Simulation, Vessel};
use sphharm::SphBasis;
use vesicle::CellParams;

#[test]
fn cells_advance_through_tube_without_escaping() {
    let line = StraightLine {
        a: Vec3::ZERO,
        b: Vec3::new(6.0, 0.0, 0.0),
    };
    let surface = capsule_tube(&line, 1.0, 3, 8);
    let bie = bie::BieOptions {
        backend: bie::MatvecBackend::Dense,
        gmres: GmresOptions {
            tol: 1e-4,
            max_iters: 30,
            ..Default::default()
        },
        ..Default::default()
    };
    let vessel = Vessel::new(surface.clone(), 1.0, bie, 1.0, 8);
    let basis = SphBasis::new(8);
    let seeds = fill_seeds(&surface, 1.2, 0.85);
    assert!(!seeds.is_empty());
    let mut rng = StdRng::seed_from_u64(5);
    let cells = cells_from_seeds(&basis, &seeds, CellParams::default(), &mut rng);
    let n_cells = cells.len();
    let config = SimConfig {
        dt: 0.02,
        collision_delta: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(basis, cells, Some(vessel), config);
    let x_before: f64 = sim
        .cells
        .iter()
        .map(|c| c.geometry(&sim.basis).centroid().x)
        .sum::<f64>()
        / n_cells as f64;
    for _ in 0..3 {
        sim.step();
        // the paper's GMRES cap: iterations stay ≤ 30
        assert!(sim.last_stats.bie_iterations <= 30);
    }
    let x_after: f64 = sim
        .cells
        .iter()
        .map(|c| c.geometry(&sim.basis).centroid().x)
        .sum::<f64>()
        / n_cells as f64;
    // inflow pushes cells along +x
    assert!(
        x_after > x_before + 1e-4,
        "no net motion: {x_before} -> {x_after}"
    );
    // cells stay inside the tube (centroid within the wall radius)
    for c in &sim.cells {
        let p = c.geometry(&sim.basis).centroid();
        assert!(p.is_finite());
        let radial = (p.y * p.y + p.z * p.z).sqrt();
        assert!(radial < 1.0, "cell escaped: {p:?}");
    }
}
