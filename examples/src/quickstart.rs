//! Quickstart: two RBCs relaxing in free space.
//!
//! Builds two biconcave cells, runs a few contact-free time steps, and
//! prints area/volume diagnostics — the smallest end-to-end tour of the
//! public API (cells, forces, implicit stepping, collision guard).
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin quickstart`

use linalg::Vec3;
use sim::{SimConfig, Simulation};
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, Cell, CellParams};

fn main() {
    let p = 12; // spherical-harmonic order (paper production: 16)
    let basis = SphBasis::new(p);
    let params = CellParams {
        kappa_b: 0.02,
        k_area: 1.0,
        ..Default::default()
    };

    // two cells, close enough to interact hydrodynamically
    let cells = vec![
        Cell::new(&basis, biconcave_coeffs(&basis, 1.0, Vec3::ZERO), params),
        Cell::new(
            &basis,
            biconcave_coeffs(&basis, 1.0, Vec3::new(2.6, 0.0, 0.3)),
            params,
        ),
    ];

    let config = SimConfig {
        dt: 5e-3,
        collision_delta: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(basis, cells, None, config);

    println!("step  area[0]    vol[0]     area[1]    vol[1]     centroid gap");
    for step in 0..10 {
        sim.step();
        let g0 = sim.cells[0].geometry(&sim.basis);
        let g1 = sim.cells[1].geometry(&sim.basis);
        println!(
            "{:>4}  {:>9.6}  {:>9.6}  {:>9.6}  {:>9.6}  {:>9.6}",
            step + 1,
            g0.area(),
            g0.volume(),
            g1.area(),
            g1.volume(),
            (g0.centroid() - g1.centroid()).norm()
        );
    }
    let t = sim.timers;
    println!(
        "\ntimers: COL {:.3}s  BIE-solve {:.3}s  BIE-FMM {:.3}s  Other-FMM {:.3}s  Other {:.3}s",
        t.col, t.bie_solve, t.bie_fmm, t.other_fmm, t.other
    );
    println!("degrees of freedom per step: {}", sim.dofs());
}
