//! Two vesicles in shear flow — the Fig. 10 scenario.
//!
//! The domain comes from the scenario registry (`driver::scenario`,
//! `shear_pair`); this binary adds the Fig.-10-style outputs: centroid
//! trajectories to CSV and periodic VTK snapshots. For a plain run with
//! checkpointing, prefer `cargo run --release -p driver -- shear_pair`.
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin shear_pair`

use driver::Doc;

fn main() {
    let out_dir = std::path::Path::new("target/shear_pair");
    std::fs::create_dir_all(out_dir).unwrap();
    let mut sim = driver::build("shear_pair", &Doc::default())
        .expect("registry scenario")
        .sim;

    let mut csv = String::from("t,x0,y0,z0,x1,y1,z1,gap,contacts\n");
    let steps = 60;
    for s in 0..steps {
        sim.step();
        let c0 = sim.cells[0].geometry(&sim.basis).centroid();
        let c1 = sim.cells[1].geometry(&sim.basis).centroid();
        csv.push_str(&format!(
            "{:.4},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
            (s + 1) as f64 * sim.config.dt,
            c0.x,
            c0.y,
            c0.z,
            c1.x,
            c1.y,
            c1.z,
            (c0 - c1).norm(),
            sim.last_stats.contacts,
        ));
        if s % 15 == 14 {
            // dump point clouds for visualization (Fig. 10 snapshots)
            let pts0 = sim.cells[0].positions(&sim.basis);
            let pts1 = sim.cells[1].positions(&sim.basis);
            let mut all = pts0;
            all.extend(pts1);
            patch::write_vtk_points(&out_dir.join(format!("snap_{:03}.vtk", s + 1)), &all, None)
                .unwrap();
        }
    }
    std::fs::write(out_dir.join("trajectory.csv"), csv).unwrap();
    println!("wrote {}", out_dir.join("trajectory.csv").display());
    let g0 = sim.cells[0].geometry(&sim.basis);
    println!(
        "final: centroid0 = {:?}, area = {:.6}",
        g0.centroid(),
        g0.area()
    );
}
