//! Two vesicles in shear flow — the Fig. 10 scenario.
//!
//! The domain comes from the scenario registry (`driver::scenario`,
//! `shear_pair`); this binary adds the Fig.-10-style outputs as a custom
//! [`StepSink`] plugged into the Session step loop: centroid trajectories
//! to CSV and periodic VTK snapshots. For a plain run with checkpointing,
//! prefer `cargo run --release -p driver -- shear_pair`.
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin shear_pair`

use driver::{Doc, Session, StepRow, StepSink};
use sim::Simulation;
use std::io;
use std::path::PathBuf;

/// Streams Fig.-10 observables: one centroid/gap CSV row per step, plus a
/// merged point-cloud VTK snapshot every `snap_every` steps.
struct Fig10Sink {
    out_dir: PathBuf,
    snap_every: usize,
    csv: String,
}

impl StepSink for Fig10Sink {
    fn on_step(&mut self, sim: &Simulation, row: &StepRow) -> io::Result<()> {
        let c0 = sim.cells[0].geometry(&sim.basis).centroid();
        let c1 = sim.cells[1].geometry(&sim.basis).centroid();
        self.csv.push_str(&format!(
            "{:.4},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
            row.step as f64 * sim.config.dt,
            c0.x,
            c0.y,
            c0.z,
            c1.x,
            c1.y,
            c1.z,
            (c0 - c1).norm(),
            row.stats.contacts,
        ));
        if row.step.is_multiple_of(self.snap_every) {
            // dump point clouds for visualization (Fig. 10 snapshots)
            let mut all = sim.cells[0].positions(&sim.basis);
            all.extend(sim.cells[1].positions(&sim.basis));
            patch::write_vtk_points(
                &self.out_dir.join(format!("snap_{:03}.vtk", row.step)),
                &all,
                None,
            )?;
        }
        Ok(())
    }

    fn on_finish(&mut self, _sim: &Simulation) -> io::Result<()> {
        std::fs::write(self.out_dir.join("trajectory.csv"), &self.csv)
    }
}

fn main() {
    let out_dir = PathBuf::from("target/shear_pair");
    std::fs::create_dir_all(&out_dir).unwrap();
    let mut session = Session::build("shear_pair", &Doc::default()).expect("registry scenario");

    let mut fig10 = Fig10Sink {
        out_dir: out_dir.clone(),
        snap_every: 15,
        csv: String::from("t,x0,y0,z0,x1,y1,z1,gap,contacts\n"),
    };
    {
        let mut sinks: Vec<&mut dyn StepSink> = vec![&mut fig10];
        session.drive(60, &mut sinks).unwrap();
    }
    println!("wrote {}", out_dir.join("trajectory.csv").display());
    let g0 = session.sim.cells[0].geometry(&session.sim.basis);
    println!(
        "final: centroid0 = {:?}, area = {:.6}",
        g0.centroid(),
        g0.area()
    );
}
