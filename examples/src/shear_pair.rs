//! Two vesicles in shear flow — the Fig. 10 scenario.
//!
//! Places two RBCs in the linear shear `u = [γ̇ z, 0, 0]` with a vertical
//! offset; the upper cell overtakes the lower one, the contact-free
//! constraint keeping them separated. Writes centroid trajectories to CSV
//! and (optionally) VTK snapshots.
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin shear_pair`

use linalg::Vec3;
use sim::{SimConfig, Simulation};
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, Cell, CellParams};

fn main() {
    let out_dir = std::path::Path::new("target/shear_pair");
    std::fs::create_dir_all(out_dir).unwrap();
    let p = 12;
    let basis = SphBasis::new(p);
    let params = CellParams { kappa_b: 0.02, k_area: 2.0, ..Default::default() };
    // paper Fig. 10: two cells offset in z, shear u = [z, 0, 0]
    let cells = vec![
        Cell::new(&basis, biconcave_coeffs(&basis, 1.0, Vec3::new(-1.4, 0.0, 0.25)), params),
        Cell::new(&basis, biconcave_coeffs(&basis, 1.0, Vec3::new(1.4, 0.0, -0.25)), params),
    ];
    let config = SimConfig {
        dt: 0.02,
        shear_rate: 1.0,
        collision_delta: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(basis, cells, None, config);

    let mut csv = String::from("t,x0,y0,z0,x1,y1,z1,gap,contacts\n");
    let steps = 60;
    for s in 0..steps {
        sim.step();
        let c0 = sim.cells[0].geometry(&sim.basis).centroid();
        let c1 = sim.cells[1].geometry(&sim.basis).centroid();
        csv.push_str(&format!(
            "{:.4},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
            (s + 1) as f64 * sim.config.dt,
            c0.x, c0.y, c0.z, c1.x, c1.y, c1.z,
            (c0 - c1).norm(),
            sim.last_stats.contacts,
        ));
        if s % 15 == 14 {
            // dump point clouds for visualization (Fig. 10 snapshots)
            let pts0 = sim.cells[0].positions(&sim.basis);
            let pts1 = sim.cells[1].positions(&sim.basis);
            let mut all = pts0;
            all.extend(pts1);
            patch::write_vtk_points(&out_dir.join(format!("snap_{:03}.vtk", s + 1)), &all, None)
                .unwrap();
        }
    }
    std::fs::write(out_dir.join("trajectory.csv"), csv).unwrap();
    println!("wrote {}", out_dir.join("trajectory.csv").display());
    let g0 = sim.cells[0].geometry(&sim.basis);
    println!(
        "final: centroid0 = {:?}, area drift = {:.2e}",
        g0.centroid(),
        (g0.area() - 4.0 * std::f64::consts::PI * 0.0 - g0.area()).abs()
    );
}
