//! Vessel filling (Figs. 1 and 8 setup): generate a complex vessel, fill
//! it with nearly-touching RBCs of varied sizes, report the volume
//! fraction, and export VTK for visualization.
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin fill_vessel [-- --network weak]`

use patch::{capsule_tube, export_surface_vtk, modulated_torus, Serpentine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{cells_from_seeds, fill_seeds};
use sphharm::SphBasis;
use vesicle::CellParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let weak = args.iter().any(|a| a == "weak" || a == "--network=weak");
    let out = std::path::Path::new("target/fill_vessel");
    std::fs::create_dir_all(out).unwrap();

    // strong-scaling style vessel: stenosed loop; weak-scaling style:
    // serpentine channel (both closed, arbitrary refinement by .refined())
    let surface = if weak {
        let c = Serpentine { length: 10.0, amp: 1.2, windings: 1.5 };
        capsule_tube(&c, 1.2, 8, 8)
    } else {
        modulated_torus(4.0, 1.0, 0.25, 4, 16, 6, 8)
    };
    println!("vessel: {} patches", surface.num_patches());
    export_surface_vtk(&out.join("vessel.vtk"), &surface, 8).unwrap();

    let seeds = fill_seeds(&surface, 0.7, 0.95);
    let basis = SphBasis::new(8);
    let mut rng = StdRng::seed_from_u64(3);
    let cells = cells_from_seeds(&basis, &seeds, CellParams::default(), &mut rng);

    // report statistics like the Fig. 1 / Fig. 8 captions
    let cell_vol: f64 = cells.iter().map(|c| c.geometry(&basis).volume()).sum();
    let quad = surface.quadrature();
    let mut vessel_vol = 0.0;
    for l in 0..quad.len() {
        vessel_vol += quad.points[l].dot(quad.normals[l]) * quad.weights[l];
    }
    vessel_vol /= 3.0;
    let radii: Vec<f64> = seeds.iter().map(|s| s.radius).collect();
    let rmin = radii.iter().cloned().fold(f64::INFINITY, f64::min);
    let rmax = radii.iter().cloned().fold(0.0_f64, f64::max);
    println!("{} RBCs, volume fraction {:.1}%", cells.len(), 100.0 * cell_vol / vessel_vol);
    println!("cell radii: {:.3} .. {:.3} (paper: r0 < r < 2 r0)", rmin, rmax);

    // export cell point clouds
    let mut pts = Vec::new();
    for c in &cells {
        pts.extend(c.positions(&basis));
    }
    patch::write_vtk_points(&out.join("cells.vtk"), &pts, None).unwrap();
    println!("wrote {} and {}", out.join("vessel.vtk").display(), out.join("cells.vtk").display());
}
