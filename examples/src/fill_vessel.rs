//! Vessel filling (Figs. 1 and 8 setup): build a densely filled vessel via
//! the scenario registry, report the volume fraction, and export VTK for
//! visualization.
//!
//! The domain comes from `driver::scenario`: `dense_fill` (stenosed torus)
//! by default, or the serpentine `vessel_flow` fill with
//! `-- --network weak`.
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin fill_vessel [-- --network weak]`

use driver::{Doc, Value};
use patch::export_surface_vtk;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let weak = args.iter().any(|a| a == "weak" || a == "--network=weak");
    let out = std::path::Path::new("target/fill_vessel");
    std::fs::create_dir_all(out).unwrap();

    let (scenario, cfg) = if weak {
        let mut cfg = Doc::default();
        cfg.set("vessel_flow", "length", Value::Float(10.0));
        cfg.set("vessel_flow", "amp", Value::Float(1.2));
        cfg.set("vessel_flow", "windings", Value::Float(1.5));
        cfg.set("vessel_flow", "tube_radius", Value::Float(1.2));
        cfg.set("vessel_flow", "tube_segments", Value::Int(8));
        cfg.set("vessel_flow", "fill_h", Value::Float(0.7));
        cfg.set("vessel_flow", "fill_margin", Value::Float(0.95));
        ("vessel_flow", cfg)
    } else {
        ("dense_fill", Doc::default())
    };
    let sim = driver::build(scenario, &cfg)
        .expect("registry scenario")
        .sim;
    let vessel = sim.vessel.as_ref().unwrap();
    println!("vessel: {} patches", vessel.solver.surface.num_patches());
    export_surface_vtk(&out.join("vessel.vtk"), &vessel.solver.surface, 8).unwrap();

    // report statistics like the Fig. 1 / Fig. 8 captions
    let vols: Vec<f64> = sim
        .cells
        .iter()
        .map(|c| c.geometry(&sim.basis).volume())
        .collect();
    let cell_vol: f64 = vols.iter().sum();
    // effective radius (3V/4π)^(1/3) per cell
    let radii: Vec<f64> = vols
        .iter()
        .map(|v| (3.0 * v / (4.0 * std::f64::consts::PI)).cbrt())
        .collect();
    let rmin = radii.iter().cloned().fold(f64::INFINITY, f64::min);
    let rmax = radii.iter().cloned().fold(0.0_f64, f64::max);
    println!(
        "{} RBCs, volume fraction {:.1}%",
        sim.cells.len(),
        100.0 * cell_vol / vessel.volume
    );
    println!(
        "effective cell radii: {:.3} .. {:.3} (paper: r0 < r < 2 r0)",
        rmin, rmax
    );

    // export cell point clouds
    let mut pts = Vec::new();
    for c in &sim.cells {
        pts.extend(c.positions(&sim.basis));
    }
    patch::write_vtk_points(&out.join("cells.vtk"), &pts, None).unwrap();
    println!(
        "wrote {} and {}",
        out.join("vessel.vtk").display(),
        out.join("cells.vtk").display()
    );
}
