//! Confined RBC flow through a vessel with inlet/outlet boundary
//! conditions — the headline scenario of the paper (Fig. 1): cells driven
//! through a closed tube by parabolic inflow/outflow, with the boundary
//! integral solve, contact handling, and cell recycling all active.
//!
//! The domain comes from the scenario registry (`driver::scenario`,
//! `vessel_flow`); this binary adds the verbose per-step timing report.
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin vessel_flow`

use driver::Doc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps: usize = args
        .iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let built = driver::build("vessel_flow", &Doc::default()).expect("registry scenario");
    let mut sim = built.sim;
    {
        let vessel = sim.vessel.as_ref().unwrap();
        println!(
            "vessel: {} patches, {} ports, volume {:.2}",
            vessel.solver.surface.num_patches(),
            vessel.ports.len(),
            vessel.volume
        );
    }
    println!("{} cells filled", sim.cells.len());
    println!(
        "volume fraction {:.1}%, dofs {}",
        100.0 * sim.volume_fraction(),
        sim.dofs()
    );

    println!("step  GMRES-iters  contacts  recycled  COL(s)  BIE-solve(s)  BIE-FMM(s)");
    for s in 0..steps {
        let t = sim.step();
        let recycled = if built.recycle {
            sim.recycle_cells()
        } else {
            0
        };
        println!(
            "{:>4}  {:>11}  {:>8}  {:>8}  {:>6.2}  {:>12.2}  {:>8.2}",
            s + 1,
            sim.last_stats.bie_iterations,
            sim.last_stats.contacts,
            recycled,
            t.col,
            t.bie_solve,
            t.bie_fmm
        );
    }
    let t = sim.timers;
    println!(
        "\ntotals: COL {:.2}s | BIE-solve {:.2}s | BIE-FMM {:.2}s | Other-FMM {:.2}s | Other {:.2}s",
        t.col, t.bie_solve, t.bie_fmm, t.other_fmm, t.other
    );
}
