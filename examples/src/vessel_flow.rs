//! Confined RBC flow through a vessel with inlet/outlet boundary
//! conditions — the headline scenario of the paper (Fig. 1): cells driven
//! through a closed tube by parabolic inflow/outflow, with the boundary
//! integral solve, contact handling, and cell recycling all active.
//!
//! The domain comes from the scenario registry (`driver::scenario`,
//! `vessel_flow`), stepped through the Session API (which applies the
//! scenario's outlet-recycling policy per step); this binary adds the
//! verbose per-step timing report.
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin vessel_flow`

use driver::{Doc, Session};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps: usize = args
        .iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let mut session = Session::build("vessel_flow", &Doc::default()).expect("registry scenario");
    {
        let vessel = session.sim.vessel.as_ref().unwrap();
        println!(
            "vessel: {} patches, {} ports, volume {:.2}",
            vessel.solver.surface.num_patches(),
            vessel.ports.len(),
            vessel.volume
        );
    }
    println!("{} cells filled", session.sim.cells.len());
    println!(
        "volume fraction {:.1}%, dofs {}",
        100.0 * session.sim.volume_fraction(),
        session.sim.dofs()
    );

    println!("step  GMRES-iters  contacts  recycled  COL(s)  BIE-solve(s)  BIE-FMM(s)");
    for _ in 0..steps {
        let row = session.step().unwrap();
        println!(
            "{:>4}  {:>11}  {:>8}  {:>8}  {:>6.2}  {:>12.2}  {:>8.2}",
            row.step,
            row.stats.bie_iterations,
            row.stats.contacts,
            row.recycled,
            row.timers.col,
            row.timers.bie_solve,
            row.timers.bie_fmm
        );
    }
    let t = session.sim.timers;
    println!(
        "\ntotals: COL {:.2}s | BIE-solve {:.2}s | BIE-FMM {:.2}s | Other-FMM {:.2}s | Other {:.2}s",
        t.col, t.bie_solve, t.bie_fmm, t.other_fmm, t.other
    );
}
