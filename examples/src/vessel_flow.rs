//! Confined RBC flow through a vessel with inlet/outlet boundary
//! conditions — the headline scenario of the paper (Fig. 1): cells driven
//! through a closed tube by parabolic inflow/outflow, with the boundary
//! integral solve, contact handling, and cell recycling all active.
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin vessel_flow`

use linalg::GmresOptions;
use patch::{capsule_tube, Serpentine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{cells_from_seeds, fill_seeds, SimConfig, Simulation, Vessel};
use sphharm::SphBasis;
use vesicle::CellParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps: usize = args
        .iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let c = Serpentine { length: 8.0, amp: 0.7, windings: 1.0 };
    let surface = capsule_tube(&c, 1.1, 5, 8);
    let bie = bie::BieOptions {
        use_fmm: Some(false),
        gmres: GmresOptions { tol: 1e-5, max_iters: 30, ..Default::default() },
        ..Default::default()
    };
    let vessel = Vessel::new(surface.clone(), 1.0, bie, 1.0, 10);
    println!(
        "vessel: {} patches, {} ports, volume {:.2}",
        surface.num_patches(),
        vessel.ports.len(),
        vessel.volume
    );

    let basis = SphBasis::new(8);
    let seeds = fill_seeds(&surface, 1.1, 0.9);
    let mut rng = StdRng::seed_from_u64(11);
    let cells = cells_from_seeds(&basis, &seeds, CellParams::default(), &mut rng);
    println!("{} cells filled", cells.len());

    let config = SimConfig { dt: 0.01, collision_delta: 0.05, ..Default::default() };
    let mut sim = Simulation::new(basis, cells, Some(vessel), config);
    println!("volume fraction {:.1}%, dofs {}", 100.0 * sim.volume_fraction(), sim.dofs());

    println!("step  GMRES-iters  contacts  recycled  COL(s)  BIE-solve(s)  BIE-FMM(s)");
    for s in 0..steps {
        let t = sim.step();
        let recycled = sim.recycle_cells();
        println!(
            "{:>4}  {:>11}  {:>8}  {:>8}  {:>6.2}  {:>12.2}  {:>8.2}",
            s + 1,
            sim.last_stats.bie_iterations,
            sim.last_stats.contacts,
            recycled,
            t.col,
            t.bie_solve,
            t.bie_fmm
        );
    }
    let t = sim.timers;
    println!(
        "\ntotals: COL {:.2}s | BIE-solve {:.2}s | BIE-FMM {:.2}s | Other-FMM {:.2}s | Other {:.2}s",
        t.col, t.bie_solve, t.bie_fmm, t.other_fmm, t.other
    );
}
