//! High-volume-fraction sedimentation under gravity — the Fig. 7 scenario.
//!
//! Fills a capsule-shaped capsule (container) with RBCs at high volume
//! fraction, applies a gravitational body force, and reports the global
//! volume fraction plus the local fraction in the lower half of the domain
//! as cells settle and pack (paper: 47% initial → ~55% local).
//!
//! Scaled down by default (fewer, coarser cells); pass `--cells N` to grow.
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin sedimentation`

use linalg::Vec3;
use patch::{capsule_tube, StraightLine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{cells_from_seeds, fill_seeds, SimConfig, Simulation, Vessel};
use sphharm::SphBasis;
use vesicle::CellParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps: usize = args
        .iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    // vertical capsule container
    let line = StraightLine { a: Vec3::ZERO, b: Vec3::new(0.0, 0.0, 6.0) };
    let surface = capsule_tube(&line, 1.6, 3, 8);
    let bie = bie::BieOptions { use_fmm: Some(false), gmres: linalg::GmresOptions { tol: 1e-5, max_iters: 30, ..Default::default() }, ..Default::default() };
    let vessel = Vessel::new(surface.clone(), 1.0, bie, 0.0, 10);

    let p = 8;
    let basis = SphBasis::new(p);
    let seeds = fill_seeds(&surface, 0.95, 0.95);
    let mut rng = StdRng::seed_from_u64(7);
    let params = CellParams { kappa_b: 0.01, k_area: 1.0, ..Default::default() };
    let cells = cells_from_seeds(&basis, &seeds, params, &mut rng);
    println!("filled {} cells", cells.len());

    let config = SimConfig {
        dt: 0.02,
        gravity: Vec3::new(0.0, 0.0, -4.0),
        collision_delta: 0.06,
        ..Default::default()
    };
    let mut sim = Simulation::new(basis, cells, Some(vessel), config);
    let vf0 = sim.volume_fraction();
    println!("initial volume fraction: {:.1}%", 100.0 * vf0);

    println!("step  vol-frac  lower-half-frac  contacts  mean-z");
    for s in 0..steps {
        sim.step();
        let vf = sim.volume_fraction();
        // local fraction in the lower half (z < 3)
        let mut lower_vol = 0.0;
        let mut mean_z = 0.0;
        for c in &sim.cells {
            let g = c.geometry(&sim.basis);
            let cz = g.centroid().z;
            mean_z += cz;
            if cz < 3.0 {
                lower_vol += g.volume();
            }
        }
        mean_z /= sim.cells.len() as f64;
        let lower_frac = lower_vol / (sim.vessel.as_ref().unwrap().volume * 0.5);
        println!(
            "{:>4}  {:>7.1}%  {:>14.1}%  {:>8}  {:>6.3}",
            s + 1,
            100.0 * vf,
            100.0 * lower_frac,
            sim.last_stats.contacts,
            mean_z
        );
    }
}
