//! High-volume-fraction sedimentation under gravity — the Fig. 7 scenario.
//!
//! The domain (vertical capsule container filled with RBCs) comes from the
//! scenario registry (`driver::scenario`, `sedimentation`), stepped
//! through the Session API; this binary adds the Fig.-7-style reporting:
//! global volume fraction plus the local fraction in the lower half of the
//! domain as cells settle and pack (paper: 47% initial → ~55% local).
//!
//! Run with: `cargo run --release -p rbcflow-examples --bin sedimentation`

use driver::{Doc, Session};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps: usize = args
        .iter()
        .position(|a| a == "--steps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let mut session = Session::build("sedimentation", &Doc::default()).expect("registry scenario");
    println!("filled {} cells", session.sim.cells.len());
    let vf0 = session.sim.volume_fraction();
    println!("initial volume fraction: {:.1}%", 100.0 * vf0);

    println!("step  vol-frac  lower-half-frac  contacts  mean-z");
    for _ in 0..steps {
        let row = session.step().unwrap();
        let sim = &session.sim;
        let vf = sim.volume_fraction();
        // local fraction in the lower half (z < 3)
        let mut lower_vol = 0.0;
        let mut mean_z = 0.0;
        for c in &sim.cells {
            let g = c.geometry(&sim.basis);
            let cz = g.centroid().z;
            mean_z += cz;
            if cz < 3.0 {
                lower_vol += g.volume();
            }
        }
        mean_z /= sim.cells.len() as f64;
        let lower_frac = lower_vol / (sim.vessel.as_ref().unwrap().volume * 0.5);
        println!(
            "{:>4}  {:>7.1}%  {:>14.1}%  {:>8}  {:>6.3}",
            row.step,
            100.0 * vf,
            100.0 * lower_frac,
            row.stats.contacts,
            mean_z
        );
    }
}
