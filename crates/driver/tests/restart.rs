//! Checkpoint/restart acceptance test: a shear-pair run interrupted at
//! step 3 and restarted from its checkpoint must reproduce the
//! uninterrupted 5-step trajectory **bit-identically**.

use driver::{Doc, Value};
use sim::{Checkpoint, Simulation};

fn small_shear_pair_cfg() -> Doc {
    let mut cfg = Doc::default();
    // keep the test fast: low order, two cells
    cfg.set("shear_pair", "order", Value::Int(8));
    cfg.set("shear_pair", "dt", Value::Float(0.02));
    cfg
}

fn coeff_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for cell in &sim.cells {
        for c in 0..3 {
            bits.extend(cell.coeffs[c].data.iter().map(|v| v.to_bits()));
        }
        bits.extend(cell.ref_w.iter().map(|v| v.to_bits()));
    }
    bits
}

#[test]
fn restart_reproduces_uninterrupted_run_bit_identically() {
    let cfg = small_shear_pair_cfg();

    // uninterrupted reference: 5 steps
    let mut reference = driver::build("shear_pair", &cfg).unwrap().sim;
    for _ in 0..5 {
        reference.step();
    }
    let ref_bits = coeff_bits(&reference);

    // interrupted run: 3 steps, checkpoint through an actual file
    let mut first = driver::build("shear_pair", &cfg).unwrap().sim;
    for _ in 0..3 {
        first.step();
    }
    let dir = std::env::temp_dir().join(format!("driver_restart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shear_pair.ckpt");
    Checkpoint::write(&first, "shear_pair", &path).unwrap();

    // fresh process-equivalent: rebuild the scenario, restore, continue
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded.scenario, "shear_pair");
    assert_eq!(loaded.steps, 3);
    let mut resumed = driver::build("shear_pair", &cfg).unwrap().sim;
    loaded.restore_into(&mut resumed).unwrap();
    for _ in 0..2 {
        resumed.step();
    }

    assert_eq!(resumed.steps, 5);
    let resumed_bits = coeff_bits(&resumed);
    assert_eq!(ref_bits.len(), resumed_bits.len());
    let diffs = ref_bits
        .iter()
        .zip(&resumed_bits)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        diffs,
        0,
        "{diffs}/{} coefficient words differ after restart",
        ref_bits.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_against_wrong_scenario_fails() {
    let cfg = small_shear_pair_cfg();
    let sim = driver::build("shear_pair", &cfg).unwrap().sim;
    let ckpt = Checkpoint::capture(&sim, "shear_pair");

    // a free-space scenario with a different basis order must be rejected
    let mut cfg6 = Doc::default();
    cfg6.set("shear_pair", "order", Value::Int(6));
    let mut other = driver::build("shear_pair", &cfg6).unwrap().sim;
    assert!(ckpt.restore_into(&mut other).is_err());
}

#[test]
fn run_loop_checkpoints_on_cadence_and_restarts() {
    let cfg = small_shear_pair_cfg();
    let dir = std::env::temp_dir().join(format!("driver_cadence_{}", std::process::id()));

    let mut built = driver::build("shear_pair", &cfg).unwrap();
    let opts = driver::RunOptions {
        scenario: "shear_pair".into(),
        steps: 4,
        checkpoint_every: 2,
        out_dir: Some(dir.clone()),
        quiet: true,
    };
    let report = driver::run(&mut built.sim, built.recycle, &opts).unwrap();
    // cadence checkpoints at steps 2 and 4, plus the final one
    assert_eq!(report.checkpoints.len(), 3, "{:?}", report.checkpoints);
    assert!(dir.join("trajectory.csv").exists());
    assert_eq!(report.rows.len(), 4);
    assert!(report.timers.total() > 0.0);

    // the mid-run checkpoint resumes to the same state as the full run
    let mid = Checkpoint::load(&report.checkpoints[0]).unwrap();
    assert_eq!(mid.steps, 2);
    let mut resumed = driver::build("shear_pair", &cfg).unwrap().sim;
    mid.restore_into(&mut resumed).unwrap();
    resumed.step();
    resumed.step();
    let full_bits: Vec<u64> = built.sim.cells[0].coeffs[0]
        .data
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let res_bits: Vec<u64> = resumed.cells[0].coeffs[0]
        .data
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(full_bits, res_bits);

    std::fs::remove_dir_all(&dir).ok();
}
