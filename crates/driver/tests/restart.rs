//! Checkpoint/restart acceptance test: a shear-pair run interrupted at
//! step 3 and restarted from its checkpoint must reproduce the
//! uninterrupted 5-step trajectory **bit-identically**.

use driver::{Doc, Value};
use sim::{Checkpoint, Simulation};

fn small_shear_pair_cfg() -> Doc {
    let mut cfg = Doc::default();
    // keep the test fast: low order, two cells
    cfg.set("shear_pair", "order", Value::Int(8));
    cfg.set("shear_pair", "dt", Value::Float(0.02));
    cfg
}

fn coeff_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for cell in &sim.cells {
        for c in 0..3 {
            bits.extend(cell.coeffs[c].data.iter().map(|v| v.to_bits()));
        }
        bits.extend(cell.ref_w.iter().map(|v| v.to_bits()));
    }
    bits
}

#[test]
fn restart_reproduces_uninterrupted_run_bit_identically() {
    let cfg = small_shear_pair_cfg();

    // uninterrupted reference: 5 steps
    let mut reference = driver::build("shear_pair", &cfg).unwrap().sim;
    for _ in 0..5 {
        reference.step();
    }
    let ref_bits = coeff_bits(&reference);

    // interrupted run: 3 steps, checkpoint through an actual file
    let mut first = driver::build("shear_pair", &cfg).unwrap().sim;
    for _ in 0..3 {
        first.step();
    }
    let dir = std::env::temp_dir().join(format!("driver_restart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shear_pair.ckpt");
    Checkpoint::write(&first, "shear_pair", &path).unwrap();

    // fresh process-equivalent: rebuild the scenario, restore, continue
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded.scenario, "shear_pair");
    assert_eq!(loaded.steps, 3);
    let mut resumed = driver::build("shear_pair", &cfg).unwrap().sim;
    loaded.restore_into(&mut resumed).unwrap();
    for _ in 0..2 {
        resumed.step();
    }

    assert_eq!(resumed.steps, 5);
    let resumed_bits = coeff_bits(&resumed);
    assert_eq!(ref_bits.len(), resumed_bits.len());
    let diffs = ref_bits
        .iter()
        .zip(&resumed_bits)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        diffs,
        0,
        "{diffs}/{} coefficient words differ after restart",
        ref_bits.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Small sedimentation vessel (5 cells, ~1 s/step in release): exercises
/// the boundary solve so the warm-start density is populated.
fn small_vessel_cfg() -> Doc {
    let mut cfg = Doc::default();
    let sec = "sedimentation";
    cfg.set(sec, "tube_segments", Value::Int(1));
    cfg.set(sec, "patch_order", Value::Int(6));
    cfg.set(sec, "order", Value::Int(6));
    cfg.set(sec, "fill_h", Value::Float(1.5));
    cfg.set(sec, "col_m", Value::Int(6));
    cfg
}

#[test]
fn vessel_warm_start_round_trips_bit_identically() {
    let cfg = small_vessel_cfg();

    // uninterrupted reference: 3 steps
    let mut reference = driver::build("sedimentation", &cfg).unwrap().sim;
    for _ in 0..3 {
        reference.step();
    }
    let ref_bits = coeff_bits(&reference);

    // interrupted: 2 steps, checkpoint through a file
    let mut first = driver::build("sedimentation", &cfg).unwrap().sim;
    for _ in 0..2 {
        first.step();
    }
    let warm = first
        .bie_warm
        .clone()
        .expect("vessel step populates bie_warm");
    let dir = std::env::temp_dir().join(format!("driver_warm_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sedimentation.ckpt");
    Checkpoint::write(&first, "sedimentation", &path).unwrap();

    // the warm-start density round-trips bit-exactly through the file
    let loaded = Checkpoint::load(&path).unwrap();
    let loaded_warm = loaded
        .bie_warm
        .as_ref()
        .expect("checkpoint carries bie_warm");
    assert_eq!(loaded_warm.len(), warm.len());
    let diffs = warm
        .iter()
        .zip(loaded_warm)
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    assert_eq!(diffs, 0, "{diffs}/{} warm-start words differ", warm.len());

    // restored run continues bit-identically (the next step's GMRES starts
    // from the same warm iterate as the uninterrupted run's)
    let mut resumed = driver::build("sedimentation", &cfg).unwrap().sim;
    loaded.restore_into(&mut resumed).unwrap();
    assert!(resumed.bie_warm.is_some());
    resumed.step();
    assert_eq!(resumed.steps, 3);
    let resumed_bits = coeff_bits(&resumed);
    let diffs = ref_bits
        .iter()
        .zip(&resumed_bits)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        diffs,
        0,
        "{diffs}/{} coefficient words differ after vessel restart",
        ref_bits.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Restart through the *persistent wall FMM* cache: a refined-wall
/// `vessel_flow` run (wall_refine defaults to 1, FMM backend forced)
/// interrupted and restarted must continue bit-identically. The cache is
/// deliberately not serialized — the resumed instance rebuilds the frozen
/// source tree on its first step (asserted via the telemetry) and must
/// land on the exact bits of the uninterrupted run, which is what licenses
/// treating the plan as derived state rather than trajectory state.
#[test]
fn refined_fmm_vessel_restart_round_trips_bit_identically() {
    let mut cfg = Doc::default();
    let sec = "vessel_flow";
    cfg.set(sec, "tube_segments", Value::Int(1));
    cfg.set(sec, "patch_order", Value::Int(6));
    cfg.set(sec, "order", Value::Int(6));
    cfg.set(sec, "bie_backend", Value::Str("fmm".into()));
    cfg.set(sec, "bie_qf", Value::Int(6)); // keep the refined solve fast
    cfg.set(sec, "fill_h", Value::Float(1.5));

    // uninterrupted reference: 3 steps
    let mut reference = driver::build("vessel_flow", &cfg).unwrap().sim;
    for _ in 0..3 {
        reference.step();
    }
    let ref_bits = coeff_bits(&reference);

    // interrupted: 2 steps, checkpoint through a file
    let mut first = driver::build("vessel_flow", &cfg).unwrap().sim;
    for _ in 0..2 {
        first.step();
    }
    // steady state before the interrupt: the plan was reused, not rebuilt
    assert_eq!(first.last_stats.wall_fmm_builds, 0);
    assert!(first.last_stats.wall_fmm_replans >= 1);
    let dir = std::env::temp_dir().join(format!("driver_fmm_restart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("vessel_flow.ckpt");
    Checkpoint::write(&first, "vessel_flow", &path).unwrap();

    // fresh process-equivalent: rebuild, restore, continue one step
    let loaded = Checkpoint::load(&path).unwrap();
    let mut resumed = driver::build("vessel_flow", &cfg).unwrap().sim;
    loaded.restore_into(&mut resumed).unwrap();
    resumed.step();
    assert_eq!(resumed.steps, 3);
    // the resumed instance's first step pays exactly one frozen-tree build
    assert_eq!(resumed.last_stats.wall_fmm_builds, 1);

    let resumed_bits = coeff_bits(&resumed);
    assert_eq!(ref_bits.len(), resumed_bits.len());
    let diffs = ref_bits
        .iter()
        .zip(&resumed_bits)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        diffs,
        0,
        "{diffs}/{} coefficient words differ after refined-FMM restart",
        ref_bits.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn old_version_checkpoint_rejected_with_clear_error() {
    let cfg = small_shear_pair_cfg();
    let sim = driver::build("shear_pair", &cfg).unwrap().sim;
    let mut bytes = Checkpoint::capture(&sim, "shear_pair").to_bytes();
    // an old file differs only in the version byte of the magic ("RBCCKPT2")
    assert_eq!(&bytes[..7], b"RBCCKPT");
    bytes[7] = b'2';
    let err = Checkpoint::from_bytes(&bytes).expect_err("v2 must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("version 2"),
        "error should name the unsupported version: {msg}"
    );
    assert!(
        msg.contains("version 3"),
        "error should name the supported version: {msg}"
    );

    // garbage magic still reports the generic error
    bytes[0] = b'X';
    let err = Checkpoint::from_bytes(&bytes).expect_err("bad magic");
    assert!(err.to_string().contains("bad magic"), "{err}");
}

#[test]
fn restart_against_wrong_scenario_fails() {
    let cfg = small_shear_pair_cfg();
    let sim = driver::build("shear_pair", &cfg).unwrap().sim;
    let ckpt = Checkpoint::capture(&sim, "shear_pair");

    // a free-space scenario with a different basis order must be rejected
    let mut cfg6 = Doc::default();
    cfg6.set("shear_pair", "order", Value::Int(6));
    let mut other = driver::build("shear_pair", &cfg6).unwrap().sim;
    assert!(ckpt.restore_into(&mut other).is_err());
}

#[test]
fn run_loop_checkpoints_on_cadence_and_restarts() {
    let cfg = small_shear_pair_cfg();
    let dir = std::env::temp_dir().join(format!("driver_cadence_{}", std::process::id()));

    let mut built = driver::build("shear_pair", &cfg).unwrap();
    let opts = driver::RunOptions {
        scenario: "shear_pair".into(),
        steps: 4,
        checkpoint_every: 2,
        out_dir: Some(dir.clone()),
        quiet: true,
        ..Default::default()
    };
    let report = driver::run(&mut built.sim, built.recycle, &opts).unwrap();
    // cadence checkpoints at steps 2 and 4, plus the final one
    assert_eq!(report.checkpoints.len(), 3, "{:?}", report.checkpoints);
    assert!(dir.join("trajectory.csv").exists());
    assert_eq!(report.rows.len(), 4);
    assert!(report.timers.total() > 0.0);

    // the mid-run checkpoint resumes to the same state as the full run
    let mid = Checkpoint::load(&report.checkpoints[0]).unwrap();
    assert_eq!(mid.steps, 2);
    let mut resumed = driver::build("shear_pair", &cfg).unwrap().sim;
    mid.restore_into(&mut resumed).unwrap();
    resumed.step();
    resumed.step();
    let full_bits: Vec<u64> = built.sim.cells[0].coeffs[0]
        .data
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let res_bits: Vec<u64> = resumed.cells[0].coeffs[0]
        .data
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(full_bits, res_bits);

    std::fs::remove_dir_all(&dir).ok();
}
