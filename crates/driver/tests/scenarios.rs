//! Registry ↔ `scenarios/` round trip: every registered scenario ships a
//! sample TOML, and every scenario TOML names a registered scenario — so
//! the CLI's `--config` examples can never drift out of the registry, and
//! a new scenario cannot land without a runnable config.

use driver::{registry, Doc, Manifest};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// TOML files in `scenarios/` that are deliberately not named after one
/// registry scenario (multi-section configs for other harnesses).
const NON_SCENARIO_CONFIGS: &[&str] = &["step_bench", "physiology"];

#[test]
fn every_registry_scenario_has_a_parseable_toml() {
    for spec in registry() {
        let path = scenarios_dir().join(format!("{}.toml", spec.name));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "scenario `{}` has no sample config {}: {e}",
                spec.name,
                path.display()
            )
        });
        let doc =
            Doc::parse(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        assert!(
            doc.get(spec.name, "order").is_some() || doc.get(spec.name, "dt").is_some(),
            "{} has no [{}] section with keys",
            path.display(),
            spec.name
        );
    }
}

#[test]
fn every_scenario_toml_names_a_registry_scenario() {
    let registered: BTreeSet<&str> = registry().iter().map(|s| s.name).collect();
    let mut seen_any = false;
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ must exist") {
        let path = entry.expect("read_dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        seen_any = true;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 file name")
            .to_string();
        // every config must parse, scenario-named or not
        let text = std::fs::read_to_string(&path).expect("readable config");
        let doc =
            Doc::parse(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        if NON_SCENARIO_CONFIGS.contains(&stem.as_str()) {
            continue;
        }
        // farm manifests validate through their own parser (which checks
        // every job's scenario against the registry) instead of by name
        if doc.get("farm", "jobs").is_some() {
            Manifest::from_doc(&doc)
                .unwrap_or_else(|e| panic!("{} is not a valid farm manifest: {e}", path.display()));
            continue;
        }
        assert!(
            registered.contains(stem.as_str()),
            "{} does not name a registry scenario (known: {:?})",
            path.display(),
            registered
        );
    }
    assert!(seen_any, "scenarios/ contains no TOML files");
}
