//! Simulation-farm acceptance tests: batch jobs must be bit-identical to
//! single runs, and a killed farm must resume from per-job checkpoints to
//! the exact bits of an uninterrupted farm.
//!
//! Checkpoint *files* are not byte-comparable across runs (they embed
//! wall-clock timers), so identity is asserted on what defines the
//! trajectory: the restored cells' coefficient bits (via `coeff_bits`)
//! and the step counter.

use driver::{Doc, FarmOptions, JobStatus, Manifest, Value};
use sim::{Checkpoint, Simulation};
use std::path::Path;

fn coeff_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for cell in &sim.cells {
        for c in 0..3 {
            bits.extend(cell.coeffs[c].data.iter().map(|v| v.to_bits()));
        }
        bits.extend(cell.ref_w.iter().map(|v| v.to_bits()));
    }
    bits
}

/// Loads a job's final checkpoint and restores it into a freshly built
/// scenario, returning the restored simulation.
fn restore_final(out_dir: &Path, scenario: &str, cfg: &Doc) -> Simulation {
    let path = driver::final_checkpoint_path(out_dir, scenario);
    let ckpt = Checkpoint::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut sim = driver::build(scenario, cfg).unwrap().sim;
    ckpt.restore_into(&mut sim).unwrap();
    sim
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("driver_farm_{tag}_{}", std::process::id()))
}

#[test]
fn farm_jobs_match_single_runs_bit_identically() {
    let root = tmp("single");
    std::fs::remove_dir_all(&root).ok();
    let text = format!(
        r#"
[farm]
jobs = ["pair8", "pair6"]
out_root = "{}"

[pair8]
scenario = "shear_pair"
steps = 3
order = 8
dt = 0.02

[pair6]
scenario = "shear_pair"
steps = 2
order = 6
"#,
        root.display()
    );
    let manifest = Manifest::parse(&text).unwrap();
    let report = driver::run_farm(
        &manifest,
        &FarmOptions {
            quiet: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.failed(), 0, "{:?}", report.outcomes);
    assert_eq!(report.completed(), 2);

    // single-run references, stepped directly through the sim API
    for (job, steps) in [(&manifest.jobs[0], 3usize), (&manifest.jobs[1], 2usize)] {
        let mut reference = driver::build("shear_pair", &job.cfg).unwrap().sim;
        for _ in 0..steps {
            reference.step();
        }
        let farm_sim = restore_final(&job.out_dir, "shear_pair", &job.cfg);
        assert_eq!(farm_sim.steps, steps);
        assert_eq!(
            coeff_bits(&reference),
            coeff_bits(&farm_sim),
            "farm job `{}` diverged from the single run",
            job.name
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn killed_farm_resumes_bit_identically() {
    let root_ref = tmp("kill_ref");
    let root_kill = tmp("kill");
    std::fs::remove_dir_all(&root_ref).ok();
    std::fs::remove_dir_all(&root_kill).ok();
    let manifest_for = |root: &Path, steps: usize| {
        let text = format!(
            r#"
[farm]
jobs = ["pair"]
out_root = "{}"
checkpoint_every = 1

[pair]
scenario = "shear_pair"
steps = {steps}
order = 8
dt = 0.02
"#,
            root.display()
        );
        Manifest::parse(&text).unwrap()
    };
    let quiet = FarmOptions {
        quiet: true,
        ..Default::default()
    };

    // uninterrupted reference farm: 4 steps straight through
    driver::run_farm(&manifest_for(&root_ref, 4), &quiet).unwrap();

    // "crashed" farm: killed after the step-2 cadence checkpoint landed —
    // run 2 steps, then erase the final-state file the kill would have
    // prevented, leaving only cadence checkpoints behind
    driver::run_farm(&manifest_for(&root_kill, 2), &quiet).unwrap();
    let out_dir = root_kill.join("pair");
    std::fs::remove_file(driver::final_checkpoint_path(&out_dir, "shear_pair")).unwrap();
    assert!(out_dir.join("shear_pair_step000002.ckpt").exists());

    // restarting the same farm resumes the job from the newest cadence
    // checkpoint and runs only the remainder
    let report = driver::run_farm(&manifest_for(&root_kill, 4), &quiet).unwrap();
    assert_eq!(report.resumed(), 1);
    assert_eq!(report.outcomes[0].start_step, 2);
    assert_eq!(report.outcomes[0].steps_run, 2);

    let cfg = &manifest_for(&root_kill, 4).jobs[0].cfg.clone();
    let resumed = restore_final(&out_dir, "shear_pair", cfg);
    let reference = restore_final(&root_ref.join("pair"), "shear_pair", cfg);
    assert_eq!(resumed.steps, 4);
    let a = coeff_bits(&reference);
    let b = coeff_bits(&resumed);
    let diffs = a.iter().zip(&b).filter(|(x, y)| x != y).count();
    assert_eq!(
        diffs,
        0,
        "{diffs}/{} coefficient words differ after farm resume",
        a.len()
    );

    // a third run has nothing to do: the job is already at target
    let report = driver::run_farm(&manifest_for(&root_kill, 4), &quiet).unwrap();
    assert_eq!(report.outcomes[0].status, JobStatus::AlreadyDone);
    std::fs::remove_dir_all(&root_ref).ok();
    std::fs::remove_dir_all(&root_kill).ok();
}

#[test]
fn halted_farm_restarts_and_finishes_the_queue() {
    let root = tmp("halt");
    std::fs::remove_dir_all(&root).ok();
    let text = format!(
        r#"
[farm]
jobs = ["first", "second"]
out_root = "{}"

[first]
scenario = "shear_pair"
steps = 2
order = 6

[second]
scenario = "shear_pair"
steps = 2
order = 6
shear_rate = 0.5
"#,
        root.display()
    );
    let manifest = Manifest::parse(&text).unwrap();

    // simulated crash after one completed job
    let report = driver::run_farm(
        &manifest,
        &FarmOptions {
            quiet: true,
            halt_after: Some(1),
            ..Default::default()
        },
    )
    .unwrap();
    let statuses: Vec<JobStatus> = report.outcomes.iter().map(|o| o.status).collect();
    assert_eq!(statuses, [JobStatus::Completed, JobStatus::Halted]);

    // the restarted farm skips the finished job and runs the halted one
    let report = driver::run_farm(
        &manifest,
        &FarmOptions {
            quiet: true,
            ..Default::default()
        },
    )
    .unwrap();
    let statuses: Vec<JobStatus> = report.outcomes.iter().map(|o| o.status).collect();
    assert_eq!(statuses, [JobStatus::AlreadyDone, JobStatus::Completed]);
    assert_eq!(report.completed(), 2);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn same_geometry_jobs_share_the_refined_surface_cache() {
    let root = tmp("cache");
    std::fs::remove_dir_all(&root).ok();
    // two refined-wall vessel jobs over the same tiny geometry: the
    // second build must hit the process-wide surface cache, and the
    // FMM-backed solves share operator tables
    let text = format!(
        r#"
[farm]
jobs = ["ves_a", "ves_b"]
out_root = "{}"

[ves_a]
scenario = "vessel_flow"
steps = 1
tube_segments = 1
patch_order = 6
order = 6
bie_backend = "fmm"
bie_qf = 6
fill_h = 1.5

[ves_b]
scenario = "vessel_flow"
steps = 1
tube_segments = 1
patch_order = 6
order = 6
bie_backend = "fmm"
bie_qf = 6
fill_h = 1.5
seed = 7
"#,
        root.display()
    );
    let manifest = Manifest::parse(&text).unwrap();
    let report = driver::run_farm(
        &manifest,
        &FarmOptions {
            quiet: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.failed(), 0, "{:?}", report.outcomes);
    assert!(
        report.cache.hits() >= 1,
        "expected shared-cache hits across same-geometry jobs, telemetry {:?}",
        report.cache
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn manifest_rejections_surface_before_any_job_runs() {
    // bad scenario name
    let e =
        Manifest::parse("[farm]\njobs = [\"a\"]\n[a]\nscenario = \"not_a_scenario\"\nsteps = 1\n")
            .unwrap_err();
    assert!(e.contains("unknown scenario"), "{e}");

    // duplicate output dir (both jobs default to out_root/<name>… forced
    // here via explicit out_dir)
    let e = Manifest::parse(
        "[farm]\njobs = [\"a\", \"b\"]\n\
         [a]\nscenario = \"shear_pair\"\nsteps = 1\nout_dir = \"target/dup\"\n\
         [b]\nscenario = \"shear_pair\"\nsteps = 1\nout_dir = \"target/dup\"\n",
    )
    .unwrap_err();
    assert!(e.contains("already used"), "{e}");

    // a config key the builder rejects fails the job, not the farm
    let mut cfg = Doc::default();
    cfg.set("shear_pair", "order", Value::Int(8));
    assert!(driver::build("shear_pair", &cfg).is_ok());
}
