//! Acceptance tests for the branched-network scenario family: the
//! `bifurcation` scenario must conserve flux at every step to roundoff,
//! step bit-identically across instances and thread counts, and
//! round-trip bit-identically through a checkpoint file — with the
//! network's flux manifest riding the vessel-digest guard, so a restart
//! against a *different* flux split is rejected instead of silently
//! continuing on the wrong boundary condition.
//!
//! The physiology regression tests live here too: the tube-diameter
//! ladder must show confined apparent viscosity rising as the tube
//! narrows at fixed flux, a positive cell-free layer widening with the
//! lumen, and the bifurcation's branch split must track the prescribed
//! flux split.

use driver::{Doc, PhysioSink, StepSink, Value};
use sim::{Checkpoint, Simulation};

fn coeff_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for cell in &sim.cells {
        for c in 0..3 {
            bits.extend(cell.coeffs[c].data.iter().map(|v| v.to_bits()));
        }
    }
    bits
}

fn assert_bits_equal(step: usize, a: &Simulation, b: &Simulation) {
    let da = coeff_bits(a);
    let db = coeff_bits(b);
    let diffs = da.iter().zip(&db).filter(|(x, y)| x != y).count();
    assert_eq!(
        diffs,
        0,
        "step {step}: {diffs}/{} coefficient words differ",
        da.len()
    );
    if let (Some(wa), Some(wb)) = (a.bie_warm.as_ref(), b.bie_warm.as_ref()) {
        let wdiffs = wa
            .iter()
            .zip(wb)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(wdiffs, 0, "step {step}: warm-start densities differ");
    }
}

/// The registry-default Y-bifurcation at smoke cost (24 wall patches at
/// per_face = 2, two cells in the parent branch).
fn bifurcation_cfg() -> Doc {
    let mut cfg = Doc::default();
    let sec = "bifurcation";
    cfg.set(sec, "order", Value::Int(6));
    cfg.set(sec, "patch_order", Value::Int(6));
    cfg
}

/// Every committed step of the bifurcation must conserve flux: the three
/// prescribed port fluxes cancel exactly in the discrete quadrature, so
/// the per-step imbalance recorded in `StepStats` is roundoff — orders
/// below the 1e-6 acceptance tolerance the CI smoke enforces.
#[test]
fn bifurcation_conserves_flux_every_step() {
    let mut sim = driver::build("bifurcation", &bifurcation_cfg())
        .unwrap()
        .sim;
    let scale: f64 = sim
        .vessel
        .as_ref()
        .unwrap()
        .port_fluxes()
        .iter()
        .map(|f| f.abs())
        .sum();
    for step in 1..=2 {
        sim.step();
        let imb = sim.last_stats.flux_imbalance;
        assert!(
            imb < 1e-12 * scale,
            "step {step}: net port flux imbalance {imb:.3e} is not roundoff"
        );
    }
}

/// Two independently built bifurcations, one pinned to 1 worker and one
/// to 4, must step bit-identically — the junction blend, the N-port BC
/// assembly, and the boundary solve all preserve the fixed reduction
/// order the rest of the pipeline guarantees.
#[test]
fn bifurcation_threads_step_bit_identically() {
    let mut cfg1 = bifurcation_cfg();
    let mut cfg4 = bifurcation_cfg();
    cfg1.set("bifurcation", "threads", Value::Int(1));
    cfg4.set("bifurcation", "threads", Value::Int(4));
    let mut a = driver::build("bifurcation", &cfg1).unwrap().sim;
    let mut b = driver::build("bifurcation", &cfg4).unwrap().sim;
    assert_eq!(a.config.threads, 1);
    assert_eq!(b.config.threads, 4);
    for step in 1..=2 {
        a.step();
        b.step();
        assert_bits_equal(step, &a, &b);
        assert_eq!(
            a.last_stats.flux_imbalance.to_bits(),
            b.last_stats.flux_imbalance.to_bits(),
            "step {step}: flux imbalance differs across thread counts"
        );
    }
}

/// A bifurcation run interrupted at step 2 and restored from the
/// checkpoint file must reproduce the uninterrupted 3-step trajectory
/// bit-identically; restoring the same checkpoint into a bifurcation
/// built with a *different flux split* must fail the vessel-digest
/// guard (the per-port fluxes are hashed into the digest).
#[test]
fn bifurcation_restart_round_trips_and_guards_the_flux_manifest() {
    let cfg = bifurcation_cfg();

    // uninterrupted reference: 3 steps
    let mut reference = driver::build("bifurcation", &cfg).unwrap().sim;
    for _ in 0..3 {
        reference.step();
    }
    let ref_bits = coeff_bits(&reference);

    // interrupted: 2 steps, checkpoint through a file
    let mut first = driver::build("bifurcation", &cfg).unwrap().sim;
    for _ in 0..2 {
        first.step();
    }
    let dir = std::env::temp_dir().join(format!("driver_bifurcation_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bifurcation.ckpt");
    Checkpoint::write(&first, "bifurcation", &path).unwrap();

    // fresh process-equivalent: rebuild, restore, continue one step
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded.steps, 2);
    let mut resumed = driver::build("bifurcation", &cfg).unwrap().sim;
    loaded.restore_into(&mut resumed).unwrap();
    resumed.step();
    assert_eq!(resumed.steps, 3);
    let resumed_bits = coeff_bits(&resumed);
    let diffs = ref_bits
        .iter()
        .zip(&resumed_bits)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        diffs,
        0,
        "{diffs}/{} coefficient words differ after bifurcation restart",
        ref_bits.len()
    );

    // same geometry, different flux manifest: the digest guard rejects it
    let mut wrong = bifurcation_cfg();
    wrong.set("bifurcation", "flux_split", Value::Float(0.7));
    let mut other = driver::build("bifurcation", &wrong).unwrap().sim;
    let err = loaded
        .restore_into(&mut other)
        .expect_err("restore against a different flux split must fail");
    assert!(err.to_string().contains("vessel digest mismatch"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

/// A cheap `vessel_ladder` instance at the given rung radius, recycle off
/// so every step's drag power is clean, sphere cells so the drag power is
/// not swamped by the biconcave initialization's elastic relaxation (the
/// discrete biconcave shape is not force-free; see `build_vessel_ladder`).
fn ladder_cfg(radius: f64, n_cells: i64) -> Doc {
    let mut cfg = Doc::default();
    let sec = "vessel_ladder";
    cfg.set(sec, "order", Value::Int(6));
    cfg.set(sec, "patch_order", Value::Int(6));
    cfg.set(sec, "tube_radius", Value::Float(radius));
    cfg.set(sec, "recycle", Value::Bool(false));
    cfg.set(sec, "shape", Value::Str("sphere".into()));
    cfg.set(sec, "n_cells", Value::Int(n_cells));
    cfg
}

/// Runs `steps` steps of a scenario through a `PhysioSink` and returns
/// the rows.
fn physio_rows(
    name: &str,
    cfg: &Doc,
    steps: usize,
    junction: Option<linalg::Vec3>,
) -> Vec<driver::PhysioRow> {
    let mut built = driver::build(name, cfg).unwrap();
    let mut sink = PhysioSink::new(Vec::new(), junction, 16);
    sink.on_start(&built.sim).unwrap();
    for _ in 0..steps {
        let t = built.sim.step();
        let row = driver::StepRow {
            step: built.sim.steps,
            timers: t,
            stats: built.sim.last_stats,
            recycled: 0,
        };
        sink.on_step(&built.sim, &row).unwrap();
    }
    sink.rows
}

/// The apparent-viscosity sign regression across the diameter ladder: a
/// loaded tube must dissipate *more* than cell-free Poiseuille at equal
/// flux on every rung (`μ_app/μ > 1`, drag power > 0), and the cell-free
/// layer must widen with the lumen at fixed cell size. The μ-vs-diameter
/// *curve* itself is a steady-state quantity the bench measures over
/// longer horizons; at smoke horizons the honest pins are its sign and
/// the CFL's geometric monotonicity.
#[test]
fn ladder_viscosity_sign_and_cfl_widen_with_lumen() {
    let narrow = physio_rows("vessel_ladder", &ladder_cfg(0.7, 3), 2, None);
    let wide = physio_rows("vessel_ladder", &ladder_cfg(1.1, 3), 2, None);
    for (label, rows) in [("narrow", &narrow), ("wide", &wide)] {
        let mu = rows[1].apparent_viscosity.expect("2-port tube");
        let p = rows[1].drag_power.expect("clean step");
        assert!(
            mu > 1.0 && p > 0.0,
            "{label}: loaded tube must dissipate more than Poiseuille \
             (μ_app {mu}, power {p})"
        );
    }
    let cfl_n = narrow[1].cell_free_layer.expect("cells in span");
    let cfl_w = wide[1].cell_free_layer.expect("cells in span");
    assert!(
        cfl_w > cfl_n && cfl_n > 0.0,
        "cell-free layer must widen with the lumen: narrow {cfl_n} vs wide {cfl_w}"
    );
}

/// The apparent-viscosity monotonicity regression: more cells in the same
/// tube at the same flux must dissipate strictly more — `μ_app` rises
/// with hematocrit (the other axis of the paper's physiology curves, and
/// the one that is monotone already at smoke horizons since every added
/// cell adds drag power against the same Poiseuille baseline).
#[test]
fn ladder_viscosity_rises_with_hematocrit() {
    let dilute = physio_rows("vessel_ladder", &ladder_cfg(0.9, 1), 2, None);
    let dense = physio_rows("vessel_ladder", &ladder_cfg(0.9, 3), 2, None);
    let mu_1 = dilute[1].apparent_viscosity.expect("2-port tube");
    let mu_3 = dense[1].apparent_viscosity.expect("2-port tube");
    assert!(
        mu_3 > mu_1 && mu_1 > 1.0,
        "μ_app must rise with hematocrit: 1 cell {mu_1} vs 3 cells {mu_3}"
    );
}

/// The branch-split regression: the bifurcation's flux split is the
/// prescribed 0.55/0.45 manifest (recorded exactly), and with the seed
/// train still in the parent branch the hematocrit split reports every
/// cell unassigned rather than inventing a split.
#[test]
fn bifurcation_branch_split_tracks_the_flux_manifest() {
    let rows = physio_rows(
        "bifurcation",
        &bifurcation_cfg(),
        2,
        Some(linalg::Vec3::ZERO),
    );
    for r in &rows {
        let split = r.split.as_ref().expect("two outlets + junction");
        let hi = split.flux_frac.iter().cloned().fold(0.0, f64::max);
        let lo = split.flux_frac.iter().cloned().fold(1.0, f64::min);
        assert!(
            (hi - 0.55).abs() < 1e-12 && (lo - 0.45).abs() < 1e-12,
            "{split:?}"
        );
        assert_eq!(split.total_cells, 2);
        // drag power is well-defined from step 1: the sink snapshotted the
        // initial state in on_start
        assert!(r.drag_power.is_some());
    }
}
