//! Adaptive-dt regression tests at the driver level: the retry/backoff
//! controller must (a) actually fire on an oversized step and recover by
//! halving, (b) stay bit-identical across independently built instances
//! *through* the retry path (the rollback restores cells and warm-start
//! state from the snapshot, so any leak there diverges trajectories), and
//! (c) survive a checkpoint/restart taken mid-backoff — the controller's
//! evolving state (current dt, clean-step counter, frozen set) rides in
//! the v3 checkpoint, so the restarted instance must continue the exact
//! backed-off trajectory rather than resetting to the target dt.

use driver::{Doc, Value};
use sim::Simulation;

fn coeff_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for cell in &sim.cells {
        for c in 0..3 {
            bits.extend(cell.coeffs[c].data.iter().map(|v| v.to_bits()));
        }
    }
    bits
}

fn assert_bit_identical(a: &Simulation, b: &Simulation, what: &str) {
    let da = coeff_bits(a);
    let db = coeff_bits(b);
    let diffs = da.iter().zip(&db).filter(|(x, y)| x != y).count();
    assert_eq!(
        diffs,
        0,
        "{what}: {diffs}/{} coefficient words differ",
        da.len()
    );
    assert_eq!(
        a.dt_state.dt.to_bits(),
        b.dt_state.dt.to_bits(),
        "{what}: controller dt differs"
    );
    assert_eq!(a.dt_state.clean_steps, b.dt_state.clean_steps, "{what}");
    assert_eq!(a.dt_state.frozen, b.dt_state.frozen, "{what}");
}

fn shear_cfg(dt: f64) -> Doc {
    let mut cfg = Doc::default();
    cfg.set("shear_pair", "order", Value::Int(6));
    cfg.set("shear_pair", "dt", Value::Float(dt));
    cfg
}

#[test]
fn oversized_dt_retries_bit_identically_and_restarts_mid_backoff() {
    // probe the unconstrained volume drift of an oversized step, so the
    // gate below trips at the full dt but clears after one halving
    let dt = 0.05;
    let mut probe_cfg = shear_cfg(dt);
    probe_cfg.set("shear_pair", "dt_adaptive", Value::Bool(false));
    let mut probe = driver::build("shear_pair", &probe_cfg).unwrap().sim;
    probe.step();
    let d1 = probe
        .last_health
        .iter()
        .map(|h| h.volume_drift)
        .fold(0.0f64, f64::max);
    assert!(d1 > 0.0, "probe run reported no volume drift");

    let mut cfg = shear_cfg(dt);
    cfg.set("shear_pair", "dt_max_vol_drift", Value::Float(0.7 * d1));
    let mut a = driver::build("shear_pair", &cfg).unwrap().sim;
    let mut b = driver::build("shear_pair", &cfg).unwrap().sim;

    // step 1: the oversized dt must trip the gate and recover by halving
    a.step();
    b.step();
    assert!(a.last_stats.dt_retries >= 1, "oversized dt never retried");
    assert_eq!(a.last_stats.frozen_cells, 0, "halving should suffice");
    assert!(a.last_stats.dt_effective < dt);
    assert!(a.dt_state.dt < dt, "backed-off dt must persist");
    assert_bit_identical(&a, &b, "step 1 (through retry)");

    // checkpoint mid-backoff: the restored instance continues the exact
    // backed-off trajectory
    let ckpt = sim::Checkpoint::capture(&a, "shear_pair");
    let restored = sim::Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
    let mut c = driver::build("shear_pair", &cfg).unwrap().sim;
    restored.restore_into(&mut c).unwrap();
    assert_bit_identical(&a, &c, "restore mid-backoff");

    for step in 2..=4 {
        a.step();
        b.step();
        c.step();
        assert_bit_identical(&a, &b, &format!("step {step} instances"));
        assert_bit_identical(&a, &c, &format!("step {step} restart"));
    }
}
