//! Instance-determinism regression test: two independently built
//! simulations of the same vessel scenario must produce bit-identical
//! trajectories.
//!
//! This is a *stronger* property than checkpoint round-tripping and it is
//! what the restart guarantee actually rests on: a restart rebuilds the
//! domain from scratch, so any state whose floating-point accumulation
//! order depends on the instance (e.g. `HashMap` iteration order — each
//! map instance gets its own hasher seed) silently breaks bit-identity.
//! The collision NCP assembly had exactly that bug: with enough contacts
//! (17+ in this configuration, vs ≤ 2 for the shear pair that the restart
//! test covers) the sparse-B accumulation order varied per instance and
//! trajectories diverged from step 2. The configuration is pinned
//! high-contact (> 10 contacts over the run) so the CSR assembly, the
//! batched per-mesh mobility applies, and the grid broad phase all see
//! real cross-contact coupling here — a low-contact run would exercise
//! none of the order-canonical folds this test exists to protect.

use driver::{Doc, Value};
use sim::{Checkpoint, Simulation};

fn coeff_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for cell in &sim.cells {
        for c in 0..3 {
            bits.extend(cell.coeffs[c].data.iter().map(|v| v.to_bits()));
        }
    }
    bits
}

/// Asserts two sims agree bit-exactly on coefficients and (when present)
/// the boundary-solve warm-start densities.
fn assert_bits_equal(step: usize, a: &Simulation, b: &Simulation) {
    let da = coeff_bits(a);
    let db = coeff_bits(b);
    let diffs = da.iter().zip(&db).filter(|(x, y)| x != y).count();
    assert_eq!(
        diffs,
        0,
        "step {step}: {diffs}/{} coefficient words differ",
        da.len()
    );
    if let (Some(wa), Some(wb)) = (a.bie_warm.as_ref(), b.bie_warm.as_ref()) {
        let wdiffs = wa
            .iter()
            .zip(wb)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(wdiffs, 0, "step {step}: warm-start densities differ");
    }
}

/// The high-contact sedimentation configuration shared by the instance-
/// determinism and thread-determinism tests (see the module docs).
fn sedimentation_cfg() -> Doc {
    let mut cfg = Doc::default();
    let sec = "sedimentation";
    cfg.set(sec, "tube_segments", Value::Int(1));
    cfg.set(sec, "patch_order", Value::Int(6));
    cfg.set(sec, "order", Value::Int(6));
    cfg.set(sec, "fill_h", Value::Float(1.1)); // enough cells for 15+ contacts
    cfg.set(sec, "col_m", Value::Int(6));
    cfg
}

/// The refined-wall FMM `vessel_flow` configuration shared by the
/// persistent-FMM and thread-determinism tests.
fn vessel_fmm_cfg() -> Doc {
    let mut cfg = Doc::default();
    let sec = "vessel_flow";
    cfg.set(sec, "tube_segments", Value::Int(1));
    cfg.set(sec, "patch_order", Value::Int(6));
    cfg.set(sec, "order", Value::Int(6));
    cfg.set(sec, "bie_backend", Value::Str("fmm".into()));
    cfg.set(sec, "bie_qf", Value::Int(6)); // keep the refined solve fast
    cfg.set(sec, "fill_h", Value::Float(1.5));
    cfg
}

#[test]
fn two_instances_step_bit_identically() {
    let cfg = sedimentation_cfg();
    let mut a = driver::build("sedimentation", &cfg).unwrap().sim;
    let mut b = driver::build("sedimentation", &cfg).unwrap().sim;
    let mut total_contacts = 0;
    for step in 1..=3 {
        a.step();
        b.step();
        total_contacts += a.last_stats.contacts;
        let da = coeff_bits(&a);
        let db = coeff_bits(&b);
        let diffs = da.iter().zip(&db).filter(|(x, y)| x != y).count();
        assert_eq!(
            diffs,
            0,
            "step {step}: {diffs}/{} coefficient words differ between instances",
            da.len()
        );
        // the warm-start densities must agree bit-exactly too
        let wa = a.bie_warm.as_ref().unwrap();
        let wb = b.bie_warm.as_ref().unwrap();
        let wdiffs = wa
            .iter()
            .zip(wb)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(wdiffs, 0, "step {step}: warm-start densities differ");
    }
    assert!(
        total_contacts > 10,
        "configuration is no longer high-contact ({total_contacts} ≤ 10); the test lost its teeth"
    );
}

/// Instance determinism through the *persistent wall FMM*: two
/// independently built refined-wall `vessel_flow` instances (wall_refine
/// defaults to 1, FMM backend forced) must step bit-identically while the
/// plan-reuse telemetry confirms the persistent plan actually carried the
/// evaluations — one frozen-tree build on the first step, zero after,
/// one target replan per step.
#[test]
fn refined_fmm_vessel_instances_step_bit_identically() {
    let cfg = vessel_fmm_cfg();
    let mut a = driver::build("vessel_flow", &cfg).unwrap().sim;
    let mut b = driver::build("vessel_flow", &cfg).unwrap().sim;
    // the registry default is the refined wall (4× the coarse patches)
    assert_eq!(a.vessel.as_ref().unwrap().solver.opts.fmm.order, 4);
    for step in 1..=2 {
        a.step();
        b.step();
        let expected_builds = if step == 1 { 1 } else { 0 };
        for (label, sim) in [("a", &a), ("b", &b)] {
            assert_eq!(
                sim.last_stats.wall_fmm_builds, expected_builds,
                "instance {label} step {step}: wall FMM rebuilt instead of reused"
            );
            assert!(
                sim.last_stats.wall_fmm_replans >= 1,
                "instance {label} step {step}: boundary eval did not route \
                 through the persistent FMM"
            );
        }
        let da = coeff_bits(&a);
        let db = coeff_bits(&b);
        let diffs = da.iter().zip(&db).filter(|(x, y)| x != y).count();
        assert_eq!(
            diffs,
            0,
            "step {step}: {diffs}/{} coefficient words differ between instances",
            da.len()
        );
        let wa = a.bie_warm.as_ref().unwrap();
        let wb = b.bie_warm.as_ref().unwrap();
        let wdiffs = wa
            .iter()
            .zip(wb)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(wdiffs, 0, "step {step}: warm-start densities differ");
    }
}

/// The thread knob must not touch the trajectory. Every parallel stage of
/// the step hands each worker whole output slots (`rayon::par::map_indexed`
/// commits in index order, the NCP keeps its sorted-triplet fold, the CSR
/// matvec owns disjoint row blocks), so the floating-point reduction tree
/// is fixed by the code, not the schedule — and this holds on any host:
/// four workers over one core still interleave nondeterministically through
/// the atomic work counter, which is exactly what bit-identity must
/// survive. Free-space coverage at threads=1 vs threads=4.
#[test]
fn thread_counts_step_bit_identically_shear_pair() {
    let mut cfg1 = Doc::default();
    cfg1.set("shear_pair", "order", Value::Int(8));
    let mut cfg4 = cfg1.clone();
    cfg1.set("shear_pair", "threads", Value::Int(1));
    cfg4.set("shear_pair", "threads", Value::Int(4));
    let mut a = driver::build("shear_pair", &cfg1).unwrap().sim;
    let mut b = driver::build("shear_pair", &cfg4).unwrap().sim;
    assert_eq!(a.config.threads, 1);
    assert_eq!(b.config.threads, 4);
    for step in 1..=3 {
        a.step();
        b.step();
        assert_bits_equal(step, &a, &b);
    }
}

/// Thread-count bit-identity through the refined-wall FMM vessel pipeline
/// (boundary solve, persistent wall FMM, near-singular extrapolation) at
/// threads=1 vs threads=4 — including identical `StepStats` from the
/// boundary solve, so even a stalled-residual float must agree to the
/// bit across worker counts. (The port-profile floor improvement itself
/// is pinned cell-free in `sim::domain`'s
/// `refined_serpentine_port_floor_improved`; with cells against the
/// wall the near-field rhs keeps the solve at the stall check, which is
/// fine here — the subject is determinism, not convergence.)
#[test]
fn thread_counts_step_bit_identically_refined_vessel() {
    let mut cfg1 = vessel_fmm_cfg();
    let mut cfg4 = vessel_fmm_cfg();
    cfg1.set("vessel_flow", "threads", Value::Int(1));
    cfg4.set("vessel_flow", "threads", Value::Int(4));
    let mut a = driver::build("vessel_flow", &cfg1).unwrap().sim;
    let mut b = driver::build("vessel_flow", &cfg4).unwrap().sim;
    assert_eq!(a.config.threads, 1);
    assert_eq!(b.config.threads, 4);
    for step in 1..=2 {
        a.step();
        b.step();
        assert_bits_equal(step, &a, &b);
        assert_eq!(
            a.last_stats.bie_residual.to_bits(),
            b.last_stats.bie_residual.to_bits(),
            "step {step}: boundary-solve residual differs across thread counts"
        );
        assert_eq!(
            a.last_stats.bie_converged, b.last_stats.bie_converged,
            "step {step}: boundary-solve convergence flag differs across thread counts"
        );
    }
}

/// A checkpoint written by a threads=4 run restores into a threads=1
/// instance and continues bit-identically: the checkpoint neither stores
/// nor restores the thread count (it is an execution detail, not
/// trajectory state), and `restore_into` must keep the live sim's knob.
#[test]
fn checkpoint_restores_across_thread_counts() {
    let mut cfg4 = sedimentation_cfg();
    cfg4.set("sedimentation", "threads", Value::Int(4));
    let mut a = driver::build("sedimentation", &cfg4).unwrap().sim;
    a.step();
    a.step();
    let bytes = Checkpoint::capture(&a, "sedimentation").to_bytes();

    let mut cfg1 = sedimentation_cfg();
    cfg1.set("sedimentation", "threads", Value::Int(1));
    let mut b = driver::build("sedimentation", &cfg1).unwrap().sim;
    let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
    ckpt.restore_into(&mut b).unwrap();
    assert_eq!(
        b.config.threads, 1,
        "restore_into must keep the live instance's thread knob"
    );
    assert_bits_equal(2, &a, &b);
    for step in 3..=4 {
        a.step();
        b.step();
        assert_bits_equal(step, &a, &b);
    }
}
