//! Instance-determinism regression test: two independently built
//! simulations of the same vessel scenario must produce bit-identical
//! trajectories.
//!
//! This is a *stronger* property than checkpoint round-tripping and it is
//! what the restart guarantee actually rests on: a restart rebuilds the
//! domain from scratch, so any state whose floating-point accumulation
//! order depends on the instance (e.g. `HashMap` iteration order — each
//! map instance gets its own hasher seed) silently breaks bit-identity.
//! The collision NCP assembly had exactly that bug: with enough contacts
//! (17+ in this configuration, vs ≤ 2 for the shear pair that the restart
//! test covers) the sparse-B accumulation order varied per instance and
//! trajectories diverged from step 2. The configuration is pinned
//! high-contact (> 10 contacts over the run) so the CSR assembly, the
//! batched per-mesh mobility applies, and the grid broad phase all see
//! real cross-contact coupling here — a low-contact run would exercise
//! none of the order-canonical folds this test exists to protect.

use driver::{Doc, Value};
use sim::Simulation;

fn coeff_bits(sim: &Simulation) -> Vec<u64> {
    let mut bits = Vec::new();
    for cell in &sim.cells {
        for c in 0..3 {
            bits.extend(cell.coeffs[c].data.iter().map(|v| v.to_bits()));
        }
    }
    bits
}

#[test]
fn two_instances_step_bit_identically() {
    let mut cfg = Doc::default();
    let sec = "sedimentation";
    cfg.set(sec, "tube_segments", Value::Int(1));
    cfg.set(sec, "patch_order", Value::Int(6));
    cfg.set(sec, "order", Value::Int(6));
    cfg.set(sec, "fill_h", Value::Float(1.1)); // enough cells for 15+ contacts
    cfg.set(sec, "col_m", Value::Int(6));
    let mut a = driver::build("sedimentation", &cfg).unwrap().sim;
    let mut b = driver::build("sedimentation", &cfg).unwrap().sim;
    let mut total_contacts = 0;
    for step in 1..=3 {
        a.step();
        b.step();
        total_contacts += a.last_stats.contacts;
        let da = coeff_bits(&a);
        let db = coeff_bits(&b);
        let diffs = da.iter().zip(&db).filter(|(x, y)| x != y).count();
        assert_eq!(
            diffs,
            0,
            "step {step}: {diffs}/{} coefficient words differ between instances",
            da.len()
        );
        // the warm-start densities must agree bit-exactly too
        let wa = a.bie_warm.as_ref().unwrap();
        let wb = b.bie_warm.as_ref().unwrap();
        let wdiffs = wa
            .iter()
            .zip(wb)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(wdiffs, 0, "step {step}: warm-start densities differ");
    }
    assert!(
        total_contacts > 10,
        "configuration is no longer high-contact ({total_contacts} ≤ 10); the test lost its teeth"
    );
}

/// Instance determinism through the *persistent wall FMM*: two
/// independently built refined-wall `vessel_flow` instances (wall_refine
/// defaults to 1, FMM backend forced) must step bit-identically while the
/// plan-reuse telemetry confirms the persistent plan actually carried the
/// evaluations — one frozen-tree build on the first step, zero after,
/// one target replan per step.
#[test]
fn refined_fmm_vessel_instances_step_bit_identically() {
    let mut cfg = Doc::default();
    let sec = "vessel_flow";
    cfg.set(sec, "tube_segments", Value::Int(1));
    cfg.set(sec, "patch_order", Value::Int(6));
    cfg.set(sec, "order", Value::Int(6));
    cfg.set(sec, "bie_backend", Value::Str("fmm".into()));
    cfg.set(sec, "bie_qf", Value::Int(6)); // keep the refined solve fast
    cfg.set(sec, "fill_h", Value::Float(1.5));
    let mut a = driver::build("vessel_flow", &cfg).unwrap().sim;
    let mut b = driver::build("vessel_flow", &cfg).unwrap().sim;
    // the registry default is the refined wall (4× the coarse patches)
    assert_eq!(a.vessel.as_ref().unwrap().solver.opts.fmm.order, 4);
    for step in 1..=2 {
        a.step();
        b.step();
        let expected_builds = if step == 1 { 1 } else { 0 };
        for (label, sim) in [("a", &a), ("b", &b)] {
            assert_eq!(
                sim.last_stats.wall_fmm_builds, expected_builds,
                "instance {label} step {step}: wall FMM rebuilt instead of reused"
            );
            assert!(
                sim.last_stats.wall_fmm_replans >= 1,
                "instance {label} step {step}: boundary eval did not route \
                 through the persistent FMM"
            );
        }
        let da = coeff_bits(&a);
        let db = coeff_bits(&b);
        let diffs = da.iter().zip(&db).filter(|(x, y)| x != y).count();
        assert_eq!(
            diffs,
            0,
            "step {step}: {diffs}/{} coefficient words differ between instances",
            da.len()
        );
        let wa = a.bie_warm.as_ref().unwrap();
        let wb = b.bie_warm.as_ref().unwrap();
        let wdiffs = wa
            .iter()
            .zip(wb)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(wdiffs, 0, "step {step}: warm-start densities differ");
    }
}
