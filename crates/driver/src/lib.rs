//! # driver — the scenario-driven simulation harness
//!
//! Everything needed to run end-to-end `sim::Simulation` workloads from
//! declarative configs:
//!
//! - [`toml`]: a hand-rolled parser for the TOML subset scenario files use
//!   (the environment is offline, so no external parser crates);
//! - [`scenario`]: the registry of named scenario builders (shear pair,
//!   sedimentation, vessel flow, dense fill, Poiseuille cell train, random
//!   suspension) shared by `examples/`, `sim-driver`, and `step_bench`;
//! - [`mod@run`]: the stepping loop with per-stage timer aggregation, CSV
//!   trajectory output, and periodic binary checkpoints (restartable
//!   bit-identically via `sim::checkpoint`).
//!
//! The `sim-driver` binary is the CLI front end:
//!
//! ```text
//! cargo run --release -p driver -- list
//! cargo run --release -p driver -- shear_pair --steps 20
//! cargo run --release -p driver -- vessel_flow --config scenarios/vessel_flow.toml
//! cargo run --release -p driver -- shear_pair --restart target/driver/shear_pair/shear_pair_final.ckpt --steps 10
//! ```

#![warn(missing_docs)]

pub mod run;
pub mod scenario;
pub mod toml;

pub use run::{final_checkpoint_path, run, RunOptions, RunReport, StepRow};
pub use scenario::{build, registry, Built, ScenarioSpec};
pub use toml::{Doc, Value};
