//! # driver — the scenario-driven simulation harness
//!
//! Everything needed to run end-to-end `sim::Simulation` workloads from
//! declarative configs:
//!
//! - [`toml`]: a hand-rolled parser for the TOML subset scenario files use
//!   (the environment is offline, so no external parser crates);
//! - [`scenario`]: the registry of named scenario builders (shear pair,
//!   sedimentation, vessel flow, dense fill, Poiseuille cell train, random
//!   suspension) shared by `examples/`, `sim-driver`, and `step_bench`;
//! - [`session`]: the composable run layer — [`Session`] owns a built
//!   scenario and steps it resumably, streaming each step through
//!   pluggable [`StepSink`] observers (console table, CSV stream, cadence
//!   checkpointer);
//! - [`batch`]: the simulation farm — `sim-driver batch <manifest.toml>`
//!   schedules many scenario jobs over the persistent worker pool with
//!   shared immutable caches and a checkpoint-resumable queue;
//! - [`physio`]: the physiology observer — [`PhysioSink`] streams
//!   apparent viscosity, cell-free layer, and branch hematocrit split
//!   (from [`sim::physio`]) as one CSV row per step;
//! - [`mod@run`]: the pre-split record types ([`RunOptions`],
//!   [`RunReport`], [`StepRow`]) and the [`run()`] entry point, now a thin
//!   wrapper over [`session`].
//!
//! The `sim-driver` binary is the CLI front end:
//!
//! ```text
//! cargo run --release -p driver -- list
//! cargo run --release -p driver -- shear_pair --steps 20
//! cargo run --release -p driver -- vessel_flow --config scenarios/vessel_flow.toml
//! cargo run --release -p driver -- shear_pair --restart target/driver/shear_pair/shear_pair_final.ckpt --steps 10
//! cargo run --release -p driver -- batch scenarios/farm_smoke.toml
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod physio;
pub mod run;
pub mod scenario;
pub mod session;
pub mod toml;

pub use batch::{run_farm, FarmOptions, FarmReport, JobOutcome, JobSpec, JobStatus, Manifest};
pub use physio::{PhysioRow, PhysioSink, PHYSIO_CSV_HEADER};
pub use run::{final_checkpoint_path, run, RunOptions, RunReport, StepRow};
pub use scenario::{build, registry, Built, ScenarioSpec};
pub use session::{
    drive, run_with, CacheTelemetry, CheckpointSink, ConsoleSink, CsvSink, Session, StepSink,
};
pub use toml::{Doc, Value};
