//! The composable run layer: scenario build / step loop / IO split.
//!
//! [`run::run`](crate::run::run) used to be a monolith coupling stepping,
//! timing, CSV writing, and checkpointing; every caller (CLI, examples,
//! `step_bench`, CI smokes) either went through the whole thing or
//! hand-rolled its own loop. This module splits it into pieces that
//! compose:
//!
//! - **build**: [`Session::build`] goes registry → ready-to-step
//!   [`Simulation`] (through the process-wide shared immutable caches —
//!   FMM operator tables in [`fmm::ops`], refined wall surfaces in
//!   [`sim::caches`]) and carries the per-step policy (outlet recycling,
//!   the non-finite guard) with the state it applies to;
//! - **step loop**: [`Session::step`] is the resumable stepper — one call,
//!   one committed step, one [`StepRow`] of per-stage timers and
//!   [`sim::StepStats`]; [`drive`] folds it over N steps;
//! - **IO sinks**: [`StepSink`] observers ([`ConsoleSink`], [`CsvSink`],
//!   [`CheckpointSink`]) receive each row as it happens, so output
//!   streams and checkpoints survive a kill at any step. They are
//!   pluggable: the batch farm, the CLI, and the examples wire different
//!   sink sets over the same loop.
//!
//! The pre-split `run(sim, recycle, opts)` entry point still exists and is
//! now a thin composition over these pieces ([`run_with`]); its console
//! lines, `trajectory.csv` bytes, and checkpoint files are pinned
//! bit-identical to the monolith by `driver/tests/`.

use crate::run::{checkpoint_path, final_checkpoint_path, RunOptions, RunReport, StepRow};
use crate::scenario::Built;
use crate::toml::Doc;
use sim::{Checkpoint, Simulation};
use std::io;
use std::path::{Path, PathBuf};

/// A per-step observer plugged into the step loop.
///
/// Sinks are called in the order they are passed to [`drive`]; any error
/// aborts the run (the step itself is already committed — sinks observe,
/// they do not vote).
pub trait StepSink {
    /// Called once before the first step.
    fn on_start(&mut self, _sim: &Simulation) -> io::Result<()> {
        Ok(())
    }
    /// Called after every committed step with the step's record.
    fn on_step(&mut self, sim: &Simulation, row: &StepRow) -> io::Result<()>;
    /// Called once after the last step.
    fn on_finish(&mut self, _sim: &Simulation) -> io::Result<()> {
        Ok(())
    }
}

/// Prints the monolith-era progress lines: a two-line header, then one
/// line per step.
pub struct ConsoleSink {
    scenario: String,
    steps: usize,
}

impl ConsoleSink {
    /// A console sink announcing `scenario` over `steps` steps.
    pub fn new(scenario: impl Into<String>, steps: usize) -> ConsoleSink {
        ConsoleSink {
            scenario: scenario.into(),
            steps,
        }
    }
}

impl StepSink for ConsoleSink {
    fn on_start(&mut self, sim: &Simulation) -> io::Result<()> {
        println!(
            "{}: {} cells, {} dofs, dt = {}, {} steps",
            self.scenario,
            sim.cells.len(),
            sim.dofs(),
            sim.config.dt,
            self.steps
        );
        println!("step  total(s)  COL(s)  BIE(s)  gmres  contacts  recycled  dt_eff  retries");
        Ok(())
    }

    fn on_step(&mut self, _sim: &Simulation, row: &StepRow) -> io::Result<()> {
        let t = row.timers;
        println!(
            "{:>4}  {:>8.3}  {:>6.3}  {:>6.3}  {:>5}  {:>8}  {:>8}  {:>6.4}  {:>7}",
            row.step,
            t.total(),
            t.col,
            t.bie_solve + t.bie_fmm,
            row.stats.bie_iterations,
            row.stats.contacts,
            row.recycled,
            row.stats.dt_effective,
            row.stats.dt_retries
        );
        Ok(())
    }
}

/// Streams rows to a CSV file as they happen, so a killed run keeps
/// everything up to its last completed step.
pub struct CsvSink {
    file: std::fs::File,
}

impl CsvSink {
    /// Creates (truncating) `path` and writes the column header.
    pub fn create(path: &Path) -> io::Result<CsvSink> {
        let mut file = std::fs::File::create(path)?;
        io::Write::write_all(&mut file, crate::run::CSV_HEADER.as_bytes())?;
        Ok(CsvSink { file })
    }

    /// The trajectory CSV name for a run starting at step counter
    /// `start_step`: continuation runs (restarts) get their own file
    /// instead of overwriting the earlier portion of the trajectory.
    pub fn trajectory_name(start_step: usize) -> String {
        if start_step == 0 {
            "trajectory.csv".to_string()
        } else {
            format!("trajectory_from_{:06}.csv", start_step + 1)
        }
    }
}

impl StepSink for CsvSink {
    fn on_step(&mut self, _sim: &Simulation, row: &StepRow) -> io::Result<()> {
        io::Write::write_all(&mut self.file, row.csv_line().as_bytes())
    }
}

/// Writes cadence checkpoints every `every` steps (0 = none), rotates them
/// down to the newest `keep` (0 = keep all), and writes the final-state
/// checkpoint after the last step.
pub struct CheckpointSink {
    dir: PathBuf,
    scenario: String,
    every: usize,
    keep: usize,
    /// Cadence checkpoints currently on disk from this run, oldest first.
    cadence: Vec<PathBuf>,
    /// All surviving checkpoints written by this run, in write order (the
    /// final-state checkpoint last) — what [`RunReport::checkpoints`]
    /// reports.
    pub written: Vec<PathBuf>,
}

impl CheckpointSink {
    /// A checkpoint sink writing into `dir` under `scenario`'s name.
    pub fn new(
        dir: impl Into<PathBuf>,
        scenario: impl Into<String>,
        every: usize,
        keep: usize,
    ) -> CheckpointSink {
        CheckpointSink {
            dir: dir.into(),
            scenario: scenario.into(),
            every,
            keep,
            cadence: Vec::new(),
            written: Vec::new(),
        }
    }
}

impl StepSink for CheckpointSink {
    fn on_step(&mut self, sim: &Simulation, _row: &StepRow) -> io::Result<()> {
        if self.every == 0 || !sim.steps.is_multiple_of(self.every) {
            return Ok(());
        }
        let path = checkpoint_path(&self.dir, &self.scenario, sim.steps);
        Checkpoint::write(sim, &self.scenario, &path)?;
        self.cadence.push(path.clone());
        self.written.push(path);
        // rotation: long-horizon farm jobs would otherwise accumulate one
        // file per cadence tick; resume only ever needs the newest
        while self.keep > 0 && self.cadence.len() > self.keep {
            let old = self.cadence.remove(0);
            std::fs::remove_file(&old)?;
            self.written.retain(|p| p != &old);
        }
        Ok(())
    }

    fn on_finish(&mut self, sim: &Simulation) -> io::Result<()> {
        let path = final_checkpoint_path(&self.dir, &self.scenario);
        Checkpoint::write(sim, &self.scenario, &path)?;
        self.written.push(path);
        Ok(())
    }
}

/// Scans every cell's shape coefficients for NaN/∞; returns the first
/// offender as `(cell, component, coefficient index)`.
fn first_nonfinite(sim: &Simulation) -> Option<(usize, usize, usize)> {
    for (ci, cell) in sim.cells.iter().enumerate() {
        for (comp, coeffs) in cell.coeffs.iter().enumerate() {
            if let Some(k) = coeffs.data.iter().position(|v| !v.is_finite()) {
                return Some((ci, comp, k));
            }
        }
    }
    None
}

/// One step of the step loop: advance, guard, recycle, record.
fn step_once(sim: &mut Simulation, recycle: bool, fail_on_nonfinite: bool) -> io::Result<StepRow> {
    let t = sim.step();
    if fail_on_nonfinite {
        if let Some((ci, comp, k)) = first_nonfinite(sim) {
            return Err(io::Error::other(format!(
                "non-finite state after step {}: cell {ci}, component {}, \
                 coefficient {k} (rerun with --allow-nonfinite to continue anyway)",
                sim.steps,
                ["x", "y", "z"][comp],
            )));
        }
    }
    let recycled = if recycle { sim.recycle_cells() } else { 0 };
    Ok(StepRow {
        step: sim.steps,
        timers: t,
        stats: sim.last_stats,
        recycled,
    })
}

/// Folds the step loop over `steps` steps, feeding every row to each sink
/// in order. Returns the aggregate report; `report.checkpoints` stays
/// empty — checkpoint paths live in the [`CheckpointSink`] that wrote them
/// (see [`run_with`] for the composition the CLI uses).
pub fn drive(
    sim: &mut Simulation,
    recycle: bool,
    steps: usize,
    fail_on_nonfinite: bool,
    sinks: &mut [&mut dyn StepSink],
) -> io::Result<RunReport> {
    for sink in sinks.iter_mut() {
        sink.on_start(sim)?;
    }
    let mut report = RunReport::default();
    for _ in 0..steps {
        let row = step_once(sim, recycle, fail_on_nonfinite)?;
        report.timers.accumulate(&row.timers);
        for sink in sinks.iter_mut() {
            sink.on_step(sim, &row)?;
        }
        report.rows.push(row);
    }
    for sink in sinks.iter_mut() {
        sink.on_finish(sim)?;
    }
    Ok(report)
}

/// The full single-run composition the CLI (and the farm's per-job runner)
/// uses: console + streaming CSV + cadence/final checkpoints over
/// [`drive`]. Behavior (console lines, CSV bytes, checkpoint files) is
/// pinned bit-identical to the pre-split `run` monolith.
pub fn run_with(sim: &mut Simulation, recycle: bool, opts: &RunOptions) -> io::Result<RunReport> {
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut console = (!opts.quiet).then(|| ConsoleSink::new(opts.scenario.clone(), opts.steps));
    let mut csv = match &opts.out_dir {
        Some(dir) => Some(CsvSink::create(
            &dir.join(CsvSink::trajectory_name(sim.steps)),
        )?),
        None => None,
    };
    let mut ckpt = opts.out_dir.as_ref().map(|dir| {
        CheckpointSink::new(
            dir,
            opts.scenario.clone(),
            opts.checkpoint_every,
            opts.keep_checkpoints,
        )
    });
    let mut sinks: Vec<&mut dyn StepSink> = Vec::with_capacity(3);
    if let Some(s) = console.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = csv.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = ckpt.as_mut() {
        sinks.push(s);
    }
    let mut report = drive(sim, recycle, opts.steps, opts.fail_on_nonfinite, &mut sinks)?;
    if let Some(c) = ckpt {
        report.checkpoints = c.written;
    }
    Ok(report)
}

/// An owned scenario run: the simulation plus the per-step policy and the
/// name that ties its checkpoints back to the registry.
///
/// Where [`crate::build`] returns the raw parts, a `Session` is the
/// steppable unit the farm schedules and the examples iterate:
/// [`Session::step`] advances one step at a time (resumable — call it
/// whenever), [`Session::run`] composes the full sink set.
pub struct Session {
    /// Registry name (stored in checkpoints so a restart can rebuild).
    pub scenario: String,
    /// The live simulation.
    pub sim: Simulation,
    /// Recycle outlet cells into the inlet after each step.
    pub recycle: bool,
    /// Abort on non-finite cell coefficients (see [`RunOptions`]).
    pub fail_on_nonfinite: bool,
}

impl Session {
    /// Builds registry scenario `name` from `cfg` (through the shared
    /// immutable caches) into a ready-to-step session.
    pub fn build(name: &str, cfg: &Doc) -> Result<Session, String> {
        Ok(Session::from_built(name, crate::build(name, cfg)?))
    }

    /// Wraps an already-built scenario.
    pub fn from_built(name: &str, built: Built) -> Session {
        Session {
            scenario: name.to_string(),
            sim: built.sim,
            recycle: built.recycle,
            fail_on_nonfinite: true,
        }
    }

    /// Restores a checkpoint into this session, rejecting checkpoints
    /// from a different scenario (their domains cannot match).
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), String> {
        if ckpt.scenario != self.scenario {
            return Err(format!(
                "checkpoint is from scenario `{}`, not `{}`",
                ckpt.scenario, self.scenario
            ));
        }
        ckpt.restore_into(&mut self.sim).map_err(|e| e.to_string())
    }

    /// Takes one committed step and returns its record. Resumable: the
    /// step counter (and the CSV/ckpt numbering derived from it) carries
    /// across calls, checkpoint restores, and process restarts.
    pub fn step(&mut self) -> io::Result<StepRow> {
        step_once(&mut self.sim, self.recycle, self.fail_on_nonfinite)
    }

    /// Runs `steps` steps through the given sinks (see [`drive`]).
    pub fn drive(
        &mut self,
        steps: usize,
        sinks: &mut [&mut dyn StepSink],
    ) -> io::Result<RunReport> {
        drive(
            &mut self.sim,
            self.recycle,
            steps,
            self.fail_on_nonfinite,
            sinks,
        )
    }

    /// Runs with the full console/CSV/checkpoint sink set (see
    /// [`run_with`]). `opts.scenario` is ignored in favor of the
    /// session's own name.
    pub fn run(&mut self, opts: &RunOptions) -> io::Result<RunReport> {
        let opts = RunOptions {
            scenario: self.scenario.clone(),
            fail_on_nonfinite: self.fail_on_nonfinite,
            ..opts.clone()
        };
        run_with(&mut self.sim, self.recycle, &opts)
    }
}

/// Snapshot of the process-wide shared-cache counters (cumulative).
///
/// The farm reports the delta over its run window: `hits > 0` is the
/// acceptance signal that jobs actually shared immutable state instead of
/// re-paying cold builds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheTelemetry {
    /// Cold refined-wall-surface builds ([`sim::caches`]).
    pub surface_builds: u64,
    /// Refined-wall-surface cache hits.
    pub surface_hits: u64,
    /// Cold FMM operator-table builds ([`fmm::ops`]).
    pub fmm_op_builds: u64,
    /// FMM operator-table cache hits.
    pub fmm_op_hits: u64,
}

impl CacheTelemetry {
    /// Current cumulative counters.
    pub fn snapshot() -> CacheTelemetry {
        let s = sim::surface_cache_stats();
        let f = fmm::ops_cache_stats();
        CacheTelemetry {
            surface_builds: s.builds,
            surface_hits: s.hits,
            fmm_op_builds: f.builds,
            fmm_op_hits: f.hits,
        }
    }

    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &CacheTelemetry) -> CacheTelemetry {
        CacheTelemetry {
            surface_builds: self.surface_builds.saturating_sub(earlier.surface_builds),
            surface_hits: self.surface_hits.saturating_sub(earlier.surface_hits),
            fmm_op_builds: self.fmm_op_builds.saturating_sub(earlier.fmm_op_builds),
            fmm_op_hits: self.fmm_op_hits.saturating_sub(earlier.fmm_op_hits),
        }
    }

    /// Total cache hits across all shared caches.
    pub fn hits(&self) -> u64 {
        self.surface_hits + self.fmm_op_hits
    }

    /// Total cold builds across all shared caches.
    pub fn builds(&self) -> u64 {
        self.surface_builds + self.fmm_op_builds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml::Value;

    fn tiny_session() -> Session {
        let mut cfg = Doc::default();
        cfg.set("shear_pair", "order", Value::Int(6));
        Session::build("shear_pair", &cfg).unwrap()
    }

    /// A sink that records the step indices it observed plus the
    /// start/finish hooks — pins the observer contract.
    #[derive(Default)]
    struct Recorder {
        started: usize,
        finished: usize,
        steps: Vec<usize>,
    }

    impl StepSink for Recorder {
        fn on_start(&mut self, _sim: &Simulation) -> io::Result<()> {
            self.started += 1;
            Ok(())
        }
        fn on_step(&mut self, sim: &Simulation, row: &StepRow) -> io::Result<()> {
            assert_eq!(sim.steps, row.step, "row observed out of sync");
            self.steps.push(row.step);
            Ok(())
        }
        fn on_finish(&mut self, _sim: &Simulation) -> io::Result<()> {
            self.finished += 1;
            Ok(())
        }
    }

    #[test]
    fn session_step_is_resumable_across_drive_calls() {
        let mut s = tiny_session();
        let r1 = s.step().unwrap();
        assert_eq!(r1.step, 1);
        let mut rec = Recorder::default();
        {
            let mut sinks: Vec<&mut dyn StepSink> = vec![&mut rec];
            s.drive(2, &mut sinks).unwrap();
        }
        assert_eq!(rec.started, 1);
        assert_eq!(rec.finished, 1);
        assert_eq!(rec.steps, vec![2, 3], "global step counter must carry");
        assert_eq!(s.sim.steps, 3);
    }

    #[test]
    fn checkpoint_sink_rotates_cadence_files() {
        let mut s = tiny_session();
        let dir = std::env::temp_dir().join(format!("session_rotate_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut ckpt = CheckpointSink::new(&dir, "shear_pair", 1, 2);
        {
            let mut sinks: Vec<&mut dyn StepSink> = vec![&mut ckpt];
            s.drive(4, &mut sinks).unwrap();
        }
        // keep = 2: steps 3 and 4 survive, 1 and 2 rotated away, plus final
        let names: Vec<String> = ckpt
            .written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "shear_pair_step000003.ckpt",
                "shear_pair_step000004.ckpt",
                "shear_pair_final.ckpt"
            ],
            "{names:?}"
        );
        for p in &ckpt.written {
            assert!(p.exists(), "{} missing", p.display());
        }
        assert!(!checkpoint_path(&dir, "shear_pair", 1).exists());
        assert!(!checkpoint_path(&dir, "shear_pair", 2).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_rejects_wrong_scenario() {
        let mut s = tiny_session();
        let ckpt = Checkpoint::capture(&s.sim, "sedimentation");
        let e = s.restore(&ckpt).unwrap_err();
        assert!(
            e.contains("sedimentation") && e.contains("shear_pair"),
            "{e}"
        );
    }

    #[test]
    fn cache_telemetry_deltas() {
        let a = CacheTelemetry {
            surface_builds: 1,
            surface_hits: 2,
            fmm_op_builds: 3,
            fmm_op_hits: 5,
        };
        let b = CacheTelemetry {
            surface_builds: 1,
            surface_hits: 4,
            fmm_op_builds: 4,
            fmm_op_hits: 9,
        };
        let d = b.since(&a);
        assert_eq!(d.surface_builds, 0);
        assert_eq!(d.surface_hits, 2);
        assert_eq!(d.fmm_op_builds, 1);
        assert_eq!(d.fmm_op_hits, 4);
        assert_eq!(d.hits(), 6);
        assert_eq!(d.builds(), 1);
    }
}
