//! `sim-driver` — run named scenarios end-to-end with checkpoint/restart.
//!
//! ```text
//! sim-driver list
//! sim-driver <scenario> [--config FILE] [--steps N] [--checkpoint-every K]
//!            [--keep-checkpoints K] [--out DIR | --no-output]
//!            [--restart CKPT] [--quiet] [--threads N]
//!            [--assert-contacts N] [--assert-bie-below N]
//!            [--assert-dt-retries N] [--assert-fmm-rebuilds N]
//!            [--assert-flux-balance TOL]
//!            [--allow-nonfinite] [--set key=value ...]
//! sim-driver batch <manifest.toml> [--jobs N] [--halt-after N] [--quiet]
//!            [--assert-cache-hits N] [--assert-resumed N]
//! ```
//!
//! `batch` runs a simulation farm: a manifest of scenario jobs scheduled
//! over the persistent worker pool, resumable from per-job checkpoints
//! (see `driver::batch` for the manifest format). `--jobs N` caps
//! concurrent jobs (1 = sequential, 0 = pool width); `--halt-after N`
//! simulates a crash after `N` completed jobs; `--assert-cache-hits N` /
//! `--assert-resumed N` turn the farm into a CI smoke asserting at least
//! `N` shared-cache hits / resumed jobs.
//!
//! `--set` writes into the scenario's config section, overriding the file;
//! e.g. `sim-driver shear_pair --set order=8 --set dt=0.01`.
//!
//! `--threads N` pins every parallel stage of the step to `N` workers
//! (shorthand for `--set threads=N`; default 0 = available parallelism).
//! Trajectories are bit-identical at any thread count, so this only trades
//! wall time — and it survives `--restart`, since the checkpoint neither
//! stores nor restores the thread count.
//!
//! `--assert-contacts N` turns the run into a collision smoke test: it
//! exits nonzero unless at least `N` contacts were detected over the run
//! and every cell finished with a finite volume (the CI gate uses this to
//! catch collision-stage regressions in seconds instead of at the bench).
//!
//! `--assert-bie-below N` turns the run into a boundary-solve smoke test:
//! it exits nonzero if any step's GMRES iteration count reached `N`
//! (i.e. the solve ran into a cap instead of converging) or any cell
//! finished with a non-finite centroid or volume. The CI gate runs one
//! refined-wall `vessel_flow` step through this to pin the wall-refinement
//! + FMM-backend path.
//!
//! `--assert-flux-balance TOL` turns the run into a conservation smoke
//! test: it exits nonzero unless every step's net port flux imbalance
//! `|Σ ∫ u·n dS|` over the committed boundary condition stayed at or
//! below `TOL` and every cell finished finite. Network scenarios
//! (`bifurcation`) prescribe per-port fluxes that sum to zero and make
//! each discrete port flux exact, so the CI gate runs them through this
//! with a roundoff-scale tolerance.
//!
//! `--assert-dt-retries N` turns the run into an instability smoke test:
//! it exits nonzero unless the adaptive time stepper performed at least
//! `N` rollback/retries over the run, every step's max edge stretch was
//! finite and within the configured bound, and the final state is finite.
//! The CI gate runs one deliberately oversized-dt step through this to
//! prove the retry path actually fires and keeps the state sane.
//!
//! `--assert-fmm-rebuilds N` turns the run into a plan-reuse smoke test:
//! it exits nonzero unless the persistent wall FMM was built at most `N`
//! times over the whole run while every step still routed its boundary
//! evaluation through it (≥ 1 target replan per step). The CI gate runs a
//! multi-step refined-wall `vessel_flow` through this with `N = 1` to
//! prove steps after the first reuse the frozen source tree instead of
//! rebuilding the FMM from scratch each step.
//!
//! The run aborts by default the moment any cell's coefficients go
//! non-finite (naming the step, cell, and coefficient); pass
//! `--allow-nonfinite` to disable that guard and keep stepping anyway.

use driver::{final_checkpoint_path, run, Doc, FarmOptions, Manifest, RunOptions};
use sim::Checkpoint;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scenario: String,
    config: Option<PathBuf>,
    steps: usize,
    checkpoint_every: usize,
    keep_checkpoints: usize,
    out_dir: Option<PathBuf>,
    no_output: bool,
    restart: Option<PathBuf>,
    quiet: bool,
    threads: Option<usize>,
    assert_contacts: Option<usize>,
    assert_bie_below: Option<usize>,
    assert_dt_retries: Option<usize>,
    assert_fmm_rebuilds: Option<usize>,
    assert_flux_balance: Option<f64>,
    allow_nonfinite: bool,
    sets: Vec<String>,
    help: bool,
}

fn usage() -> String {
    let mut u = String::from(
        "usage: sim-driver <scenario|list> [--config FILE] [--steps N] \
         [--checkpoint-every K] [--keep-checkpoints K] \
         [--out DIR | --no-output] [--restart CKPT] \
         [--quiet] [--threads N] [--assert-contacts N] [--assert-bie-below N] \
         [--assert-dt-retries N] [--assert-fmm-rebuilds N] \
         [--assert-flux-balance TOL] \
         [--allow-nonfinite] [--set key=value ...]\n       \
         sim-driver batch <manifest.toml> [--jobs N] [--halt-after N] \
         [--quiet] [--assert-cache-hits N] [--assert-resumed N]\n\nscenarios:\n",
    );
    for s in driver::registry() {
        u.push_str(&format!("  {:<18} {}\n", s.name, s.summary));
    }
    u
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        scenario: String::new(),
        config: None,
        steps: 10,
        checkpoint_every: 0,
        keep_checkpoints: 0,
        out_dir: None,
        no_output: false,
        restart: None,
        quiet: false,
        threads: None,
        assert_contacts: None,
        assert_bie_below: None,
        assert_dt_retries: None,
        assert_fmm_rebuilds: None,
        assert_flux_balance: None,
        allow_nonfinite: false,
        sets: Vec::new(),
        help: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--steps" => {
                args.steps = value("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?
            }
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--keep-checkpoints" => {
                args.keep_checkpoints = value("--keep-checkpoints")?
                    .parse()
                    .map_err(|e| format!("--keep-checkpoints: {e}"))?
            }
            "--out" => args.out_dir = Some(PathBuf::from(value("--out")?)),
            "--no-output" => args.no_output = true,
            "--restart" => args.restart = Some(PathBuf::from(value("--restart")?)),
            "--quiet" => args.quiet = true,
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--assert-contacts" => {
                args.assert_contacts = Some(
                    value("--assert-contacts")?
                        .parse()
                        .map_err(|e| format!("--assert-contacts: {e}"))?,
                )
            }
            "--assert-bie-below" => {
                args.assert_bie_below = Some(
                    value("--assert-bie-below")?
                        .parse()
                        .map_err(|e| format!("--assert-bie-below: {e}"))?,
                )
            }
            "--assert-dt-retries" => {
                args.assert_dt_retries = Some(
                    value("--assert-dt-retries")?
                        .parse()
                        .map_err(|e| format!("--assert-dt-retries: {e}"))?,
                )
            }
            "--assert-fmm-rebuilds" => {
                args.assert_fmm_rebuilds = Some(
                    value("--assert-fmm-rebuilds")?
                        .parse()
                        .map_err(|e| format!("--assert-fmm-rebuilds: {e}"))?,
                )
            }
            "--assert-flux-balance" => {
                args.assert_flux_balance = Some(
                    value("--assert-flux-balance")?
                        .parse()
                        .map_err(|e| format!("--assert-flux-balance: {e}"))?,
                )
            }
            "--allow-nonfinite" => args.allow_nonfinite = true,
            "--set" => args.sets.push(value("--set")?),
            "--help" | "-h" => args.help = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()))
            }
            other => {
                if !args.scenario.is_empty() {
                    return Err(format!(
                        "two scenarios given: {} and {other}",
                        args.scenario
                    ));
                }
                args.scenario = other.to_string();
            }
        }
    }
    if args.scenario.is_empty() && !args.help {
        return Err(usage());
    }
    Ok(args)
}

/// `sim-driver batch <manifest.toml> [...]`: parse the manifest, run the
/// farm, enforce the optional CI assertions, exit nonzero on any failed
/// job.
fn batch_main(argv: &[String]) -> Result<(), String> {
    let mut manifest_path: Option<PathBuf> = None;
    let mut opts = FarmOptions::default();
    let mut assert_cache_hits: Option<u64> = None;
    let mut assert_resumed: Option<usize> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--jobs" => {
                opts.jobs_parallel = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--halt-after" => {
                opts.halt_after = Some(
                    value("--halt-after")?
                        .parse()
                        .map_err(|e| format!("--halt-after: {e}"))?,
                )
            }
            "--quiet" => opts.quiet = true,
            "--assert-cache-hits" => {
                assert_cache_hits = Some(
                    value("--assert-cache-hits")?
                        .parse()
                        .map_err(|e| format!("--assert-cache-hits: {e}"))?,
                )
            }
            "--assert-resumed" => {
                assert_resumed = Some(
                    value("--assert-resumed")?
                        .parse()
                        .map_err(|e| format!("--assert-resumed: {e}"))?,
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown batch flag {other}\n{}", usage()))
            }
            other => {
                if manifest_path.is_some() {
                    return Err(format!("two manifests given; second was {other}"));
                }
                manifest_path = Some(PathBuf::from(other));
            }
        }
    }
    let path = manifest_path.ok_or_else(|| format!("batch needs a manifest\n{}", usage()))?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let manifest = Manifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let report = driver::run_farm(&manifest, &opts)?;
    if let Some(min) = assert_cache_hits {
        if report.cache.hits() < min {
            return Err(format!(
                "farm smoke: {} shared-cache hits, expected ≥ {min} — jobs are \
                 rebuilding immutable state instead of sharing it",
                report.cache.hits()
            ));
        }
    }
    if let Some(min) = assert_resumed {
        if report.resumed() < min {
            return Err(format!(
                "farm smoke: {} jobs resumed from checkpoints, expected ≥ {min}",
                report.resumed()
            ));
        }
    }
    if report.failed() > 0 {
        return Err(format!("{} farm job(s) failed", report.failed()));
    }
    // only count jobs as missing if the farm was supposed to run them
    if opts.halt_after.is_none() && report.completed() < manifest.jobs.len() {
        return Err(format!(
            "{}/{} farm jobs reached their target",
            report.completed(),
            manifest.jobs.len()
        ));
    }
    Ok(())
}

fn main_inner() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("batch") {
        return batch_main(&argv[1..]);
    }
    let args = parse_args(&argv)?;

    if args.help || args.scenario == "list" {
        print!("{}", usage());
        return Ok(());
    }

    // config: file, then --set overrides into the scenario's section
    let mut cfg = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            Doc::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Doc::default(),
    };
    for s in &args.sets {
        let (key, value) = driver::toml::parse_override(s)?;
        cfg.set(&args.scenario, &key, value);
    }
    if let Some(n) = args.threads {
        cfg.set(&args.scenario, "threads", driver::Value::Int(n as i64));
    }

    let mut built = driver::build(&args.scenario, &cfg)?;

    if let Some(ckpt_path) = &args.restart {
        let ckpt =
            Checkpoint::load(ckpt_path).map_err(|e| format!("{}: {e}", ckpt_path.display()))?;
        if ckpt.scenario != args.scenario {
            return Err(format!(
                "checkpoint is from scenario `{}`, not `{}`",
                ckpt.scenario, args.scenario
            ));
        }
        ckpt.restore_into(&mut built.sim)
            .map_err(|e| e.to_string())?;
        if !args.sets.is_empty() {
            eprintln!(
                "warning: --restart restores the checkpoint's configuration; \
                 --set overrides of evolving-state parameters (dt, shear_rate, ...) \
                 are ignored for the restored run"
            );
        }
        if !args.quiet {
            println!(
                "restarted from {} at step {}",
                ckpt_path.display(),
                built.sim.steps
            );
        }
    }

    let out_dir = if args.no_output {
        None
    } else {
        Some(
            args.out_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from("target/driver").join(&args.scenario)),
        )
    };
    let opts = RunOptions {
        scenario: args.scenario.clone(),
        steps: args.steps,
        checkpoint_every: args.checkpoint_every,
        keep_checkpoints: args.keep_checkpoints,
        out_dir: out_dir.clone(),
        quiet: args.quiet,
        fail_on_nonfinite: !args.allow_nonfinite,
    };
    let report = run(&mut built.sim, built.recycle, &opts).map_err(|e| e.to_string())?;

    if let Some(min_contacts) = args.assert_contacts {
        let total: usize = report.rows.iter().map(|r| r.stats.contacts).sum();
        if total < min_contacts {
            return Err(format!(
                "collision smoke: {total} contacts detected over {} steps, expected ≥ {min_contacts}",
                report.rows.len()
            ));
        }
        let basis = &built.sim.basis;
        for (ci, cell) in built.sim.cells.iter().enumerate() {
            let vol = cell.geometry(basis).volume();
            // finiteness only: a squeezed cell can transiently invert
            // (negative signed volume) in aggressive configs, but NaN/∞
            // means the step itself produced garbage
            if !vol.is_finite() {
                return Err(format!(
                    "collision smoke: cell {ci} volume {vol} is not finite"
                ));
            }
        }
        if !args.quiet {
            println!(
                "collision smoke OK: {total} contacts ≥ {min_contacts}, all {} cell volumes finite",
                built.sim.cells.len()
            );
        }
    }

    if let Some(cap) = args.assert_bie_below {
        if built.sim.vessel.is_none() {
            return Err("bie smoke: scenario has no vessel (no boundary solve ran)".into());
        }
        for row in &report.rows {
            if row.stats.bie_iterations >= cap {
                return Err(format!(
                    "bie smoke: step {} took {} GMRES iterations (cap {cap}) — \
                     the boundary solve is not converging",
                    row.step, row.stats.bie_iterations
                ));
            }
            // NOTE: this deliberately does *not* require bie_converged.
            // Through-flow port data converges slowly (a spectral tail
            // needing ~0.7·N Krylov iterations — measured in sim::domain's
            // refined_serpentine_port_floor_improved), so vessel solves
            // engage the stall check at smoke iteration budgets even with
            // the rim-smooth quartic profile, which fixed the parabolic
            // seam jump and cut the floor ~4× (0.4 → ~0.11). The floor
            // improvement is pinned by that test; smooth-data convergence
            // by the analytic suite in crates/bie/tests/tube.rs.
        }
        let basis = &built.sim.basis;
        for (ci, cell) in built.sim.cells.iter().enumerate() {
            let g = cell.geometry(basis);
            let c = g.centroid();
            let vol = g.volume();
            if !c.is_finite() || !vol.is_finite() {
                return Err(format!(
                    "bie smoke: cell {ci} ended non-finite (centroid {c:?}, volume {vol})"
                ));
            }
        }
        if !args.quiet {
            let worst = report
                .rows
                .iter()
                .map(|r| r.stats.bie_iterations)
                .max()
                .unwrap_or(0);
            let resid = report
                .rows
                .last()
                .map(|r| r.stats.bie_residual)
                .unwrap_or(0.0);
            println!(
                "bie smoke OK: max {worst} GMRES iterations < {cap}, final relative \
                 residual {resid:.2e}, all {} cells finite",
                built.sim.cells.len()
            );
        }
    }

    if let Some(max_builds) = args.assert_fmm_rebuilds {
        if built.sim.vessel.is_none() {
            return Err("fmm-reuse smoke: scenario has no vessel (no wall FMM runs)".into());
        }
        let builds: usize = report.rows.iter().map(|r| r.stats.wall_fmm_builds).sum();
        if builds > max_builds {
            return Err(format!(
                "fmm-reuse smoke: {builds} wall-FMM builds over {} steps (max {max_builds}) \
                 — the persistent plan is being rebuilt instead of reused",
                report.rows.len()
            ));
        }
        for row in &report.rows {
            if row.stats.wall_fmm_replans == 0 {
                return Err(format!(
                    "fmm-reuse smoke: step {} did not route its boundary evaluation \
                     through the wall FMM (0 target replans) — the smoke is not \
                     exercising the persistent plan (check bie_backend / problem size)",
                    row.step
                ));
            }
        }
        if !args.quiet {
            let replans: usize = report.rows.iter().map(|r| r.stats.wall_fmm_replans).sum();
            println!(
                "fmm-reuse smoke OK: {builds} wall-FMM build(s) ≤ {max_builds}, \
                 {replans} target replans over {} steps",
                report.rows.len()
            );
        }
    }

    if let Some(tol) = args.assert_flux_balance {
        if built.sim.vessel.is_none() {
            return Err("flux-balance smoke: scenario has no vessel (no ports to balance)".into());
        }
        let mut worst = 0.0f64;
        for row in &report.rows {
            let imb = row.stats.flux_imbalance;
            if !imb.is_finite() || imb > tol {
                return Err(format!(
                    "flux-balance smoke: step {} net port flux imbalance {imb:.3e} \
                     exceeds {tol:.3e} — the prescribed port fluxes do not cancel \
                     in the committed boundary condition",
                    row.step
                ));
            }
            worst = worst.max(imb);
        }
        let basis = &built.sim.basis;
        for (ci, cell) in built.sim.cells.iter().enumerate() {
            let g = cell.geometry(basis);
            let c = g.centroid();
            let vol = g.volume();
            if !c.is_finite() || !vol.is_finite() {
                return Err(format!(
                    "flux-balance smoke: cell {ci} ended non-finite (centroid {c:?}, volume {vol})"
                ));
            }
        }
        if !args.quiet {
            println!(
                "flux-balance smoke OK: max net port flux imbalance {worst:.3e} ≤ {tol:.3e} \
                 over {} steps, all {} cells finite",
                report.rows.len(),
                built.sim.cells.len()
            );
        }
    }

    if let Some(min_retries) = args.assert_dt_retries {
        let total: usize = report.rows.iter().map(|r| r.stats.dt_retries).sum();
        if total < min_retries {
            return Err(format!(
                "instability smoke: {total} dt retries over {} steps, expected ≥ {min_retries} \
                 — the oversized step never tripped the health gate",
                report.rows.len()
            ));
        }
        let bound = built.sim.config.dt_control.max_stretch;
        for row in &report.rows {
            let s = row.stats.max_edge_stretch;
            if !s.is_finite() || s > bound {
                return Err(format!(
                    "instability smoke: step {} committed with max edge stretch {s} \
                     (bound {bound}) — the retry path let a blown-up state through",
                    row.step
                ));
            }
        }
        for (ci, cell) in built.sim.cells.iter().enumerate() {
            for (comp, coeffs) in cell.coeffs.iter().enumerate() {
                if let Some(k) = coeffs.data.iter().position(|v| !v.is_finite()) {
                    return Err(format!(
                        "instability smoke: cell {ci} component {} coefficient {k} \
                         is not finite after the run",
                        ["x", "y", "z"][comp]
                    ));
                }
            }
        }
        if !args.quiet {
            let worst = report
                .rows
                .iter()
                .map(|r| r.stats.max_edge_stretch)
                .fold(0.0f64, f64::max);
            println!(
                "instability smoke OK: {total} dt retries ≥ {min_retries}, \
                 max edge stretch {worst:.3} ≤ {bound}, final state finite"
            );
        }
    }

    if !args.quiet {
        println!("\n{}", report.stage_table());
        if let Some(dir) = &out_dir {
            println!(
                "wrote per-step CSV and {} checkpoint(s) under {}; resume with:\n  sim-driver {} --restart {} --steps N",
                report.checkpoints.len(),
                dir.display(),
                args.scenario,
                final_checkpoint_path(dir, &args.scenario).display(),
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match main_inner() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
