//! The simulation farm: a batch job runner over the [`Session`] API.
//!
//! Serving the paper's workload means many concurrent simulations, not one
//! giant run. `sim-driver batch <manifest.toml>` schedules a list of
//! scenario jobs over the persistent rayon worker pool, with:
//!
//! - **shared immutable caches** across jobs — FMM operator tables
//!   ([`fmm::ops`]) and refined wall surfaces ([`sim::caches`]) are
//!   process-wide, so the N-th job of a geometry/order the farm has seen
//!   skips the cold build; the delta telemetry rides in
//!   [`FarmReport::cache`];
//! - **per-job checkpoint rotation** — cadence checkpoints rotate down to
//!   `keep_checkpoints` per job, so long horizons do not cost one file per
//!   tick;
//! - **a resumable queue** — jobs whose output directory already holds a
//!   checkpoint resume from the newest one (bit-identically: checkpoints
//!   are bit-exact and stepping is deterministic), and jobs whose
//!   final-state checkpoint already reaches the target step count are
//!   skipped, so a crashed or killed farm just restarts.
//!
//! ## Manifest format (the driver's TOML subset)
//!
//! ```toml
//! [farm]
//! jobs = ["shear_a", "vessel_b"]     # execution order; section per job
//! out_root = "target/farm"           # default per-job out dir: out_root/<job>
//! checkpoint_every = 5               # default cadence (0 = final only)
//! keep_checkpoints = 2               # default rotation (0 = keep all)
//!
//! [shear_a]
//! scenario = "shear_pair"            # required: registry scenario name
//! steps = 40                         # required: target step count
//! order = 8                          # any other key: scenario config
//!
//! [vessel_b]
//! scenario = "vessel_flow"
//! steps = 20
//! out_dir = "target/farm/custom"     # optional per-job override
//! checkpoint_every = 2               # optional per-job override
//! keep_checkpoints = 3               # optional per-job override
//! ```
//!
//! The TOML subset has no array-of-tables, so each job is a named section;
//! every key that is not `scenario`/`steps`/`out_dir`/`checkpoint_every`/
//! `keep_checkpoints` is forwarded into the scenario's config section,
//! exactly like a `--set` override of the single-run CLI.
//!
//! ## Determinism
//!
//! Per-job trajectories are bit-identical to the same scenario run through
//! the single-run CLI: trajectories are thread-count invariant, builds are
//! seeded, and cached surface/operator tables are bit-exact clones of cold
//! builds. When the farm runs jobs concurrently (inside pool workers,
//! where nested parallel regions execute serially), each job's
//! `threads` knob is pinned to 1 — job-level parallelism replaces
//! step-level parallelism, without touching the trajectory.

use crate::run::{final_checkpoint_path, RunOptions};
use crate::session::{CacheTelemetry, Session};
use crate::toml::{Doc, Value};
use rayon::par;
use sim::Checkpoint;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Instant;

/// Keys of a job section that configure the farm itself; everything else
/// is forwarded to the scenario config.
const RESERVED_JOB_KEYS: [&str; 5] = [
    "scenario",
    "steps",
    "out_dir",
    "checkpoint_every",
    "keep_checkpoints",
];

/// One job of a farm manifest.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Job name (the manifest section; also the default output subdir).
    pub name: String,
    /// Registry scenario to build.
    pub scenario: String,
    /// Target step count: the job is complete once its simulation's step
    /// counter reaches this (so a resumed job runs only the remainder).
    pub steps: usize,
    /// Output directory (CSV + checkpoints) — unique per job.
    pub out_dir: PathBuf,
    /// Cadence checkpoint interval (0 = final checkpoint only).
    pub checkpoint_every: usize,
    /// Cadence checkpoints kept per job (0 = keep all).
    pub keep_checkpoints: usize,
    /// Scenario config for [`Session::build`] (job keys forwarded into
    /// the `[scenario]` section).
    pub cfg: Doc,
}

/// A parsed, validated farm manifest.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Jobs in execution order.
    pub jobs: Vec<JobSpec>,
}

impl Manifest {
    /// Parses and validates manifest text (see the module docs for the
    /// format). Rejects unknown scenario names, duplicate job names, and
    /// duplicate output directories at parse time — a farm that would
    /// interleave two jobs' checkpoints must not start.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        Manifest::from_doc(&Doc::parse(text)?)
    }

    /// [`Manifest::parse`] over an already-parsed document.
    pub fn from_doc(doc: &Doc) -> Result<Manifest, String> {
        let job_names: Vec<String> = match doc.get("farm", "jobs") {
            Some(Value::Array(v)) => v
                .iter()
                .map(|x| match x {
                    Value::Str(s) => Ok(s.clone()),
                    other => Err(format!("farm.jobs entries must be strings, got {other:?}")),
                })
                .collect::<Result<_, _>>()?,
            Some(other) => return Err(format!("farm.jobs must be an array, got {other:?}")),
            None => return Err("manifest needs a [farm] section with a `jobs` array".into()),
        };
        if job_names.is_empty() {
            return Err("farm.jobs is empty — nothing to run".into());
        }
        {
            let mut seen = BTreeSet::new();
            for name in &job_names {
                if !seen.insert(name) {
                    return Err(format!("duplicate job name `{name}` in farm.jobs"));
                }
                if name == "farm" {
                    return Err("`farm` is the manifest's own section, not a job name".into());
                }
            }
        }
        let out_root = PathBuf::from(doc.str_or("farm", "out_root", "target/farm"));
        let default_every = doc.usize_or("farm", "checkpoint_every", 0);
        let default_keep = doc.usize_or("farm", "keep_checkpoints", 0);

        let mut jobs = Vec::with_capacity(job_names.len());
        let mut out_dirs = BTreeSet::new();
        for name in &job_names {
            let scenario = match doc.get(name, "scenario") {
                Some(Value::Str(s)) => s.clone(),
                Some(other) => {
                    return Err(format!(
                        "job `{name}`: scenario must be a string, got {other:?}"
                    ))
                }
                None => {
                    return Err(format!(
                        "job `{name}`: missing `[{name}]` section with a `scenario` key"
                    ))
                }
            };
            if !crate::registry().iter().any(|s| s.name == scenario) {
                let names: Vec<&str> = crate::registry().iter().map(|s| s.name).collect();
                return Err(format!(
                    "job `{name}`: unknown scenario `{scenario}`; available: {}",
                    names.join(", ")
                ));
            }
            let steps = doc.usize_or(name, "steps", 0);
            if steps == 0 {
                return Err(format!("job `{name}`: needs `steps` ≥ 1"));
            }
            let out_dir = match doc.get(name, "out_dir") {
                Some(Value::Str(s)) => PathBuf::from(s),
                Some(other) => {
                    return Err(format!(
                        "job `{name}`: out_dir must be a string, got {other:?}"
                    ))
                }
                None => out_root.join(name),
            };
            if !out_dirs.insert(out_dir.clone()) {
                return Err(format!(
                    "job `{name}`: output dir {} is already used by another job \
                     (checkpoints would collide)",
                    out_dir.display()
                ));
            }
            let mut cfg = Doc::default();
            for key in doc.keys(name) {
                if RESERVED_JOB_KEYS.contains(&key) {
                    continue;
                }
                if let Some(v) = doc.get(name, key) {
                    cfg.set(&scenario, key, v.clone());
                }
            }
            jobs.push(JobSpec {
                name: name.clone(),
                scenario,
                steps,
                out_dir,
                checkpoint_every: doc.usize_or(name, "checkpoint_every", default_every),
                keep_checkpoints: doc.usize_or(name, "keep_checkpoints", default_keep),
                cfg,
            });
        }
        Ok(Manifest { jobs })
    }
}

/// Controls for [`run_farm`].
#[derive(Clone, Debug, Default)]
pub struct FarmOptions {
    /// Concurrent jobs (0 = the worker pool's ambient width, 1 = strictly
    /// sequential — which keeps each job's own step-level parallelism).
    pub jobs_parallel: usize,
    /// Suppress per-job progress lines.
    pub quiet: bool,
    /// Simulated crash for tests/smokes: run jobs sequentially and stop
    /// scheduling after this many jobs finished, leaving the rest
    /// [`JobStatus::Halted`] — a rerun of the same manifest resumes them.
    pub halt_after: Option<usize>,
}

/// What happened to a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran (cold or resumed) to its target step count.
    Completed,
    /// Its final-state checkpoint already reached the target — skipped.
    AlreadyDone,
    /// Not scheduled because the farm halted first ([`FarmOptions::halt_after`]).
    Halted,
    /// Build, restore, or stepping failed (see [`JobOutcome::error`]).
    Failed,
}

/// Per-job result record.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job name from the manifest.
    pub name: String,
    /// Scenario the job ran.
    pub scenario: String,
    /// Final status.
    pub status: JobStatus,
    /// Step counter the job started from (> 0 ⇒ resumed from a checkpoint).
    pub start_step: usize,
    /// Steps actually executed by this farm run.
    pub steps_run: usize,
    /// Wall-clock seconds spent on the job.
    pub wall_s: f64,
    /// Failure message for [`JobStatus::Failed`].
    pub error: Option<String>,
}

impl JobOutcome {
    /// Whether the job resumed from a pre-existing checkpoint.
    pub fn resumed(&self) -> bool {
        self.start_step > 0 && self.status == JobStatus::Completed
    }
}

/// What a farm run produced.
#[derive(Clone, Debug)]
pub struct FarmReport {
    /// Per-job outcomes, in manifest order.
    pub outcomes: Vec<JobOutcome>,
    /// Shared-cache telemetry delta over the farm window: `cache.hits()`
    /// counts builds jobs skipped by sharing immutable state.
    pub cache: CacheTelemetry,
    /// Total wall-clock seconds.
    pub wall_s: f64,
}

impl FarmReport {
    /// Jobs at their target step count (completed now or previously).
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, JobStatus::Completed | JobStatus::AlreadyDone))
            .count()
    }

    /// Jobs that resumed from a checkpoint this run.
    pub fn resumed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.resumed()).count()
    }

    /// Jobs that failed.
    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == JobStatus::Failed)
            .count()
    }

    /// One-paragraph human summary (what the CLI prints).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "farm: {}/{} jobs at target ({} resumed, {} failed) in {:.2}s\n",
            self.completed(),
            self.outcomes.len(),
            self.resumed(),
            self.failed(),
            self.wall_s
        );
        s.push_str(&format!(
            "shared caches: {} hits / {} cold builds (surfaces {}/{}, fmm operators {}/{})\n",
            self.cache.hits(),
            self.cache.builds(),
            self.cache.surface_hits,
            self.cache.surface_builds,
            self.cache.fmm_op_hits,
            self.cache.fmm_op_builds,
        ));
        s
    }
}

/// The newest checkpoint of `job` on disk, by step counter: the final
/// checkpoint and every cadence checkpoint are candidates (a resumed run
/// killed mid-flight leaves cadence files newer than an older final).
fn latest_checkpoint(job: &JobSpec) -> Option<(PathBuf, usize)> {
    let mut best: Option<(PathBuf, usize)> = None;
    let fin = final_checkpoint_path(&job.out_dir, &job.scenario);
    if let Ok(ckpt) = Checkpoint::load(&fin) {
        best = Some((fin, ckpt.steps));
    }
    let prefix = format!("{}_step", job.scenario);
    if let Ok(entries) = std::fs::read_dir(&job.out_dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(stem) = name
                .strip_prefix(&prefix)
                .and_then(|s| s.strip_suffix(".ckpt"))
            else {
                continue;
            };
            let Ok(steps) = stem.parse::<usize>() else {
                continue;
            };
            if best.as_ref().is_none_or(|(_, b)| steps > *b) {
                best = Some((entry.path(), steps));
            }
        }
    }
    best
}

/// Runs one job to its target step count: resume from the newest
/// checkpoint if one exists, skip if already at target, else step the
/// remainder with quiet streaming CSV + rotated checkpoints.
fn run_job(job: &JobSpec, pin_serial: bool) -> JobOutcome {
    let t0 = Instant::now();
    let mut outcome = JobOutcome {
        name: job.name.clone(),
        scenario: job.scenario.clone(),
        status: JobStatus::Failed,
        start_step: 0,
        steps_run: 0,
        wall_s: 0.0,
        error: None,
    };
    let resume = latest_checkpoint(job);
    if let Some((_, steps)) = &resume {
        if *steps >= job.steps {
            outcome.status = JobStatus::AlreadyDone;
            outcome.start_step = *steps;
            outcome.wall_s = t0.elapsed().as_secs_f64();
            return outcome;
        }
    }
    let result = (|| -> Result<usize, String> {
        let mut session = Session::build(&job.scenario, &job.cfg)?;
        if pin_serial {
            // jobs run concurrently inside pool workers, where nested
            // parallel regions execute serially anyway; pinning the knob
            // keeps the step from touching the process-wide thread
            // override under a running sibling job. Trajectories are
            // thread-count invariant, so this cannot change results.
            session.sim.config.threads = 1;
        }
        if let Some((path, _)) = &resume {
            let ckpt = Checkpoint::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
            session.restore(&ckpt)?;
        }
        let start = session.sim.steps;
        let opts = RunOptions {
            scenario: job.scenario.clone(),
            steps: job.steps - start,
            checkpoint_every: job.checkpoint_every,
            keep_checkpoints: job.keep_checkpoints,
            out_dir: Some(job.out_dir.clone()),
            quiet: true,
            fail_on_nonfinite: true,
        };
        session.run(&opts).map_err(|e| e.to_string())?;
        Ok(start)
    })();
    match result {
        Ok(start) => {
            outcome.status = JobStatus::Completed;
            outcome.start_step = start;
            outcome.steps_run = job.steps - start;
        }
        Err(e) => outcome.error = Some(e),
    }
    outcome.wall_s = t0.elapsed().as_secs_f64();
    outcome
}

fn print_outcome(o: &JobOutcome) {
    let how = match o.status {
        JobStatus::Completed if o.start_step > 0 => "resumed",
        JobStatus::Completed => "completed",
        JobStatus::AlreadyDone => "already at target, skipped",
        JobStatus::Halted => "halted (simulated crash)",
        JobStatus::Failed => "FAILED",
    };
    let detail = match o.status {
        JobStatus::Completed => format!(
            ", steps {} → {} in {:.2}s",
            o.start_step,
            o.start_step + o.steps_run,
            o.wall_s
        ),
        JobStatus::Failed => format!(": {}", o.error.as_deref().unwrap_or("?")),
        _ => String::new(),
    };
    println!("farm job {} [{}]: {how}{detail}", o.name, o.scenario);
}

/// Runs every job of `manifest` to its target step count over the
/// persistent worker pool. Job failures do not abort the farm — they are
/// reported per job ([`FarmReport::failed`]); manifest-level problems are
/// the `Err` case.
pub fn run_farm(manifest: &Manifest, opts: &FarmOptions) -> Result<FarmReport, String> {
    let t0 = Instant::now();
    let cache0 = CacheTelemetry::snapshot();
    let n = manifest.jobs.len();
    let outcomes = if let Some(halt) = opts.halt_after {
        // simulated crash: strictly sequential so "the first k jobs
        // finished" is a deterministic statement
        let mut outcomes = Vec::with_capacity(n);
        let mut done = 0usize;
        for job in &manifest.jobs {
            if done >= halt {
                outcomes.push(JobOutcome {
                    name: job.name.clone(),
                    scenario: job.scenario.clone(),
                    status: JobStatus::Halted,
                    start_step: 0,
                    steps_run: 0,
                    wall_s: 0.0,
                    error: None,
                });
                continue;
            }
            let o = run_job(job, false);
            if !opts.quiet {
                print_outcome(&o);
            }
            done += 1;
            outcomes.push(o);
        }
        outcomes
    } else {
        let width = if opts.jobs_parallel == 0 {
            par::num_threads()
        } else {
            opts.jobs_parallel
        };
        let concurrent = width.min(n) > 1;
        let run_all = || {
            par::map_indexed(n, |i| {
                let o = run_job(&manifest.jobs[i], concurrent);
                if !opts.quiet {
                    print_outcome(&o);
                }
                o
            })
        };
        if opts.jobs_parallel > 0 {
            par::with_override(opts.jobs_parallel, run_all)
        } else {
            run_all()
        }
    };
    let report = FarmReport {
        outcomes,
        cache: CacheTelemetry::snapshot().since(&cache0),
        wall_s: t0.elapsed().as_secs_f64(),
    };
    if !opts.quiet {
        print!("{}", report.summary());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_JOBS: &str = r#"
[farm]
jobs = ["a", "b"]
out_root = "target/test-farm"
checkpoint_every = 2

[a]
scenario = "shear_pair"
steps = 3
order = 6

[b]
scenario = "shear_pair"
steps = 2
order = 6
keep_checkpoints = 1
"#;

    #[test]
    fn manifest_parses_jobs_defaults_and_overrides() {
        let m = Manifest::parse(TWO_JOBS).unwrap();
        assert_eq!(m.jobs.len(), 2);
        let a = &m.jobs[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.scenario, "shear_pair");
        assert_eq!(a.steps, 3);
        assert_eq!(a.out_dir, PathBuf::from("target/test-farm/a"));
        assert_eq!(a.checkpoint_every, 2, "farm-level default not inherited");
        assert_eq!(a.keep_checkpoints, 0);
        assert_eq!(m.jobs[1].keep_checkpoints, 1, "per-job override lost");
        // scenario keys forwarded into the scenario's config section;
        // reserved farm keys are not
        assert_eq!(a.cfg.usize_or("shear_pair", "order", 0), 6);
        assert!(a.cfg.get("shear_pair", "steps").is_none());
        assert!(a.cfg.get("shear_pair", "scenario").is_none());
    }

    #[test]
    fn manifest_rejects_missing_farm_section_and_empty_jobs() {
        let e = Manifest::parse("[a]\nscenario = \"shear_pair\"\n").unwrap_err();
        assert!(e.contains("[farm]"), "{e}");
        let e = Manifest::parse("[farm]\njobs = []\n").unwrap_err();
        assert!(e.contains("empty"), "{e}");
    }

    #[test]
    fn manifest_rejects_bad_scenario_name() {
        let text = "[farm]\njobs = [\"a\"]\n[a]\nscenario = \"warp_drive\"\nsteps = 1\n";
        let e = Manifest::parse(text).unwrap_err();
        assert!(
            e.contains("unknown scenario") && e.contains("warp_drive"),
            "{e}"
        );
        assert!(e.contains("shear_pair"), "should list the registry: {e}");
    }

    #[test]
    fn manifest_rejects_duplicate_output_dir() {
        let text = "[farm]\njobs = [\"a\", \"b\"]\n\
                    [a]\nscenario = \"shear_pair\"\nsteps = 1\nout_dir = \"target/x\"\n\
                    [b]\nscenario = \"shear_pair\"\nsteps = 1\nout_dir = \"target/x\"\n";
        let e = Manifest::parse(text).unwrap_err();
        assert!(e.contains("already used"), "{e}");
    }

    #[test]
    fn manifest_rejects_duplicate_job_and_missing_section() {
        let e = Manifest::parse(
            "[farm]\njobs = [\"a\", \"a\"]\n[a]\nscenario = \"shear_pair\"\nsteps = 1\n",
        )
        .unwrap_err();
        assert!(e.contains("duplicate job name"), "{e}");
        let e = Manifest::parse("[farm]\njobs = [\"a\"]\n").unwrap_err();
        assert!(e.contains("missing"), "{e}");
        let e = Manifest::parse("[farm]\njobs = [\"a\"]\n[a]\nscenario = \"shear_pair\"\n")
            .unwrap_err();
        assert!(e.contains("steps"), "{e}");
    }
}
