//! The scenario run loop: stepping, per-stage timer aggregation, CSV
//! trajectory output, and periodic checkpointing.

use sim::{Checkpoint, Simulation, StepStats, StepTimers};
use std::io;
use std::path::{Path, PathBuf};

/// Controls for [`run`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Scenario name stored in checkpoints (so a restart can rebuild it).
    pub scenario: String,
    /// Number of steps to take (on restart: *additional* steps).
    pub steps: usize,
    /// Write a checkpoint every `k` steps (0 = only the final one).
    pub checkpoint_every: usize,
    /// Directory for checkpoints and CSV output; `None` disables all
    /// file output.
    pub out_dir: Option<PathBuf>,
    /// Suppress the per-step progress lines.
    pub quiet: bool,
    /// Abort the run (with an error naming the step, cell, and coefficient)
    /// the moment any cell's shape coefficients go non-finite. On by
    /// default: a NaN that survives the adaptive stepper's own gates means
    /// the simulation state is garbage and every later step wastes time.
    pub fail_on_nonfinite: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scenario: String::new(),
            steps: 10,
            checkpoint_every: 0,
            out_dir: None,
            quiet: false,
            fail_on_nonfinite: true,
        }
    }
}

/// One step's record.
#[derive(Clone, Copy, Debug)]
pub struct StepRow {
    /// Step index (1-based, global across restarts).
    pub step: usize,
    /// Component timers for this step.
    pub timers: StepTimers,
    /// Solver/contact diagnostics.
    pub stats: StepStats,
    /// Cells recycled outlet → inlet after this step.
    pub recycled: usize,
}

/// What a run produced.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Component timers summed over the executed steps.
    pub timers: StepTimers,
    /// Per-step records.
    pub rows: Vec<StepRow>,
    /// Checkpoints written, in order; the last one is the final state.
    pub checkpoints: Vec<PathBuf>,
}

impl RunReport {
    /// Renders the per-stage aggregate the paper's Figs. 4–6 tabulate.
    pub fn stage_table(&self) -> String {
        let t = &self.timers;
        let n = self.rows.len().max(1) as f64;
        let mut out = String::from("stage        total(s)  per-step(s)\n");
        for (name, v) in [
            ("COL", t.col),
            ("BIE-solve", t.bie_solve),
            ("BIE-FMM", t.bie_fmm),
            ("Other-FMM", t.other_fmm),
            ("Other", t.other),
        ] {
            out.push_str(&format!("{name:<11} {v:>9.3}  {:>11.4}\n", v / n));
        }
        out.push_str(&format!(
            "{:<11} {:>9.3}  {:>11.4}\n",
            "TOTAL",
            t.total(),
            t.total() / n
        ));
        out
    }

    /// Renders the per-step rows as CSV (matching the columns the example
    /// binaries used to hand-roll).
    pub fn to_csv(&self) -> String {
        let mut csv = String::from(CSV_HEADER);
        for r in &self.rows {
            csv.push_str(&r.csv_line());
        }
        csv
    }
}

/// Column header of the per-step CSV.
const CSV_HEADER: &str =
    "step,col_s,bie_solve_s,bie_fmm_s,other_fmm_s,other_s,total_s,gmres_iters,contacts,ncp_iters,recycled,dt_effective,dt_retries,max_edge_stretch,frozen_cells,wall_fmm_builds,wall_fmm_replans\n";

impl StepRow {
    /// One CSV line (newline-terminated) for this row.
    fn csv_line(&self) -> String {
        let t = self.timers;
        format!(
            "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{:.8},{},{:.4},{},{},{}\n",
            self.step,
            t.col,
            t.bie_solve,
            t.bie_fmm,
            t.other_fmm,
            t.other,
            t.total(),
            self.stats.bie_iterations,
            self.stats.contacts,
            self.stats.ncp_iters,
            self.recycled,
            self.stats.dt_effective,
            self.stats.dt_retries,
            self.stats.max_edge_stretch,
            self.stats.frozen_cells,
            self.stats.wall_fmm_builds,
            self.stats.wall_fmm_replans,
        )
    }
}

/// Scans every cell's shape coefficients for NaN/∞; returns the first
/// offender as `(cell, component, coefficient index)`.
fn first_nonfinite(sim: &Simulation) -> Option<(usize, usize, usize)> {
    for (ci, cell) in sim.cells.iter().enumerate() {
        for (comp, coeffs) in cell.coeffs.iter().enumerate() {
            if let Some(k) = coeffs.data.iter().position(|v| !v.is_finite()) {
                return Some((ci, comp, k));
            }
        }
    }
    None
}

fn checkpoint_path(dir: &Path, scenario: &str, step: usize) -> PathBuf {
    dir.join(format!("{scenario}_step{step:06}.ckpt"))
}

/// Path of the final-state checkpoint a run writes.
pub fn final_checkpoint_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("{scenario}_final.ckpt"))
}

/// Steps `sim` for `opts.steps` steps, recycling outlet cells when
/// `recycle` is set, checkpointing on the configured cadence, and writing
/// `trajectory.csv` plus a final checkpoint into `opts.out_dir`.
pub fn run(sim: &mut Simulation, recycle: bool, opts: &RunOptions) -> io::Result<RunReport> {
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)?;
    }
    // continuation runs (restarts) get their own CSV instead of
    // overwriting the earlier portion of the trajectory; rows are appended
    // as they happen so a killed run keeps everything up to its last step
    let start_step = sim.steps;
    let csv_name = if start_step == 0 {
        "trajectory.csv".to_string()
    } else {
        format!("trajectory_from_{:06}.csv", start_step + 1)
    };
    let mut csv_file = match &opts.out_dir {
        Some(dir) => {
            let mut f = std::fs::File::create(dir.join(&csv_name))?;
            std::io::Write::write_all(&mut f, CSV_HEADER.as_bytes())?;
            Some(f)
        }
        None => None,
    };
    let mut report = RunReport::default();
    if !opts.quiet {
        println!(
            "{}: {} cells, {} dofs, dt = {}, {} steps",
            opts.scenario,
            sim.cells.len(),
            sim.dofs(),
            sim.config.dt,
            opts.steps
        );
        println!("step  total(s)  COL(s)  BIE(s)  gmres  contacts  recycled  dt_eff  retries");
    }
    for _ in 0..opts.steps {
        let t = sim.step();
        if opts.fail_on_nonfinite {
            if let Some((ci, comp, k)) = first_nonfinite(sim) {
                return Err(io::Error::other(format!(
                    "non-finite state after step {}: cell {ci}, component {}, \
                     coefficient {k} (rerun with --allow-nonfinite to continue anyway)",
                    sim.steps,
                    ["x", "y", "z"][comp],
                )));
            }
        }
        let recycled = if recycle { sim.recycle_cells() } else { 0 };
        let row = StepRow {
            step: sim.steps,
            timers: t,
            stats: sim.last_stats,
            recycled,
        };
        report.timers.accumulate(&t);
        if !opts.quiet {
            println!(
                "{:>4}  {:>8.3}  {:>6.3}  {:>6.3}  {:>5}  {:>8}  {:>8}  {:>6.4}  {:>7}",
                row.step,
                t.total(),
                t.col,
                t.bie_solve + t.bie_fmm,
                row.stats.bie_iterations,
                row.stats.contacts,
                recycled,
                row.stats.dt_effective,
                row.stats.dt_retries
            );
        }
        if let Some(f) = &mut csv_file {
            std::io::Write::write_all(f, row.csv_line().as_bytes())?;
        }
        report.rows.push(row);
        if let Some(dir) = &opts.out_dir {
            if opts.checkpoint_every > 0 && sim.steps.is_multiple_of(opts.checkpoint_every) {
                let path = checkpoint_path(dir, &opts.scenario, sim.steps);
                Checkpoint::write(sim, &opts.scenario, &path)?;
                report.checkpoints.push(path);
            }
        }
    }
    if let Some(dir) = &opts.out_dir {
        let path = final_checkpoint_path(dir, &opts.scenario);
        Checkpoint::write(sim, &opts.scenario, &path)?;
        report.checkpoints.push(path);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_table_and_csv_render() {
        let mut report = RunReport::default();
        let t = StepTimers {
            col: 0.5,
            bie_solve: 0.25,
            ..Default::default()
        };
        report.timers.accumulate(&t);
        report.rows.push(StepRow {
            step: 1,
            timers: t,
            stats: StepStats {
                bie_iterations: 12,
                contacts: 3,
                dt_effective: 0.005,
                dt_retries: 2,
                max_edge_stretch: 1.25,
                frozen_cells: 1,
                wall_fmm_builds: 1,
                wall_fmm_replans: 4,
                ..Default::default()
            },
            recycled: 1,
        });
        let table = report.stage_table();
        assert!(table.contains("COL") && table.contains("0.500"), "{table}");
        let csv = report.to_csv();
        assert!(csv.lines().count() == 2);
        assert!(csv.contains(",12,3,"), "{csv}");
        // the adaptive-dt diagnostics are first-class columns
        let header = csv.lines().next().unwrap();
        for col in [
            "dt_effective",
            "dt_retries",
            "max_edge_stretch",
            "frozen_cells",
            "wall_fmm_builds",
            "wall_fmm_replans",
        ] {
            assert!(header.contains(col), "missing column {col}: {header}");
        }
        assert!(csv.contains(",0.00500000,2,1.2500,1,1,4"), "{csv}");
    }
}
