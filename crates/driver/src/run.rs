//! Run-loop records and the pre-split entry point: [`StepRow`],
//! [`RunReport`], [`RunOptions`], and [`run`] — now a thin composition
//! over the [`crate::session`] step loop and IO sinks.

use sim::{Simulation, StepStats, StepTimers};
use std::io;
use std::path::{Path, PathBuf};

/// Controls for [`run`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Scenario name stored in checkpoints (so a restart can rebuild it).
    pub scenario: String,
    /// Number of steps to take (on restart: *additional* steps).
    pub steps: usize,
    /// Write a checkpoint every `k` steps (0 = only the final one).
    pub checkpoint_every: usize,
    /// Cadence checkpoints to keep on disk (rotation): 0 = keep all,
    /// `k` = delete all but the newest `k` (the final-state checkpoint is
    /// never rotated). Long-horizon farm jobs use this so resumability
    /// does not cost one file per cadence tick.
    pub keep_checkpoints: usize,
    /// Directory for checkpoints and CSV output; `None` disables all
    /// file output.
    pub out_dir: Option<PathBuf>,
    /// Suppress the per-step progress lines.
    pub quiet: bool,
    /// Abort the run (with an error naming the step, cell, and coefficient)
    /// the moment any cell's shape coefficients go non-finite. On by
    /// default: a NaN that survives the adaptive stepper's own gates means
    /// the simulation state is garbage and every later step wastes time.
    pub fail_on_nonfinite: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scenario: String::new(),
            steps: 10,
            checkpoint_every: 0,
            keep_checkpoints: 0,
            out_dir: None,
            quiet: false,
            fail_on_nonfinite: true,
        }
    }
}

/// One step's record.
#[derive(Clone, Copy, Debug)]
pub struct StepRow {
    /// Step index (1-based, global across restarts).
    pub step: usize,
    /// Component timers for this step.
    pub timers: StepTimers,
    /// Solver/contact diagnostics.
    pub stats: StepStats,
    /// Cells recycled outlet → inlet after this step.
    pub recycled: usize,
}

/// What a run produced.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Component timers summed over the executed steps.
    pub timers: StepTimers,
    /// Per-step records.
    pub rows: Vec<StepRow>,
    /// Checkpoints written, in order; the last one is the final state.
    pub checkpoints: Vec<PathBuf>,
}

impl RunReport {
    /// Renders the per-stage aggregate the paper's Figs. 4–6 tabulate.
    pub fn stage_table(&self) -> String {
        let t = &self.timers;
        let n = self.rows.len().max(1) as f64;
        let mut out = String::from("stage        total(s)  per-step(s)\n");
        for (name, v) in [
            ("COL", t.col),
            ("BIE-solve", t.bie_solve),
            ("BIE-FMM", t.bie_fmm),
            ("Other-FMM", t.other_fmm),
            ("Other", t.other),
        ] {
            out.push_str(&format!("{name:<11} {v:>9.3}  {:>11.4}\n", v / n));
        }
        out.push_str(&format!(
            "{:<11} {:>9.3}  {:>11.4}\n",
            "TOTAL",
            t.total(),
            t.total() / n
        ));
        out
    }

    /// Renders the per-step rows as CSV (matching the columns the example
    /// binaries used to hand-roll).
    pub fn to_csv(&self) -> String {
        let mut csv = String::from(CSV_HEADER);
        for r in &self.rows {
            csv.push_str(&r.csv_line());
        }
        csv
    }
}

/// Column header of the per-step CSV.
pub(crate) const CSV_HEADER: &str =
    "step,col_s,bie_solve_s,bie_fmm_s,other_fmm_s,other_s,total_s,gmres_iters,contacts,ncp_iters,recycled,dt_effective,dt_retries,max_edge_stretch,frozen_cells,wall_fmm_builds,wall_fmm_replans,flux_imbalance\n";

impl StepRow {
    /// One CSV line (newline-terminated) for this row.
    pub(crate) fn csv_line(&self) -> String {
        let t = self.timers;
        format!(
            "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{:.8},{},{:.4},{},{},{},{:.3e}\n",
            self.step,
            t.col,
            t.bie_solve,
            t.bie_fmm,
            t.other_fmm,
            t.other,
            t.total(),
            self.stats.bie_iterations,
            self.stats.contacts,
            self.stats.ncp_iters,
            self.recycled,
            self.stats.dt_effective,
            self.stats.dt_retries,
            self.stats.max_edge_stretch,
            self.stats.frozen_cells,
            self.stats.wall_fmm_builds,
            self.stats.wall_fmm_replans,
            self.stats.flux_imbalance,
        )
    }
}

/// Path of a cadence checkpoint at the given step counter.
pub(crate) fn checkpoint_path(dir: &Path, scenario: &str, step: usize) -> PathBuf {
    dir.join(format!("{scenario}_step{step:06}.ckpt"))
}

/// Path of the final-state checkpoint a run writes.
pub fn final_checkpoint_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("{scenario}_final.ckpt"))
}

/// Steps `sim` for `opts.steps` steps, recycling outlet cells when
/// `recycle` is set, checkpointing on the configured cadence, and writing
/// `trajectory.csv` plus a final checkpoint into `opts.out_dir`.
///
/// This is the pre-split entry point, kept (bit-identical in console, CSV,
/// and checkpoint output) as a delegating wrapper over the composable
/// pieces in [`crate::session`].
pub fn run(sim: &mut Simulation, recycle: bool, opts: &RunOptions) -> io::Result<RunReport> {
    crate::session::run_with(sim, recycle, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_table_and_csv_render() {
        let mut report = RunReport::default();
        let t = StepTimers {
            col: 0.5,
            bie_solve: 0.25,
            ..Default::default()
        };
        report.timers.accumulate(&t);
        report.rows.push(StepRow {
            step: 1,
            timers: t,
            stats: StepStats {
                bie_iterations: 12,
                contacts: 3,
                dt_effective: 0.005,
                dt_retries: 2,
                max_edge_stretch: 1.25,
                frozen_cells: 1,
                wall_fmm_builds: 1,
                wall_fmm_replans: 4,
                flux_imbalance: 2.5e-13,
                ..Default::default()
            },
            recycled: 1,
        });
        let table = report.stage_table();
        assert!(table.contains("COL") && table.contains("0.500"), "{table}");
        let csv = report.to_csv();
        assert!(csv.lines().count() == 2);
        assert!(csv.contains(",12,3,"), "{csv}");
        // the adaptive-dt diagnostics are first-class columns
        let header = csv.lines().next().unwrap();
        for col in [
            "dt_effective",
            "dt_retries",
            "max_edge_stretch",
            "frozen_cells",
            "wall_fmm_builds",
            "wall_fmm_replans",
            "flux_imbalance",
        ] {
            assert!(header.contains(col), "missing column {col}: {header}");
        }
        assert!(
            csv.contains(",0.00500000,2,1.2500,1,1,4,2.500e-13"),
            "{csv}"
        );
    }
}
