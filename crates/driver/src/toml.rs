//! A hand-rolled parser for the TOML subset scenario configs use.
//!
//! The environment is offline (no `toml`/`serde` crates), so this
//! implements exactly what declarative scenario files need: `[section]`
//! headers, `key = value` pairs, `#` comments, and scalar values (quoted
//! strings, booleans, integers, floats) plus flat arrays of scalars.
//! Nested tables, dotted keys, dates, and multi-line strings are out of
//! scope and rejected with a line-numbered error.

use std::collections::BTreeMap;

/// A parsed scalar or flat array value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Quoted string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal (no decimal point or exponent).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Flat array of scalars, e.g. `[0.0, 0.0, -4.0]`.
    Array(Vec<Value>),
}

impl Value {
    /// Numeric view: integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integer view. Whole-number floats coerce (`3.0` → 3),
    /// so a stray decimal point in a config does not silently fall back
    /// to the scenario default.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as usize),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f < u32::MAX as f64 => {
                Some(*f as usize)
            }
            _ => None,
        }
    }
}

/// A parsed document: sections of key/value pairs. Keys before the first
/// `[section]` header land in the root section `""`.
///
/// The typed `*_or` lookups are deliberately lenient: a missing key or a
/// type-mismatched value falls back to the caller's default (scenario
/// builders validate ranges, not spelling). Misspelled keys are therefore
/// silently inert — `sim-driver` prints the effective cell/dof counts at
/// startup precisely so a misconfigured run is visible immediately.
#[derive(Clone, Debug, Default)]
pub struct Doc {
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

impl Doc {
    /// Parses a document, rejecting anything outside the supported subset.
    pub fn parse(text: &str) -> Result<Doc, String> {
        let mut doc = Doc::default();
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let err = |m: &str| format!("line {}: {m}: `{}`", lineno + 1, raw.trim());
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| err("unterminated section"))?;
                let name = name.trim();
                if name.is_empty() || name.contains(['[', ']', '.']) {
                    return Err(err("unsupported section name"));
                }
                section = name.to_string();
                doc.sections.entry(section.clone()).or_default();
            } else if let Some(eq) = find_unquoted(&line, '=') {
                let key = line[..eq].trim();
                if key.is_empty() || key.contains(['.', ' ', '"']) {
                    return Err(err("unsupported key"));
                }
                let value = parse_value(line[eq + 1..].trim()).map_err(|m| err(&m))?;
                doc.sections
                    .entry(section.clone())
                    .or_default()
                    .insert(key.to_string(), value);
            } else {
                return Err(err("expected `[section]` or `key = value`"));
            }
        }
        Ok(doc)
    }

    /// Raw lookup.
    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.sections.get(section).and_then(|s| s.get(key))
    }

    /// Inserts/overwrites a value (used for CLI `--set` overrides).
    pub fn set(&mut self, section: &str, key: &str, value: Value) {
        self.sections
            .entry(section.to_string())
            .or_default()
            .insert(key.to_string(), value);
    }

    /// Numeric lookup with a default.
    pub fn f64_or(&self, section: &str, key: &str, default: f64) -> f64 {
        self.get(section, key)
            .and_then(Value::as_f64)
            .unwrap_or(default)
    }

    /// Integer lookup with a default.
    pub fn usize_or(&self, section: &str, key: &str, default: usize) -> usize {
        self.get(section, key)
            .and_then(Value::as_usize)
            .unwrap_or(default)
    }

    /// Boolean lookup with a default.
    pub fn bool_or(&self, section: &str, key: &str, default: bool) -> bool {
        match self.get(section, key) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }

    /// String lookup with a default.
    pub fn str_or<'a>(&'a self, section: &str, key: &str, default: &'a str) -> &'a str {
        match self.get(section, key) {
            Some(Value::Str(s)) => s,
            _ => default,
        }
    }

    /// Keys present in a section (for diagnostics).
    pub fn keys(&self, section: &str) -> Vec<&str> {
        self.sections
            .get(section)
            .map(|s| s.keys().map(String::as_str).collect())
            .unwrap_or_default()
    }
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Index of `target` outside of quotes.
fn find_unquoted(line: &str, target: char) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            c if c == target && !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_value(s: &str) -> Result<Value, String> {
    if s.is_empty() {
        return Err("missing value".into());
    }
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest.strip_suffix('"').ok_or("unterminated string")?;
        if inner.contains('"') {
            return Err("embedded quotes are unsupported".into());
        }
        // single left-to-right scan — chained replace() would mis-decode
        // a literal backslash followed by 'n' or 't'
        let mut unescaped = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                unescaped.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => unescaped.push('\n'),
                Some('t') => unescaped.push('\t'),
                Some('\\') => unescaped.push('\\'),
                other => {
                    return Err(format!(
                        "unsupported escape `\\{}` (only \\n, \\t, \\\\)",
                        other.map(String::from).unwrap_or_default()
                    ))
                }
            }
        }
        return Ok(Value::Str(unescaped));
    }
    if let Some(rest) = s.strip_prefix('[') {
        let inner = rest.strip_suffix(']').ok_or("unterminated array")?;
        let mut items = Vec::new();
        let trimmed = inner.trim();
        if !trimmed.is_empty() {
            for item in trimmed.split(',') {
                let v = parse_value(item.trim())?;
                if matches!(v, Value::Array(_)) {
                    return Err("nested arrays are unsupported".into());
                }
                items.push(v);
            }
        }
        return Ok(Value::Array(items));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let clean = s.replace('_', "");
    if !clean.contains(['.', 'e', 'E']) {
        if let Ok(i) = clean.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    if let Ok(f) = clean.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!(
        "unsupported value `{s}` (expected string, bool, number, or array)"
    ))
}

/// Parses a CLI `key=value` override into `(key, Value)`, inferring the
/// type the same way the file parser does (bare words become strings).
pub fn parse_override(s: &str) -> Result<(String, Value), String> {
    let (key, raw) = s
        .split_once('=')
        .ok_or_else(|| format!("`{s}`: expected key=value"))?;
    let key = key.trim().to_string();
    if key.is_empty() {
        return Err(format!("`{s}`: empty key"));
    }
    let raw = raw.trim();
    let value = parse_value(raw).unwrap_or_else(|_| Value::Str(raw.to_string()));
    Ok((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = Doc::parse(
            r#"
# scenario config
title = "dense # run"   # inline comment
[shear_pair]
order = 12
dt = 2e-2
shear_rate = 1.0
enabled = true
gravity = [0.0, 0.0, -4.0]
label = "two-cell"
big = 1_000
"#,
        )
        .unwrap();
        assert_eq!(doc.str_or("", "title", ""), "dense # run");
        assert_eq!(doc.usize_or("shear_pair", "order", 0), 12);
        assert!((doc.f64_or("shear_pair", "dt", 0.0) - 0.02).abs() < 1e-15);
        assert!(doc.bool_or("shear_pair", "enabled", false));
        assert_eq!(doc.get("shear_pair", "big").unwrap().as_f64(), Some(1000.0));
        match doc.get("shear_pair", "gravity").unwrap() {
            Value::Array(v) => {
                assert_eq!(v.len(), 3);
                assert_eq!(v[2].as_f64(), Some(-4.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
        // defaults for absent keys
        assert_eq!(doc.usize_or("shear_pair", "missing", 7), 7);
        assert_eq!(doc.f64_or("nosection", "dt", 0.5), 0.5);
    }

    #[test]
    fn string_escapes_decode_left_to_right() {
        // `a\\nb` in the file is a literal backslash then 'n', NOT a newline
        let doc = Doc::parse("x = \"a\\\\nb\"\ny = \"tab\\there\"\nz = \"nl\\nend\"\n").unwrap();
        assert_eq!(doc.str_or("", "x", ""), "a\\nb");
        assert_eq!(doc.str_or("", "y", ""), "tab\there");
        assert_eq!(doc.str_or("", "z", ""), "nl\nend");
        assert!(Doc::parse("q = \"bad\\q\"\n").is_err(), "unknown escape");
        assert!(
            Doc::parse("q = \"trail\\\"\n").is_err(),
            "trailing backslash"
        );
        // whole-number floats coerce to usize (config typo tolerance)
        let doc = Doc::parse("n = 3.0\nm = 3.5\n").unwrap();
        assert_eq!(doc.usize_or("", "n", 0), 3);
        assert_eq!(doc.usize_or("", "m", 9), 9, "fractional floats fall back");
    }

    #[test]
    fn rejects_out_of_subset_syntax() {
        assert!(Doc::parse("[a.b]\n").is_err(), "dotted sections");
        assert!(Doc::parse("a.b = 1\n").is_err(), "dotted keys");
        assert!(Doc::parse("x = \"unterminated\n").is_err());
        assert!(Doc::parse("x = [1, [2]]\n").is_err(), "nested arrays");
        assert!(Doc::parse("just a line\n").is_err());
        assert!(Doc::parse("x = 1979-05-27\n").is_err(), "dates");
        // the error carries the line number
        let e = Doc::parse("ok = 1\nbad line\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }

    #[test]
    fn overrides_parse_like_file_values() {
        let (k, v) = parse_override("dt=0.05").unwrap();
        assert_eq!(k, "dt");
        assert_eq!(v, Value::Float(0.05));
        let (_, v) = parse_override("label=fast").unwrap();
        assert_eq!(v, Value::Str("fast".into()));
        let (_, v) = parse_override("n=3").unwrap();
        assert_eq!(v, Value::Int(3));
        assert!(parse_override("nokey").is_err());
    }

    #[test]
    fn set_overrides_file_values() {
        let mut doc = Doc::parse("[s]\ndt = 0.1\n").unwrap();
        doc.set("s", "dt", Value::Float(0.2));
        assert_eq!(doc.f64_or("s", "dt", 0.0), 0.2);
        assert_eq!(doc.keys("s"), vec!["dt"]);
    }
}
