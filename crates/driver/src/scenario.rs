//! The scenario registry: every runnable workload, in one place.
//!
//! A scenario is a named builder from a declarative config ([`Doc`]) to a
//! ready-to-step [`Simulation`]. The `examples/` binaries, the `sim-driver`
//! CLI, and the `step_bench` perf harness all construct domains through
//! this registry, so a scenario definition lives exactly once.
//!
//! Builders are deterministic: all randomness comes from seeded RNGs whose
//! seeds are config keys, which is what lets a checkpoint restart rebuild
//! the identical domain (verified via [`sim::vessel_digest`]).
//!
//! Every scenario reads its keys from the config section named after it
//! (e.g. `[shear_pair]`); unknown scenarios list the registry in the error.

use crate::toml::Doc;
use linalg::{GmresOptions, Vec3};
use patch::{capsule_tube, modulated_torus, Serpentine, StraightLine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim::{
    cells_from_seeds, fill_seeds, fill_seeds_packed, refined_surface, vessel_from_network,
    DtControl, NetworkSpec, SegmentSpec, SimConfig, Simulation, Vessel,
};
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, rotated_coeffs, sphere_coeffs, Cell, CellParams};

/// A registered scenario.
pub struct ScenarioSpec {
    /// Registry name (also the config section the builder reads).
    pub name: &'static str,
    /// One-line description for `sim-driver list`.
    pub summary: &'static str,
    /// Builder from config to a ready simulation.
    pub build: fn(&Doc) -> Result<Built, String>,
}

/// A built scenario: the simulation plus its per-step policy.
pub struct Built {
    /// The ready-to-step simulation.
    pub sim: Simulation,
    /// Whether the run loop should recycle outlet cells into the inlet
    /// after each step (§5.1 — vessel-flow style scenarios).
    pub recycle: bool,
}

/// All registered scenarios.
pub fn registry() -> &'static [ScenarioSpec] {
    &[
        ScenarioSpec {
            name: "shear_pair",
            summary: "two RBCs overtaking in linear shear, free space (Fig. 10)",
            build: build_shear_pair,
        },
        ScenarioSpec {
            name: "sedimentation",
            summary: "cells settling under gravity in a closed vertical capsule (Fig. 7)",
            build: build_sedimentation,
        },
        ScenarioSpec {
            name: "vessel_flow",
            summary:
                "confined flow through a serpentine vessel with inlet/outlet + recycling (Fig. 1)",
            build: build_vessel_flow,
        },
        ScenarioSpec {
            name: "dense_fill",
            summary: "dense RBC suspension filling a modulated torus, walls only (Fig. 8)",
            build: build_dense_fill,
        },
        ScenarioSpec {
            name: "dense_fill_packed",
            summary:
                "rouleau column at paper-scale ~40% hematocrit in a snug tube (adaptive-dt stress)",
            build: build_dense_fill_packed,
        },
        ScenarioSpec {
            name: "poiseuille_train",
            summary: "a train of cells advected by Poiseuille inflow in a straight tube",
            build: build_poiseuille_train,
        },
        ScenarioSpec {
            name: "random_suspension",
            summary:
                "randomly oriented cells on a jittered lattice in background shear, free space",
            build: build_random_suspension,
        },
        ScenarioSpec {
            name: "bifurcation",
            summary:
                "Y-bifurcation vessel with flux-balanced ports splitting a cell train (§6 networks)",
            build: build_bifurcation,
        },
        ScenarioSpec {
            name: "vessel_ladder",
            summary:
                "one rung of the tube-diameter ladder: straight tube at fixed flux (Fåhræus–Lindqvist)",
            build: build_vessel_ladder,
        },
    ]
}

/// Looks up and builds a scenario by name.
pub fn build(name: &str, cfg: &Doc) -> Result<Built, String> {
    let spec = registry().iter().find(|s| s.name == name).ok_or_else(|| {
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        format!("unknown scenario `{name}`; available: {}", names.join(", "))
    })?;
    (spec.build)(cfg)
}

/// Shared config plumbing: `SimConfig` from the scenario's section with
/// per-scenario defaults for `dt` and `collision_delta`.
///
/// Adaptive time-step knobs (all optional; see [`sim::DtControl`]):
/// `dt_adaptive` (default true), `dt_min` (default 0 = dt/16),
/// `dt_grow_after`, `substep`, `dt_max_stretch`, `dt_max_vol_drift`.
///
/// Parallelism: `threads` (default 0 = available parallelism) pins every
/// parallel stage of `Simulation::step` to that many workers. Trajectories
/// are bit-identical at any thread count; the knob only trades wall time,
/// so it is also settable from the CLI via `sim-driver --threads`.
fn sim_config(cfg: &Doc, sec: &str, dt: f64, collision_delta: f64) -> SimConfig {
    let gravity = match cfg.get(sec, "gravity") {
        Some(crate::toml::Value::Array(v)) if v.len() == 3 => Vec3::new(
            v[0].as_f64().unwrap_or(0.0),
            v[1].as_f64().unwrap_or(0.0),
            v[2].as_f64().unwrap_or(0.0),
        ),
        _ => Vec3::ZERO,
    };
    let dtc = DtControl::default();
    let dt_control = DtControl {
        enabled: cfg.bool_or(sec, "dt_adaptive", dtc.enabled),
        dt_min: cfg.f64_or(sec, "dt_min", dtc.dt_min),
        grow_after: cfg.usize_or(sec, "dt_grow_after", dtc.grow_after),
        substep: cfg.bool_or(sec, "substep", dtc.substep),
        max_stretch: cfg.f64_or(sec, "dt_max_stretch", dtc.max_stretch),
        max_volume_drift: cfg.f64_or(sec, "dt_max_vol_drift", dtc.max_volume_drift),
    };
    SimConfig {
        dt: cfg.f64_or(sec, "dt", dt),
        collision_delta: cfg.f64_or(sec, "collision_delta", collision_delta),
        shear_rate: cfg.f64_or(sec, "shear_rate", 0.0),
        gravity,
        disable_collisions: cfg.bool_or(sec, "disable_collisions", false),
        dt_control,
        threads: cfg.usize_or(sec, "threads", 0),
        ..Default::default()
    }
}

fn cell_params(cfg: &Doc, sec: &str, kappa_b: f64, k_area: f64) -> CellParams {
    CellParams {
        kappa_b: cfg.f64_or(sec, "kappa_b", kappa_b),
        k_area: cfg.f64_or(sec, "k_area", k_area),
        ..Default::default()
    }
}

/// Reads the `wall_refine` knob of a vessel scenario: the number of
/// [`patch::BoundarySurface::refine`] levels applied to the vessel surface
/// (`default` = the scenario's registry level; each level splits every
/// patch in 4). Most scenarios default to the coarse layout (0);
/// `vessel_flow` — the headline confined-flow run — defaults to 1 now that
/// the persistent wall FMM makes the refined operator affordable per step.
fn wall_refine(cfg: &Doc, sec: &str, default: usize) -> u32 {
    cfg.usize_or(sec, "wall_refine", default) as u32
}

/// Collision-mesh sampling per patch under refinement: halve `col_m` per
/// level (floor 3) so the *total* wall collision-vertex count stays
/// roughly constant — refinement sharpens the boundary operator, not the
/// contact mesh, and carrying `col_m²` vertices on 4× the patches per
/// level would blow up the COL broad phase for nothing.
fn wall_col_m(col_m: usize, levels: u32) -> usize {
    if levels == 0 {
        col_m
    } else {
        (col_m >> levels).max(3)
    }
}

/// Boundary-solver options shared by the vessel scenarios.
///
/// The check-point family of a node spans `(1 + p_extrap) · check_r · L̂`
/// along the inward normal, and the first check point sits `check_r · L̂`
/// off the wall. Two constraints fight over `check_r`:
///
/// - *stay inside the lumen*: `(1 + p_extrap) · check_r · L̂ ≲ 0.6·radius`,
///   or the far check points cross into the near-singular zone of the
///   opposite wall and the extrapolated interior limit turns garbage (the
///   seed harness ran every vessel solve into its iteration cap this way);
/// - *stay resolved by the fine quadrature*: `check_r · L̂ ≳ 3 h_fine`, or
///   the potential at the nearest check point is itself quadrature noise.
///
/// `h_fine ∝ L̂`, so the second constraint pins `check_r` from below
/// *independently of refinement* while the first caps `check_r · L̂`
/// absolutely. On the coarse registry vessels (`L̂` ≈ tube radius) no value
/// satisfies both; the default `check_r = 0.06` picks lumen safety and
/// accepts the ~0.7-relative operator error recorded in ROADMAP.md. With
/// `wall_refine ≥ 1` the patch size halves per level, the lumen constraint
/// relaxes, and the default switches to the paper's production
/// `check_r = 0.15` — which is what actually makes the analytic-tube error
/// converge (see `crates/bie/tests/accuracy.rs`).
///
/// Refinement alone leaves the second constraint binding at
/// `check_r = 0.15` (`R ≈ 1.3 h_fine` at `qf = q = 8`), flooring the
/// analytic-tube error near 2e-2; the refined defaults therefore also
/// raise the fine order to `bie_qf = q + 4`, which halves `h_fine`
/// (`R ≈ 2.1 h_fine`) and buys another ~10× (measured in
/// `bench --bin tube_accuracy`). `bie_tol` tightens with it: the
/// unrefined solves floor near 2e-2 relative (the stall check is what
/// stops them, not the nominal `1e-5`), while the refined configuration
/// reaches ~1e-3 on *resolvable* boundary data — its `2e-3` default is
/// attainable on smooth fields (the analytic suite converges to it in
/// 3–4 iterations). Scenario port boundary data is rim-smooth (the
/// mollified quartic profile of [`sim::Vessel::new`] replaced the
/// parabolic one whose O(1) seam jump floored refined residuals at ~0.4
/// regardless of `wall_refine`), which cut the refined cell-free floor
/// ~4× to ~0.11 — but through-flow data still excites a slowly
/// converging spectral tail, so vessel solves sit at the stall check
/// rather than `bie_tol` at practical iteration budgets (the probe
/// record lives on `sim::domain`'s
/// `refined_serpentine_port_floor_improved` test; preconditioning is
/// the open item).
fn bie_options(cfg: &Doc, sec: &str, q: usize, refine: u32) -> Result<bie::BieOptions, String> {
    // the PR 3-era boolean knob was replaced by `bie_backend`; the TOML
    // layer ignores unknown keys, so reject it explicitly rather than
    // silently running a different backend than the config asked for
    if cfg.get(sec, "bie_fmm").is_some() {
        return Err(format!(
            "{sec}: `bie_fmm` was replaced by `bie_backend` \
             (\"auto\", \"dense\", or \"fmm\")"
        ));
    }
    let refined = refine > 0;
    let check_r = cfg.f64_or(sec, "bie_check_r", if refined { 0.15 } else { 0.06 });
    let qf = cfg.usize_or(sec, "bie_qf", if refined { q + 4 } else { 0 });
    // matvec/eval FMM tuning. The refined path defaults to order 4: the
    // quadrature floor sits near 1e-3, so the ~4e-4 operator error of
    // order 6 buys nothing over order 4's (see the per-order ladder in
    // crates/bie/tests/tube.rs), while the smaller equivalent surfaces
    // roughly halve the M2L work per solve. Unrefined solves keep the
    // library default (order 6), whose extra digits are free at those
    // patch counts because they run dense anyway.
    let fmm_default = bie::FmmOptions::default();
    let fmm = bie::FmmOptions {
        order: cfg.usize_or(
            sec,
            "bie_fmm_order",
            if refined { 4 } else { fmm_default.order },
        ),
        leaf_capacity: cfg.usize_or(sec, "bie_fmm_leaf_capacity", fmm_default.leaf_capacity),
        max_depth: fmm_default.max_depth,
    };
    let backend = match cfg.str_or(sec, "bie_backend", "auto") {
        "auto" => bie::MatvecBackend::Auto,
        "dense" => bie::MatvecBackend::Dense,
        "fmm" => bie::MatvecBackend::Fmm,
        other => {
            return Err(format!(
                "{sec}: unknown bie_backend `{other}` (expected auto, dense, or fmm)"
            ))
        }
    };
    Ok(bie::BieOptions {
        backend,
        qf,
        fmm,
        gmres: GmresOptions {
            tol: cfg.f64_or(sec, "bie_tol", if refined { 2e-3 } else { 1e-5 }),
            max_iters: cfg.usize_or(sec, "bie_max_iters", 30),
            // vessel rhs from near-wall cells carries content beyond the
            // quadrature's resolution, flooring the residual; stop the
            // iteration when it stops improving instead of burning the cap
            stall_ratio: cfg.f64_or(sec, "bie_stall", 0.9),
            // short cycles so the cross-cycle (true-residual) stagnation
            // check engages: the Arnoldi estimate alone cannot see the
            // floor from a warm start
            restart: cfg.usize_or(sec, "bie_restart", 10),
            ..Default::default()
        },
        check: bie::CheckSpec::Linear {
            big_r: check_r,
            small_r: check_r,
        },
        p_extrap: cfg.usize_or(sec, "bie_p_extrap", 5),
        precond: cfg.bool_or(sec, "bie_precond", false),
        ..Default::default()
    })
}

/// Two cells offset in z inside the linear shear `u = [γ̇ z, 0, 0]`; the
/// upper cell overtakes the lower one with contact handling keeping them
/// apart (ported from `examples/src/shear_pair.rs`).
fn build_shear_pair(cfg: &Doc) -> Result<Built, String> {
    let sec = "shear_pair";
    let p = cfg.usize_or(sec, "order", 12);
    let basis = SphBasis::new(p);
    let params = cell_params(cfg, sec, 0.02, 2.0);
    let sep = cfg.f64_or(sec, "separation_x", 1.4);
    let off = cfg.f64_or(sec, "offset_z", 0.25);
    let radius = cfg.f64_or(sec, "cell_radius", 1.0);
    let cells = vec![
        Cell::new(
            &basis,
            biconcave_coeffs(&basis, radius, Vec3::new(-sep, 0.0, off)),
            params,
        ),
        Cell::new(
            &basis,
            biconcave_coeffs(&basis, radius, Vec3::new(sep, 0.0, -off)),
            params,
        ),
    ];
    let mut config = sim_config(cfg, sec, 0.02, 0.05);
    config.shear_rate = cfg.f64_or(sec, "shear_rate", 1.0);
    Ok(Built {
        sim: Simulation::new(basis, cells, None, config),
        recycle: false,
    })
}

/// A closed vertical capsule filled with cells settling under gravity
/// (ported from `examples/src/sedimentation.rs`).
fn build_sedimentation(cfg: &Doc) -> Result<Built, String> {
    let sec = "sedimentation";
    let length = cfg.f64_or(sec, "tube_length", 6.0);
    let radius = cfg.f64_or(sec, "tube_radius", 1.6);
    let line = StraightLine {
        a: Vec3::ZERO,
        b: Vec3::new(0.0, 0.0, length),
    };
    let refine = wall_refine(cfg, sec, 0);
    let q = cfg.usize_or(sec, "patch_order", 8);
    // cells are seeded from the *unrefined* surface: refinement reproduces
    // the same geometry, but keeping the seed lattice's accept/reject tests
    // on the coarse patch layout makes the initial packing bit-identical
    // across wall_refine levels (so accuracy/cost comparisons share one
    // initial condition)
    let coarse = capsule_tube(&line, radius, cfg.usize_or(sec, "tube_segments", 3), q);
    // refinement goes through the process-wide shared cache (sim::caches):
    // farm jobs and checkpoint-restore rebuilds of the same geometry reuse
    // one immutable refined copy instead of re-fitting 4^levels patches
    let surface = refined_surface(&coarse, refine);
    let vessel = Vessel::new(
        (*surface).clone(),
        1.0,
        bie_options(cfg, sec, q, refine)?,
        0.0,
        wall_col_m(cfg.usize_or(sec, "col_m", 10), refine),
    );

    let basis = SphBasis::new(cfg.usize_or(sec, "order", 8));
    let fill = if cfg.bool_or(sec, "fill_packed", false) {
        fill_seeds_packed
    } else {
        fill_seeds
    };
    let seeds = fill(
        &coarse,
        cfg.f64_or(sec, "fill_h", 0.95),
        cfg.f64_or(sec, "fill_margin", 0.95),
    );
    if seeds.is_empty() {
        return Err("sedimentation: vessel too small for any cells (raise fill_h)".into());
    }
    let mut rng = StdRng::seed_from_u64(cfg.usize_or(sec, "seed", 7) as u64);
    let params = cell_params(cfg, sec, 0.01, 1.0);
    let cells = cells_from_seeds(&basis, &seeds, params, &mut rng);

    let mut config = sim_config(cfg, sec, 0.02, 0.06);
    if cfg.get(sec, "gravity").is_none() {
        config.gravity = Vec3::new(0.0, 0.0, cfg.f64_or(sec, "gravity_z", -4.0));
    }
    Ok(Built {
        sim: Simulation::new(basis, cells, Some(vessel), config),
        recycle: false,
    })
}

/// Serpentine vessel with parabolic inflow/outflow, cell recycling active —
/// the headline confined-flow setup (ported from
/// `examples/src/vessel_flow.rs`).
fn build_vessel_flow(cfg: &Doc) -> Result<Built, String> {
    let sec = "vessel_flow";
    let c = Serpentine {
        length: cfg.f64_or(sec, "length", 8.0),
        amp: cfg.f64_or(sec, "amp", 0.7),
        windings: cfg.f64_or(sec, "windings", 1.0),
    };
    let refine = wall_refine(cfg, sec, 1);
    let q = cfg.usize_or(sec, "patch_order", 8);
    // seeded from the unrefined surface; see build_sedimentation
    let coarse = capsule_tube(
        &c,
        cfg.f64_or(sec, "tube_radius", 1.1),
        cfg.usize_or(sec, "tube_segments", 5),
        q,
    );
    let surface = refined_surface(&coarse, refine);
    let peak = cfg.f64_or(sec, "peak_speed", 1.0);
    let vessel = Vessel::new(
        (*surface).clone(),
        1.0,
        bie_options(cfg, sec, q, refine)?,
        peak,
        wall_col_m(cfg.usize_or(sec, "col_m", 10), refine),
    );

    let basis = SphBasis::new(cfg.usize_or(sec, "order", 8));
    let seeds = fill_seeds(
        &coarse,
        cfg.f64_or(sec, "fill_h", 1.1),
        cfg.f64_or(sec, "fill_margin", 0.9),
    );
    if seeds.is_empty() {
        return Err("vessel_flow: no cells fit (raise fill_h)".into());
    }
    let mut rng = StdRng::seed_from_u64(cfg.usize_or(sec, "seed", 11) as u64);
    let cells = cells_from_seeds(&basis, &seeds, cell_params(cfg, sec, 0.01, 1.0), &mut rng);

    let config = sim_config(cfg, sec, 0.01, 0.05);
    let recycle = cfg.bool_or(sec, "recycle", true);
    Ok(Built {
        sim: Simulation::new(basis, cells, Some(vessel), config),
        recycle,
    })
}

/// A modulated torus (stenosed loop) densely packed with cells — the
/// vessel-filling stress test of Fig. 8 turned into a steppable run
/// (ported from `examples/src/fill_vessel.rs`; the torus has no ports, so
/// the flow is driven purely by gravity / cell interactions).
fn build_dense_fill(cfg: &Doc) -> Result<Built, String> {
    let sec = "dense_fill";
    let refine = wall_refine(cfg, sec, 0);
    let q = cfg.usize_or(sec, "patch_order", 8);
    // seeded from the unrefined surface; see build_sedimentation
    let coarse = modulated_torus(
        cfg.f64_or(sec, "big_r", 4.0),
        cfg.f64_or(sec, "small_r", 1.0),
        cfg.f64_or(sec, "amp", 0.25),
        cfg.usize_or(sec, "lobes", 4) as u32,
        cfg.usize_or(sec, "nu", 16),
        cfg.usize_or(sec, "nv", 6),
        q,
    );
    let surface = refined_surface(&coarse, refine);
    let vessel = Vessel::new(
        (*surface).clone(),
        1.0,
        bie_options(cfg, sec, q, refine)?,
        0.0,
        wall_col_m(cfg.usize_or(sec, "col_m", 10), refine),
    );

    let basis = SphBasis::new(cfg.usize_or(sec, "order", 8));
    // `fill_packed = true` switches to the BCC double-lattice filler with
    // individual freeze growth (~1.5× the cubic fill's packing)
    let fill = if cfg.bool_or(sec, "fill_packed", false) {
        fill_seeds_packed
    } else {
        fill_seeds
    };
    let seeds = fill(
        &coarse,
        cfg.f64_or(sec, "fill_h", 0.7),
        cfg.f64_or(sec, "fill_margin", 0.95),
    );
    if seeds.is_empty() {
        return Err("dense_fill: no cells fit (raise fill_h)".into());
    }
    let mut rng = StdRng::seed_from_u64(cfg.usize_or(sec, "seed", 3) as u64);
    let cells = cells_from_seeds(&basis, &seeds, cell_params(cfg, sec, 0.01, 1.0), &mut rng);

    let mut config = sim_config(cfg, sec, 0.01, 0.05);
    if cfg.get(sec, "gravity").is_none() {
        config.gravity = Vec3::new(0.0, 0.0, cfg.f64_or(sec, "gravity_z", -1.0));
    }
    Ok(Built {
        sim: Simulation::new(basis, cells, Some(vessel), config),
        recycle: false,
    })
}

/// The high-hematocrit stability workload: a rouleau column — biconcave
/// cells stacked face-to-face, the configuration RBCs actually take at
/// high hematocrit — settling in a snug capsule tube at paper-scale ~40%
/// volume fraction. The flat cell shape (measured reduced volume ≈ 0.38)
/// is what makes 40% reachable with a modest cell count: a sphere-grown
/// random packing of biconcave cells tops out near ~30% (see
/// [`fill_seeds_packed`]), but face-to-face stacking fills the lumen the
/// way the paper's dense suspensions do. Gravity compacts the stack, so
/// within a few steps the column runs wall-to-wall and face-to-face
/// against the collision δ — the sustained-crowding regime where a single
/// diverging implicit update used to poison the whole trajectory, and the
/// reason this scenario exists: it runs under the adaptive-Δt gate
/// (enabled by default) as the standing stability acceptance test.
fn build_dense_fill_packed(cfg: &Doc) -> Result<Built, String> {
    let sec = "dense_fill_packed";
    let n_cells = cfg.usize_or(sec, "n_cells", 14);
    if n_cells == 0 {
        return Err("dense_fill_packed: n_cells must be ≥ 1".into());
    }
    let cell_r = cfg.f64_or(sec, "cell_radius", 1.0);
    let tube_r = cfg.f64_or(sec, "tube_radius", 1.12 * cell_r);
    if cell_r >= tube_r {
        return Err(format!(
            "dense_fill_packed: cell_radius {cell_r} does not fit tube_radius {tube_r}"
        ));
    }
    // face-to-face spacing: cell axial full thickness is ≈ 0.63·r, so the
    // default 0.88·r leaves ≈ 0.25·r between facing rims — clear of the
    // collision δ at rest, closed by gravity within a few steps
    let spacing = cfg.f64_or(sec, "spacing", 0.88 * cell_r);
    let margin = cfg.f64_or(sec, "end_margin", 0.55 * cell_r);
    let length = 2.0 * margin + spacing * (n_cells - 1) as f64;
    let line = StraightLine {
        a: Vec3::ZERO,
        b: Vec3::new(0.0, 0.0, length),
    };
    let refine = wall_refine(cfg, sec, 0);
    let q = cfg.usize_or(sec, "patch_order", 6);
    let segments = cfg.usize_or(
        sec,
        "tube_segments",
        ((length / 2.0).ceil() as usize).max(2),
    );
    let coarse = capsule_tube(&line, tube_r, segments, q);
    let surface = refined_surface(&coarse, refine);
    let vessel = Vessel::new(
        (*surface).clone(),
        1.0,
        bie_options(cfg, sec, q, refine)?,
        0.0,
        wall_col_m(cfg.usize_or(sec, "col_m", 8), refine),
    );

    let basis = SphBasis::new(cfg.usize_or(sec, "order", 6));
    let params = cell_params(cfg, sec, 0.01, 1.0);
    // deterministic sub-collision-δ jitter so the column is not perfectly
    // axisymmetric (a perfect rouleau settles degenerately)
    let jitter = cfg.f64_or(sec, "jitter", 0.03 * cell_r);
    let mut rng = StdRng::seed_from_u64(cfg.usize_or(sec, "seed", 5) as u64);
    let cells: Vec<Cell> = (0..n_cells)
        .map(|i| {
            let wob = if jitter > 0.0 {
                Vec3::new(
                    rng.random_range(-jitter..jitter),
                    rng.random_range(-jitter..jitter),
                    rng.random_range(-jitter..jitter),
                )
            } else {
                Vec3::ZERO
            };
            let center = Vec3::new(0.0, 0.0, margin + spacing * i as f64) + wob;
            Cell::new(&basis, biconcave_coeffs(&basis, cell_r, center), params)
        })
        .collect();

    let mut config = sim_config(cfg, sec, 0.01, 0.05);
    if cfg.get(sec, "gravity").is_none() {
        config.gravity = Vec3::new(0.0, 0.0, cfg.f64_or(sec, "gravity_z", -3.0));
    }
    Ok(Built {
        sim: Simulation::new(basis, cells, Some(vessel), config),
        recycle: false,
    })
}

/// A single-file train of biconcave cells in a straight tube, advected by
/// parabolic (Poiseuille) inflow — the axisymmetric margination baseline.
fn build_poiseuille_train(cfg: &Doc) -> Result<Built, String> {
    let sec = "poiseuille_train";
    let length = cfg.f64_or(sec, "tube_length", 8.0);
    let tube_r = cfg.f64_or(sec, "tube_radius", 1.2);
    let line = StraightLine {
        a: Vec3::ZERO,
        b: Vec3::new(length, 0.0, 0.0),
    };
    let refine = wall_refine(cfg, sec, 0);
    let q = cfg.usize_or(sec, "patch_order", 8);
    let coarse = capsule_tube(&line, tube_r, cfg.usize_or(sec, "tube_segments", 4), q);
    let surface = refined_surface(&coarse, refine);
    let peak = cfg.f64_or(sec, "peak_speed", 1.5);
    let vessel = Vessel::new(
        (*surface).clone(),
        1.0,
        bie_options(cfg, sec, q, refine)?,
        peak,
        wall_col_m(cfg.usize_or(sec, "col_m", 10), refine),
    );

    let basis = SphBasis::new(cfg.usize_or(sec, "order", 8));
    let n_cells = cfg.usize_or(sec, "n_cells", 4);
    if n_cells == 0 {
        return Err("poiseuille_train: n_cells must be ≥ 1".into());
    }
    let cell_r = cfg.f64_or(sec, "cell_radius", 0.5);
    if cell_r >= tube_r {
        return Err(format!(
            "poiseuille_train: cell_radius {cell_r} does not fit tube_radius {tube_r}"
        ));
    }
    let spacing = cfg.f64_or(sec, "spacing", 1.5);
    let span = spacing * (n_cells - 1) as f64 + 2.0 * cell_r;
    if span > length {
        return Err(format!(
            "poiseuille_train: train span {span:.2} (n_cells·spacing + cell) exceeds tube_length {length}"
        ));
    }
    let offset = cfg.f64_or(sec, "radial_offset", 0.0);
    if offset.abs() + cell_r >= tube_r {
        return Err(format!(
            "poiseuille_train: radial_offset {offset} pushes cells into the wall"
        ));
    }
    let params = cell_params(cfg, sec, 0.01, 1.0);
    // train centered in the tube, marching along +x
    let x0 = 0.5 * (length - spacing * (n_cells.saturating_sub(1)) as f64);
    let cells: Vec<Cell> = (0..n_cells)
        .map(|i| {
            let center = Vec3::new(x0 + spacing * i as f64, 0.0, offset);
            Cell::new(&basis, biconcave_coeffs(&basis, cell_r, center), params)
        })
        .collect();

    let config = sim_config(cfg, sec, 0.01, 0.05);
    let recycle = cfg.bool_or(sec, "recycle", true);
    Ok(Built {
        sim: Simulation::new(basis, cells, Some(vessel), config),
        recycle,
    })
}

/// A Y-bifurcation: one parent branch splitting into two daughters, built
/// by the [`sim::network`] composer with flux-balanced port boundary
/// conditions (the prescribed per-port fluxes sum to zero by
/// construction: `flux` enters the parent, `flux_split` of it leaves
/// through the first daughter, the rest through the second). A short
/// single-file train of cells is seeded in the parent branch so the run
/// exercises cell transport through the junction — the branch-hematocrit
/// observable's workload.
///
/// Geometry knobs: `parent_radius`/`parent_length`,
/// `daughter_radius`/`daughter_length`, `daughter_angle_deg` (each
/// daughter's angle off the parent's downstream direction, splayed in
/// ±y), `smoothing` (junction blend radius), `per_face` (patches per
/// cube-sphere face edge), `patch_order`.
///
/// `wall_refine` is rejected: refinement would re-fit the blended
/// junction from the *coarse* patch polynomials instead of the exact
/// surface; raise `per_face` to resolve the junction instead.
fn build_bifurcation(cfg: &Doc) -> Result<Built, String> {
    let sec = "bifurcation";
    if cfg.get(sec, "wall_refine").is_some() {
        return Err(
            "bifurcation: wall_refine is not supported on network vessels \
             (refinement would re-fit the junction blend from coarse patch \
             polynomials); raise per_face instead"
                .into(),
        );
    }
    let parent_r = cfg.f64_or(sec, "parent_radius", 0.5);
    let parent_l = cfg.f64_or(sec, "parent_length", 1.6);
    let daughter_r = cfg.f64_or(sec, "daughter_radius", 0.4);
    let daughter_l = cfg.f64_or(sec, "daughter_length", 1.5);
    let angle = cfg.f64_or(sec, "daughter_angle_deg", 31.0).to_radians();
    let flux = cfg.f64_or(sec, "flux", 1.0);
    if !flux.is_finite() || flux <= 0.0 {
        return Err(format!("bifurcation: flux must be > 0, got {flux}"));
    }
    let split = cfg.f64_or(sec, "flux_split", 0.55);
    if !(split > 0.0 && split < 1.0) {
        return Err(format!(
            "bifurcation: flux_split must be in (0, 1), got {split}"
        ));
    }
    // parent carries +x flow toward the junction at the origin; daughters
    // splay symmetrically in ±y around the continued -(-x) = downstream -x
    // direction. Port fluxes sum to zero by construction; NetworkSpec
    // re-validates and vessel_from_network makes each discrete port flux
    // exact, so the per-step imbalance assertion holds to roundoff.
    let (s, c) = (angle.sin(), angle.cos());
    let spec = NetworkSpec {
        center: Vec3::ZERO,
        segments: vec![
            SegmentSpec {
                axis: Vec3::new(1.0, 0.0, 0.0),
                length: parent_l,
                radius: parent_r,
                flux,
            },
            SegmentSpec {
                axis: Vec3::new(-c, s, 0.0),
                length: daughter_l,
                radius: daughter_r,
                flux: -split * flux,
            },
            SegmentSpec {
                axis: Vec3::new(-c, -s, 0.0),
                length: daughter_l,
                radius: daughter_r,
                flux: -(1.0 - split) * flux,
            },
        ],
        smoothing: cfg.f64_or(sec, "smoothing", 0.3 * daughter_r.min(parent_r)),
        per_face: cfg.usize_or(sec, "per_face", 2),
        q: cfg.usize_or(sec, "patch_order", 8),
    };
    let vessel = vessel_from_network(
        &spec,
        1.0,
        bie_options(cfg, sec, spec.q, 0)?,
        cfg.usize_or(sec, "col_m", 6),
    )
    .map_err(|e| format!("bifurcation: {e}"))?;

    let basis = SphBasis::new(cfg.usize_or(sec, "order", 6));
    let n_cells = cfg.usize_or(sec, "n_cells", 2);
    if n_cells == 0 {
        return Err("bifurcation: n_cells must be ≥ 1".into());
    }
    let cell_r = cfg.f64_or(sec, "cell_radius", 0.15);
    if cell_r >= daughter_r.min(parent_r) {
        return Err(format!(
            "bifurcation: cell_radius {cell_r} does not fit the narrowest branch \
             (radius {})",
            daughter_r.min(parent_r)
        ));
    }
    let spacing = cfg.f64_or(sec, "spacing", 3.0 * cell_r);
    // train along the parent axis, marching -x toward the junction; the
    // lead cell starts mid-branch, the tail stays clear of the inlet cap
    let x_far = parent_l - 2.0 * cell_r;
    let x_near = x_far - spacing * (n_cells - 1) as f64;
    if x_near < cell_r {
        return Err(format!(
            "bifurcation: train span {:.2} (n_cells·spacing + caps) exceeds \
             parent_length {parent_l}",
            spacing * (n_cells - 1) as f64 + 3.0 * cell_r
        ));
    }
    let params = cell_params(cfg, sec, 0.01, 1.0);
    let cells: Vec<Cell> = (0..n_cells)
        .map(|i| {
            let center = Vec3::new(x_far - spacing * i as f64, 0.0, 0.0);
            Cell::new(&basis, biconcave_coeffs(&basis, cell_r, center), params)
        })
        .collect();

    let config = sim_config(cfg, sec, 0.01, 0.05);
    // recycle_cells tracks a single outlet; with two daughters it would
    // teleport cells from only one of them, so it stays off by default
    let recycle = cfg.bool_or(sec, "recycle", false);
    Ok(Built {
        sim: Simulation::new(basis, cells, Some(vessel), config),
        recycle,
    })
}

/// One rung of the tube-diameter ladder behind the apparent-viscosity
/// (Fåhræus–Lindqvist) sweep: a straight capsule tube carrying a *fixed
/// volumetric flux* `flux` regardless of `tube_radius`, so runs at
/// different diameters are directly comparable (the physiology bench
/// varies `tube_radius` only). The quartic port profile of
/// [`sim::Vessel::new`] has flux `peak · π r² / 2`, so the inflow peak is
/// derived as `2·flux / (π·tube_radius²)` unless `peak_speed` overrides
/// it explicitly.
fn build_vessel_ladder(cfg: &Doc) -> Result<Built, String> {
    let sec = "vessel_ladder";
    let length = cfg.f64_or(sec, "tube_length", 6.0);
    let tube_r = cfg.f64_or(sec, "tube_radius", 0.8);
    if !(tube_r > 0.0 && length > 2.0 * tube_r) {
        return Err(format!(
            "vessel_ladder: need tube_length > 2·tube_radius > 0, got \
             length {length}, radius {tube_r}"
        ));
    }
    let flux = cfg.f64_or(sec, "flux", 1.0);
    if !flux.is_finite() || flux <= 0.0 {
        return Err(format!("vessel_ladder: flux must be > 0, got {flux}"));
    }
    let peak = cfg.f64_or(
        sec,
        "peak_speed",
        2.0 * flux / (std::f64::consts::PI * tube_r * tube_r),
    );
    let line = StraightLine {
        a: Vec3::ZERO,
        b: Vec3::new(length, 0.0, 0.0),
    };
    let refine = wall_refine(cfg, sec, 0);
    let q = cfg.usize_or(sec, "patch_order", 8);
    let coarse = capsule_tube(&line, tube_r, cfg.usize_or(sec, "tube_segments", 3), q);
    let surface = refined_surface(&coarse, refine);
    let vessel = Vessel::new(
        (*surface).clone(),
        1.0,
        bie_options(cfg, sec, q, refine)?,
        peak,
        wall_col_m(cfg.usize_or(sec, "col_m", 10), refine),
    );

    let basis = SphBasis::new(cfg.usize_or(sec, "order", 6));
    let n_cells = cfg.usize_or(sec, "n_cells", 3);
    if n_cells == 0 {
        return Err("vessel_ladder: n_cells must be ≥ 1".into());
    }
    let cell_r = cfg.f64_or(sec, "cell_radius", 0.4);
    if cell_r >= tube_r {
        return Err(format!(
            "vessel_ladder: cell_radius {cell_r} does not fit tube_radius {tube_r}"
        ));
    }
    let spacing = cfg.f64_or(sec, "spacing", 1.4);
    let span = spacing * (n_cells - 1) as f64 + 2.0 * cell_r;
    if span > length {
        return Err(format!(
            "vessel_ladder: train span {span:.2} (n_cells·spacing + cell) exceeds \
             tube_length {length}"
        ));
    }
    let offset = cfg.f64_or(sec, "radial_offset", 0.0);
    if offset.abs() + cell_r >= tube_r {
        return Err(format!(
            "vessel_ladder: radial_offset {offset} pushes cells into the wall"
        ));
    }
    // `shape = "sphere"` swaps the train for near-force-free spheres: the
    // discrete biconcave shape is *not* an equilibrium of the discretized
    // membrane energy, so it releases stored elastic energy for many steps
    // after t = 0 and that transient swamps the confinement drag the
    // apparent-viscosity observable wants to see at smoke horizons. A
    // sphere's bending force is a spatially constant normal field whose
    // work vanishes under the volume-conserving motion the stepper
    // enforces, so sphere rungs measure the genuine drag excess from
    // step 1 (the physiology regression tests and bench run this mode).
    let shape = cfg.str_or(sec, "shape", "biconcave");
    if shape != "biconcave" && shape != "sphere" {
        return Err(format!(
            "vessel_ladder: unknown shape `{shape}` (expected biconcave or sphere)"
        ));
    }
    let params = cell_params(cfg, sec, 0.01, 1.0);
    let x0 = 0.5 * (length - spacing * (n_cells.saturating_sub(1)) as f64);
    let cells: Vec<Cell> = (0..n_cells)
        .map(|i| {
            let center = Vec3::new(x0 + spacing * i as f64, 0.0, offset);
            let coeffs = if shape == "sphere" {
                sphere_coeffs(&basis, cell_r, center)
            } else {
                biconcave_coeffs(&basis, cell_r, center)
            };
            Cell::new(&basis, coeffs, params)
        })
        .collect();

    let config = sim_config(cfg, sec, 0.01, 0.05);
    let recycle = cfg.bool_or(sec, "recycle", true);
    Ok(Built {
        sim: Simulation::new(basis, cells, Some(vessel), config),
        recycle,
    })
}

/// Randomly oriented cells on a jittered cubic lattice in free space,
/// sheared by the background flow — the unconfined dense-suspension
/// rheology workload.
fn build_random_suspension(cfg: &Doc) -> Result<Built, String> {
    let sec = "random_suspension";
    let basis = SphBasis::new(cfg.usize_or(sec, "order", 8));
    let n_side = cfg.usize_or(sec, "n_side", 2);
    if n_side == 0 {
        return Err("random_suspension: n_side must be ≥ 1".into());
    }
    let spacing = cfg.f64_or(sec, "spacing", 2.6);
    let jitter = cfg.f64_or(sec, "jitter", 0.25);
    if jitter < 0.0 {
        return Err(format!(
            "random_suspension: jitter must be ≥ 0, got {jitter}"
        ));
    }
    let cell_r = cfg.f64_or(sec, "cell_radius", 1.0);
    if jitter * 2.0 + 2.0 * cell_r > spacing {
        return Err(format!(
            "random_suspension: spacing {spacing} too small for cell_radius {cell_r} + jitter {jitter}"
        ));
    }
    let params = cell_params(cfg, sec, 0.02, 1.0);
    let mut rng = StdRng::seed_from_u64(cfg.usize_or(sec, "seed", 13) as u64);
    let half = 0.5 * spacing * (n_side - 1) as f64;
    let mut cells = Vec::with_capacity(n_side * n_side * n_side);
    for k in 0..n_side {
        for j in 0..n_side {
            for i in 0..n_side {
                let lattice = Vec3::new(
                    i as f64 * spacing - half,
                    j as f64 * spacing - half,
                    k as f64 * spacing - half,
                );
                // jitter = 0 is a valid perfect-lattice run; the shim's
                // random_range rejects empty ranges
                let wob = if jitter > 0.0 {
                    Vec3::new(
                        rng.random_range(-jitter..jitter),
                        rng.random_range(-jitter..jitter),
                        rng.random_range(-jitter..jitter),
                    )
                } else {
                    Vec3::ZERO
                };
                let coeffs = biconcave_coeffs(&basis, cell_r, lattice + wob);
                let rot = rotated_coeffs(&basis, &coeffs, &mut rng);
                cells.push(Cell::new(&basis, rot, params));
            }
        }
    }
    let mut config = sim_config(cfg, sec, 0.01, 0.05);
    config.shear_rate = cfg.f64_or(sec, "shear_rate", 0.5);
    Ok(Built {
        sim: Simulation::new(basis, cells, None, config),
        recycle: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_buildable_cheaply() {
        let mut names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate scenario names");
        assert!(n >= 9, "registry shrank to {n} scenarios");
    }

    #[test]
    fn dt_knobs_plumb_into_sim_config() {
        let mut cfg = Doc::default();
        cfg.set("shear_pair", "order", crate::toml::Value::Int(6));
        cfg.set("shear_pair", "dt_adaptive", crate::toml::Value::Bool(false));
        cfg.set("shear_pair", "dt_min", crate::toml::Value::Float(1e-4));
        cfg.set("shear_pair", "dt_grow_after", crate::toml::Value::Int(7));
        cfg.set("shear_pair", "substep", crate::toml::Value::Bool(true));
        cfg.set(
            "shear_pair",
            "dt_max_stretch",
            crate::toml::Value::Float(5.0),
        );
        cfg.set(
            "shear_pair",
            "dt_max_vol_drift",
            crate::toml::Value::Float(0.1),
        );
        let built = build("shear_pair", &cfg).unwrap();
        let ctl = built.sim.config.dt_control;
        assert!(!ctl.enabled);
        assert_eq!(ctl.dt_min, 1e-4);
        assert_eq!(ctl.grow_after, 7);
        assert!(ctl.substep);
        assert_eq!(ctl.max_stretch, 5.0);
        assert_eq!(ctl.max_volume_drift, 0.1);
        // defaults: controller armed, dt_min resolved from the target dt
        let on = build("shear_pair", &Doc::default()).unwrap();
        assert!(on.sim.config.dt_control.enabled);
        assert_eq!(on.sim.config.dt_control.resolved_dt_min(0.02), 0.02 / 16.0);
    }

    #[test]
    fn dense_fill_packed_reaches_paper_scale_hematocrit() {
        let built = build("dense_fill_packed", &Doc::default()).unwrap();
        let vf = built.sim.volume_fraction();
        assert!(
            vf >= 0.35,
            "packed fill reached only {:.1}% hematocrit with {} cells",
            100.0 * vf,
            built.sim.cells.len()
        );
        assert!(vf < 0.74, "overlapping packing? vf = {vf}");
        assert!(built.sim.vessel.is_some());
        assert!(built.sim.config.dt_control.enabled);
    }

    #[test]
    fn unknown_scenario_lists_registry() {
        let e = build("warp_drive", &Doc::default()).err().unwrap();
        assert!(
            e.contains("shear_pair") && e.contains("poiseuille_train"),
            "{e}"
        );
    }

    #[test]
    fn shear_pair_builds_with_overrides() {
        let mut cfg = Doc::default();
        cfg.set("shear_pair", "order", crate::toml::Value::Int(6));
        cfg.set("shear_pair", "shear_rate", crate::toml::Value::Float(2.0));
        let built = build("shear_pair", &cfg).unwrap();
        assert_eq!(built.sim.basis.p, 6);
        assert_eq!(built.sim.cells.len(), 2);
        assert_eq!(built.sim.config.shear_rate, 2.0);
        assert!(!built.recycle);
        assert!(built.sim.vessel.is_none());
    }

    #[test]
    fn free_space_builders_are_deterministic() {
        let mut cfg = Doc::default();
        cfg.set("random_suspension", "order", crate::toml::Value::Int(6));
        cfg.set("random_suspension", "n_side", crate::toml::Value::Int(2));
        let a = build("random_suspension", &cfg).unwrap();
        let b = build("random_suspension", &cfg).unwrap();
        assert_eq!(a.sim.cells.len(), 8);
        for (ca, cb) in a.sim.cells.iter().zip(&b.sim.cells) {
            for c in 0..3 {
                let x: Vec<u64> = ca.coeffs[c].data.iter().map(|v| v.to_bits()).collect();
                let y: Vec<u64> = cb.coeffs[c].data.iter().map(|v| v.to_bits()).collect();
                assert_eq!(x, y, "rebuild differs");
            }
        }
    }

    #[test]
    fn removed_bie_fmm_key_is_rejected() {
        let mut cfg = Doc::default();
        cfg.set(
            "poiseuille_train",
            "bie_fmm",
            crate::toml::Value::Bool(true),
        );
        let e = build("poiseuille_train", &cfg).err().unwrap();
        assert!(e.contains("bie_backend"), "{e}");
    }

    #[test]
    fn unknown_bie_backend_is_rejected() {
        let mut cfg = Doc::default();
        cfg.set(
            "poiseuille_train",
            "bie_backend",
            crate::toml::Value::Str("gpu".into()),
        );
        let e = build("poiseuille_train", &cfg).err().unwrap();
        assert!(e.contains("unknown bie_backend"), "{e}");
    }

    #[test]
    fn wall_refine_multiplies_vessel_patches_and_scales_col_m() {
        let mut cfg = Doc::default();
        cfg.set("poiseuille_train", "order", crate::toml::Value::Int(6));
        cfg.set(
            "poiseuille_train",
            "patch_order",
            crate::toml::Value::Int(6),
        );
        cfg.set(
            "poiseuille_train",
            "tube_segments",
            crate::toml::Value::Int(1),
        );
        let base = build("poiseuille_train", &cfg).unwrap();
        cfg.set(
            "poiseuille_train",
            "wall_refine",
            crate::toml::Value::Int(1),
        );
        let refined = build("poiseuille_train", &cfg).unwrap();
        let (vb, vr) = (
            base.sim.vessel.as_ref().unwrap(),
            refined.sim.vessel.as_ref().unwrap(),
        );
        assert_eq!(
            vr.solver.surface.num_patches(),
            4 * vb.solver.surface.num_patches()
        );
        // same geometry: the interior volumes agree to quadrature
        // accuracy (refinement re-fits the same polynomials, but the
        // finer tensor rule integrates them more accurately, so the two
        // values differ by the coarse rule's quadrature error, not 0)
        assert!(
            (vr.volume - vb.volume).abs() / vb.volume < 2e-3,
            "{} vs {}",
            vr.volume,
            vb.volume
        );
        // collision sampling halved per level (col_m 10 -> 5), so the
        // total wall collision-vertex count stays comparable
        let verts = |v: &sim::Vessel| v.meshes.iter().map(|m| m.verts.len()).sum::<usize>();
        assert_eq!(vr.meshes.len(), 4 * vb.meshes.len());
        assert!(verts(vr) <= 2 * verts(vb), "{} vs {}", verts(vr), verts(vb));
        // initial cell packing identical across refinement levels
        assert_eq!(base.sim.cells.len(), refined.sim.cells.len());
        // refined defaults kick in: attainable tolerance + finer quadrature
        assert_eq!(vr.solver.opts.gmres.tol, 2e-3);
        assert_eq!(vr.solver.opts.qf, 10);
        assert_eq!(vb.solver.opts.qf, 0);
    }

    #[test]
    fn vessel_flow_defaults_to_refined_wall_with_order_4_fmm() {
        // small geometry so the refined build stays cheap in unit tests
        let mut cfg = Doc::default();
        cfg.set("vessel_flow", "order", crate::toml::Value::Int(6));
        cfg.set("vessel_flow", "patch_order", crate::toml::Value::Int(6));
        cfg.set("vessel_flow", "tube_segments", crate::toml::Value::Int(1));
        cfg.set("vessel_flow", "fill_h", crate::toml::Value::Float(1.5));
        let refined = build("vessel_flow", &cfg).unwrap();
        let vr = refined.sim.vessel.as_ref().unwrap();
        // the registry default flipped to wall_refine = 1: refined bie
        // defaults (finer quadrature, attainable tol, order-4 matvec FMM)
        assert_eq!(vr.solver.opts.qf, 10);
        assert_eq!(vr.solver.opts.gmres.tol, 2e-3);
        assert_eq!(vr.solver.opts.fmm.order, 4);
        // explicit opt-out restores the coarse wall and the library-default
        // FMM order
        cfg.set("vessel_flow", "wall_refine", crate::toml::Value::Int(0));
        let coarse = build("vessel_flow", &cfg).unwrap();
        let vc = coarse.sim.vessel.as_ref().unwrap();
        assert_eq!(
            4 * vc.solver.surface.num_patches(),
            vr.solver.surface.num_patches()
        );
        assert_eq!(vc.solver.opts.fmm.order, 6);
        // seeding is from the unrefined surface, so the flip does not move
        // the initial packing
        assert_eq!(coarse.sim.cells.len(), refined.sim.cells.len());
    }

    #[test]
    fn bie_fmm_knobs_plumb_into_solver_options() {
        let mut cfg = Doc::default();
        cfg.set("poiseuille_train", "order", crate::toml::Value::Int(6));
        cfg.set(
            "poiseuille_train",
            "patch_order",
            crate::toml::Value::Int(6),
        );
        cfg.set(
            "poiseuille_train",
            "tube_segments",
            crate::toml::Value::Int(1),
        );
        cfg.set(
            "poiseuille_train",
            "bie_fmm_order",
            crate::toml::Value::Int(5),
        );
        cfg.set(
            "poiseuille_train",
            "bie_fmm_leaf_capacity",
            crate::toml::Value::Int(99),
        );
        let built = build("poiseuille_train", &cfg).unwrap();
        let v = built.sim.vessel.as_ref().unwrap();
        assert_eq!(v.solver.opts.fmm.order, 5);
        assert_eq!(v.solver.opts.fmm.leaf_capacity, 99);
        // defaults: unrefined scenarios keep the library default order
        let mut plain = Doc::default();
        plain.set("poiseuille_train", "order", crate::toml::Value::Int(6));
        plain.set(
            "poiseuille_train",
            "patch_order",
            crate::toml::Value::Int(6),
        );
        plain.set(
            "poiseuille_train",
            "tube_segments",
            crate::toml::Value::Int(1),
        );
        let built = build("poiseuille_train", &plain).unwrap();
        let v = built.sim.vessel.as_ref().unwrap();
        assert_eq!(v.solver.opts.fmm.order, bie::FmmOptions::default().order);
    }

    #[test]
    fn bifurcation_builds_with_balanced_ports() {
        let built = build("bifurcation", &Doc::default()).unwrap();
        let v = built.sim.vessel.as_ref().unwrap();
        assert_eq!(v.ports.len(), 3);
        assert_eq!(v.ports.iter().filter(|p| p.is_inlet).count(), 1);
        // the network builder makes each prescribed port flux exact in the
        // discrete quadrature, so the net imbalance is roundoff
        let fluxes = v.port_fluxes();
        let total: f64 = fluxes.iter().map(|f| f.abs()).sum();
        assert!(
            v.port_flux_imbalance() < 1e-12 * total,
            "imbalance {} on fluxes {fluxes:?}",
            v.port_flux_imbalance()
        );
        // default split: 0.55 / 0.45 of unit inflow
        let inlet = v.ports.iter().find(|p| p.is_inlet).unwrap();
        assert!((inlet.flux - 1.0).abs() < 1e-12, "{}", inlet.flux);
        assert!(!built.recycle, "multi-outlet recycling is off by default");
        assert_eq!(built.sim.cells.len(), 2);
        // rebuilds are bit-identical (no RNG anywhere in the builder)
        let again = build("bifurcation", &Doc::default()).unwrap();
        assert_eq!(
            sim::vessel_digest(built.sim.vessel.as_ref().unwrap()),
            sim::vessel_digest(again.sim.vessel.as_ref().unwrap())
        );
    }

    #[test]
    fn bifurcation_rejects_bad_split_and_wall_refine() {
        let mut cfg = Doc::default();
        cfg.set("bifurcation", "flux_split", crate::toml::Value::Float(1.5));
        let e = build("bifurcation", &cfg).err().unwrap();
        assert!(e.contains("flux_split"), "{e}");
        let mut cfg = Doc::default();
        cfg.set("bifurcation", "wall_refine", crate::toml::Value::Int(1));
        let e = build("bifurcation", &cfg).err().unwrap();
        assert!(e.contains("per_face"), "{e}");
        let mut cfg = Doc::default();
        cfg.set(
            "bifurcation",
            "cell_radius",
            crate::toml::Value::Float(0.45),
        );
        let e = build("bifurcation", &cfg).err().unwrap();
        assert!(e.contains("does not fit"), "{e}");
    }

    #[test]
    fn vessel_ladder_fixes_flux_across_diameters() {
        // same flux, two radii: the inflow peak scales as 1/r², so the
        // recorded inlet flux matches across rungs
        let mut small = Doc::default();
        small.set(
            "vessel_ladder",
            "tube_radius",
            crate::toml::Value::Float(0.7),
        );
        small.set("vessel_ladder", "patch_order", crate::toml::Value::Int(6));
        let mut large = Doc::default();
        large.set(
            "vessel_ladder",
            "tube_radius",
            crate::toml::Value::Float(1.1),
        );
        large.set("vessel_ladder", "patch_order", crate::toml::Value::Int(6));
        let (a, b) = (
            build("vessel_ladder", &small).unwrap(),
            build("vessel_ladder", &large).unwrap(),
        );
        let qa = a.sim.vessel.as_ref().unwrap().ports[0].flux.abs();
        let qb = b.sim.vessel.as_ref().unwrap().ports[0].flux.abs();
        // Vessel::new rims are the max-node estimate, so the discrete flux
        // sits below π r² peak/2 by an O(h²) geometric factor — but the
        // factor is resolution-, not radius-, dominated, so fixed-flux
        // rungs agree to a few percent
        assert!(
            (qa - qb).abs() / qb < 0.05,
            "flux not fixed across rungs: {qa} vs {qb}"
        );
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let mut cfg = Doc::default();
        cfg.set(
            "poiseuille_train",
            "cell_radius",
            crate::toml::Value::Float(5.0),
        );
        assert!(build("poiseuille_train", &cfg).is_err());
        let mut cfg = Doc::default();
        cfg.set(
            "random_suspension",
            "spacing",
            crate::toml::Value::Float(1.0),
        );
        assert!(build("random_suspension", &cfg).is_err());
    }
}
