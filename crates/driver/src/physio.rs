//! Physiology observables as a pluggable [`StepSink`]: apparent viscosity,
//! cell-free layer, and branch hematocrit split, streamed as one CSV row
//! per step.
//!
//! The observables themselves live in [`sim::physio`]; this sink does the
//! run-loop plumbing they need — it keeps the previous step's cell surface
//! points so the membrane drag power's finite-difference velocity is
//! well-defined, skips the power on steps that recycled cells (an
//! outlet→inlet teleport is not a physical velocity), and renders
//! branch splits as `;`-joined per-outlet fractions. `bench --bin
//! physiology` and the regression tests both consume the in-memory
//! [`PhysioRow`]s; the CSV stream is for plotting.

use crate::run::StepRow;
use crate::session::StepSink;
use linalg::Vec3;
use sim::{
    apparent_viscosity, branch_hematocrit, cell_free_layer, membrane_drag_power, tube_dimensions,
    BranchSplit, Simulation,
};
use std::io::{self, Write};

/// Column header of the physiology CSV (one row per step).
pub const PHYSIO_CSV_HEADER: &str =
    "step,drag_power,apparent_viscosity,cell_free_layer,hematocrit_split,flux_split\n";

/// One step's physiology record. Fields are `None` where the observable
/// is undefined for the run's vessel (e.g. apparent viscosity needs a
/// straight 2-port tube; branch splits need ≥ 2 outlets) or, for the
/// power, on steps polluted by a recycle teleport.
#[derive(Clone, Debug)]
pub struct PhysioRow {
    /// Step index (1-based, global across restarts).
    pub step: usize,
    /// Membrane drag power `−Σ ∫ f·v dS` (see
    /// [`sim::membrane_drag_power`]); `None` when cells were recycled
    /// this step.
    pub drag_power: Option<f64>,
    /// Relative apparent viscosity `μ_app/μ` of a straight 2-port tube.
    pub apparent_viscosity: Option<f64>,
    /// Cell-free layer width of a straight 2-port tube.
    pub cell_free_layer: Option<f64>,
    /// Per-outlet hematocrit/flux split at the junction (needs ≥ 2
    /// outlets and a junction point configured on the sink).
    pub split: Option<BranchSplit>,
}

/// Streams per-step physiology rows to a CSV writer and keeps them in
/// memory for assertions and benches.
pub struct PhysioSink<W: Write> {
    out: W,
    /// Junction point for [`sim::branch_hematocrit`]; `None` skips the
    /// branch-split columns (straight-tube runs).
    junction: Option<Vec3>,
    /// Axial bins for [`sim::cell_free_layer`].
    bins: usize,
    prev_x: Vec<Vec<Vec3>>,
    /// Every row observed so far, in step order.
    pub rows: Vec<PhysioRow>,
}

fn snapshot(sim: &Simulation) -> Vec<Vec<Vec3>> {
    sim.cells.iter().map(|c| c.geometry(&sim.basis).x).collect()
}

fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.6e}")).unwrap_or_default()
}

fn fracs(v: &[f64]) -> String {
    v.iter()
        .map(|f| format!("{f:.4}"))
        .collect::<Vec<_>>()
        .join(";")
}

impl<W: Write> PhysioSink<W> {
    /// A sink writing CSV rows to `out`. Pass the network's junction
    /// point to enable the branch-split columns; `bins` controls the
    /// cell-free-layer axial resolution (16 is plenty for smoke runs).
    pub fn new(out: W, junction: Option<Vec3>, bins: usize) -> PhysioSink<W> {
        PhysioSink {
            out,
            junction,
            bins: bins.max(1),
            prev_x: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Computes one row from the current state (without writing CSV) —
    /// the shared core of `on_step`.
    fn observe(&mut self, sim: &Simulation, row: &StepRow) -> PhysioRow {
        let dt = row.stats.dt_effective;
        // a recycle teleports cells outlet → inlet; the finite-difference
        // velocity across that jump is not physical, so the power (and
        // the viscosity derived from it) sits this step out
        let clean = row.recycled == 0 && !self.prev_x.is_empty() && dt > 0.0;
        let drag_power = clean.then(|| membrane_drag_power(sim, &self.prev_x, dt));
        let tube = sim.vessel.as_ref().and_then(tube_dimensions);
        let apparent = match (drag_power, tube) {
            (Some(p), Some((q, r, l))) => {
                let mu = sim.vessel.as_ref().map(|v| v.mu).unwrap_or(1.0);
                Some(apparent_viscosity(p, mu, q, r, l))
            }
            _ => None,
        };
        let cfl = cell_free_layer(sim, self.bins);
        let split = self.junction.and_then(|j| branch_hematocrit(sim, j));
        self.prev_x = snapshot(sim);
        PhysioRow {
            step: row.step,
            drag_power,
            apparent_viscosity: apparent,
            cell_free_layer: cfl,
            split,
        }
    }
}

impl<W: Write> StepSink for PhysioSink<W> {
    fn on_start(&mut self, sim: &Simulation) -> io::Result<()> {
        self.prev_x = snapshot(sim);
        self.out.write_all(PHYSIO_CSV_HEADER.as_bytes())
    }

    fn on_step(&mut self, sim: &Simulation, row: &StepRow) -> io::Result<()> {
        let r = self.observe(sim, row);
        let (h, q) = match &r.split {
            Some(s) => (fracs(&s.hematocrit_frac), fracs(&s.flux_frac)),
            None => (String::new(), String::new()),
        };
        let line = format!(
            "{},{},{},{},{},{}\n",
            r.step,
            opt(r.drag_power),
            opt(r.apparent_viscosity),
            opt(r.cell_free_layer),
            h,
            q
        );
        self.rows.push(r);
        self.out.write_all(line.as_bytes())
    }

    fn on_finish(&mut self, _sim: &Simulation) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::toml::{Doc, Value};

    fn smoke_cfg(sec: &str) -> Doc {
        let mut cfg = Doc::default();
        cfg.set(sec, "order", Value::Int(6));
        cfg.set(sec, "patch_order", Value::Int(6));
        cfg
    }

    #[test]
    fn ladder_run_emits_viscosity_and_cfl_rows() {
        let mut cfg = smoke_cfg("vessel_ladder");
        cfg.set("vessel_ladder", "recycle", Value::Bool(false));
        let mut s = Session::build("vessel_ladder", &cfg).unwrap();
        let mut buf = Vec::new();
        {
            let mut sink = PhysioSink::new(&mut buf, None, 16);
            let mut sinks: Vec<&mut dyn StepSink> = vec![&mut sink];
            s.drive(2, &mut sinks).unwrap();
            assert_eq!(sink.rows.len(), 2);
            for r in &sink.rows {
                let mu = r.apparent_viscosity.expect("2-port tube has μ_app");
                assert!(mu.is_finite(), "{mu}");
                let cfl = r.cell_free_layer.expect("cells are in the tube");
                assert!(cfl > 0.0 && cfl < 0.8, "implausible CFL {cfl}");
                assert!(r.split.is_none(), "straight tube has no junction");
            }
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(PHYSIO_CSV_HEADER), "{text}");
        assert_eq!(text.lines().count(), 3, "{text}");
    }

    #[test]
    fn bifurcation_run_emits_branch_split_rows() {
        let cfg = smoke_cfg("bifurcation");
        let mut s = Session::build("bifurcation", &cfg).unwrap();
        let mut buf = Vec::new();
        let mut sink = PhysioSink::new(&mut buf, Some(linalg::Vec3::ZERO), 16);
        {
            let mut sinks: Vec<&mut dyn StepSink> = vec![&mut sink];
            s.drive(1, &mut sinks).unwrap();
        }
        let r = &sink.rows[0];
        assert!(
            r.apparent_viscosity.is_none(),
            "3-port vessel is not a straight tube"
        );
        let split = r.split.as_ref().expect("junction split");
        assert_eq!(split.port_ids.len(), 2);
        // prescribed 0.55/0.45 split, recorded exactly at build time
        let qsum: f64 = split.flux_frac.iter().sum();
        assert!((qsum - 1.0).abs() < 1e-12, "{:?}", split.flux_frac);
        assert!(
            (split.flux_frac[0] - 0.55).abs() < 1e-12 || (split.flux_frac[1] - 0.55).abs() < 1e-12
        );
    }

    #[test]
    fn recycle_steps_skip_the_drag_power() {
        // fabricate a recycled row: the sink must blank the power columns
        let cfg = smoke_cfg("vessel_ladder");
        let mut s = Session::build("vessel_ladder", &cfg).unwrap();
        let mut sink = PhysioSink::new(Vec::new(), None, 16);
        sink.on_start(&s.sim).unwrap();
        let mut row = s.step().unwrap();
        row.recycled = 1;
        sink.on_step(&s.sim, &row).unwrap();
        assert!(sink.rows[0].drag_power.is_none());
        assert!(sink.rows[0].apparent_viscosity.is_none());
        // the cell-free layer is geometric, so it survives the recycle
        assert!(sink.rows[0].cell_free_layer.is_some());
    }
}
