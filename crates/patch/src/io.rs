//! Minimal legacy-VTK and OBJ writers for visualization.
//!
//! The paper renders its simulations with ParaView; these writers produce
//! legacy ASCII `.vtk` (quad meshes, point clouds with vector data) and
//! Wavefront `.obj` files that ParaView and most mesh viewers open
//! directly.

use crate::surface::BoundarySurface;
use linalg::Vec3;
use std::io::{self, Write};
use std::path::Path;

/// Writes a quad mesh (shared vertex list + quad connectivity) as legacy
/// VTK polydata.
pub fn write_vtk_quads(
    path: &Path,
    points: &[Vec3],
    quads: &[[u32; 4]],
    scalars: Option<(&str, &[f64])>,
) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "# vtk DataFile Version 3.0")?;
    writeln!(f, "rbcflow surface")?;
    writeln!(f, "ASCII")?;
    writeln!(f, "DATASET POLYDATA")?;
    writeln!(f, "POINTS {} double", points.len())?;
    for p in points {
        writeln!(f, "{} {} {}", p.x, p.y, p.z)?;
    }
    writeln!(f, "POLYGONS {} {}", quads.len(), quads.len() * 5)?;
    for q in quads {
        writeln!(f, "4 {} {} {} {}", q[0], q[1], q[2], q[3])?;
    }
    if let Some((name, vals)) = scalars {
        assert_eq!(vals.len(), points.len());
        writeln!(f, "POINT_DATA {}", points.len())?;
        writeln!(f, "SCALARS {name} double 1")?;
        writeln!(f, "LOOKUP_TABLE default")?;
        for v in vals {
            writeln!(f, "{v}")?;
        }
    }
    Ok(())
}

/// Writes a point cloud with optional per-point vectors (e.g. velocities).
pub fn write_vtk_points(
    path: &Path,
    points: &[Vec3],
    vectors: Option<(&str, &[Vec3])>,
) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "# vtk DataFile Version 3.0")?;
    writeln!(f, "rbcflow points")?;
    writeln!(f, "ASCII")?;
    writeln!(f, "DATASET POLYDATA")?;
    writeln!(f, "POINTS {} double", points.len())?;
    for p in points {
        writeln!(f, "{} {} {}", p.x, p.y, p.z)?;
    }
    writeln!(f, "VERTICES {} {}", points.len(), points.len() * 2)?;
    for i in 0..points.len() {
        writeln!(f, "1 {i}")?;
    }
    if let Some((name, vecs)) = vectors {
        assert_eq!(vecs.len(), points.len());
        writeln!(f, "POINT_DATA {}", points.len())?;
        writeln!(f, "VECTORS {name} double")?;
        for v in vecs {
            writeln!(f, "{} {} {}", v.x, v.y, v.z)?;
        }
    }
    Ok(())
}

/// Exports a boundary surface as a VTK quad mesh sampled `m × m` per patch
/// (per-patch vertices are not shared across patches; viewers handle the
/// duplicated seam vertices fine).
pub fn export_surface_vtk(path: &Path, surface: &BoundarySurface, m: usize) -> io::Result<()> {
    let grids = surface.collision_grid(m);
    let mut points = Vec::new();
    let mut quads = Vec::new();
    let mut patch_id = Vec::new();
    for (pi, grid) in grids.iter().enumerate() {
        let base = points.len() as u32;
        points.extend_from_slice(grid);
        patch_id.extend(std::iter::repeat_n(pi as f64, grid.len()));
        for j in 0..m - 1 {
            for i in 0..m - 1 {
                let v00 = base + (j * m + i) as u32;
                let v10 = v00 + 1;
                let v01 = base + ((j + 1) * m + i) as u32;
                let v11 = v01 + 1;
                quads.push([v00, v10, v11, v01]);
            }
        }
    }
    write_vtk_quads(path, &points, &quads, Some(("patch", &patch_id)))
}

/// Writes a triangle mesh as a Wavefront OBJ file.
pub fn write_obj(path: &Path, points: &[Vec3], tris: &[[u32; 3]]) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for p in points {
        writeln!(f, "v {} {} {}", p.x, p.y, p.z)?;
    }
    for t in tris {
        writeln!(f, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::cube_sphere;

    #[test]
    fn vtk_export_writes_parseable_header() {
        let dir = std::env::temp_dir().join("rbcflow_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sphere.vtk");
        let s = cube_sphere(1.0, linalg::Vec3::ZERO, 0, 6);
        export_surface_vtk(&path, &s, 5).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# vtk DataFile"));
        assert!(text.contains("POLYGONS"));
        // 6 patches × 4×4 quads
        assert!(text.contains(&format!("POLYGONS {} ", 6 * 16)));
    }

    #[test]
    fn obj_export_one_based_indices() {
        let dir = std::env::temp_dir().join("rbcflow_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tri.obj");
        let pts = vec![
            linalg::Vec3::ZERO,
            linalg::Vec3::new(1.0, 0.0, 0.0),
            linalg::Vec3::new(0.0, 1.0, 0.0),
        ];
        write_obj(&path, &pts, &[[0, 1, 2]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("f 1 2 3"));
    }
}
