//! Tensor-product polynomial patches `P : [-1,1]² → R³`.
//!
//! The blood-vessel boundary Γ is "a collection of non-overlapping patches
//! Γ = ⋃ P_i(Q)" with each `P_i` an 8th-order tensor-product polynomial
//! sampled at Clenshaw–Curtis quadrature points (§3.1, §5.1). A patch here
//! stores its coefficients in the tensor Chebyshev basis, which makes
//! evaluation, differentiation and Bezier-style subdivision exact
//! polynomial operations.

use linalg::{clenshaw_curtis, Aabb, Interp1d, Mat, Vec3};

/// Chebyshev polynomial of the first kind `T_k(t)` evaluated by recurrence,
/// together with its derivative.
#[inline]
fn chebyshev_t(k: usize, t: f64) -> (f64, f64) {
    // T_k and T'_k via the trigonometric-free recurrence (stable on [-1,1])
    let (mut t0, mut t1) = (1.0, t);
    let (mut d0, mut d1) = (0.0, 1.0);
    if k == 0 {
        return (t0, d0);
    }
    for _ in 1..k {
        let t2 = 2.0 * t * t1 - t0;
        let d2 = 2.0 * t1 + 2.0 * t * d1 - d0;
        t0 = t1;
        t1 = t2;
        d0 = d1;
        d1 = d2;
    }
    (t1, d1)
}

/// A polynomial patch of order `q` (degree `q−1` per direction), embedded in
/// R³. Coefficients are stored per component in the tensor Chebyshev basis
/// `T_a(u) T_b(v)`, `a, b = 0..q`, row-major in `(a, b)`.
#[derive(Clone, Debug)]
pub struct PolyPatch {
    /// Nodes per direction (order); degree is `q − 1`.
    pub q: usize,
    /// Chebyshev coefficients: `coef[c][a * q + b]` for component `c`.
    pub coef: [Vec<f64>; 3],
}

impl PolyPatch {
    /// Fits a patch of order `q` through samples at the `q × q` tensor
    /// Clenshaw–Curtis grid (u fastest), interpolating exactly.
    pub fn fit(q: usize, samples: &[Vec3]) -> PolyPatch {
        assert_eq!(samples.len(), q * q, "PolyPatch::fit: need q² samples");
        // Build the 1-D Chebyshev Vandermonde at CC nodes and invert once.
        let nodes = clenshaw_curtis(q).nodes;
        let vand = Mat::from_fn(q, q, |i, a| chebyshev_t(a, nodes[i]).0);
        let inv = linalg::Lu::new(&vand)
            .expect("Chebyshev Vandermonde is nonsingular")
            .inverse();
        // coefficients: C = inv * F * invᵀ per component (tensor structure)
        let mut coef: [Vec<f64>; 3] = [vec![0.0; q * q], vec![0.0; q * q], vec![0.0; q * q]];
        for c in 0..3 {
            // F[i][j] = samples[j * q + i][c]  (i: u index, j: v index)
            let f = Mat::from_fn(q, q, |i, j| samples[j * q + i][c]);
            // a-index from u: A = inv * F  (q×q), then coef = A * invᵀ
            let a = inv.matmul(&f);
            let full = a.matmul(&inv.transpose());
            for ai in 0..q {
                for bi in 0..q {
                    coef[c][ai * q + bi] = full[(ai, bi)];
                }
            }
        }
        PolyPatch { q, coef }
    }

    /// Evaluates the patch position at `(u, v) ∈ [-1,1]²`.
    pub fn eval(&self, u: f64, v: f64) -> Vec3 {
        self.eval_jet(u, v).0
    }

    /// Evaluates position and first derivatives `(X, X_u, X_v)`.
    pub fn eval_jet(&self, u: f64, v: f64) -> (Vec3, Vec3, Vec3) {
        let q = self.q;
        let tu: Vec<(f64, f64)> = (0..q).map(|a| chebyshev_t(a, u)).collect();
        let tv: Vec<(f64, f64)> = (0..q).map(|b| chebyshev_t(b, v)).collect();
        let mut x = Vec3::ZERO;
        let mut xu = Vec3::ZERO;
        let mut xv = Vec3::ZERO;
        for c in 0..3 {
            let mut s = 0.0;
            let mut su = 0.0;
            let mut sv = 0.0;
            for a in 0..q {
                let (ta, da) = tu[a];
                let row = &self.coef[c][a * q..(a + 1) * q];
                let mut inner = 0.0;
                let mut inner_dv = 0.0;
                for b in 0..q {
                    let (tb, db) = tv[b];
                    inner += row[b] * tb;
                    inner_dv += row[b] * db;
                }
                s += ta * inner;
                su += da * inner;
                sv += ta * inner_dv;
            }
            x[c] = s;
            xu[c] = su;
            xv[c] = sv;
        }
        (x, xu, xv)
    }

    /// Evaluates position, first, and second derivatives.
    #[allow(clippy::type_complexity)]
    pub fn eval_jet2(&self, u: f64, v: f64) -> (Vec3, Vec3, Vec3, Vec3, Vec3, Vec3) {
        // second derivatives via Chebyshev second-derivative recurrence
        let q = self.q;
        let jets_u: Vec<(f64, f64, f64)> = (0..q).map(|a| chebyshev_t2(a, u)).collect();
        let jets_v: Vec<(f64, f64, f64)> = (0..q).map(|b| chebyshev_t2(b, v)).collect();
        let mut out = [Vec3::ZERO; 6]; // x, xu, xv, xuu, xuv, xvv
        for c in 0..3 {
            let mut acc = [0.0; 6];
            for a in 0..q {
                let (ta, da, dda) = jets_u[a];
                let row = &self.coef[c][a * q..(a + 1) * q];
                let (mut i0, mut i1, mut i2) = (0.0, 0.0, 0.0);
                for b in 0..q {
                    let (tb, db, ddb) = jets_v[b];
                    i0 += row[b] * tb;
                    i1 += row[b] * db;
                    i2 += row[b] * ddb;
                }
                acc[0] += ta * i0;
                acc[1] += da * i0;
                acc[2] += ta * i1;
                acc[3] += dda * i0;
                acc[4] += da * i1;
                acc[5] += ta * i2;
            }
            for k in 0..6 {
                out[k][c] = acc[k];
            }
        }
        (out[0], out[1], out[2], out[3], out[4], out[5])
    }

    /// Outward-oriented normal direction `X_u × X_v` (not normalized).
    pub fn normal_raw(&self, u: f64, v: f64) -> Vec3 {
        let (_, xu, xv) = self.eval_jet(u, v);
        xu.cross(xv)
    }

    /// Restricts the patch to the sub-rectangle `[u0,u1] × [v0,v1]` of the
    /// parameter domain, returning a new patch over `[-1,1]²` (the exact
    /// polynomial subdivision used to refine vessel geometry, the analogue
    /// of Bezier subdivision rules mentioned in §5.2).
    pub fn subpatch(&self, u0: f64, u1: f64, v0: f64, v1: f64) -> PolyPatch {
        let q = self.q;
        let nodes = clenshaw_curtis(q).nodes;
        let mut samples = Vec::with_capacity(q * q);
        for &tv in &nodes {
            let v = 0.5 * (v0 + v1) + 0.5 * (v1 - v0) * tv;
            for &tu in &nodes {
                let u = 0.5 * (u0 + u1) + 0.5 * (u1 - u0) * tu;
                samples.push(self.eval(u, v));
            }
        }
        PolyPatch::fit(q, samples.as_slice())
    }

    /// Splits into `2 × 2` children covering the four parameter quadrants.
    pub fn split4(&self) -> [PolyPatch; 4] {
        [
            self.subpatch(-1.0, 0.0, -1.0, 0.0),
            self.subpatch(0.0, 1.0, -1.0, 0.0),
            self.subpatch(-1.0, 0.0, 0.0, 1.0),
            self.subpatch(0.0, 1.0, 0.0, 1.0),
        ]
    }

    /// Axis-aligned bounding box from a dense sample (conservative enough
    /// for candidate search when inflated by the caller).
    pub fn bounding_box(&self, n: usize) -> Aabb {
        let mut b = Aabb::EMPTY;
        for j in 0..n {
            let v = -1.0 + 2.0 * j as f64 / (n - 1) as f64;
            for i in 0..n {
                let u = -1.0 + 2.0 * i as f64 / (n - 1) as f64;
                b = b.expanded_to(self.eval(u, v));
            }
        }
        b
    }

    /// Finds the parameter of the closest point on the patch to `x` via
    /// projected Newton with backtracking line search (§3.3 step d),
    /// starting from `(u0, v0)`. Returns `(u, v, distance)`.
    pub fn closest_point_from(&self, x: Vec3, u0: f64, v0: f64, iters: usize) -> (f64, f64, f64) {
        let clamp = |t: f64| t.clamp(-1.0, 1.0);
        let mut u = clamp(u0);
        let mut v = clamp(v0);
        let obj = |u: f64, v: f64| (self.eval(u, v) - x).norm_sq();
        let mut fcur = obj(u, v);
        for _ in 0..iters {
            let (p, pu, pv, puu, puv, pvv) = self.eval_jet2(u, v);
            let d = p - x;
            // gradient and Hessian of ‖P(u,v) − x‖²/2
            let gu = d.dot(pu);
            let gv = d.dot(pv);
            let huu = pu.dot(pu) + d.dot(puu);
            let huv = pu.dot(pv) + d.dot(puv);
            let hvv = pv.dot(pv) + d.dot(pvv);
            let gnorm = (gu * gu + gv * gv).sqrt();
            if gnorm < 1e-14 {
                break;
            }
            // solve 2×2 Newton system with fallback to gradient descent
            let det = huu * hvv - huv * huv;
            let (mut du, mut dv) = if det.abs() > 1e-14 && huu + hvv > 0.0 {
                ((-gu * hvv + gv * huv) / det, (gu * huv - gv * huu) / det)
            } else {
                (-gu, -gv)
            };
            // ensure descent direction
            if du * gu + dv * gv > 0.0 {
                du = -gu;
                dv = -gv;
            }
            // backtracking line search with box clamping
            let mut step = 1.0;
            let mut improved = false;
            for _ in 0..30 {
                let un = clamp(u + step * du);
                let vn = clamp(v + step * dv);
                let fn_ = obj(un, vn);
                if fn_ < fcur - 1e-18 {
                    u = un;
                    v = vn;
                    fcur = fn_;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                break;
            }
        }
        (u, v, fcur.sqrt())
    }

    /// Multi-start closest point search over a coarse seed grid (robust for
    /// targets near patch edges).
    pub fn closest_point(&self, x: Vec3) -> (f64, f64, f64) {
        let seeds = [-0.75, 0.0, 0.75];
        let mut best = (0.0, 0.0, f64::INFINITY);
        for &su in &seeds {
            for &sv in &seeds {
                let (u, v, d) = self.closest_point_from(x, su, sv, 30);
                if d < best.2 {
                    best = (u, v, d);
                }
            }
        }
        best
    }
}

/// `T_k`, `T'_k`, `T''_k` at `t`.
#[inline]
fn chebyshev_t2(k: usize, t: f64) -> (f64, f64, f64) {
    let (mut t0, mut t1) = (1.0, t);
    let (mut d0, mut d1) = (0.0, 1.0);
    let (mut s0, mut s1) = (0.0, 0.0);
    if k == 0 {
        return (t0, d0, s0);
    }
    for _ in 1..k {
        let t2 = 2.0 * t * t1 - t0;
        let d2 = 2.0 * t1 + 2.0 * t * d1 - d0;
        let s2 = 4.0 * d1 + 2.0 * t * s1 - s0;
        t0 = t1;
        t1 = t2;
        d0 = d1;
        d1 = d2;
        s0 = s1;
        s1 = s2;
    }
    (t1, d1, s1)
}

/// Interpolation matrix from a patch's `q × q` Clenshaw–Curtis grid to an
/// arbitrary list of parameter points (used for upsampling densities from
/// the coarse to the fine discretization, §3.1 step 1).
pub fn patch_interp_matrix(q: usize, targets: &[(f64, f64)]) -> Mat {
    let nodes = clenshaw_curtis(q).nodes;
    let iu = Interp1d::new(nodes);
    let mut m = Mat::zeros(targets.len(), q * q);
    for (r, &(u, v)) in targets.iter().enumerate() {
        let wu = iu.weights_at(u);
        let wv = iu.weights_at(v);
        for b in 0..q {
            for a in 0..q {
                m[(r, b * q + a)] = wu[a] * wv[b];
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::clenshaw_curtis;

    fn sample_fn(q: usize, f: impl Fn(f64, f64) -> Vec3) -> Vec<Vec3> {
        let nodes = clenshaw_curtis(q).nodes;
        let mut out = Vec::with_capacity(q * q);
        for &v in &nodes {
            for &u in &nodes {
                out.push(f(u, v));
            }
        }
        out
    }

    fn curved(u: f64, v: f64) -> Vec3 {
        Vec3::new(
            u + 0.1 * v * v,
            v - 0.2 * u * u * v,
            0.3 * u * u + 0.25 * v + 0.05 * u * v * v,
        )
    }

    #[test]
    fn fit_interpolates_samples() {
        let q = 8;
        let samples = sample_fn(q, curved);
        let patch = PolyPatch::fit(q, &samples);
        let nodes = clenshaw_curtis(q).nodes;
        for (j, &v) in nodes.iter().enumerate() {
            for (i, &u) in nodes.iter().enumerate() {
                let p = patch.eval(u, v);
                let s = samples[j * q + i];
                assert!((p - s).norm() < 1e-12, "node ({i},{j})");
            }
        }
        // off-node evaluation agrees with the analytic polynomial
        let p = patch.eval(0.3, -0.77);
        assert!((p - curved(0.3, -0.77)).norm() < 1e-12);
    }

    #[test]
    fn jets_match_finite_differences() {
        let q = 8;
        let patch = PolyPatch::fit(q, &sample_fn(q, curved));
        let (u, v) = (0.21, -0.4);
        let h = 1e-6;
        let (_, xu, xv) = patch.eval_jet(u, v);
        let fdu = (patch.eval(u + h, v) - patch.eval(u - h, v)) / (2.0 * h);
        let fdv = (patch.eval(u, v + h) - patch.eval(u, v - h)) / (2.0 * h);
        assert!((xu - fdu).norm() < 1e-7);
        assert!((xv - fdv).norm() < 1e-7);
        let (_, _, _, xuu, xuv, xvv) = patch.eval_jet2(u, v);
        let fduu = (patch.eval(u + h, v) - 2.0 * patch.eval(u, v) + patch.eval(u - h, v)) / (h * h);
        let fdvv = (patch.eval(u, v + h) - 2.0 * patch.eval(u, v) + patch.eval(u, v - h)) / (h * h);
        let fduv = (patch.eval(u + h, v + h) - patch.eval(u + h, v - h) - patch.eval(u - h, v + h)
            + patch.eval(u - h, v - h))
            / (4.0 * h * h);
        assert!((xuu - fduu).norm() < 1e-3);
        assert!((xuv - fduv).norm() < 1e-3);
        assert!((xvv - fdvv).norm() < 1e-3);
    }

    #[test]
    fn subdivision_is_exact() {
        let q = 7;
        let patch = PolyPatch::fit(q, &sample_fn(q, curved));
        let children = patch.split4();
        // child 0 covers [-1,0]×[-1,0]: its (s,t) maps to parent (u,v)
        for &(s, t) in &[(-0.5, -0.5), (0.9, -0.1), (0.0, 0.0)] {
            let u = -0.5 + 0.5 * s;
            let v = -0.5 + 0.5 * t;
            let pc = children[0].eval(s, t);
            let pp = patch.eval(u, v);
            assert!((pc - pp).norm() < 1e-11, "({s},{t})");
        }
        // child 3 covers [0,1]×[0,1]
        let pc = children[3].eval(0.2, -0.6);
        let pp = patch.eval(0.5 + 0.5 * 0.2, 0.5 + 0.5 * -0.6);
        assert!((pc - pp).norm() < 1e-11);
    }

    #[test]
    fn closest_point_interior_and_edge() {
        let q = 8;
        let patch = PolyPatch::fit(q, &sample_fn(q, curved));
        // point slightly off the surface along the normal at a known param
        let (u0, v0) = (0.3, -0.2);
        let n = patch.normal_raw(u0, v0).normalized();
        let x = patch.eval(u0, v0) + n * 0.05;
        let (u, v, d) = patch.closest_point(x);
        assert!((d - 0.05).abs() < 1e-6, "distance {d}");
        assert!((patch.eval(u, v) - patch.eval(u0, v0)).norm() < 1e-4);
        // a far point clamps to the boundary of the parameter square
        let far = Vec3::new(10.0, 10.0, 0.0);
        let (ue, ve, _) = patch.closest_point(far);
        assert!(
            ue.abs() > 0.999 || ve.abs() > 0.999,
            "expected edge params ({ue},{ve})"
        );
    }

    #[test]
    fn interp_matrix_reproduces_polynomials() {
        let q = 6;
        let targets = vec![(0.3, 0.4), (-0.9, 0.1), (0.0, -1.0)];
        let m = patch_interp_matrix(q, &targets);
        let nodes = clenshaw_curtis(q).nodes;
        // degree-(q-1) scalar field sampled on the grid
        let f = |u: f64, v: f64| (1.0 + u).powi(3) * (1.0 - 0.5 * v).powi(2);
        let mut samples = vec![0.0; q * q];
        for (j, &v) in nodes.iter().enumerate() {
            for (i, &u) in nodes.iter().enumerate() {
                samples[j * q + i] = f(u, v);
            }
        }
        let vals = m.matvec(&samples);
        for (k, &(u, v)) in targets.iter().enumerate() {
            assert!((vals[k] - f(u, v)).abs() < 1e-11, "target {k}");
        }
    }

    #[test]
    fn bounding_box_contains_surface() {
        let q = 8;
        let patch = PolyPatch::fit(q, &sample_fn(q, curved));
        let bb = patch.bounding_box(12).inflated(1e-3);
        for &(u, v) in &[(0.1, 0.9), (-0.7, -0.7), (0.99, -0.99)] {
            assert!(bb.contains(patch.eval(u, v)));
        }
    }
}
