//! Multi-segment vessel networks: Y-bifurcations and merges composed from
//! a small graph description.
//!
//! The paper's branching vascular networks (Figs. 1, 8) come from medical
//! quad meshes; this module composes them procedurally instead, staying on
//! the same [`PolyPatch`](crate::poly::PolyPatch) substrate as every other
//! generator so the downstream pipeline (quadrature, closest point,
//! refinement, collision meshes) is unchanged.
//!
//! ## Construction
//!
//! A network is described by a junction `center` plus one [`BranchSpec`]
//! per branch: an outward axis, a length (junction → cap apex seam) and a
//! radius. Each branch contributes a capsule signed-distance field
//! `f_i(x) = dist(x, [c, c + â_i L_i]) − r_i`; the network surface is the
//! zero set of their smooth minimum
//!
//! ```text
//! f(x) = m − k · ln Σ_i exp(−(f_i(x) − m)/k),   m = min_i f_i(x)
//! ```
//!
//! where `k` is the junction smoothing length. Every capsule is convex and
//! contains the junction center, so their union is star-shaped with respect
//! to `c`; the surface is therefore a radial graph `ρ(d)` over directions
//! `d` and can be sampled on the cube-sphere template: for each direction
//! the radius is found by a bracketing march plus bisection, and the six
//! faces are fitted into `6·per_face²` patches with watertight shared
//! edges (identical 1-D samples along shared cube edges).
//!
//! Far from the junction the exponentials of the non-nearest branches
//! underflow to exactly `0.0` in f64, so the blend correction vanishes and
//! each port cap is an *exact* capsule hemisphere — the per-port boundary
//! conditions built on top (see `sim::network`) inherit the analytic flux
//! properties of the single-tube caps.
//!
//! ## Build-time validation
//!
//! The radial march doubles as a star-shapedness check: a direction whose
//! blended SDF crosses zero more than once (geometry folding back over
//! itself, e.g. branches so shallow the smoothing bridges them) is a build
//! error, not a silent self-intersection.

use crate::geom::{cube_face_maps, fit_grid};
use crate::surface::{BoundarySurface, PatchKind};
use linalg::Vec3;

/// One branch of a vessel network: a capsule segment pointing out of the
/// junction center.
#[derive(Clone, Copy, Debug)]
pub struct BranchSpec {
    /// Outward branch direction from the junction center (normalized
    /// internally; must be non-zero).
    pub axis: Vec3,
    /// Distance from the junction center to the cap seam (where the
    /// hemispherical cap begins).
    pub length: f64,
    /// Branch tube radius.
    pub radius: f64,
    /// Whether the branch cap is an inflow port (marks cap patches
    /// [`PatchKind::Inlet`]) or an outflow port ([`PatchKind::Outlet`]).
    /// The port id is the branch index.
    pub is_inlet: bool,
}

/// Distance from `x` to the segment `[a, a + ab]` minus `r` (capsule SDF).
fn capsule_sdf(x: Vec3, a: Vec3, ab: Vec3, r: f64) -> f64 {
    let t = ((x - a).dot(ab) / ab.dot(ab)).clamp(0.0, 1.0);
    (x - (a + ab * t)).norm() - r
}

/// Smooth minimum of the branch SDFs at `x` (min-shifted log-sum-exp).
fn blended_sdf(x: Vec3, center: Vec3, branches: &[(Vec3, f64, f64)], k: f64) -> f64 {
    let mut m = f64::INFINITY;
    for &(axis, len, r) in branches {
        m = m.min(capsule_sdf(x, center, axis * len, r));
    }
    let mut s = 0.0;
    for &(axis, len, r) in branches {
        s += (-(capsule_sdf(x, center, axis * len, r) - m) / k).exp();
    }
    m - k * s.ln()
}

/// Composes a closed vessel network from branches radiating out of a
/// junction center. See the module docs for the construction.
///
/// - `smoothing` is the junction blend length `k` (must be positive and at
///   most half the smallest branch radius);
/// - `per_face` subdivides each of the 6 cube-sphere template faces into
///   `per_face × per_face` patches (`6·per_face²` total);
/// - `q` is the patch polynomial/quadrature order.
///
/// Cap patches whose quadrature nodes all lie on one branch's hemispherical
/// cap are marked [`PatchKind::Inlet`]/[`PatchKind::Outlet`] with the
/// branch index as port id; at coarse `per_face` no patch may qualify —
/// port boundary conditions in `sim` are applied per quadrature node from
/// the branch description, not from patch kinds, so the marking is
/// advisory (visualization, sanity checks).
///
/// Errors on invalid specs (fewer than two branches, non-positive or
/// non-finite dimensions, zero axes, out-of-range smoothing, caps that do
/// not clear the junction) and on star-shapedness violations detected
/// during the radial march.
pub fn branched_network(
    center: Vec3,
    branches: &[BranchSpec],
    smoothing: f64,
    per_face: usize,
    q: usize,
) -> Result<BoundarySurface, String> {
    if branches.len() < 2 {
        return Err(format!(
            "network needs at least 2 branches, got {}",
            branches.len()
        ));
    }
    if per_face == 0 || q < 2 {
        return Err(format!(
            "network needs per_face >= 1 and q >= 2, got per_face={per_face}, q={q}"
        ));
    }
    let mut min_r = f64::INFINITY;
    let mut reach = 0.0f64;
    let mut dirs = Vec::with_capacity(branches.len());
    for (i, b) in branches.iter().enumerate() {
        if !(b.radius.is_finite() && b.radius > 0.0 && b.length.is_finite() && b.length > 0.0) {
            return Err(format!(
                "branch {i}: radius and length must be positive and finite \
                 (radius={}, length={})",
                b.radius, b.length
            ));
        }
        let n = b.axis.norm();
        if !(n.is_finite() && n > 1e-12) {
            return Err(format!("branch {i}: axis must be non-zero"));
        }
        if b.length <= b.radius {
            return Err(format!(
                "branch {i}: length {} must exceed radius {} so the port cap \
                 clears the junction",
                b.length, b.radius
            ));
        }
        min_r = min_r.min(b.radius);
        reach = reach.max(b.length + b.radius);
        dirs.push((b.axis * (1.0 / n), b.length, b.radius));
    }
    if !(smoothing.is_finite() && smoothing > 0.0 && smoothing <= 0.5 * min_r) {
        return Err(format!(
            "junction smoothing {smoothing} must lie in (0, {}] \
             (half the smallest branch radius)",
            0.5 * min_r
        ));
    }

    // radial graph over the unit sphere: ρ(d) solves f(center + ρ d) = 0.
    // March with fixed resolution to bracket the root (and to detect
    // multiple crossings = star-shapedness violation), then bisect. All
    // iteration counts are fixed, so the build is bit-deterministic.
    let rho_hi = reach + 3.0 * smoothing;
    const MARCH: usize = 256;
    const BISECT: usize = 80;
    let radius_of = |d: Vec3| -> Result<f64, String> {
        let g = |rho: f64| blended_sdf(center + d * rho, center, &dirs, smoothing);
        let mut bracket: Option<(f64, f64)> = None;
        let mut prev = g(0.0); // = −min_i r_i + blend < 0
        for j in 1..=MARCH {
            let rho = rho_hi * j as f64 / MARCH as f64;
            let cur = g(rho);
            if prev <= 0.0 && cur > 0.0 {
                if bracket.is_some() {
                    return Err(format!(
                        "network is not star-shaped about the junction center: \
                         direction ({}, {}, {}) crosses the surface more than \
                         once (reduce smoothing or widen branch angles)",
                        d.x, d.y, d.z
                    ));
                }
                bracket = Some((rho_hi * (j - 1) as f64 / MARCH as f64, rho));
            } else if prev > 0.0 && cur <= 0.0 {
                return Err(format!(
                    "network is not star-shaped about the junction center: \
                     direction ({}, {}, {}) re-enters the surface \
                     (reduce smoothing or widen branch angles)",
                    d.x, d.y, d.z
                ));
            }
            prev = cur;
        }
        let (mut lo, mut hi) =
            bracket.ok_or_else(|| "network surface not bracketed (internal error)".to_string())?;
        for _ in 0..BISECT {
            let mid = 0.5 * (lo + hi);
            if g(mid) <= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    };

    // sample the six cube-sphere faces; fit_grid shares exact 1-D node sets
    // along common cube edges, so the fitted surface is watertight.
    // fit_grid's map is infallible, so march failures are stashed in a cell
    // (returning the center as a placeholder) and the build fails after.
    let mut patches = Vec::with_capacity(6 * per_face * per_face);
    for face in cube_face_maps() {
        let err_cell = std::cell::RefCell::new(None::<String>);
        let map = |u: f64, v: f64| -> Vec3 {
            let d = face(u, v);
            match radius_of(d) {
                Ok(rho) => center + d * rho,
                Err(e) => {
                    err_cell.borrow_mut().get_or_insert(e);
                    center
                }
            }
        };
        patches.extend(fit_grid(q, per_face, &map));
        if let Some(e) = err_cell.into_inner() {
            return Err(e);
        }
    }

    // advisory cap-patch marking: a patch is a port patch only when every
    // quadrature node lies on the same branch's hemispherical cap
    let surface = BoundarySurface::new(q, patches);
    let quad = surface.quadrature();
    let mut kinds = vec![PatchKind::Wall; surface.num_patches()];
    for (pi, kind) in kinds.iter_mut().enumerate() {
        let mut cap_branch: Option<usize> = None;
        let mut all_on_cap = true;
        for node in 0..quad.len() {
            if quad.patch_of[node] as usize != pi {
                continue;
            }
            let x = quad.points[node] - center;
            let mut on: Option<usize> = None;
            for (bi, &(axis, len, r)) in dirs.iter().enumerate() {
                let t = x.dot(axis);
                let ray = (x - axis * t).norm();
                if t > len && ray < 1.5 * r {
                    on = Some(bi);
                    break;
                }
            }
            match (on, cap_branch) {
                (Some(bi), None) => cap_branch = Some(bi),
                (Some(bi), Some(prev)) if bi == prev => {}
                _ => {
                    all_on_cap = false;
                    break;
                }
            }
        }
        if all_on_cap {
            if let Some(bi) = cap_branch {
                *kind = if branches[bi].is_inlet {
                    PatchKind::Inlet(bi as u32)
                } else {
                    PatchKind::Outlet(bi as u32)
                };
            }
        }
    }

    Ok(BoundarySurface {
        q: surface.q,
        patches: surface.patches,
        kinds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn check_closed_surface(s: &BoundarySurface, interior: Vec3, tol: f64) {
        // Gauss identity: ∫ n·(x−c)/(4π|x−c|³) dS = 1 for c inside
        let quad = s.quadrature();
        let mut acc = 0.0;
        for i in 0..quad.len() {
            let r = quad.points[i] - interior;
            acc += quad.normals[i].dot(r) / (4.0 * PI * r.norm().powi(3)) * quad.weights[i];
        }
        assert!((acc - 1.0).abs() < tol, "Gauss identity: {acc} (want 1)");
    }

    fn y_branches() -> Vec<BranchSpec> {
        let up = Vec3::new(-1.0, 0.6, 0.0).normalized();
        let dn = Vec3::new(-1.0, -0.6, 0.0).normalized();
        vec![
            BranchSpec {
                axis: Vec3::new(1.0, 0.0, 0.0),
                length: 1.6,
                radius: 0.5,
                is_inlet: true,
            },
            BranchSpec {
                axis: up,
                length: 1.5,
                radius: 0.4,
                is_inlet: false,
            },
            BranchSpec {
                axis: dn,
                length: 1.5,
                radius: 0.4,
                is_inlet: false,
            },
        ]
    }

    #[test]
    fn y_bifurcation_is_closed_and_oriented() {
        let s = branched_network(Vec3::ZERO, &y_branches(), 0.15, 3, 8).unwrap();
        assert_eq!(s.num_patches(), 6 * 9);
        check_closed_surface(&s, Vec3::ZERO, 2e-2);
        check_closed_surface(&s, Vec3::new(1.0, 0.0, 0.0), 2e-2);
        // normals point away from the junction center (star-shaped graph)
        let quad = s.quadrature();
        for i in 0..quad.len() {
            assert!(
                quad.normals[i].dot(quad.points[i]) > 0.0,
                "normal not outward at {:?}",
                quad.points[i]
            );
        }
    }

    #[test]
    fn merge_geometry_is_closed() {
        // two inflow branches merging into one outflow
        let mut branches = y_branches();
        branches[0].is_inlet = false;
        branches[1].is_inlet = true;
        branches[2].is_inlet = true;
        let s = branched_network(Vec3::new(0.5, -0.25, 1.0), &branches, 0.1, 2, 8).unwrap();
        check_closed_surface(&s, Vec3::new(0.5, -0.25, 1.0), 2e-2);
    }

    #[test]
    fn two_opposed_branches_match_capsule_area() {
        // degenerate network = straight capsule; the log-sum-exp blend only
        // inflates the waist by O(k ln 2), so the residual is the radial
        // graph's fit error (~1% at per_face = 3 for a 5:1 aspect capsule)
        let (r, l) = (0.5, 2.0);
        let branches = [
            BranchSpec {
                axis: Vec3::new(1.0, 0.0, 0.0),
                length: l,
                radius: r,
                is_inlet: true,
            },
            BranchSpec {
                axis: Vec3::new(-1.0, 0.0, 0.0),
                length: l,
                radius: r,
                is_inlet: false,
            },
        ];
        let s = branched_network(Vec3::ZERO, &branches, 0.01, 3, 8).unwrap();
        check_closed_surface(&s, Vec3::new(0.3, 0.1, 0.0), 2e-2);
        let area = s.quadrature().total_area();
        let exact = 2.0 * PI * r * (2.0 * l) + 4.0 * PI * r * r;
        assert!((area - exact).abs() / exact < 0.02, "{area} vs {exact}");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let good = y_branches();
        // too few branches
        assert!(branched_network(Vec3::ZERO, &good[..1], 0.1, 2, 8).is_err());
        // zero axis
        let mut bad = good.clone();
        bad[1].axis = Vec3::ZERO;
        assert!(branched_network(Vec3::ZERO, &bad, 0.1, 2, 8).is_err());
        // cap does not clear the junction
        let mut bad = good.clone();
        bad[2].length = bad[2].radius * 0.9;
        assert!(branched_network(Vec3::ZERO, &bad, 0.1, 2, 8).is_err());
        // smoothing out of range (zero, and larger than half the min radius)
        assert!(branched_network(Vec3::ZERO, &good, 0.0, 2, 8).is_err());
        assert!(branched_network(Vec3::ZERO, &good, 0.3, 2, 8).is_err());
        // negative radius
        let mut bad = good.clone();
        bad[0].radius = -0.5;
        assert!(branched_network(Vec3::ZERO, &bad, 0.1, 2, 8).is_err());
    }

    #[test]
    fn cap_patches_marked_on_aligned_ports() {
        // T-junction with fat ports on the ±x template axes: at odd
        // per_face the center patch of each axis face lies fully inside the
        // port cap cone (atan(0.6/1.6) ≈ 20.6° > the patch's 15.8° corner
        // angle at per_face = 5), so it gets the advisory port marking
        let branches = [
            BranchSpec {
                axis: Vec3::new(1.0, 0.0, 0.0),
                length: 1.6,
                radius: 0.6,
                is_inlet: true,
            },
            BranchSpec {
                axis: Vec3::new(-1.0, 0.0, 0.0),
                length: 1.6,
                radius: 0.6,
                is_inlet: false,
            },
            BranchSpec {
                axis: Vec3::new(0.0, 1.0, 0.0),
                length: 1.2,
                radius: 0.5,
                is_inlet: false,
            },
        ];
        let s = branched_network(Vec3::ZERO, &branches, 0.15, 5, 8).unwrap();
        let inlets = s
            .kinds
            .iter()
            .filter(|k| matches!(k, PatchKind::Inlet(0)))
            .count();
        let outlets = s
            .kinds
            .iter()
            .filter(|k| matches!(k, PatchKind::Outlet(1)))
            .count();
        assert!(inlets > 0, "no inlet cap patch marked");
        assert!(outlets > 0, "no outlet cap patch marked");
        // refinement preserves the marking
        let r = s.refined();
        let ri = r
            .kinds
            .iter()
            .filter(|k| matches!(k, PatchKind::Inlet(0)))
            .count();
        assert_eq!(ri, 4 * inlets);
    }
}
