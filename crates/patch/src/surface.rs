//! A boundary surface Γ as a collection of polynomial patches, with the
//! coarse quadrature discretization of §3.1 attached.

use crate::poly::PolyPatch;
use linalg::{clenshaw_curtis, Aabb, Vec3};
use rayon::prelude::*;

/// Role of a patch in the flow problem (§5.1: inflow/outflow regions carry
/// parabolic velocity boundary conditions; walls are no-slip).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatchKind {
    /// No-slip vessel wall (`g = 0`).
    Wall,
    /// Inflow cap belonging to the given port id.
    Inlet(u32),
    /// Outflow cap belonging to the given port id.
    Outlet(u32),
}

/// A closed boundary surface made of non-overlapping polynomial patches.
#[derive(Clone, Debug)]
pub struct BoundarySurface {
    /// Quadrature order per direction (the paper uses q = 11, i.e. 121
    /// Clenshaw–Curtis points per patch).
    pub q: usize,
    /// The patches.
    pub patches: Vec<PolyPatch>,
    /// Per-patch role.
    pub kinds: Vec<PatchKind>,
}

/// The coarse quadrature discretization of a surface: the `y_ℓ` of §3.1.
#[derive(Clone, Debug)]
pub struct SurfaceQuad {
    /// Quadrature order used.
    pub q: usize,
    /// All quadrature points, patch-major, `u` fastest within a patch.
    pub points: Vec<Vec3>,
    /// Outward unit normals at the points.
    pub normals: Vec<Vec3>,
    /// Quadrature weights including the surface Jacobian `|X_u × X_v|`.
    pub weights: Vec<f64>,
    /// Patch index of every point.
    pub patch_of: Vec<u32>,
    /// Per-patch surface area.
    pub patch_area: Vec<f64>,
}

impl SurfaceQuad {
    /// Number of quadrature nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the discretization is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total surface area.
    pub fn total_area(&self) -> f64 {
        self.patch_area.iter().sum()
    }

    /// The paper's patch size `L`: square root of the patch area ("the
    /// square root of the surface area of the patch containing the closest
    /// point", §5.1).
    pub fn patch_size(&self, patch: usize) -> f64 {
        self.patch_area[patch].sqrt()
    }
}

impl BoundarySurface {
    /// Creates a surface from patches, all walls.
    pub fn new(q: usize, patches: Vec<PolyPatch>) -> BoundarySurface {
        let kinds = vec![PatchKind::Wall; patches.len()];
        BoundarySurface { q, patches, kinds }
    }

    /// Number of patches.
    pub fn num_patches(&self) -> usize {
        self.patches.len()
    }

    /// Builds the coarse quadrature discretization (tensor Clenshaw–Curtis
    /// per patch, Eq. 3.1), in parallel over patches.
    pub fn quadrature(&self) -> SurfaceQuad {
        let rule = clenshaw_curtis(self.q);
        let per_patch: Vec<(Vec<Vec3>, Vec<Vec3>, Vec<f64>, f64)> = self
            .patches
            .par_iter()
            .map(|patch| {
                let mut pts = Vec::with_capacity(self.q * self.q);
                let mut nrm = Vec::with_capacity(self.q * self.q);
                let mut wts = Vec::with_capacity(self.q * self.q);
                let mut area = 0.0;
                for (j, &v) in rule.nodes.iter().enumerate() {
                    for (i, &u) in rule.nodes.iter().enumerate() {
                        let (x, xu, xv) = patch.eval_jet(u, v);
                        let nr = xu.cross(xv);
                        let jac = nr.norm();
                        let w = rule.weights[i] * rule.weights[j] * jac;
                        pts.push(x);
                        nrm.push(nr.normalized());
                        wts.push(w);
                        area += w;
                    }
                }
                (pts, nrm, wts, area)
            })
            .collect();
        let mut quad = SurfaceQuad {
            q: self.q,
            points: Vec::new(),
            normals: Vec::new(),
            weights: Vec::new(),
            patch_of: Vec::new(),
            patch_area: Vec::new(),
        };
        for (pi, (pts, nrm, wts, area)) in per_patch.into_iter().enumerate() {
            quad.patch_of
                .extend(std::iter::repeat_n(pi as u32, pts.len()));
            quad.points.extend(pts);
            quad.normals.extend(nrm);
            quad.weights.extend(wts);
            quad.patch_area.push(area);
        }
        quad
    }

    /// Splits every patch into four children (the weak-scaling refinement
    /// rule of §5.2: "subdivide the M polynomial patches into 4M new but
    /// equivalent polynomial patches").
    pub fn refined(&self) -> BoundarySurface {
        let mut patches = Vec::with_capacity(self.patches.len() * 4);
        let mut kinds = Vec::with_capacity(self.patches.len() * 4);
        for (p, &k) in self.patches.iter().zip(&self.kinds) {
            for c in p.split4() {
                patches.push(c);
                kinds.push(k);
            }
        }
        BoundarySurface {
            q: self.q,
            patches,
            kinds,
        }
    }

    /// Applies [`BoundarySurface::refined`] `levels` times: every patch
    /// splits into `4^levels` children with re-fit Chebyshev coefficients
    /// (exact polynomial subdivision), quadrupling the wall resolution per
    /// level while leaving the geometry itself unchanged.
    ///
    /// This is the wall-resolution control of the vessel scenarios
    /// (`wall_refine` in the scenario configs): the patch size `L̂` halves
    /// per level, so the check-point family `R = check_r · L̂` of the
    /// boundary solver shrinks with it and the constraint
    /// `(1+p) R ≲ 0.6 · radius` (stay inside the lumen) can be met
    /// simultaneously with `R ≳ 3 h_fine` (stay resolved by the fine
    /// quadrature) — impossible on the coarse registry vessels where `L̂`
    /// is comparable to the tube radius.
    pub fn refine(&self, levels: u32) -> BoundarySurface {
        let mut s = self.clone();
        for _ in 0..levels {
            s = s.refined();
        }
        s
    }

    /// Uniformly-spaced `m × m` sample grid per patch for collision meshes
    /// (the paper uses 22² = 484 equispaced points per patch).
    pub fn collision_grid(&self, m: usize) -> Vec<Vec<Vec3>> {
        self.patches
            .par_iter()
            .map(|p| {
                let mut pts = Vec::with_capacity(m * m);
                for j in 0..m {
                    let v = -1.0 + 2.0 * j as f64 / (m - 1) as f64;
                    for i in 0..m {
                        let u = -1.0 + 2.0 * i as f64 / (m - 1) as f64;
                        pts.push(p.eval(u, v));
                    }
                }
                pts
            })
            .collect()
    }

    /// Bounding box of the whole surface (from patch boxes).
    pub fn bounding_box(&self) -> Aabb {
        self.patches
            .par_iter()
            .map(|p| p.bounding_box(8))
            .fold(Aabb::EMPTY, Aabb::union)
    }

    /// Per-patch bounding boxes sampled with `n × n` points.
    pub fn patch_boxes(&self, n: usize) -> Vec<Aabb> {
        self.patches.par_iter().map(|p| p.bounding_box(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::cube_sphere;

    #[test]
    fn sphere_quadrature_area_and_normals() {
        let s = cube_sphere(1.0, Vec3::ZERO, 1, 8);
        let quad = s.quadrature();
        let area = quad.total_area();
        let exact = 4.0 * std::f64::consts::PI;
        assert!(
            (area - exact).abs() / exact < 1e-6,
            "area {area} vs {exact}"
        );
        // normals point outward for a sphere at the origin
        for (p, n) in quad.points.iter().zip(&quad.normals) {
            assert!(p.normalized().dot(*n) > 0.99, "normal not outward");
            assert!((n.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gauss_identity_on_patched_sphere() {
        // ∫ dΩ-style identity: ∫ n·(x−c)/|x−c|³ dS = 4π for c inside
        let s = cube_sphere(1.3, Vec3::new(0.2, 0.0, -0.1), 1, 8);
        let quad = s.quadrature();
        let c = Vec3::new(0.3, 0.1, 0.0);
        let mut acc = 0.0;
        for i in 0..quad.len() {
            let r = quad.points[i] - c;
            acc += quad.normals[i].dot(r) / r.norm().powi(3) * quad.weights[i];
        }
        let expect = 4.0 * std::f64::consts::PI;
        assert!((acc - expect).abs() / expect < 1e-5, "{acc} vs {expect}");
    }

    #[test]
    fn refinement_preserves_area_and_multiplies_patches() {
        let s = cube_sphere(1.0, Vec3::ZERO, 1, 8);
        let r = s.refined();
        assert_eq!(r.num_patches(), 4 * s.num_patches());
        let a0 = s.quadrature().total_area();
        let a1 = r.quadrature().total_area();
        assert!((a0 - a1).abs() / a0 < 1e-5);
        // refined patches are smaller
        let q0 = s.quadrature();
        let q1 = r.quadrature();
        let l0 = q0.patch_size(0);
        let l1 = q1.patch_size(0);
        assert!(l1 < 0.6 * l0);
    }

    #[test]
    fn collision_grid_lies_on_surface() {
        let s = cube_sphere(2.0, Vec3::ZERO, 0, 8);
        for grid in s.collision_grid(6) {
            for p in grid {
                assert!((p.norm() - 2.0).abs() < 5e-3, "r = {}", p.norm());
            }
        }
    }
}
