//! # patch — polynomial boundary patches and vessel geometry
//!
//! The blood-vessel boundary Γ of the paper: non-overlapping tensor-product
//! polynomial patches (8th order, 11² Clenshaw–Curtis quadrature nodes and
//! 22² collision samples per patch in the paper's configuration), with
//!
//! - exact polynomial subdivision (the Bezier-style refinement used for
//!   weak scaling, §5.2),
//! - Newton-with-backtracking closest-point search (§3.3 step d),
//! - the coarse quadrature discretization of §3.1,
//! - procedural closed vessel geometries replacing the paper's medical quad
//!   meshes (see DESIGN.md substitution table),
//! - VTK/OBJ export for visualization.

pub mod geom;
pub mod io;
pub mod network;
pub mod poly;
pub mod surface;

pub use geom::{
    capsule_tube, cube_sphere, ellipsoid, modulated_torus, torus, Centerline, Helix, Serpentine,
    StraightLine,
};
pub use io::{export_surface_vtk, write_obj, write_vtk_points, write_vtk_quads};
pub use network::{branched_network, BranchSpec};
pub use poly::{patch_interp_matrix, PolyPatch};
pub use surface::{BoundarySurface, PatchKind, SurfaceQuad};
