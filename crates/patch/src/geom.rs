//! Procedural vessel geometries.
//!
//! The paper's vessel networks come from medical quad meshes (Figs. 1, 8);
//! those are not available, so this module generates closed patch-based
//! surfaces procedurally (DESIGN.md substitution table). All generators
//! produce smooth maps sampled at Clenshaw–Curtis nodes and fitted with
//! [`PolyPatch`]es, so every downstream code path (quadrature, closest
//! point, near-singular evaluation, collision meshes, refinement) is
//! identical to the medical-mesh case.
//!
//! Generators:
//! - [`cube_sphere`]: sphere from 6 projected cube faces (convergence tests);
//! - [`ellipsoid`]: anisotropic variant;
//! - [`torus`]: closed vessel loop;
//! - [`modulated_torus`]: vessel loop with radius modulation (stenoses and
//!   aneurysm-like bulges) — the "complex vessel" stand-in for scaling runs;
//! - [`capsule_tube`]: tube with hemispherical caps along an arbitrary
//!   smooth centerline, with inlet/outlet cap marking for confined flows.

use crate::poly::PolyPatch;
use crate::surface::{BoundarySurface, PatchKind};
use linalg::{clenshaw_curtis, Vec3};
use std::f64::consts::PI;

/// Fits one patch of order `q` through samples of a smooth map on the
/// sub-square `[u0,u1] × [v0,v1]` of the map's parameter domain.
pub(crate) fn fit_from_map(
    q: usize,
    u0: f64,
    u1: f64,
    v0: f64,
    v1: f64,
    f: &dyn Fn(f64, f64) -> Vec3,
) -> PolyPatch {
    let nodes = clenshaw_curtis(q).nodes;
    let mut samples = Vec::with_capacity(q * q);
    for &tv in &nodes {
        let v = 0.5 * (v0 + v1) + 0.5 * (v1 - v0) * tv;
        for &tu in &nodes {
            let u = 0.5 * (u0 + u1) + 0.5 * (u1 - u0) * tu;
            samples.push(f(u, v));
        }
    }
    PolyPatch::fit(q, &samples)
}

/// Subdivides a map's square domain into `n × n` fitted patches.
pub(crate) fn fit_grid(q: usize, n: usize, f: &dyn Fn(f64, f64) -> Vec3) -> Vec<PolyPatch> {
    let mut out = Vec::with_capacity(n * n);
    for j in 0..n {
        let v0 = -1.0 + 2.0 * j as f64 / n as f64;
        let v1 = -1.0 + 2.0 * (j + 1) as f64 / n as f64;
        for i in 0..n {
            let u0 = -1.0 + 2.0 * i as f64 / n as f64;
            let u1 = -1.0 + 2.0 * (i + 1) as f64 / n as f64;
            out.push(fit_from_map(q, u0, u1, v0, v1, f));
        }
    }
    out
}

/// The six cube-face → unit-sphere maps with outward orientation.
pub(crate) fn cube_face_maps() -> Vec<Box<dyn Fn(f64, f64) -> Vec3 + Sync>> {
    // each face: (u,v) ∈ [-1,1]² → normalize(face point); orientation chosen
    // so that X_u × X_v points outward
    vec![
        Box::new(|u, v| Vec3::new(1.0, u, v).normalized()), // +x
        Box::new(|u, v| Vec3::new(-1.0, v, u).normalized()), // -x
        Box::new(|u, v| Vec3::new(v, 1.0, u).normalized()), // +y
        Box::new(|u, v| Vec3::new(u, -1.0, v).normalized()), // -y
        Box::new(|u, v| Vec3::new(u, v, 1.0).normalized()), // +z
        Box::new(|u, v| Vec3::new(v, u, -1.0).normalized()), // -z
    ]
}

/// Sphere of given radius/center from `6·n²` patches (cube-sphere).
///
/// `n` is the per-face subdivision; the patch size `L` scales as `1/n`,
/// which drives the boundary-solver convergence study (Fig. 9).
pub fn cube_sphere(radius: f64, center: Vec3, subdivisions: u32, q: usize) -> BoundarySurface {
    let n = 1usize << subdivisions;
    let mut patches = Vec::new();
    for face in cube_face_maps() {
        let map = |u: f64, v: f64| center + face(u, v) * radius;
        patches.extend(fit_grid(q, n, &map));
    }
    BoundarySurface::new(q, patches)
}

/// Ellipsoid with semi-axes `(a, b, c)`.
pub fn ellipsoid(semi: Vec3, center: Vec3, subdivisions: u32, q: usize) -> BoundarySurface {
    let n = 1usize << subdivisions;
    let mut patches = Vec::new();
    for face in cube_face_maps() {
        let map = |u: f64, v: f64| {
            let s = face(u, v);
            center + Vec3::new(s.x * semi.x, s.y * semi.y, s.z * semi.z)
        };
        patches.extend(fit_grid(q, n, &map));
    }
    BoundarySurface::new(q, patches)
}

/// Torus with ring radius `big_r` and tube radius `small_r`, covered by
/// `nu × nv` patches (u: around the ring, v: around the tube).
pub fn torus(big_r: f64, small_r: f64, nu: usize, nv: usize, q: usize) -> BoundarySurface {
    modulated_torus(big_r, small_r, 0.0, 0, nu, nv, q)
}

/// Torus whose tube radius varies around the ring:
/// `r(α) = small_r · (1 + amp · cos(lobes · α))`.
///
/// With `amp < 0` sections pinch (stenosis), `amp > 0` sections bulge
/// (aneurysm). This is the closed "complex vessel network" used by the
/// scaling harnesses: arbitrarily refinable, confining, and smooth.
pub fn modulated_torus(
    big_r: f64,
    small_r: f64,
    amp: f64,
    lobes: u32,
    nu: usize,
    nv: usize,
    q: usize,
) -> BoundarySurface {
    assert!(
        big_r > small_r * (1.0 + amp.abs()),
        "torus would self-intersect"
    );
    let map = move |alpha: f64, beta: f64| -> Vec3 {
        let r = small_r * (1.0 + amp * (lobes as f64 * alpha).cos());
        let ring = Vec3::new(alpha.cos(), alpha.sin(), 0.0);
        // tube cross-section in the (ring, z) plane; orientation gives
        // outward normals
        ring * (big_r + r * beta.cos()) + Vec3::new(0.0, 0.0, r * beta.sin())
    };
    let mut patches = Vec::new();
    for j in 0..nv {
        let b0 = 2.0 * PI * j as f64 / nv as f64;
        let b1 = 2.0 * PI * (j + 1) as f64 / nv as f64;
        for i in 0..nu {
            let a0 = 2.0 * PI * i as f64 / nu as f64;
            let a1 = 2.0 * PI * (i + 1) as f64 / nu as f64;
            let f = |u: f64, v: f64| {
                let alpha = 0.5 * (a0 + a1) + 0.5 * (a1 - a0) * u;
                let beta = 0.5 * (b0 + b1) + 0.5 * (b1 - b0) * v;
                map(alpha, beta)
            };
            patches.push(fit_from_map(q, -1.0, 1.0, -1.0, 1.0, &f));
        }
    }
    BoundarySurface::new(q, patches)
}

/// A smooth centerline curve for [`capsule_tube`].
pub trait Centerline: Sync {
    /// Position at arc parameter `s ∈ [0, 1]`.
    fn position(&self, s: f64) -> Vec3;
    /// Reference "up" vector used to build a smooth frame (must never be
    /// parallel to the tangent).
    fn up(&self) -> Vec3 {
        Vec3::new(0.0, 0.0, 1.0)
    }
}

/// Straight segment between two points.
pub struct StraightLine {
    /// Start point.
    pub a: Vec3,
    /// End point.
    pub b: Vec3,
}

impl Centerline for StraightLine {
    fn position(&self, s: f64) -> Vec3 {
        self.a + (self.b - self.a) * s
    }
    fn up(&self) -> Vec3 {
        (self.b - self.a).any_orthogonal()
    }
}

/// Planar serpentine curve: a sequence of smooth bends in the x–y plane,
/// `y = amp · sin(2π windings x̂)` scaled to the given length.
pub struct Serpentine {
    /// Total extent along x.
    pub length: f64,
    /// Amplitude of the bends.
    pub amp: f64,
    /// Number of full sine periods.
    pub windings: f64,
}

impl Centerline for Serpentine {
    fn position(&self, s: f64) -> Vec3 {
        Vec3::new(
            self.length * s,
            self.amp * (2.0 * PI * self.windings * s).sin(),
            0.0,
        )
    }
}

/// Helical centerline (non-planar test case).
pub struct Helix {
    /// Helix radius.
    pub radius: f64,
    /// Height advanced per turn.
    pub pitch: f64,
    /// Number of turns.
    pub turns: f64,
}

impl Centerline for Helix {
    fn position(&self, s: f64) -> Vec3 {
        let a = 2.0 * PI * self.turns * s;
        Vec3::new(
            self.radius * a.cos(),
            self.radius * a.sin(),
            self.pitch * self.turns * s,
        )
    }
    fn up(&self) -> Vec3 {
        Vec3::new(0.0, 0.0, 1.0)
    }
}

/// Frame along the centerline: tangent plus a smooth normal/binormal pair
/// from the fixed up vector (valid while the tangent stays away from `up`).
fn frame(c: &dyn Centerline, s: f64) -> (Vec3, Vec3, Vec3) {
    let h = 1e-5;
    let t =
        ((c.position((s + h).min(1.0)) - c.position((s - h).max(0.0))).normalized()).normalized();
    let up = c.up();
    let n = (up - t * up.dot(t)).normalized();
    let b = t.cross(n);
    (t, n, b)
}

/// Closed tube of radius `r` along a centerline with hemispherical caps.
///
/// Patch layout: `n_s × 4` tube patches (the 4 angular patches use the
/// cube-sphere angular map so the cap seam is watertight), plus `5` patches
/// per cap (1 polar + 4 flank). Cap patches are marked [`PatchKind::Inlet`]
/// (at `s = 0`, port 0) and [`PatchKind::Outlet`] (at `s = 1`, port 1).
///
/// The caps join the tube with tangent continuity (C¹); the curvature jump
/// at the seam is the accepted geometric simplification documented in
/// DESIGN.md.
pub fn capsule_tube(c: &dyn Centerline, r: f64, n_s: usize, q: usize) -> BoundarySurface {
    let mut patches = Vec::new();
    let mut kinds = Vec::new();

    // angular map shared with cube-sphere flank faces: for k-th quadrant,
    // angle φ(w) = k·90° + atan(w), w ∈ [-1,1]
    let ang = |k: usize, w: f64| -> f64 { (k as f64) * 0.5 * PI + w.atan() };

    // tube body: s ∈ [0,1] → centerline, 4 angular quadrants. Parameter
    // order (u: angular, v: axial) makes X_u × X_v point outward.
    for k in 0..4 {
        for i in 0..n_s {
            let s0 = i as f64 / n_s as f64;
            let s1 = (i + 1) as f64 / n_s as f64;
            let f = |u: f64, v: f64| -> Vec3 {
                // v: axial, u: angular (atan map keeps the cap seam exact)
                let s = 0.5 * (s0 + s1) + 0.5 * (s1 - s0) * v;
                let phi = ang(k, u);
                let (_, n, b) = frame(c, s);
                c.position(s) + (n * phi.cos() + b * phi.sin()) * r
            };
            patches.push(fit_from_map(q, -1.0, 1.0, -1.0, 1.0, &f));
            kinds.push(PatchKind::Wall);
        }
    }

    // caps: hemisphere in the local frame at s = 0 (pointing −t) and
    // s = 1 (pointing +t)
    for (end, port) in [(0.0, 0u32), (1.0, 1u32)] {
        let (t, n, b) = frame(c, end);
        let axis = if end == 0.0 { -t } else { t };
        let center = c.position(end);
        // polar face: projected square onto the hemisphere around `axis`
        let polar = |u: f64, v: f64| -> Vec3 {
            let d = (axis + (n * u + b * v) * 1.0).normalized();
            center + d * r
        };
        // orientation: ensure outward normal (flip u/v when needed)
        let polar_oriented = move |u: f64, v: f64| -> Vec3 {
            if end == 0.0 {
                polar(v, u)
            } else {
                polar(u, v)
            }
        };
        patches.push(fit_from_map(q, -1.0, 1.0, -1.0, 1.0, &polar_oriented));
        kinds.push(if port == 0 {
            PatchKind::Inlet(port)
        } else {
            PatchKind::Outlet(port)
        });
        // four flank faces: from the tube seam (polar angle 90°) to the
        // polar face edge (45°)
        for k in 0..4 {
            // exact cube-sphere half-face in the local frame: the face in
            // direction ring_k, spanned by tang_k (in-plane) and the axis;
            // its seam edge (w = 0) matches the tube's atan angular map and
            // its top edge (w = 1) matches the polar face edges, so the cap
            // is watertight
            let kang = (k as f64) * 0.5 * PI;
            let ring_k = n * kang.cos() + b * kang.sin();
            let tang_k = n * (-kang.sin()) + b * kang.cos();
            let flank = move |u: f64, v: f64| -> Vec3 {
                let w = 0.5 * (u + 1.0); // 0 at seam, 1 at polar edge
                let d = (ring_k + tang_k * v + axis * w).normalized();
                center + d * r
            };
            // orientation: outward normals on both ends
            let flank_oriented = move |u: f64, v: f64| -> Vec3 {
                if end == 0.0 {
                    flank(u, v)
                } else {
                    flank(u, -v)
                }
            };
            patches.push(fit_from_map(q, -1.0, 1.0, -1.0, 1.0, &flank_oriented));
            kinds.push(if port == 0 {
                PatchKind::Inlet(port)
            } else {
                PatchKind::Outlet(port)
            });
        }
    }

    BoundarySurface { q, patches, kinds }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_closed_surface(s: &BoundarySurface, interior: Vec3, tol: f64) {
        // Gauss identity: ∫ n·(x−c)/(4π|x−c|³) dS = 1 for c inside
        let quad = s.quadrature();
        let mut acc = 0.0;
        for i in 0..quad.len() {
            let r = quad.points[i] - interior;
            acc += quad.normals[i].dot(r) / (4.0 * PI * r.norm().powi(3)) * quad.weights[i];
        }
        assert!((acc - 1.0).abs() < tol, "Gauss identity: {acc} (want 1)");
    }

    #[test]
    fn sphere_is_closed_and_oriented() {
        let s = cube_sphere(1.0, Vec3::new(0.5, 0.0, 0.0), 1, 8);
        check_closed_surface(&s, Vec3::new(0.5, 0.1, -0.2), 1e-6);
    }

    #[test]
    fn ellipsoid_area_reasonable() {
        // nearly-spherical ellipsoid: area close to sphere of mean radius
        let s = ellipsoid(Vec3::new(1.05, 1.0, 0.95), Vec3::ZERO, 1, 8);
        let a = s.quadrature().total_area();
        let approx = 4.0 * PI;
        assert!((a - approx).abs() / approx < 0.01, "area {a}");
        check_closed_surface(&s, Vec3::ZERO, 1e-5);
    }

    #[test]
    fn torus_area_matches_analytic() {
        let (big_r, small_r) = (2.0, 0.5);
        let s = torus(big_r, small_r, 8, 4, 8);
        let area = s.quadrature().total_area();
        let exact = 4.0 * PI * PI * big_r * small_r;
        assert!((area - exact).abs() / exact < 1e-6, "{area} vs {exact}");
        // interior point 0.2 from the wall: plain quadrature is only
        // ~1e-3 accurate this close (the near-singular regime of §3.1)
        check_closed_surface(&s, Vec3::new(2.0, 0.0, 0.3), 5e-3);
    }

    #[test]
    fn modulated_torus_closed() {
        let s = modulated_torus(3.0, 0.6, 0.3, 5, 12, 4, 8);
        check_closed_surface(&s, Vec3::new(3.0, 0.0, 0.0), 5e-3);
        // normals outward: dot with radial-from-ring direction positive
        let quad = s.quadrature();
        let mut pos = 0usize;
        for i in 0..quad.len() {
            let p = quad.points[i];
            let ring = Vec3::new(p.x, p.y, 0.0).normalized() * 3.0;
            if quad.normals[i].dot(p - ring) > 0.0 {
                pos += 1;
            }
        }
        assert!(
            pos as f64 > 0.95 * quad.len() as f64,
            "outward normals: {pos}/{}",
            quad.len()
        );
    }

    #[test]
    fn straight_capsule_closed_and_capped() {
        let line = StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(4.0, 0.0, 0.0),
        };
        let s = capsule_tube(&line, 0.5, 4, 8);
        // 4·4 tube + 2·5 caps
        assert_eq!(s.num_patches(), 26);
        check_closed_surface(&s, Vec3::new(2.0, 0.1, 0.0), 2e-2);
        // area ≈ cylinder + sphere
        let area = s.quadrature().total_area();
        let exact = 2.0 * PI * 0.5 * 4.0 + 4.0 * PI * 0.25;
        assert!((area - exact).abs() / exact < 1e-3, "{area} vs {exact}");
        // inlet/outlet marked
        let inlets = s
            .kinds
            .iter()
            .filter(|k| matches!(k, PatchKind::Inlet(_)))
            .count();
        let outlets = s
            .kinds
            .iter()
            .filter(|k| matches!(k, PatchKind::Outlet(_)))
            .count();
        assert_eq!(inlets, 5);
        assert_eq!(outlets, 5);
    }

    #[test]
    fn serpentine_capsule_closed() {
        let c = Serpentine {
            length: 6.0,
            amp: 0.8,
            windings: 1.5,
        };
        let s = capsule_tube(&c, 0.4, 8, 8);
        check_closed_surface(&c_interior(&c), 2e-2, &s);
        fn c_interior(c: &Serpentine) -> Vec3 {
            c.position(0.5)
        }
        fn check_closed_surface(interior: &Vec3, tol: f64, s: &BoundarySurface) {
            let quad = s.quadrature();
            let mut acc = 0.0;
            for i in 0..quad.len() {
                let r = quad.points[i] - *interior;
                acc += quad.normals[i].dot(r) / (4.0 * PI * r.norm().powi(3)) * quad.weights[i];
            }
            assert!((acc - 1.0).abs() < tol, "Gauss identity: {acc}");
        }
    }

    #[test]
    fn helix_capsule_closed() {
        let c = Helix {
            radius: 2.0,
            pitch: 1.0,
            turns: 1.25,
        };
        let s = capsule_tube(&c, 0.35, 10, 8);
        let quad = s.quadrature();
        let interior = c.position(0.3);
        let mut acc = 0.0;
        for i in 0..quad.len() {
            let r = quad.points[i] - interior;
            acc += quad.normals[i].dot(r) / (4.0 * PI * r.norm().powi(3)) * quad.weights[i];
        }
        assert!((acc - 1.0).abs() < 2e-2, "Gauss identity: {acc}");
    }
}
