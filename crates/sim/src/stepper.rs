//! The time-step orchestration of §2.2: explicit inter-cell and boundary
//! contributions, the boundary solve, the locally-implicit per-cell update,
//! and contact resolution — with wall-time split into the component
//! categories of Figs. 4–6.

use crate::domain::Vessel;
use crate::timers::{timed, StepTimers};
use collision::{
    resolve_contacts, triangulate_latlon, DetectOptions, Mobility, NcpOptions, TriMesh,
};
use fmm::fmm_evaluate;
use kernels::{direct_eval_serial, StokesEquiv, StokesSL};
use linalg::{Mat, Vec3};
use sphharm::SphBasis;
use vesicle::{
    implicit_substep_chain, step_health, upsample_matrix, Cell, CellHealth, SelfInteraction,
    StepOptions,
};

/// Adaptive time-step controls: the per-cell blow-up gate and the
/// deterministic retry/backoff policy [`Simulation::step`] runs behind.
///
/// The controller is a pure function of simulation state — every decision
/// (accept, retry at Δt/2, freeze at `dt_min`, recover toward the target
/// Δt) depends only on the cells, the config, and [`DtState`], all of
/// which the checkpoint serializes — so two instances and a restarted run
/// take bit-identical retry sequences.
#[derive(Clone, Copy, Debug)]
pub struct DtControl {
    /// Master switch. `false` restores the pre-adaptive behavior: one
    /// attempt per step at the configured Δt, committed regardless of
    /// health (the health metrics are still computed and reported).
    pub enabled: bool,
    /// Smallest Δt the backoff may reach. `≤ 0` means "target Δt / 16"
    /// (four halvings), resolved at run time so the default tracks the
    /// scenario's Δt.
    pub dt_min: f64,
    /// Consecutive clean steps (no retries, no frozen cells) before the
    /// controller doubles Δt back toward the target.
    pub grow_after: usize,
    /// Retry shape: `false` halves the whole step (the step then advances
    /// `Δt_current < Δt_target`); `true` keeps the step advancing the full
    /// target Δt but chains the per-cell implicit update as
    /// `Δt_target / Δt_current` sub-steps of [`implicit_substep_chain`].
    pub substep: bool,
    /// Health bound on [`CellHealth::max_stretch`] (linear stretch of the
    /// surface element vs the rest configuration).
    pub max_stretch: f64,
    /// Health bound on [`CellHealth::volume_drift`] (relative enclosed
    /// volume change per attempted step).
    pub max_volume_drift: f64,
}

impl Default for DtControl {
    fn default() -> Self {
        DtControl {
            enabled: true,
            dt_min: 0.0,
            grow_after: 4,
            substep: false,
            max_stretch: 10.0,
            max_volume_drift: 0.25,
        }
    }
}

impl DtControl {
    /// The absolute `dt_min` in effect for a target step size.
    pub fn resolved_dt_min(&self, dt_target: f64) -> f64 {
        if self.dt_min > 0.0 {
            self.dt_min
        } else {
            dt_target / 16.0
        }
    }
}

/// The adaptive controller's evolving state. Part of the trajectory —
/// a restarted run must resume with the same current Δt and clean-step
/// counter to reproduce the original retry sequence bit-identically, so
/// [`crate::Checkpoint`] (format v3) serializes it.
#[derive(Clone, Debug, Default)]
pub struct DtState {
    /// Current controller Δt (`0` = uninitialized, meaning the target Δt).
    pub dt: f64,
    /// Consecutive clean steps since the last retry/freeze/recovery.
    pub clean_steps: usize,
    /// Per-cell freeze flags from the last step's `dt_min` fallback: `true`
    /// means that cell's implicit update was skipped (its pre-step
    /// positions were kept through the implicit stage) because it still
    /// violated the health bounds at `dt_min`.
    pub frozen: Vec<bool>,
}

/// Simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Time-step size.
    pub dt: f64,
    /// Collision threshold δ (minimal surface separation).
    pub collision_delta: f64,
    /// Collision-mesh upsampling factor for cells (paper: 2).
    pub col_upsample: usize,
    /// Background shear rate γ̇ for free-space runs (`u = [γ̇ z, 0, 0]`).
    pub shear_rate: f64,
    /// Body-force density (e.g. gravity for sedimentation, Fig. 7).
    pub gravity: Vec3,
    /// Use FMM for cell–cell interaction above this many point pairs.
    pub fmm_pair_threshold: f64,
    /// FMM options for cell–cell far field.
    pub fmm: fmm::FmmOptions,
    /// Per-cell implicit solve options.
    pub step: StepOptions,
    /// Skip collision handling entirely (for the convergence reference
    /// runs of Fig. 11).
    pub disable_collisions: bool,
    /// Adaptive time-step controls (blow-up gate + retry/backoff policy).
    pub dt_control: DtControl,
    /// Worker threads for the parallel stages of [`Simulation::step`].
    /// `0` (the default) inherits the ambient pool size (available
    /// parallelism, or an enclosing `rayon` pool override); any other
    /// value pins the step to exactly that many workers. Every parallel
    /// stage commits results in a fixed index order, so trajectories are
    /// bit-identical at any thread count — this knob only trades wall
    /// time. It is an execution detail, not trajectory state: checkpoints
    /// neither store nor restore it.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dt: 1e-3,
            collision_delta: 5e-2,
            col_upsample: 2,
            shear_rate: 0.0,
            gravity: Vec3::ZERO,
            fmm_pair_threshold: 4.0e8,
            fmm: fmm::FmmOptions::default(),
            step: StepOptions::default(),
            disable_collisions: false,
            dt_control: DtControl::default(),
            threads: 0,
        }
    }
}

/// Per-step diagnostics (the rows of the scaling tables).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// GMRES iterations of the boundary solve.
    pub bie_iterations: usize,
    /// Whether the boundary solve reached its tolerance (`false` when it
    /// exited on the stagnation check or the iteration cap; `false` for
    /// free-space steps, where no solve runs).
    pub bie_converged: bool,
    /// Relative residual the boundary solve stopped at (0 for free-space
    /// steps) — together with [`StepStats::bie_converged`] this separates
    /// "converged", "stalled near the quadrature floor", and "stalled
    /// against a polluted operator".
    pub bie_residual: f64,
    /// Number of active contacts at detection.
    pub contacts: usize,
    /// NCP outer iterations.
    pub ncp_iters: usize,
    /// Whether contact resolution reached a contact-free state.
    pub contact_free: bool,
    /// Time actually advanced by this step: the (possibly backed-off)
    /// controller Δt in whole-step-halving mode, the full target Δt in
    /// sub-stepping mode.
    pub dt_effective: f64,
    /// Rolled-back attempts before this step was accepted (0 = clean).
    pub dt_retries: usize,
    /// Largest per-cell [`CellHealth::max_stretch`] of the accepted
    /// attempt — bounded by `DtControl::max_stretch` whenever the
    /// controller is enabled and no cell had to be frozen.
    pub max_edge_stretch: f64,
    /// Cells whose implicit update was frozen this step because they still
    /// violated the health bounds at `dt_min` (graceful degradation: the
    /// run stays alive and finite instead of emitting NaNs).
    pub frozen_cells: usize,
    /// Persistent wall-FMM plans *built* during this step's boundary
    /// evaluations. Healthy steady state is 0: the frozen source tree is
    /// reused across steps, so only the first vessel step (or a step after
    /// a vessel digest change) pays a build.
    pub wall_fmm_builds: usize,
    /// Target-only replans of the persistent wall FMM during this step
    /// (one per `eval_at` call on the FMM backend; 0 on the dense path).
    pub wall_fmm_replans: usize,
    /// Net flux of the vessel boundary condition through the surface
    /// ([`Vessel::port_flux_imbalance`]) at the step's boundary solve —
    /// machine-epsilon-sized for a well-posed port manifest, 0 for
    /// free-space steps. Asserted per step by
    /// `sim-driver --assert-flux-balance`.
    pub flux_imbalance: f64,
}

/// The simulation state: cells in an optional vessel.
pub struct Simulation {
    /// Spherical-harmonic basis shared by all cells.
    pub basis: SphBasis,
    /// The cells.
    pub cells: Vec<Cell>,
    /// Optional confining vessel.
    pub vessel: Option<Vessel>,
    /// Configuration.
    pub config: SimConfig,
    /// Accumulated component timers.
    pub timers: StepTimers,
    /// Steps taken.
    pub steps: usize,
    /// Last step's diagnostics.
    pub last_stats: StepStats,
    /// Boundary density of the previous step's BIE solve, used to
    /// warm-start the next solve (`None` before the first vessel step).
    /// Part of the evolving trajectory state: it is serialized by
    /// [`crate::Checkpoint`] so restarts stay bit-identical.
    pub bie_warm: Option<Vec<f64>>,
    /// Adaptive time-step controller state (current Δt, clean-step
    /// counter, per-cell freeze flags). Evolving trajectory state,
    /// serialized by [`crate::Checkpoint`] (format v3).
    pub dt_state: DtState,
    /// Per-cell health metrics of the last accepted step (empty before the
    /// first step) — the per-cell detail behind
    /// [`StepStats::max_edge_stretch`], for diagnostics that need to name
    /// the offending cell.
    pub last_health: Vec<CellHealth>,
    /// Digest of the vessel configuration the solver's persistent wall FMM
    /// was built against ([`crate::vessel_digest`]); `None` before the
    /// first vessel step. When the digest changes mid-run (e.g. a scenario
    /// swaps the vessel or retunes the solver), the cached evaluation plan
    /// is invalidated so the next step rebuilds against the new wall.
    wall_digest: Option<u64>,
}

/// One uncommitted step attempt: everything `Simulation::step` needs to
/// either commit (positions, minus reverted frozen cells) or report
/// (stats, per-cell health).
struct Attempt {
    stats: StepStats,
    health: Vec<CellHealth>,
    new_positions: Vec<Vec<Vec3>>,
    /// Frozen cells whose post-collision positions went non-finite: their
    /// committed state is the pre-step state (position update discarded).
    reverts: Vec<bool>,
}

struct CellMobility<'a> {
    selfops: &'a [SelfInteraction],
    up: &'a Mat,
    dt: f64,
    n_cells: usize,
    n_coarse: usize,
    n_fine_grid: usize,
}

impl Mobility for CellMobility<'_> {
    fn is_rigid(&self, mesh: u32) -> bool {
        // meshes are ordered: cells first, vessel patches after
        mesh as usize >= self.n_cells
    }
    fn apply(&self, mesh: u32, force: &[(u32, Vec3)], nverts: usize) -> Vec<Vec3> {
        self.apply_many(mesh, &[force], nverts)
            .pop()
            .expect("apply_many returns one column per force column")
    }
    /// The batched path the NCP assembly drives: all contact-force columns
    /// touching one cell are packed into matrices so the three linear
    /// stages — Uᵀ force restriction, the self-interaction velocity
    /// response, and the Δt·U displacement prolongation — each run as one
    /// GEMM per linearization instead of one matvec chain per contact.
    fn apply_many(&self, mesh: u32, forces: &[&[(u32, Vec3)]], nverts: usize) -> Vec<Vec<Vec3>> {
        let mi = mesh as usize;
        let k = forces.len();
        if mi >= self.n_cells || k == 0 {
            return vec![vec![Vec3::ZERO; nverts]; k];
        }
        let nf = self.n_fine_grid;
        let nc = self.n_coarse;
        // fine-vertex forces → coarse generalized forces via Uᵀ, one
        // column per contact (pole vertices, beyond the fine grid, are
        // dropped). The force lists are sparse, so this stage stays a
        // scatter rather than a GEMM.
        let mut coarse_f = Mat::zeros(3 * nc, k);
        for (col, force) in forces.iter().enumerate() {
            for &(v, f) in *force {
                let v = v as usize;
                if v >= nf {
                    continue;
                }
                for j in 0..nc {
                    let u = self.up[(v, j)];
                    if u != 0.0 {
                        coarse_f[(3 * j, col)] += u * f.x;
                        coarse_f[(3 * j + 1, col)] += u * f.y;
                        coarse_f[(3 * j + 2, col)] += u * f.z;
                    }
                }
            }
        }
        // velocity response through the cell's singular self-interaction
        let vel = self.selfops[mi].apply_many(&coarse_f);
        // displacement at fine vertices: Δt · U · v, per component
        let mut out = vec![vec![Vec3::ZERO; nverts]; k];
        let mut comp = Mat::zeros(nc, k);
        for c in 0..3 {
            for j in 0..nc {
                for col in 0..k {
                    comp[(j, col)] = vel[(3 * j + c, col)];
                }
            }
            let fine = self.up.matmul(&comp);
            for (col, ocol) in out.iter_mut().enumerate() {
                for v in 0..nf {
                    ocol[v][c] = self.dt * fine[(v, col)];
                }
            }
        }
        // pole vertices follow the nearest ring's mean displacement
        if nverts >= nf + 2 {
            for ocol in &mut out {
                ocol[nf] = ocol[0];
                ocol[nf + 1] = ocol[nf - 1];
            }
        }
        out
    }
}

impl Simulation {
    /// Creates a simulation.
    pub fn new(
        basis: SphBasis,
        cells: Vec<Cell>,
        vessel: Option<Vessel>,
        config: SimConfig,
    ) -> Simulation {
        let n_cells = cells.len();
        Simulation {
            basis,
            cells,
            vessel,
            config,
            timers: StepTimers::default(),
            steps: 0,
            last_stats: StepStats::default(),
            bie_warm: None,
            dt_state: DtState {
                dt: config.dt,
                clean_steps: 0,
                frozen: vec![false; n_cells],
            },
            last_health: Vec::new(),
            wall_digest: None,
        }
    }

    /// Number of degrees of freedom solved per step (cells: 3 per
    /// quadrature point; boundary: 3 per coarse node), the paper's
    /// "unknowns per time step" metric.
    pub fn dofs(&self) -> usize {
        let cell_dofs = self.cells.len() * 3 * self.basis.grid_size();
        let bd = self.vessel.as_ref().map(|v| v.solver.dim()).unwrap_or(0);
        cell_dofs + bd
    }

    /// Total volume fraction of cells inside the vessel (Figs. 5–7).
    pub fn volume_fraction(&self) -> f64 {
        let vols = rayon::par::map_indexed(self.cells.len(), |ci| {
            self.cells[ci].geometry(&self.basis).volume()
        });
        let cell_vol: f64 = vols.iter().sum();
        match &self.vessel {
            Some(v) => cell_vol / v.volume,
            None => 0.0,
        }
    }

    /// Advances one time step (the algorithm summary of §2.2) as a
    /// **transaction**: an attempt at the controller's current Δt is
    /// health-checked after the implicit stage (per-cell edge stretch,
    /// volume drift, non-finite detection — see [`vesicle::CellHealth`])
    /// and again (finiteness) after contact resolution; a violating
    /// attempt is rolled back to the pre-step state and retried at Δt/2
    /// with exponential backoff down to `dt_min`. At `dt_min` the
    /// offending cells' implicit updates are frozen for the step
    /// (graceful degradation: the run stays alive and finite). After
    /// `grow_after` consecutive clean steps the controller doubles Δt back
    /// toward the configured target. Returns the per-component timers for
    /// this step (retried attempts' wall time included).
    ///
    /// When `config.threads > 0` the whole step runs under a `rayon` pool
    /// override of that size; `0` leaves the ambient pool (available
    /// parallelism, or an enclosing override such as a bench sweep)
    /// untouched. The result is bit-identical either way.
    pub fn step(&mut self) -> StepTimers {
        let threads = self.config.threads;
        if threads > 0 {
            rayon::par::with_override(threads, || self.step_inner())
        } else {
            self.step_inner()
        }
    }

    fn step_inner(&mut self) -> StepTimers {
        let mut t = StepTimers::default();
        let ctl = self.config.dt_control;
        let dt_target = self.config.dt;
        let dt_min = ctl.resolved_dt_min(dt_target).min(dt_target);
        let nc = self.cells.len();

        // controller Δt from serialized state (0 = fresh ⇒ target)
        let mut dt_now = if self.dt_state.dt > 0.0 {
            self.dt_state.dt.min(dt_target)
        } else {
            dt_target
        };
        if !ctl.enabled {
            dt_now = dt_target;
        }

        // pre-step snapshot for rollback: exactly the evolving state a
        // checkpoint captures (cells are bit-exact clones of the same
        // state the `vesicle::state` hooks serialize; the warm-start
        // density is the only other field an attempt mutates)
        let snapshot_cells = self.cells.clone();
        let snapshot_warm = self.bie_warm.clone();

        let mut frozen = vec![false; nc];
        let mut retries = 0usize;
        // freezing only ever grows the frozen set, and an attempt with a
        // cell frozen cannot re-report it, so the loop terminates after at
        // most log2(dt_target/dt_min) halvings + nc freezes
        let (mut stats, health, new_positions, reverts) = loop {
            let n_sub = if ctl.substep {
                ((dt_target / dt_now).round() as usize).max(1)
            } else {
                1
            };
            let dt_total = if ctl.substep { dt_target } else { dt_now };
            match self.attempt_step(dt_total, n_sub, &frozen, ctl.enabled, &mut t) {
                Ok(a) => break (a.stats, a.health, a.new_positions, a.reverts),
                Err(violators) => {
                    // roll back the attempt
                    self.cells = snapshot_cells.clone();
                    self.bie_warm = snapshot_warm.clone();
                    retries += 1;
                    if dt_now * 0.5 >= dt_min * (1.0 - 1e-12) {
                        dt_now *= 0.5;
                    } else {
                        // dt_min reached: freeze the offenders for this step
                        for ci in violators {
                            frozen[ci] = true;
                        }
                    }
                }
            }
        };

        // --- commit (Other) ---
        let (_, t_commit) = timed(|| {
            for (ci, pos) in new_positions.iter().enumerate() {
                if !reverts[ci] {
                    self.cells[ci].set_positions(&self.basis, pos);
                }
            }
        });
        t.other += t_commit;

        // controller bookkeeping: recovery toward the target Δt
        let frozen_cells = frozen.iter().filter(|&&f| f).count();
        if retries == 0 && frozen_cells == 0 {
            self.dt_state.clean_steps += 1;
            if ctl.enabled
                && dt_now < dt_target
                && self.dt_state.clean_steps >= ctl.grow_after.max(1)
            {
                dt_now = (dt_now * 2.0).min(dt_target);
                self.dt_state.clean_steps = 0;
            }
        } else {
            self.dt_state.clean_steps = 0;
        }
        self.dt_state.dt = dt_now;
        self.dt_state.frozen = frozen;

        stats.dt_retries = retries;
        stats.frozen_cells = frozen_cells;
        stats.max_edge_stretch = health.iter().map(|h| h.max_stretch).fold(0.0f64, f64::max);
        self.last_health = health;

        self.timers.accumulate(&t);
        self.steps += 1;
        self.last_stats = stats;
        t
    }

    /// One attempted step at total step size `dt_total`, with the implicit
    /// stage chained as `n_sub` sub-steps (`n_sub = 1` = plain backward
    /// Euler) and `frozen` cells' implicit updates skipped. Mutates only
    /// `self.bie_warm` (the caller's snapshot restores it on rollback);
    /// positions are returned for the caller to commit. With `gate` set,
    /// returns `Err(violating cell indices)` when any non-frozen cell
    /// fails the health bounds after the implicit stage or ends non-finite
    /// after contact resolution.
    fn attempt_step(
        &mut self,
        dt_total: f64,
        n_sub: usize,
        frozen: &[bool],
        gate: bool,
        t: &mut StepTimers,
    ) -> Result<Attempt, Vec<usize>> {
        let dt = dt_total;
        let ctl = self.config.dt_control;
        let basis = &self.basis;
        let nc = self.cells.len();
        let n = basis.grid_size();
        let mut stats = StepStats {
            dt_effective: dt_total,
            ..StepStats::default()
        };

        // --- membrane forces and per-cell data (Other) ---
        // cells are independent within each stage: one slot per cell,
        // committed in cell-index order, so the result is bit-identical at
        // any thread count
        let ((geos, forces, selfops), t_other0) = timed(|| {
            let geos = rayon::par::map_indexed(nc, |ci| self.cells[ci].geometry(basis));
            let forces: Vec<Vec<Vec3>> = rayon::par::map_indexed(nc, |ci| {
                let mut f = self.cells[ci].membrane_force(basis, &geos[ci]);
                for v in &mut f {
                    *v += self.config.gravity;
                }
                f
            });
            let selfops: Vec<SelfInteraction> =
                rayon::par::map_indexed(nc, |ci| self.cells[ci].self_interaction(basis));
            (geos, forces, selfops)
        });
        t.other += t_other0;

        // --- inter-cell velocities via global summation (Other-FMM) ---
        // sources: all cells' quadrature points with weighted forces
        let (b_cells, t_ofmm) = timed(|| {
            if nc == 0 {
                return Vec::new();
            }
            let mu = self.cells[0].params.mu;
            let mut src_pts = Vec::with_capacity(nc * n);
            let mut src_f = Vec::with_capacity(nc * n * 3);
            for (g, f) in geos.iter().zip(&forces) {
                for i in 0..n {
                    src_pts.push(g.x[i]);
                    let wf = f[i] * g.w_quad[i];
                    src_f.extend_from_slice(&[wf.x, wf.y, wf.z]);
                }
            }
            let trg_pts = src_pts.clone();
            let kernel = StokesSL { mu };
            let pairs = (src_pts.len() as f64) * (trg_pts.len() as f64);
            let total = if pairs > self.config.fmm_pair_threshold {
                fmm_evaluate(
                    &kernel,
                    &StokesEquiv { mu },
                    &src_pts,
                    &src_f,
                    &trg_pts,
                    self.config.fmm,
                )
            } else {
                let mut out = vec![0.0; trg_pts.len() * 3];
                kernels::direct_eval(&kernel, &src_pts, &src_f, &trg_pts, &mut out);
                out
            };
            // subtract each cell's own plain-quadrature self sum (u_fr − u_γi);
            // one output slot per cell, committed in index order
            let b: Vec<Vec<Vec3>> = rayon::par::map_indexed(nc, |ci| {
                let mut own = vec![0.0; n * 3];
                direct_eval_serial(
                    &kernel,
                    &src_pts[ci * n..(ci + 1) * n],
                    &src_f[ci * n * 3..(ci + 1) * n * 3],
                    &src_pts[ci * n..(ci + 1) * n],
                    &mut own,
                );
                let mut bi = vec![Vec3::ZERO; n];
                for i in 0..n {
                    let gidx = ci * n + i;
                    bi[i] = Vec3::new(
                        total[gidx * 3] - own[i * 3],
                        total[gidx * 3 + 1] - own[i * 3 + 1],
                        total[gidx * 3 + 2] - own[i * 3 + 2],
                    );
                }
                bi
            });
            b
        });
        t.other_fmm += t_ofmm;
        let mut b_cells = b_cells;

        // --- boundary solve for u_Γ (BIE-solve / BIE-FMM) ---
        if let Some(vessel) = &self.vessel {
            // the persistent wall FMM is keyed to the vessel configuration:
            // if the digest moved since the plan was built (vessel swapped
            // or solver retuned mid-run), drop the cached plan so this
            // step's evaluation rebuilds against the current wall
            let digest = crate::checkpoint::vessel_digest(vessel);
            if self.wall_digest != Some(digest) {
                vessel.solver.invalidate_eval_fmm();
                self.wall_digest = Some(digest);
            }
            // warm start from the previous step's density (the boundary
            // data changes little between steps, so the previous solution
            // is a much better initial iterate than zero)
            let warm = self.bie_warm.take();
            let ((bie_iters, bie_converged, bie_residual, phi_next), t_bie) = timed(|| {
                let quad = &vessel.solver.quad;
                // u_fr on Γ from all cells (this far-field sum is charged to
                // BIE-FMM below through the solver's own accounting for the
                // check-point evaluation; the cell→Γ sum is Other-FMM-like
                // but the paper groups it with the boundary solve input)
                let mu = self.cells.first().map(|c| c.params.mu).unwrap_or(1.0);
                let mut u_fr = vec![0.0; quad.len() * 3];
                if nc > 0 {
                    let mut src_pts = Vec::with_capacity(nc * n);
                    let mut src_f = Vec::with_capacity(nc * n * 3);
                    for (g, f) in geos.iter().zip(&forces) {
                        for i in 0..n {
                            src_pts.push(g.x[i]);
                            let wf = f[i] * g.w_quad[i];
                            src_f.extend_from_slice(&[wf.x, wf.y, wf.z]);
                        }
                    }
                    let kernel = StokesSL { mu };
                    let pairs = (src_pts.len() * quad.len()) as f64;
                    if pairs > self.config.fmm_pair_threshold {
                        u_fr = fmm_evaluate(
                            &kernel,
                            &StokesEquiv { mu },
                            &src_pts,
                            &src_f,
                            &quad.points,
                            self.config.fmm,
                        );
                    } else {
                        kernels::direct_eval(&kernel, &src_pts, &src_f, &quad.points, &mut u_fr);
                    }
                }
                // g − u_fr
                let rhs: Vec<f64> = vessel.bc.iter().zip(&u_fr).map(|(g, u)| g - u).collect();
                let (phi, res) = vessel.solver.solve_warm(&rhs, warm.as_deref());
                // u_Γ at all cell points
                if nc > 0 {
                    let mut trg = Vec::with_capacity(nc * n);
                    for g in &geos {
                        trg.extend_from_slice(&g.x);
                    }
                    let ug = vessel.solver.eval_at(&phi, &trg);
                    for (ci, bi) in b_cells.iter_mut().enumerate() {
                        for i in 0..n {
                            let gidx = ci * n + i;
                            bi[i] += Vec3::new(ug[gidx * 3], ug[gidx * 3 + 1], ug[gidx * 3 + 2]);
                        }
                    }
                }
                (res.iterations, res.converged, res.rel_residual, phi)
            });
            self.bie_warm = Some(phi_next);
            stats.bie_iterations = bie_iters;
            stats.bie_converged = bie_converged;
            stats.bie_residual = bie_residual;
            stats.flux_imbalance = vessel.port_flux_imbalance();
            let (builds, replans) = vessel.solver.take_eval_fmm_counters();
            stats.wall_fmm_builds = builds as usize;
            stats.wall_fmm_replans = replans as usize;
            let fmm_part = vessel.solver.take_fmm_nanos();
            t.bie_fmm += fmm_part;
            t.bie_solve += (t_bie - fmm_part).max(0.0);
        }

        // --- self-mobility response to external body forces (Other) ---
        // gravity enters the inter-cell sums above, but each cell also
        // moves through its *own* single layer: b_i += S_i[f_g]
        if self.config.gravity != Vec3::ZERO && nc > 0 {
            let (_, t_g) = timed(|| {
                let g = self.config.gravity;
                // chunk size 1 = one disjoint cell slot per dispatched index
                rayon::par::chunks_mut(&mut b_cells, 1, |ci, slot| {
                    let bi = &mut slot[0];
                    let mut f = vec![0.0; 3 * n];
                    for i in 0..n {
                        f[3 * i] = g.x;
                        f[3 * i + 1] = g.y;
                        f[3 * i + 2] = g.z;
                    }
                    let v = selfops[ci].apply(&f);
                    for i in 0..n {
                        bi[i] += Vec3::new(v[3 * i], v[3 * i + 1], v[3 * i + 2]);
                    }
                });
            });
            t.other += t_g;
        }

        // --- background flow (Other) ---
        if self.config.shear_rate != 0.0 {
            let (_, t_sh) = timed(|| {
                for (ci, g) in geos.iter().enumerate() {
                    for i in 0..n {
                        b_cells[ci][i] += Vec3::new(self.config.shear_rate * g.x[i].z, 0.0, 0.0);
                    }
                }
            });
            t.other += t_sh;
        }

        // --- locally-implicit per-cell update (Other) ---
        // frozen cells skip the update entirely (their candidate is the
        // pre-step position grid — §graceful degradation); the rest run
        // backward Euler at dt_total, chained as n_sub sub-steps when the
        // controller is in sub-stepping mode
        let (mut new_positions, t_impl) = timed(|| {
            let positions: Vec<Vec<Vec3>> = rayon::par::map_indexed(nc, |ci| {
                if frozen[ci] {
                    return geos[ci].x.clone();
                }
                let opts = StepOptions {
                    dt,
                    ..self.config.step
                };
                let (pos, _res) = implicit_substep_chain(
                    basis,
                    &self.cells[ci],
                    &selfops[ci],
                    &b_cells[ci],
                    &opts,
                    n_sub,
                );
                pos
            });
            positions
        });
        t.other += t_impl;

        // --- step-health gate after the implicit stage (Other) ---
        // per-cell max edge stretch vs rest length, volume drift, and
        // non-finite detection; violations roll the whole attempt back
        let (health, t_health) = timed(|| {
            let h: Vec<CellHealth> = rayon::par::map_indexed(nc, |ci| {
                step_health(
                    basis,
                    &self.cells[ci],
                    &new_positions[ci],
                    geos[ci].volume(),
                )
            });
            h
        });
        t.other += t_health;
        if gate {
            let violators: Vec<usize> = health
                .iter()
                .enumerate()
                .filter(|(ci, h)| !frozen[*ci] && !h.ok(ctl.max_stretch, ctl.max_volume_drift))
                .map(|(ci, _)| ci)
                .collect();
            if !violators.is_empty() {
                return Err(violators);
            }
        }

        // --- collision handling (COL) ---
        if !self.config.disable_collisions {
            let (col_out, t_col) = timed(|| {
                let pu = basis.p * self.config.col_upsample;
                let up = upsample_matrix(basis.p, pu);
                let bu = SphBasis::new(pu);
                let nf = bu.grid_size();
                // build meshes at start positions; end positions from the
                // implicit update
                let mut meshes: Vec<TriMesh> = Vec::new();
                let mut start: Vec<Vec<Vec3>> = Vec::new();
                let mut end: Vec<Vec<Vec3>> = Vec::new();
                let mut obj_of: Vec<u32> = Vec::new();
                let fine_positions = |coarse: &[Vec3]| -> Vec<Vec3> {
                    let mut out = vec![Vec3::ZERO; nf];
                    let mut comp = vec![0.0; n];
                    for c in 0..3 {
                        for j in 0..n {
                            comp[j] = coarse[j][c];
                        }
                        let f = up.matvec(&comp);
                        for v in 0..nf {
                            out[v][c] = f[v];
                        }
                    }
                    out
                };
                for (ci, cell) in self.cells.iter().enumerate() {
                    let (pts0, nlat, nlon, n0, s0) =
                        cell.collision_points(basis, self.config.col_upsample);
                    let mesh = triangulate_latlon(&pts0, nlat, nlon, n0, s0);
                    let mut e = fine_positions(&new_positions[ci]);
                    // poles at end: reuse ring ends
                    e.push(e[0]);
                    e.push(e[nf - 1]);
                    let mut s = pts0;
                    s.push(n0);
                    s.push(s0);
                    meshes.push(mesh);
                    start.push(s);
                    end.push(e);
                    obj_of.push(ci as u32);
                }
                if let Some(vessel) = &self.vessel {
                    for m in &vessel.meshes {
                        start.push(m.verts.clone());
                        end.push(m.verts.clone());
                        meshes.push(m.clone());
                        obj_of.push(nc as u32); // one rigid vessel object
                    }
                }
                let mobility = CellMobility {
                    selfops: &selfops,
                    up: &up,
                    dt,
                    n_cells: nc,
                    n_coarse: n,
                    n_fine_grid: nf,
                };
                let opts = NcpOptions {
                    detect: DetectOptions::new(self.config.collision_delta),
                    max_outer: 10,
                    ..Default::default()
                };
                let res = resolve_contacts(&meshes, &mut end, &start, &obj_of, &mobility, &opts);
                // project corrected fine positions back to the coarse grid
                // (spectral truncation: exact left inverse of upsampling)
                let corrected: Vec<Vec<Vec3>> = rayon::par::map_indexed(nc, |ci| {
                    let fine = &end[ci][..nf];
                    let mut out = vec![Vec3::ZERO; n];
                    for c in 0..3 {
                        let comp: Vec<f64> = fine.iter().map(|v| v[c]).collect();
                        let cc = bu.analyze(&comp).resampled(basis.p);
                        let g = basis.synthesize(&cc, sphharm::Deriv::None);
                        for j in 0..n {
                            out[j][c] = g[j];
                        }
                    }
                    out
                });
                (corrected, res)
            });
            let (corrected, res) = col_out;
            stats.contacts = res.initial_contacts;
            stats.ncp_iters = res.outer_iters;
            stats.contact_free = res.resolved;
            new_positions = corrected;
            t.col += t_col;
        } else {
            stats.contact_free = true;
        }

        // --- post-collision finiteness gate ---
        // contact resolution can amplify a borderline update; a non-frozen
        // cell going non-finite here re-triggers the backoff, while a
        // frozen cell's non-finite correction is simply discarded at commit
        // (revert flag) so the committed state stays finite
        let mut reverts = vec![false; nc];
        if gate {
            let mut violators = Vec::new();
            for (ci, pos) in new_positions.iter().enumerate() {
                let finite = pos
                    .iter()
                    .all(|p| p.x.is_finite() && p.y.is_finite() && p.z.is_finite());
                if !finite {
                    if frozen[ci] {
                        reverts[ci] = true;
                    } else {
                        violators.push(ci);
                    }
                }
            }
            if !violators.is_empty() {
                return Err(violators);
            }
        }

        Ok(Attempt {
            stats,
            health,
            new_positions,
            reverts,
        })
    }

    /// Recycles cells that reached an outlet region back into the inlet
    /// (§5.1): a cell whose centroid passes the outlet cap plane is
    /// teleported near the inlet, skipping the move if it would overlap
    /// another cell.
    pub fn recycle_cells(&mut self) -> usize {
        let Some(vessel) = &self.vessel else { return 0 };
        let basis = &self.basis;
        let inlets: Vec<_> = vessel
            .ports
            .iter()
            .filter(|p| p.is_inlet)
            .copied()
            .collect();
        let outlets: Vec<_> = vessel
            .ports
            .iter()
            .filter(|p| !p.is_inlet)
            .copied()
            .collect();
        if inlets.is_empty() || outlets.is_empty() {
            return 0;
        }
        let centroids: Vec<Vec3> = rayon::par::map_indexed(self.cells.len(), |ci| {
            self.cells[ci].geometry(basis).centroid()
        });
        let mut moved = 0;
        for ci in 0..self.cells.len() {
            let c = centroids[ci];
            let out = &outlets[0];
            // beyond the outlet plane (inward normal points into the domain)
            let along = (c - out.center).dot(out.inward);
            if along < out.radius * 0.5 {
                // near/through the cap: recycle
                let inl = &inlets[moved % inlets.len()];
                let target = inl.center + inl.inward * (1.5 * inl.radius);
                // collision-free check against other cells
                let min_sep = self
                    .cells
                    .iter()
                    .enumerate()
                    .filter(|(cj, _)| *cj != ci)
                    .map(|(cj, _)| (centroids[cj] - target).norm())
                    .fold(f64::INFINITY, f64::min);
                if min_sep > inl.radius * 0.8 {
                    let d = target - c;
                    self.cells[ci].translate(basis, d);
                    moved += 1;
                }
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vesicle::{biconcave_coeffs, CellParams};

    fn shear_sim(ctl: DtControl, dt: f64) -> Simulation {
        let basis = SphBasis::new(6);
        let params = CellParams {
            kappa_b: 0.02,
            ..Default::default()
        };
        let cells = vec![Cell::new(
            &basis,
            biconcave_coeffs(&basis, 1.0, Vec3::ZERO),
            params,
        )];
        let config = SimConfig {
            dt,
            shear_rate: 0.8,
            dt_control: ctl,
            ..Default::default()
        };
        Simulation::new(basis, cells, None, config)
    }

    fn assert_finite(sim: &Simulation) {
        for (ci, c) in sim.cells.iter().enumerate() {
            for comp in 0..3 {
                assert!(
                    c.coeffs[comp].data.iter().all(|v| v.is_finite()),
                    "cell {ci} component {comp} went non-finite"
                );
            }
        }
    }

    #[test]
    fn oversized_dt_recovers_via_halving() {
        // probe the unconstrained per-step drift so the gate below is
        // guaranteed to trip at the full dt but pass near dt/2
        let off = DtControl {
            enabled: false,
            ..Default::default()
        };
        let mut probe = shear_sim(off, 0.05);
        probe.step();
        assert_eq!(probe.last_stats.dt_retries, 0);
        assert_eq!(probe.last_stats.dt_effective, 0.05);
        let d1 = probe
            .last_health
            .iter()
            .map(|h| h.volume_drift)
            .fold(0.0f64, f64::max);
        assert!(
            d1 > 0.0 && probe.last_stats.max_edge_stretch > 0.0,
            "health must be reported even with the controller disabled"
        );

        // drift scales ~linearly in dt: a bound at 0.7·d1 fails at dt,
        // passes at dt/2 (≈ 0.5·d1) with margin
        let ctl = DtControl {
            max_volume_drift: 0.7 * d1,
            ..Default::default()
        };
        let mut sim = shear_sim(ctl, 0.05);
        sim.step();
        let st = sim.last_stats;
        assert!(st.dt_retries >= 1, "oversized dt must trigger a retry");
        assert_eq!(
            st.frozen_cells, 0,
            "halving should recover without freezing"
        );
        assert!(
            st.dt_effective < 0.05,
            "whole-step halving advances a reduced dt, got {}",
            st.dt_effective
        );
        assert!(st.max_edge_stretch.is_finite());
        assert!(sim.dt_state.dt < 0.05, "backed-off dt must carry over");
        assert_finite(&sim);
    }

    #[test]
    fn impossible_bound_freezes_at_dt_min_and_stays_finite() {
        // max_stretch 0.5 is violated by any configuration (stretch ≈ 1),
        // and dt_min = dt leaves no halving room: the first violation must
        // freeze the cell instead of looping
        let ctl = DtControl {
            dt_min: 0.02,
            max_stretch: 0.5,
            ..Default::default()
        };
        let mut sim = shear_sim(ctl, 0.02);
        sim.step();
        let st = sim.last_stats;
        assert_eq!(st.dt_retries, 1);
        assert_eq!(st.frozen_cells, 1);
        assert_eq!(sim.dt_state.frozen, vec![true]);
        assert_finite(&sim);
        // graceful degradation: the sim keeps stepping
        sim.step();
        assert_eq!(sim.last_stats.frozen_cells, 1);
        assert_finite(&sim);
    }

    #[test]
    fn controller_recovers_dt_after_clean_steps() {
        let ctl = DtControl {
            grow_after: 2,
            ..Default::default()
        };
        let mut sim = shear_sim(ctl, 0.02);
        sim.dt_state.dt = 0.005; // as if two halvings happened earlier
        sim.step();
        assert_eq!(sim.last_stats.dt_effective, 0.005);
        assert_eq!(sim.dt_state.clean_steps, 1);
        sim.step();
        assert_eq!(
            sim.dt_state.dt, 0.01,
            "doubled after grow_after clean steps"
        );
        assert_eq!(sim.dt_state.clean_steps, 0);
        sim.step();
        sim.step();
        assert_eq!(sim.dt_state.dt, 0.02, "recovered to the target dt");
    }

    #[test]
    fn substep_mode_advances_full_target_dt() {
        let ctl = DtControl {
            substep: true,
            grow_after: 1,
            ..Default::default()
        };
        let mut sim = shear_sim(ctl, 0.02);
        sim.dt_state.dt = 0.01; // controller backed off, sub-step chain of 2
        sim.step();
        assert_eq!(
            sim.last_stats.dt_effective, 0.02,
            "sub-stepping still advances the full target dt"
        );
        assert_eq!(sim.last_stats.dt_retries, 0);
        assert_eq!(sim.dt_state.dt, 0.02, "clean step recovered the controller");
        assert_finite(&sim);
    }

    #[test]
    fn disabled_controller_matches_clean_adaptive_trajectory_bit_exactly() {
        // a healthy run takes the same single-attempt path whether the gate
        // is armed or not — the controller must not perturb clean steps
        let mut on = shear_sim(DtControl::default(), 0.01);
        let mut off = shear_sim(
            DtControl {
                enabled: false,
                ..Default::default()
            },
            0.01,
        );
        for _ in 0..2 {
            on.step();
            off.step();
        }
        assert_eq!(on.last_stats.dt_retries, 0);
        for (a, b) in on.cells.iter().zip(&off.cells) {
            for c in 0..3 {
                assert_eq!(a.coeffs[c].data, b.coeffs[c].data);
            }
        }
    }
}
