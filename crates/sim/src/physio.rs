//! Physiology observables of confined RBC flow: apparent viscosity,
//! cell-free layer width, and per-branch hematocrit split.
//!
//! These are the classic microvascular quantities the paper's workloads
//! are judged by (Fåhræus–Lindqvist apparent viscosity vs. tube diameter,
//! plasma skimming at bifurcations). Each observable is computed from the
//! live trajectory state with *documented, honest* definitions — they are
//! diagnostics for regression pinning and the `physiology` bench, not
//! claims of quantitative agreement with in-vivo correlations:
//!
//! - [`membrane_drag_power`]: the rate of work the flow spends deforming
//!   and dragging the suspended cells, from the membrane traction and
//!   finite-difference surface velocities;
//! - [`apparent_viscosity`]: relative apparent viscosity `μ_app/μ` via the
//!   energy budget `1 + P_mem/Φ₀` against the cell-free Poiseuille
//!   dissipation `Φ₀ = 8 μ L Q²/(π R⁴)` at equal flux;
//! - [`cell_free_layer`]: mean gap between the outermost cell surface
//!   point and the tube wall across axial bins;
//! - [`branch_hematocrit`]: per-daughter-branch cell volume fractions
//!   compared against the imposed flux split (the plasma-skimming
//!   deviation is `hematocrit_frac − flux_frac`).

use crate::domain::Vessel;
use crate::stepper::Simulation;
use linalg::Vec3;
use std::f64::consts::PI;

/// Rate of work the flow performs on the suspended cells:
/// `P = −Σ_cells ∫ f · v dS`, with `f` the membrane traction exerted *on
/// the fluid* and `v = (x − x_prev)/dt` the finite-difference surface
/// velocity. Positive when the cells resist the flow (extra dissipation
/// the driving pressure must supply — the numerator of the apparent
/// viscosity excess); transiently negative when stored elastic energy is
/// released back into the fluid.
///
/// `prev_x[ci]` must hold cell `ci`'s quadrature points at the previous
/// step (from `cell.geometry(&sim.basis).x`); cells missing a previous
/// snapshot contribute zero.
pub fn membrane_drag_power(sim: &Simulation, prev_x: &[Vec<Vec3>], dt: f64) -> f64 {
    let basis = &sim.basis;
    let mut power = 0.0;
    for (ci, cell) in sim.cells.iter().enumerate() {
        let Some(prev) = prev_x.get(ci) else { continue };
        let geo = cell.geometry(basis);
        if prev.len() != geo.x.len() {
            continue;
        }
        let f = cell.membrane_force(basis, &geo);
        for i in 0..geo.x.len() {
            let v = (geo.x[i] - prev[i]) * (1.0 / dt);
            power -= f[i].dot(v) * geo.w_quad[i];
        }
    }
    power
}

/// Relative apparent viscosity `μ_app/μ` from the energy budget: the total
/// dissipation of the loaded tube is the cell-free Poiseuille dissipation
/// `Φ₀ = 8 μ L Q²/(π R⁴)` plus the membrane drag power, and the apparent
/// viscosity is their ratio at equal flux:
///
/// ```text
/// μ_app/μ = (Φ₀ + P_mem)/Φ₀ = 1 + P_mem·π R⁴/(8 μ L Q²)
/// ```
///
/// `1.0` for a cell-free tube by construction.
pub fn apparent_viscosity(power: f64, mu: f64, flux: f64, radius: f64, length: f64) -> f64 {
    let phi0 = 8.0 * mu * length * flux * flux / (PI * radius.powi(4));
    1.0 + power / phi0
}

/// Tube dimensions of a straight 2-port vessel, for feeding
/// [`apparent_viscosity`]: `(flux Q, radius R, length L)` with `Q` the
/// inlet's prescribed flux, `R` its rim radius, and `L` the distance
/// between the port centers. `None` unless the vessel has exactly one
/// inlet and one outlet.
pub fn tube_dimensions(vessel: &Vessel) -> Option<(f64, f64, f64)> {
    let inlet = vessel.ports.iter().find(|p| p.is_inlet)?;
    let outlet = vessel.ports.iter().find(|p| !p.is_inlet)?;
    if vessel.ports.len() != 2 {
        return None;
    }
    Some((
        inlet.flux,
        inlet.radius,
        (outlet.center - inlet.center).norm(),
    ))
}

/// Cell-free layer width of a straight 2-port tube: the tube axis runs
/// between the port centers; every cell surface point is binned axially
/// (`bins` bins over the inter-port span), and each occupied bin
/// contributes `R − max(radial extent)` — the gap between the outermost
/// cell point and the wall. Returns the mean over occupied bins, or `None`
/// without a 2-port vessel or without any cell point inside the span.
pub fn cell_free_layer(sim: &Simulation, bins: usize) -> Option<f64> {
    let vessel = sim.vessel.as_ref()?;
    let (_, radius, length) = tube_dimensions(vessel)?;
    let inlet = vessel.ports.iter().find(|p| p.is_inlet)?;
    let axis = inlet.inward; // unit, points down the tube for a capsule
    let origin = inlet.center;
    let mut max_r = vec![0.0f64; bins.max(1)];
    let mut occupied = vec![false; bins.max(1)];
    for cell in &sim.cells {
        let geo = cell.geometry(&sim.basis);
        for &x in &geo.x {
            let d = x - origin;
            let t = d.dot(axis) / length;
            if !(0.0..1.0).contains(&t) {
                continue;
            }
            let b = ((t * bins as f64) as usize).min(bins - 1);
            let radial = (d - axis * d.dot(axis)).norm();
            max_r[b] = max_r[b].max(radial);
            occupied[b] = true;
        }
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for b in 0..bins {
        if occupied[b] {
            sum += radius - max_r[b];
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Per-branch hematocrit split at a junction (see [`branch_hematocrit`]).
#[derive(Clone, Debug)]
pub struct BranchSplit {
    /// Outlet port ids, in [`Vessel::ports`] order.
    pub port_ids: Vec<u32>,
    /// Fraction of the *assigned* cell volume residing in each outlet
    /// branch (sums to 1 when any cell is assigned, all-zero otherwise).
    pub hematocrit_frac: Vec<f64>,
    /// Fraction of the total outflow each outlet carries (from the
    /// prescribed port fluxes; always sums to 1).
    pub flux_frac: Vec<f64>,
    /// Cells assigned to some outlet branch.
    pub assigned_cells: usize,
    /// All cells in the simulation.
    pub total_cells: usize,
}

/// Classifies every cell into an outlet branch by centroid — inside the
/// branch cylinder (radial distance below the port rim radius) and past
/// the junction (`(centroid − junction)·axis > 0`) — and compares the
/// per-branch cell volume fractions with the imposed flux split. Plasma
/// skimming shows up as `hematocrit_frac > flux_frac` on the
/// faster daughter. `None` without a vessel or with fewer than 2 outlets.
pub fn branch_hematocrit(sim: &Simulation, junction: Vec3) -> Option<BranchSplit> {
    let vessel = sim.vessel.as_ref()?;
    let outlets: Vec<_> = vessel.ports.iter().filter(|p| !p.is_inlet).collect();
    if outlets.len() < 2 {
        return None;
    }
    let total_out: f64 = outlets.iter().map(|p| p.flux.abs()).sum();
    let mut volume = vec![0.0f64; outlets.len()];
    let mut assigned = 0usize;
    for cell in &sim.cells {
        let geo = cell.geometry(&sim.basis);
        let c = geo.centroid() - junction;
        for (oi, port) in outlets.iter().enumerate() {
            let axis = -port.inward;
            let t = c.dot(axis);
            let ray = (c - axis * t).norm();
            if t > 0.0 && ray < port.radius {
                volume[oi] += geo.volume();
                assigned += 1;
                break;
            }
        }
    }
    let total_vol: f64 = volume.iter().sum();
    Some(BranchSplit {
        port_ids: outlets.iter().map(|p| p.id).collect(),
        hematocrit_frac: volume
            .iter()
            .map(|v| if total_vol > 0.0 { v / total_vol } else { 0.0 })
            .collect(),
        flux_frac: outlets.iter().map(|p| p.flux.abs() / total_out).collect(),
        assigned_cells: assigned,
        total_cells: sim.cells.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{vessel_from_network, NetworkSpec, SegmentSpec};
    use crate::stepper::SimConfig;
    use bie::BieOptions;
    use patch::{capsule_tube, StraightLine};
    use sphharm::SphBasis;
    use vesicle::{sphere_coeffs, Cell, CellParams};

    fn dense_opts() -> BieOptions {
        BieOptions {
            backend: bie::MatvecBackend::Dense,
            ..Default::default()
        }
    }

    fn tube_vessel(radius: f64) -> Vessel {
        let line = StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(6.0, 0.0, 0.0),
        };
        let s = capsule_tube(&line, radius, 3, 6);
        Vessel::new(s, 1.0, dense_opts(), 1.0, 6)
    }

    fn sphere_cell(basis: &SphBasis, r: f64, center: Vec3) -> Cell {
        Cell::new(
            basis,
            sphere_coeffs(basis, r, center),
            CellParams::default(),
        )
    }

    fn sim_with(cells: Vec<Cell>, vessel: Option<Vessel>) -> Simulation {
        let basis = SphBasis::new(6);
        Simulation::new(basis, cells, vessel, SimConfig::default())
    }

    /// Sign convention pin: surface velocities opposing the membrane
    /// traction mean the flow is working against the cells — positive
    /// drag power. Zero motion gives exactly zero.
    #[test]
    fn drag_power_sign_convention() {
        let basis = SphBasis::new(6);
        let cell = sphere_cell(&basis, 0.5, Vec3::ZERO);
        let geo = cell.geometry(&basis);
        let f = cell.membrane_force(&basis, &geo);
        let dt = 0.01;
        // previous positions displaced along +f: v = (x − prev)/dt = −f
        let prev: Vec<Vec3> = geo.x.iter().zip(&f).map(|(x, fi)| *x + *fi * dt).collect();
        let sim = sim_with(vec![cell], None);
        let p = membrane_drag_power(&sim, &[prev], dt);
        let fsq: f64 = f
            .iter()
            .zip(&geo.w_quad)
            .map(|(fi, w)| fi.dot(*fi) * w)
            .sum();
        assert!(fsq > 0.0, "sphere under default params carries no traction");
        assert!((p - fsq).abs() < 1e-9 * fsq.max(1.0), "{p} vs {fsq}");
        // no motion → no power
        let frozen = membrane_drag_power(&sim, &[sim.cells[0].geometry(&sim.basis).x.clone()], dt);
        assert_eq!(frozen, 0.0);
    }

    #[test]
    fn apparent_viscosity_formula_pins_poiseuille_scaling() {
        // cell-free tube: exactly 1 at any dimensions
        assert_eq!(apparent_viscosity(0.0, 1.0, 2.0, 0.5, 6.0), 1.0);
        // the excess scales as R⁴ at fixed power/flux/length (tolerance
        // covers the (1 + e) − 1 cancellation at e ~ 3e-4)
        let e1 = apparent_viscosity(0.3, 1.0, 2.0, 0.5, 6.0) - 1.0;
        let e2 = apparent_viscosity(0.3, 1.0, 2.0, 1.0, 6.0) - 1.0;
        assert!((e2 / e1 - 16.0).abs() < 1e-6, "{}", e2 / e1);
        // and inversely with Q²
        let e3 = apparent_viscosity(0.3, 1.0, 4.0, 0.5, 6.0) - 1.0;
        assert!((e1 / e3 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn cell_free_layer_measures_wall_gap() {
        let basis = SphBasis::new(6);
        let on_axis = sphere_cell(&basis, 0.3, Vec3::new(3.0, 0.0, 0.0));
        let sim = sim_with(vec![on_axis], Some(tube_vessel(1.0)));
        let cfl = cell_free_layer(&sim, 8).unwrap();
        // tube radius 1, cell surface reaches 0.3 off axis → gap 0.7
        assert!((cfl - 0.7).abs() < 0.05, "cfl {cfl}");
        // a cell pushed toward the wall shrinks the layer
        let off_axis = sphere_cell(&basis, 0.3, Vec3::new(3.0, 0.4, 0.0));
        let sim2 = sim_with(vec![off_axis], Some(tube_vessel(1.0)));
        let cfl2 = cell_free_layer(&sim2, 8).unwrap();
        assert!((cfl2 - 0.3).abs() < 0.05, "cfl {cfl2}");
        assert!(cfl2 < cfl);
        // no cells → None
        let empty = sim_with(vec![], Some(tube_vessel(1.0)));
        assert!(cell_free_layer(&empty, 8).is_none());
    }

    /// Pins the plasma-skimming sign convention of the observable: more
    /// cell volume routed into the fast daughter than its flux share
    /// must show up as `hematocrit_frac > flux_frac` on that branch.
    #[test]
    fn branch_split_pins_plasma_skimming_direction() {
        let up = Vec3::new(-1.0, 0.6, 0.0).normalized();
        let dn = Vec3::new(-1.0, -0.6, 0.0).normalized();
        let spec = NetworkSpec {
            center: Vec3::ZERO,
            segments: vec![
                SegmentSpec {
                    axis: Vec3::new(1.0, 0.0, 0.0),
                    length: 1.6,
                    radius: 0.5,
                    flux: 1.0,
                },
                SegmentSpec {
                    axis: up,
                    length: 1.5,
                    radius: 0.4,
                    flux: -0.55,
                },
                SegmentSpec {
                    axis: dn,
                    length: 1.5,
                    radius: 0.4,
                    flux: -0.45,
                },
            ],
            smoothing: 0.15,
            per_face: 2,
            q: 8,
        };
        let vessel = vessel_from_network(&spec, 1.0, dense_opts(), 6).unwrap();
        let basis = SphBasis::new(6);
        // three cells down the fast daughter, one down the slow one, one
        // still in the parent (must stay unassigned)
        let mut cells = Vec::new();
        for t in [0.7, 1.0, 1.3] {
            cells.push(sphere_cell(&basis, 0.15, up * t));
        }
        cells.push(sphere_cell(&basis, 0.15, dn * 1.0));
        cells.push(sphere_cell(&basis, 0.15, Vec3::new(1.0, 0.0, 0.0)));
        let sim = sim_with(cells, Some(vessel));
        let split = branch_hematocrit(&sim, Vec3::ZERO).unwrap();
        assert_eq!(split.total_cells, 5);
        assert_eq!(split.assigned_cells, 4);
        let fast = split
            .port_ids
            .iter()
            .position(|&id| id == 1)
            .expect("fast daughter is port 1");
        assert!((split.hematocrit_frac[fast] - 0.75).abs() < 1e-6);
        assert!((split.flux_frac[fast] - 0.55).abs() < 1e-12);
        // plasma-skimming direction: volume share exceeds flux share
        assert!(split.hematocrit_frac[fast] > split.flux_frac[fast]);
        let fracs: f64 = split.hematocrit_frac.iter().sum();
        assert!((fracs - 1.0).abs() < 1e-12);
    }
}
