//! The vessel-filling procedure of §5.1: "uniformly sample the volume of
//! the bounding box of the vessel with a spacing h to find point locations
//! inside the domain at which we place RBCs in a random orientation. We
//! then slowly increase the size of each RBC until it collides with the
//! vessel boundary or another RBC... This typically produces RBCs of radius
//! r with r0 < r < 2r0."

use bie::closest_points;
use kernels::{direct_eval, LaplaceDL};
use linalg::Vec3;
use patch::BoundarySurface;
use rand::Rng;
use rayon::prelude::*;
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, rotated_coeffs, Cell, CellParams};

/// A placed seed: center and grown radius.
#[derive(Clone, Copy, Debug)]
pub struct Seed {
    /// Cell center.
    pub center: Vec3,
    /// Grown cell radius.
    pub radius: f64,
}

/// Finds seed locations inside the vessel and grows their radii until they
/// would touch the wall or each other (capped at `2 r0`), with `r0 = h/2 ·
/// margin`. Interior/exterior classification uses the Gauss double-layer
/// identity (1 inside, 0 outside) evaluated with the coarse quadrature.
pub fn fill_seeds(surface: &BoundarySurface, h: f64, margin: f64) -> Vec<Seed> {
    let quad = surface.quadrature();
    let bbox = surface.bounding_box();
    // candidate lattice
    let ext = bbox.extent();
    let (nx, ny, nz) = (
        (ext.x / h).floor() as i64,
        (ext.y / h).floor() as i64,
        (ext.z / h).floor() as i64,
    );
    let mut candidates = Vec::new();
    for k in 0..=nz {
        for j in 0..=ny {
            for i in 0..=nx {
                candidates.push(bbox.lo + Vec3::new(i as f64 * h, j as f64 * h, k as f64 * h));
            }
        }
    }
    // inside test: Laplace double layer of the constant density 1
    let src_data: Vec<f64> = (0..quad.len())
        .flat_map(|l| {
            let n = quad.normals[l];
            [quad.weights[l], n.x, n.y, n.z]
        })
        .collect();
    let mut winding = vec![0.0; candidates.len()];
    direct_eval(&LaplaceDL, &quad.points, &src_data, &candidates, &mut winding);
    let inside: Vec<Vec3> = candidates
        .into_iter()
        .zip(&winding)
        .filter(|(_, &w)| w > 0.5)
        .map(|(p, _)| p)
        .collect();

    // distance to the wall for each inside point
    let wall_dist: Vec<f64> = {
        let hits = closest_points(surface, &quad, &inside, 1e9);
        hits.par_iter()
            .zip(&inside)
            .map(|(hit, _)| hit.map(|h| h.dist).unwrap_or(f64::INFINITY))
            .collect()
    };

    // grow radii: limited by wall distance and half the gap to the nearest
    // neighbour (all seeds grow at the same rate, so the gap splits evenly)
    let r0 = 0.5 * h * margin;
    let rmax_cap = 2.0 * r0;
    let seeds: Vec<Seed> = inside
        .par_iter()
        .enumerate()
        .filter_map(|(i, &c)| {
            let mut nearest = f64::INFINITY;
            for (j, &o) in inside.iter().enumerate() {
                if j != i {
                    nearest = nearest.min((o - c).norm());
                }
            }
            let r = (wall_dist[i] * 0.9).min(0.5 * nearest * 0.95).min(rmax_cap);
            if r >= 0.5 * r0 {
                Some(Seed { center: c, radius: r })
            } else {
                None
            }
        })
        .collect();
    seeds
}

/// Creates biconcave cells of various sizes at the seeds, each in a random
/// orientation (the filled configurations of Figs. 1 and 8).
pub fn cells_from_seeds(
    basis: &SphBasis,
    seeds: &[Seed],
    params: CellParams,
    rng: &mut impl Rng,
) -> Vec<Cell> {
    seeds
        .iter()
        .map(|s| {
            let coeffs = biconcave_coeffs(basis, s.radius, s.center);
            let rot = rotated_coeffs(basis, &coeffs, rng);
            Cell::new(basis, rot, params)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch::{capsule_tube, StraightLine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seeds_are_inside_and_disjoint() {
        let line = StraightLine { a: Vec3::ZERO, b: Vec3::new(6.0, 0.0, 0.0) };
        let s = capsule_tube(&line, 1.0, 3, 8);
        let seeds = fill_seeds(&s, 0.8, 0.9);
        assert!(!seeds.is_empty(), "no seeds placed");
        // pairwise disjoint spheres
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                let d = (seeds[i].center - seeds[j].center).norm();
                assert!(
                    d >= 0.9 * (seeds[i].radius + seeds[j].radius),
                    "seeds {i},{j} overlap: d={d}"
                );
            }
            // inside the tube: distance from axis < 1
            let c = seeds[i].center;
            let axis_d = (c.y * c.y + c.z * c.z).sqrt();
            assert!(
                axis_d + seeds[i].radius <= 1.05,
                "seed {i} pokes through the wall"
            );
        }
    }

    #[test]
    fn cells_built_with_varied_radii() {
        let line = StraightLine { a: Vec3::ZERO, b: Vec3::new(8.0, 0.0, 0.0) };
        let s = capsule_tube(&line, 1.0, 4, 8);
        let basis = SphBasis::new(8);
        let seeds = fill_seeds(&s, 0.7, 0.9);
        let mut rng = StdRng::seed_from_u64(42);
        let cells = cells_from_seeds(&basis, &seeds, CellParams::default(), &mut rng);
        assert_eq!(cells.len(), seeds.len());
        // volume fraction is positive and below close packing
        let vol: f64 = cells.iter().map(|c| c.geometry(&basis).volume()).sum();
        let vessel_vol = std::f64::consts::PI * 8.0 + 4.0 / 3.0 * std::f64::consts::PI;
        let vf = vol / vessel_vol;
        assert!(vf > 0.005 && vf < 0.74, "volume fraction {vf}");
    }
}
