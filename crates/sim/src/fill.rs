//! The vessel-filling procedure of §5.1: "uniformly sample the volume of
//! the bounding box of the vessel with a spacing h to find point locations
//! inside the domain at which we place RBCs in a random orientation. We
//! then slowly increase the size of each RBC until it collides with the
//! vessel boundary or another RBC... This typically produces RBCs of radius
//! r with r0 < r < 2r0."

use bie::closest_points;
use kernels::{direct_eval, LaplaceDL};
use linalg::Vec3;
use patch::BoundarySurface;
use rand::Rng;
use rayon::prelude::*;
use sphharm::SphBasis;
use vesicle::{biconcave_coeffs, rotated_coeffs, Cell, CellParams};

/// A placed seed: center and grown radius.
#[derive(Clone, Copy, Debug)]
pub struct Seed {
    /// Cell center.
    pub center: Vec3,
    /// Grown cell radius.
    pub radius: f64,
}

/// Growth limits shared by the filling variants.
struct GrowOpts {
    /// Nominal radius; seeds shrunk below `r0/2` are discarded.
    r0: f64,
    /// Hard cap on the grown radius (the paper's `2 r0`).
    rmax_cap: f64,
    /// Fraction of the wall distance a seed may claim.
    wall_frac: f64,
    /// Fraction of the half-gap to the nearest neighbour a seed may claim.
    gap_frac: f64,
}

/// Interior classification + wall distance for a candidate set: keep
/// candidates strictly inside the vessel (Gauss double-layer identity:
/// winding 1 inside, 0 outside) and compute each survivor's distance to
/// the wall.
fn interior_with_wall_dist(
    surface: &BoundarySurface,
    candidates: Vec<Vec3>,
) -> (Vec<Vec3>, Vec<f64>) {
    let quad = surface.quadrature();
    // inside test: Laplace double layer of the constant density 1
    let src_data: Vec<f64> = (0..quad.len())
        .flat_map(|l| {
            let n = quad.normals[l];
            [quad.weights[l], n.x, n.y, n.z]
        })
        .collect();
    let mut winding = vec![0.0; candidates.len()];
    direct_eval(
        &LaplaceDL,
        &quad.points,
        &src_data,
        &candidates,
        &mut winding,
    );
    let inside: Vec<Vec3> = candidates
        .into_iter()
        .zip(&winding)
        .filter(|(_, &w)| w > 0.5)
        .map(|(p, _)| p)
        .collect();

    let wall_dist: Vec<f64> = {
        let hits = closest_points(surface, &quad, &inside, 1e9);
        hits.par_iter()
            .zip(&inside)
            .map(|(hit, _)| hit.map(|h| h.dist).unwrap_or(f64::INFINITY))
            .collect()
    };
    (inside, wall_dist)
}

/// The classify-and-grow core of §5.1: grow each interior candidate's
/// radius until it would touch the wall or split the gap to its nearest
/// neighbour.
fn grow_seeds(surface: &BoundarySurface, candidates: Vec<Vec3>, o: GrowOpts) -> Vec<Seed> {
    let (inside, wall_dist) = interior_with_wall_dist(surface, candidates);

    // grow radii: limited by wall distance and half the gap to the nearest
    // neighbour (all seeds grow at the same rate, so the gap splits evenly)
    let seeds: Vec<Seed> = inside
        .par_iter()
        .enumerate()
        .filter_map(|(i, &c)| {
            let mut nearest = f64::INFINITY;
            for (j, &o2) in inside.iter().enumerate() {
                if j != i {
                    nearest = nearest.min((o2 - c).norm());
                }
            }
            let r = (wall_dist[i] * o.wall_frac)
                .min(0.5 * nearest * o.gap_frac)
                .min(o.rmax_cap);
            if r >= 0.5 * o.r0 {
                Some(Seed {
                    center: c,
                    radius: r,
                })
            } else {
                None
            }
        })
        .collect();
    seeds
}

/// Candidate points on a cubic lattice with spacing `h` over the surface's
/// bounding box, optionally shifted by `offset` (in units of `h`).
fn lattice_candidates(surface: &BoundarySurface, h: f64, offset: f64) -> Vec<Vec3> {
    let bbox = surface.bounding_box();
    let ext = bbox.extent();
    let (nx, ny, nz) = (
        (ext.x / h).floor() as i64,
        (ext.y / h).floor() as i64,
        (ext.z / h).floor() as i64,
    );
    let mut candidates = Vec::new();
    for k in 0..=nz {
        for j in 0..=ny {
            for i in 0..=nx {
                candidates.push(
                    bbox.lo
                        + Vec3::new(
                            (i as f64 + offset) * h,
                            (j as f64 + offset) * h,
                            (k as f64 + offset) * h,
                        ),
                );
            }
        }
    }
    candidates
}

/// Finds seed locations inside the vessel and grows their radii until they
/// would touch the wall or each other (capped at `2 r0`), with `r0 = h/2 ·
/// margin`. Interior/exterior classification uses the Gauss double-layer
/// identity (1 inside, 0 outside) evaluated with the coarse quadrature.
pub fn fill_seeds(surface: &BoundarySurface, h: f64, margin: f64) -> Vec<Seed> {
    let r0 = 0.5 * h * margin;
    grow_seeds(
        surface,
        lattice_candidates(surface, h, 0.0),
        GrowOpts {
            r0,
            rmax_cap: 2.0 * r0,
            wall_frac: 0.9,
            gap_frac: 0.95,
        },
    )
}

/// The high-hematocrit variant of [`fill_seeds`]: candidates on a BCC-style
/// double lattice (the cubic lattice plus a second copy shifted by `h/2` in
/// every axis — twice the sites of [`fill_seeds`]) grown by the paper's
/// §5.1 procedure taken literally: all radii increase at the same rate and
/// each seed **freezes individually** when *it* touches the wall or a
/// neighbour, while the rest keep growing into the space the frozen seed no
/// longer claims. That individual-freeze rule is what separates this from
/// [`fill_seeds`]'s symmetric half-gap split — a wall-adjacent seed stops
/// early and its interior neighbour then claims nearly the whole remaining
/// gap, so the packing stays dense right up to the boundary instead of
/// being throttled by the thinnest local gap. For biconcave cells (whose
/// measured reduced volume is ≈ 0.38 of the grown sphere) this lifts the
/// cubic half-gap fill's ~20% volume fraction to ~30% — the random-packing
/// ceiling; the driver's `dense_fill_packed` scenario reaches the
/// paper-scale ~40% by stacking cells face-to-face instead (scenario knob
/// `fill_packed = true` selects this filler in the fill-based scenarios).
pub fn fill_seeds_packed(surface: &BoundarySurface, h: f64, margin: f64) -> Vec<Seed> {
    let mut candidates = lattice_candidates(surface, h, 0.0);
    candidates.extend(lattice_candidates(surface, h, 0.5));
    let (inside, wall_dist) = interior_with_wall_dist(surface, candidates);
    let n = inside.len();
    let r0 = 0.5 * h * margin;
    let rmax_cap = 2.0 * r0;
    let wall_frac = 0.95;
    // simultaneous growth with individual freezing. Per round every active
    // seed grows by `dr`, clamped against the wall, the cap, and
    // `0.99·(d_ij − r_j)` for every neighbour j (the 0.99 keeps the pair
    // fixed point strictly separated); a seed that cannot grow freezes and
    // becomes a static obstacle for the rest. All clamps read the previous
    // round's radii, so the result is order-independent and deterministic.
    let dr = 0.02 * r0;
    let mut r = vec![0.0f64; n];
    let mut active = vec![true; n];
    // pairwise distances, reused every round
    let dist: Vec<Vec<f64>> = inside
        .par_iter()
        .map(|&c| inside.iter().map(|&o| (o - c).norm()).collect())
        .collect();
    while active.iter().any(|&a| a) {
        let prev = r.clone();
        let next: Vec<(f64, bool)> = (0..n)
            .into_par_iter()
            .map(|i| {
                if !active[i] {
                    return (prev[i], false);
                }
                let mut lim = (wall_frac * wall_dist[i]).min(rmax_cap);
                for j in 0..n {
                    if j != i {
                        lim = lim.min(0.99 * (dist[i][j] - prev[j]));
                    }
                }
                let grown = (prev[i] + dr).min(lim);
                if grown <= prev[i] + 1e-12 * r0 {
                    (prev[i], false) // stuck: freeze at the current radius
                } else {
                    (grown, true)
                }
            })
            .collect();
        for (i, (ri, ai)) in next.into_iter().enumerate() {
            r[i] = ri;
            active[i] = ai;
        }
    }
    inside
        .into_iter()
        .zip(r)
        .filter(|&(_, ri)| ri >= 0.5 * r0)
        .map(|(center, radius)| Seed { center, radius })
        .collect()
}

/// Creates biconcave cells of various sizes at the seeds, each in a random
/// orientation (the filled configurations of Figs. 1 and 8).
pub fn cells_from_seeds(
    basis: &SphBasis,
    seeds: &[Seed],
    params: CellParams,
    rng: &mut impl Rng,
) -> Vec<Cell> {
    seeds
        .iter()
        .map(|s| {
            let coeffs = biconcave_coeffs(basis, s.radius, s.center);
            let rot = rotated_coeffs(basis, &coeffs, rng);
            Cell::new(basis, rot, params)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch::{capsule_tube, StraightLine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seeds_are_inside_and_disjoint() {
        let line = StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(6.0, 0.0, 0.0),
        };
        let s = capsule_tube(&line, 1.0, 3, 8);
        let seeds = fill_seeds(&s, 0.8, 0.9);
        assert!(!seeds.is_empty(), "no seeds placed");
        // pairwise disjoint spheres
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                let d = (seeds[i].center - seeds[j].center).norm();
                assert!(
                    d >= 0.9 * (seeds[i].radius + seeds[j].radius),
                    "seeds {i},{j} overlap: d={d}"
                );
            }
            // inside the tube: distance from axis < 1
            let c = seeds[i].center;
            let axis_d = (c.y * c.y + c.z * c.z).sqrt();
            assert!(
                axis_d + seeds[i].radius <= 1.05,
                "seed {i} pokes through the wall"
            );
        }
    }

    #[test]
    fn packed_fill_beats_cubic_fill() {
        let line = StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(6.0, 0.0, 0.0),
        };
        let s = capsule_tube(&line, 1.0, 3, 8);
        let cubic = fill_seeds(&s, 0.8, 0.9);
        let packed = fill_seeds_packed(&s, 0.8, 0.9);
        assert!(
            packed.len() > cubic.len(),
            "double lattice should place more seeds: {} vs {}",
            packed.len(),
            cubic.len()
        );
        let sphere_vol =
            |seeds: &[Seed]| -> f64 { seeds.iter().map(|s| s.radius.powi(3)).sum::<f64>() };
        assert!(
            sphere_vol(&packed) > 1.3 * sphere_vol(&cubic),
            "packed fill should claim substantially more volume"
        );
        // still pairwise disjoint and inside the tube
        for i in 0..packed.len() {
            for j in i + 1..packed.len() {
                let d = (packed[i].center - packed[j].center).norm();
                assert!(
                    d >= 0.95 * (packed[i].radius + packed[j].radius),
                    "seeds {i},{j} overlap: d={d}"
                );
            }
            let c = packed[i].center;
            let axis_d = (c.y * c.y + c.z * c.z).sqrt();
            assert!(
                axis_d + packed[i].radius <= 1.05,
                "seed {i} pokes through the wall"
            );
        }
    }

    #[test]
    fn cells_built_with_varied_radii() {
        let line = StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(8.0, 0.0, 0.0),
        };
        let s = capsule_tube(&line, 1.0, 4, 8);
        let basis = SphBasis::new(8);
        let seeds = fill_seeds(&s, 0.7, 0.9);
        let mut rng = StdRng::seed_from_u64(42);
        let cells = cells_from_seeds(&basis, &seeds, CellParams::default(), &mut rng);
        assert_eq!(cells.len(), seeds.len());
        // volume fraction is positive and below close packing
        let vol: f64 = cells.iter().map(|c| c.geometry(&basis).volume()).sum();
        let vessel_vol = std::f64::consts::PI * 8.0 + 4.0 / 3.0 * std::f64::consts::PI;
        let vf = vol / vessel_vol;
        assert!(vf > 0.005 && vf < 0.74, "volume fraction {vf}");
    }
}
