//! Binary checkpoint/restart for long simulation runs.
//!
//! A checkpoint captures everything the time stepper evolves — the cells
//! (via the bit-exact [`vesicle::state`] hooks), the step counter, the
//! configuration, and the accumulated component timers. The static domain
//! (vessel geometry, boundary solver, collision meshes) is *not* stored;
//! the scenario that created the run rebuilds it deterministically, and a
//! FNV digest of the vessel's collision meshes and boundary condition
//! (serialized through the [`collision`] mesh hooks) is stored so a restart
//! against a drifted domain fails loudly instead of silently diverging.
//!
//! Because every float round-trips bit-exactly and stepping is
//! deterministic, a restarted run reproduces the uninterrupted trajectory
//! bit-identically (covered by the `driver` crate's restart test).

use crate::domain::Vessel;
use crate::stepper::{DtControl, DtState, SimConfig, Simulation};
use crate::timers::StepTimers;
use linalg::{fnv1a64, ByteReader, ByteWriter, CodecError};
use sphharm::SphBasis;
use std::io;
use std::path::Path;
use vesicle::{Cell, StepOptions};

/// File magic: "RBCCKPT" + format version. Version history:
/// 1 — cells + config + timers (PR 2); 2 — adds the boundary-solve
/// warm-start density (`bie_warm`), needed for bit-identical restarts now
/// that the GMRES initial guess carries across steps; 3 — adds the
/// adaptive time-step controller ([`DtControl`] in the config,
/// [`DtState`] as evolving state), so a restart resumes the same backoff
/// trajectory — restarting mid-recovery with a fresh controller would
/// retry at the wrong Δt and diverge from the uninterrupted run.
const MAGIC: &[u8; 8] = b"RBCCKPT3";

/// A captured simulation state, decoupled from the live [`Simulation`].
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Scenario tag (free-form; the driver stores the registry name so a
    /// restart can rebuild the same domain).
    pub scenario: String,
    /// Steps taken when the checkpoint was captured.
    pub steps: usize,
    /// Spherical-harmonic order of the cell basis.
    pub basis_p: usize,
    /// The configuration the run was using.
    pub config: SimConfig,
    /// Accumulated component timers (informational; wall times are not
    /// part of the trajectory).
    pub timers: StepTimers,
    /// Digest of the vessel state (0 for free-space runs).
    pub vessel_digest: u64,
    /// The evolving cell state.
    pub cells: Vec<Cell>,
    /// Boundary-solve warm-start density carried between steps (`None`
    /// before the first vessel step / for free-space runs). Serialized
    /// bit-exactly so a restarted run's first GMRES solve starts from the
    /// same iterate as the uninterrupted run.
    pub bie_warm: Option<Vec<f64>>,
    /// Adaptive time-step controller state (current Δt, clean-step
    /// counter, per-cell freeze flags) — part of the trajectory since the
    /// controller's next decision depends on it.
    pub dt_state: DtState,
}

/// Deterministic digest of the static vessel state: collision meshes,
/// boundary condition, port layout, and the boundary-solver options —
/// anything that changes the trajectory without being part of the evolving
/// cell state must hash in here, or a drifted restart diverges silently.
pub fn vessel_digest(vessel: &Vessel) -> u64 {
    let mut w = ByteWriter::new();
    w.put_usize(vessel.meshes.len());
    for m in &vessel.meshes {
        m.write_state(&mut w);
    }
    w.put_f64_slice(&vessel.bc);
    w.put_usize(vessel.ports.len());
    for p in &vessel.ports {
        w.put_u32(p.id);
        w.put_bool(p.is_inlet);
        w.put_vec3(p.center);
        w.put_vec3(p.inward);
        w.put_f64(p.radius);
        w.put_f64(p.flux);
    }
    w.put_f64(vessel.volume);
    w.put_f64(vessel.mu);
    let o = &vessel.solver.opts;
    w.put_u32(o.eta);
    w.put_usize(o.qf);
    w.put_usize(o.p_extrap);
    match o.check {
        bie::CheckSpec::Linear { big_r, small_r } => {
            w.put_u8(0);
            w.put_f64(big_r);
            w.put_f64(small_r);
        }
        bie::CheckSpec::Sqrt { big_r, ratio } => {
            w.put_u8(1);
            w.put_f64(big_r);
            w.put_f64(ratio);
        }
    }
    w.put_f64(o.near_factor);
    // hash the *resolved* backend, not the config enum: the trajectory
    // depends only on which engine actually runs the matvec (dense = 0,
    // FMM = 1 — the byte values the pre-backend `use_fmm: Option<bool>`
    // encoding used for Some(false)/Some(true)), so `Auto` configurations
    // digest identically to an explicit choice that resolves the same way,
    // and pre-refactor checkpoints (scenario default was Some(false) on
    // vessels that `Auto` still resolves dense) keep restoring
    w.put_u8(match vessel.solver.solve_backend() {
        bie::MatvecBackend::Fmm => 1,
        _ => 0,
    });
    w.put_usize(o.fmm.order);
    w.put_usize(o.fmm.leaf_capacity);
    w.put_u32(o.fmm.max_depth);
    w.put_f64(o.gmres.tol);
    w.put_f64(o.gmres.atol);
    w.put_usize(o.gmres.max_iters);
    w.put_usize(o.gmres.restart);
    w.put_f64(o.gmres.stall_ratio);
    w.put_bool(o.precond);
    fnv1a64(w.bytes())
}

fn write_config(w: &mut ByteWriter, c: &SimConfig) {
    w.put_f64(c.dt);
    w.put_f64(c.collision_delta);
    w.put_usize(c.col_upsample);
    w.put_f64(c.shear_rate);
    w.put_vec3(c.gravity);
    w.put_f64(c.fmm_pair_threshold);
    w.put_usize(c.fmm.order);
    w.put_usize(c.fmm.leaf_capacity);
    w.put_u32(c.fmm.max_depth);
    w.put_f64(c.step.dt);
    w.put_f64(c.step.gmres.tol);
    w.put_f64(c.step.gmres.atol);
    w.put_usize(c.step.gmres.max_iters);
    w.put_usize(c.step.gmres.restart);
    w.put_f64(c.step.gmres.stall_ratio);
    w.put_bool(c.disable_collisions);
    w.put_bool(c.dt_control.enabled);
    w.put_f64(c.dt_control.dt_min);
    w.put_usize(c.dt_control.grow_after);
    w.put_bool(c.dt_control.substep);
    w.put_f64(c.dt_control.max_stretch);
    w.put_f64(c.dt_control.max_volume_drift);
}

fn read_config(r: &mut ByteReader) -> Result<SimConfig, CodecError> {
    Ok(SimConfig {
        dt: r.get_f64()?,
        collision_delta: r.get_f64()?,
        col_upsample: r.get_usize()?,
        shear_rate: r.get_f64()?,
        gravity: r.get_vec3()?,
        fmm_pair_threshold: r.get_f64()?,
        fmm: fmm::FmmOptions {
            order: r.get_usize()?,
            leaf_capacity: r.get_usize()?,
            max_depth: r.get_u32()?,
        },
        step: StepOptions {
            dt: r.get_f64()?,
            gmres: linalg::GmresOptions {
                tol: r.get_f64()?,
                atol: r.get_f64()?,
                max_iters: r.get_usize()?,
                restart: r.get_usize()?,
                stall_ratio: r.get_f64()?,
            },
        },
        disable_collisions: r.get_bool()?,
        dt_control: DtControl {
            enabled: r.get_bool()?,
            dt_min: r.get_f64()?,
            grow_after: r.get_usize()?,
            substep: r.get_bool()?,
            max_stretch: r.get_f64()?,
            max_volume_drift: r.get_f64()?,
        },
        // deliberately not serialized (format v3 unchanged): thread count
        // is an execution detail, and restore_into keeps the live value
        threads: 0,
    })
}

impl Checkpoint {
    /// Captures the evolving state of `sim` under the given scenario tag.
    pub fn capture(sim: &Simulation, scenario: &str) -> Checkpoint {
        Checkpoint {
            scenario: scenario.to_string(),
            steps: sim.steps,
            basis_p: sim.basis.p,
            config: sim.config,
            timers: sim.timers,
            vessel_digest: sim.vessel.as_ref().map(vessel_digest).unwrap_or(0),
            cells: sim.cells.clone(),
            bie_warm: sim.bie_warm.clone(),
            dt_state: sim.dt_state.clone(),
        }
    }

    /// Serializes to bytes (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for &b in MAGIC {
            w.put_u8(b);
        }
        w.put_str(&self.scenario);
        w.put_usize(self.steps);
        w.put_usize(self.basis_p);
        write_config(&mut w, &self.config);
        w.put_f64(self.timers.col);
        w.put_f64(self.timers.bie_solve);
        w.put_f64(self.timers.bie_fmm);
        w.put_f64(self.timers.other_fmm);
        w.put_f64(self.timers.other);
        w.put_u64(self.vessel_digest);
        w.put_usize(self.cells.len());
        for c in &self.cells {
            c.write_state(&mut w);
        }
        match &self.bie_warm {
            Some(phi) => {
                w.put_bool(true);
                w.put_f64_slice(phi);
            }
            None => w.put_bool(false),
        }
        w.put_f64(self.dt_state.dt);
        w.put_usize(self.dt_state.clean_steps);
        w.put_usize(self.dt_state.frozen.len());
        for &f in &self.dt_state.frozen {
            w.put_bool(f);
        }
        w.into_bytes()
    }

    /// Deserializes from bytes written by [`Checkpoint::to_bytes`].
    ///
    /// Rejects files from other format versions with a clear error — a v1
    /// checkpoint has no warm-start density and a v2 checkpoint has no
    /// adaptive-Δt controller state, so continuing from either could not
    /// reproduce the original trajectory bit-identically.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CodecError> {
        let mut r = ByteReader::new(bytes);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.get_u8()?;
        }
        if magic != *MAGIC {
            if magic[..7] == MAGIC[..7] {
                return Err(CodecError(format!(
                    "unsupported checkpoint format version {} (this build reads version {}); \
                     re-run the scenario from the start or convert the checkpoint",
                    magic[7] as char, MAGIC[7] as char,
                )));
            }
            return Err(CodecError("not a checkpoint file (bad magic)".into()));
        }
        let scenario = r.get_string()?;
        let steps = r.get_usize()?;
        let basis_p = r.get_usize()?;
        let config = read_config(&mut r)?;
        let timers = StepTimers {
            col: r.get_f64()?,
            bie_solve: r.get_f64()?,
            bie_fmm: r.get_f64()?,
            other_fmm: r.get_f64()?,
            other: r.get_f64()?,
        };
        let vessel_digest = r.get_u64()?;
        let n_cells = r.get_usize()?;
        let mut cells = Vec::with_capacity(n_cells.min(1 << 20));
        for _ in 0..n_cells {
            cells.push(Cell::read_state(&mut r)?);
        }
        let bie_warm = if r.get_bool()? {
            Some(r.get_f64_vec()?)
        } else {
            None
        };
        let dt_state = {
            let dt = r.get_f64()?;
            let clean_steps = r.get_usize()?;
            let n_frozen = r.get_usize()?;
            let mut frozen = Vec::with_capacity(n_frozen.min(1 << 20));
            for _ in 0..n_frozen {
                frozen.push(r.get_bool()?);
            }
            DtState {
                dt,
                clean_steps,
                frozen,
            }
        };
        if r.remaining() != 0 {
            return Err(CodecError(format!("{} trailing bytes", r.remaining())));
        }
        Ok(Checkpoint {
            scenario,
            steps,
            basis_p,
            config,
            timers,
            vessel_digest,
            cells,
            bie_warm,
            dt_state,
        })
    }

    /// Writes the checkpoint to `path` (atomically: temp file + rename).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Reads a checkpoint from `path`.
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let bytes = std::fs::read(path)?;
        Checkpoint::from_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Restores the captured state into a freshly built simulation of the
    /// same scenario: replaces cells, config, step counter, and timers.
    /// The live simulation's `threads` knob is kept — thread count is an
    /// execution detail, not trajectory state (every parallel stage is
    /// bit-identical across thread counts), so a checkpoint written at
    /// N threads restores cleanly into a 1-thread run and vice versa.
    ///
    /// Fails if the basis order or the vessel digest disagrees — that means
    /// the scenario was rebuilt differently from the checkpointed run and a
    /// bit-identical continuation is impossible.
    pub fn restore_into(&self, sim: &mut Simulation) -> Result<(), CodecError> {
        if sim.basis.p != self.basis_p {
            return Err(CodecError(format!(
                "basis order mismatch: checkpoint p={}, simulation p={}",
                self.basis_p, sim.basis.p
            )));
        }
        let digest = sim.vessel.as_ref().map(vessel_digest).unwrap_or(0);
        if digest != self.vessel_digest {
            return Err(CodecError(format!(
                "vessel digest mismatch: checkpoint {:#018x}, rebuilt domain {digest:#018x}",
                self.vessel_digest
            )));
        }
        sim.cells = self.cells.clone();
        let threads = sim.config.threads;
        sim.config = self.config;
        sim.config.threads = threads;
        sim.steps = self.steps;
        sim.timers = self.timers;
        sim.last_stats = Default::default();
        sim.bie_warm = self.bie_warm.clone();
        sim.dt_state = self.dt_state.clone();
        sim.last_health = Vec::new();
        Ok(())
    }

    /// Convenience: capture-and-save in one call.
    pub fn write(sim: &Simulation, scenario: &str, path: &Path) -> io::Result<()> {
        Checkpoint::capture(sim, scenario).save(path)
    }
}

/// Builds a [`Simulation`] directly from a checkpoint for **free-space**
/// scenarios (no vessel). Vessel runs must rebuild the domain through their
/// scenario and use [`Checkpoint::restore_into`].
pub fn simulation_from_checkpoint(ckpt: &Checkpoint) -> Result<Simulation, CodecError> {
    if ckpt.vessel_digest != 0 {
        return Err(CodecError(
            "checkpoint has a vessel; rebuild the domain via its scenario".into(),
        ));
    }
    let mut sim = Simulation::new(SphBasis::new(ckpt.basis_p), Vec::new(), None, ckpt.config);
    ckpt.restore_into(&mut sim)?;
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Vec3;
    use vesicle::{biconcave_coeffs, CellParams};

    fn two_cell_sim() -> Simulation {
        let basis = SphBasis::new(6);
        let params = CellParams {
            kappa_b: 0.02,
            ..Default::default()
        };
        let cells = vec![
            Cell::new(
                &basis,
                biconcave_coeffs(&basis, 1.0, Vec3::new(-1.3, 0.0, 0.2)),
                params,
            ),
            Cell::new(
                &basis,
                biconcave_coeffs(&basis, 1.0, Vec3::new(1.3, 0.0, -0.2)),
                params,
            ),
        ];
        let config = SimConfig {
            dt: 0.015,
            shear_rate: 0.8,
            ..Default::default()
        };
        Simulation::new(basis, cells, None, config)
    }

    #[test]
    fn checkpoint_bytes_round_trip() {
        let mut sim = two_cell_sim();
        sim.steps = 17;
        sim.timers.col = 1.25;
        // mid-backoff controller state must round-trip bit-exactly
        sim.dt_state = DtState {
            dt: 0.015 / 4.0,
            clean_steps: 3,
            frozen: vec![true, false],
        };
        sim.config.dt_control.dt_min = 1e-4;
        sim.config.dt_control.substep = true;
        let ckpt = Checkpoint::capture(&sim, "shear_pair");
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.scenario, "shear_pair");
        assert_eq!(back.steps, 17);
        assert_eq!(back.basis_p, 6);
        assert_eq!(back.config.dt, 0.015);
        assert_eq!(back.config.shear_rate, 0.8);
        assert_eq!(back.timers.col, 1.25);
        assert_eq!(back.cells.len(), 2);
        for (a, b) in back.cells.iter().zip(&sim.cells) {
            for c in 0..3 {
                assert_eq!(a.coeffs[c].data, b.coeffs[c].data);
            }
        }
        assert_eq!(back.dt_state.dt, 0.015 / 4.0);
        assert_eq!(back.dt_state.clean_steps, 3);
        assert_eq!(back.dt_state.frozen, vec![true, false]);
        assert_eq!(back.config.dt_control.dt_min, 1e-4);
        assert!(back.config.dt_control.substep);
    }

    #[test]
    fn v2_checkpoint_rejected_with_version_error() {
        let sim = two_cell_sim();
        let mut bytes = Checkpoint::capture(&sim, "x").to_bytes();
        bytes[7] = b'2'; // masquerade as the pre-adaptive-dt format
        let err = Checkpoint::from_bytes(&bytes).unwrap_err().to_string();
        assert!(
            err.contains("version 2"),
            "error should name the file's version: {err}"
        );
        assert!(
            err.contains("version 3"),
            "error should name the supported version: {err}"
        );
    }

    #[test]
    fn restore_replaces_evolving_state() {
        let mut sim = two_cell_sim();
        let ckpt = Checkpoint::capture(&sim, "shear_pair");
        // drift the live sim
        sim.cells[0].translate(&sim.basis, Vec3::new(9.0, 0.0, 0.0));
        sim.steps = 99;
        ckpt.restore_into(&mut sim).unwrap();
        assert_eq!(sim.steps, ckpt.steps);
        let c = sim.cells[0].geometry(&sim.basis).centroid();
        assert!((c.x - (-1.3)).abs() < 1e-8, "centroid not restored: {c:?}");

        let rebuilt = simulation_from_checkpoint(&ckpt).unwrap();
        assert_eq!(rebuilt.cells.len(), 2);
        assert_eq!(rebuilt.config.dt, sim.config.dt);
    }

    #[test]
    fn basis_mismatch_rejected() {
        let sim = two_cell_sim();
        let ckpt = Checkpoint::capture(&sim, "x");
        let mut other = Simulation::new(SphBasis::new(8), Vec::new(), None, SimConfig::default());
        assert!(ckpt.restore_into(&mut other).is_err());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let sim = two_cell_sim();
        let mut bytes = Checkpoint::capture(&sim, "x").to_bytes();
        bytes[0] = b'X';
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }
}
