//! The confined-flow domain: vessel boundary state, boundary conditions,
//! and inlet/outlet bookkeeping (§5.1).

use bie::{BieOptions, DoubleLayerSolver};
use collision::{triangulate_grid, TriMesh};
use kernels::{StokesDL, StokesEquiv};
use linalg::Vec3;
use patch::{BoundarySurface, PatchKind};

/// A flow port (inlet or outlet cap of the vessel).
#[derive(Clone, Copy, Debug)]
pub struct Port {
    /// Port id (matches [`PatchKind::Inlet`]/[`PatchKind::Outlet`]).
    pub id: u32,
    /// Whether fluid enters here.
    pub is_inlet: bool,
    /// Cap center.
    pub center: Vec3,
    /// Unit direction of flow *into* the domain at this port.
    pub inward: Vec3,
    /// Rim (axis) radius of the cap: the largest distance of any cap
    /// quadrature node from the port axis. The port profile vanishes
    /// (with zero slope) at this radius, so the boundary data meets the
    /// no-slip wall smoothly at the cap seam.
    pub radius: f64,
    /// Prescribed discrete flux through the port, positive *into* the
    /// domain (so inlets carry positive flux, outlets negative, and the
    /// sum over all ports is zero by construction).
    pub flux: f64,
}

/// The rigid vessel: boundary solver plus collision meshes and ports.
pub struct Vessel {
    /// The Stokes boundary solver on Γ.
    pub solver: DoubleLayerSolver<StokesDL, StokesEquiv>,
    /// Boundary condition `g` at the coarse nodes (3 per node).
    pub bc: Vec<f64>,
    /// Collision triangle meshes, one per patch (the paper's 22² grids).
    pub meshes: Vec<TriMesh>,
    /// Ports (inlets and outlets).
    pub ports: Vec<Port>,
    /// Interior volume of the vessel (from the divergence theorem).
    pub volume: f64,
    /// Fluid viscosity μ the boundary solver was built with (recorded so
    /// the checkpoint digest covers it).
    pub mu: f64,
}

impl Vessel {
    /// Builds the vessel state: boundary solver, mollified quartic port
    /// boundary conditions scaled so the net flux is zero (§5.1), and
    /// collision meshes with `col_m × col_m` samples per patch (paper: 22).
    ///
    /// The port profile is `(3/2)·peak_speed·((1 − ρ²)⁺)²` with `ρ` the
    /// distance from the *port axis* normalized by the cap's rim radius,
    /// rather than the old parabolic `peak_speed·(1 − ρ²)⁺` over the
    /// distance from the cap's area centroid. That old coordinate never
    /// reached 1 on the (hemispherical) caps — the area-based radius
    /// estimate overshoots the rim — so the boundary data held an O(1)
    /// *value jump* at the cap/wall seam, content at the patch scale that
    /// no `wall_refine` could resolve: refined vessel solves floored at
    /// O(0.1) relative residual. The axis coordinate puts the rim exactly
    /// at the cap/wall seam, and the quartic has zero value *and* zero
    /// slope there, so the data is C¹ into the no-slip wall. Measured
    /// effect: the refined cell-free floor drops ~4×, 0.4 → ~0.11 (a
    /// slowly converging spectral tail of the through-flow system keeps
    /// an O(0.1) residual at practical iteration budgets — see
    /// `refined_serpentine_port_floor_improved` for the probe record;
    /// full unrestarted GMRES does reach tolerance, at ~0.7·N
    /// iterations). The 3/2 factor preserves
    /// the parabola's flux: over a flat disk (disk means: 1/2 for 1 − ρ²,
    /// 1/3 for its square) and *exactly* as well over a hemispherical cap
    /// with ρ = sin θ (∫cos⁵θ sinθ = 1/6 vs ∫cos³θ sinθ = 1/4).
    pub fn new(
        surface: BoundarySurface,
        mu: f64,
        opts: BieOptions,
        peak_speed: f64,
        col_m: usize,
    ) -> Vessel {
        let solver = DoubleLayerSolver::new(surface, StokesDL, StokesEquiv { mu }, opts);
        let quad = &solver.quad;
        let surface = &solver.surface;

        // identify ports from cap patches
        let mut ports: Vec<Port> = Vec::new();
        for pid in port_ids(surface) {
            let (is_inlet, patches): (bool, Vec<usize>) = {
                let mut inlet = false;
                let idx: Vec<usize> = surface
                    .kinds
                    .iter()
                    .enumerate()
                    .filter_map(|(i, k)| match k {
                        PatchKind::Inlet(p) if *p == pid => {
                            inlet = true;
                            Some(i)
                        }
                        PatchKind::Outlet(p) if *p == pid => Some(i),
                        _ => None,
                    })
                    .collect();
                (inlet, idx)
            };
            // area-weighted center and mean normal over the cap
            let mut center = Vec3::ZERO;
            let mut normal = Vec3::ZERO;
            let mut area = 0.0;
            for l in 0..quad.len() {
                if patches.contains(&(quad.patch_of[l] as usize)) {
                    let w = quad.weights[l];
                    center += quad.points[l] * w;
                    normal += quad.normals[l] * w;
                    area += w;
                }
            }
            center /= area;
            // outward cap normal points out of the fluid; inward = −n
            let inward = -normal.normalized();
            let radius = (area / std::f64::consts::PI).sqrt();
            ports.push(Port {
                id: pid,
                is_inlet,
                center,
                inward,
                radius,
                flux: 0.0,
            });
        }

        // replace the area-based radius estimate by the true rim (axis)
        // radius: the largest node distance from the port axis. The
        // profile below vanishes exactly there, i.e. at the outermost cap
        // node rather than beyond the seam (the area estimate overshoots
        // on curved caps — √2·r for a hemisphere — leaving an O(1) value
        // jump against the no-slip wall; see the constructor docs).
        for port in &mut ports {
            let mut rim = 0.0f64;
            for l in 0..quad.len() {
                let on_port = match surface.kinds[quad.patch_of[l] as usize] {
                    PatchKind::Inlet(p) | PatchKind::Outlet(p) => p == port.id,
                    PatchKind::Wall => false,
                };
                if on_port {
                    let d = quad.points[l] - port.center;
                    let ax = d - port.inward * d.dot(port.inward);
                    rim = rim.max(ax.norm());
                }
            }
            port.radius = rim;
        }

        // mollified quartic boundary condition on ports (equal flux to the
        // parabolic profile, but rim-smooth — see the constructor docs),
        // zero on walls; outlet speeds scaled for zero total flux
        let mut bc = vec![0.0; quad.len() * 3];
        let mut influx = 0.0;
        let mut outflux = 0.0;
        for l in 0..quad.len() {
            let k = surface.kinds[quad.patch_of[l] as usize];
            let port = match k {
                PatchKind::Inlet(p) | PatchKind::Outlet(p) => {
                    ports.iter().find(|q| q.id == p).copied()
                }
                PatchKind::Wall => None,
            };
            if let Some(port) = port {
                let d = quad.points[l] - port.center;
                let ax = d - port.inward * d.dot(port.inward);
                let rho = ax.norm() / port.radius;
                let s = (1.0 - rho * rho).max(0.0);
                let profile = 1.5 * s * s;
                let u = port.inward * (peak_speed * profile);
                bc[l * 3] = u.x;
                bc[l * 3 + 1] = u.y;
                bc[l * 3 + 2] = u.z;
                let fl = u.dot(quad.normals[l]) * quad.weights[l];
                if port.is_inlet {
                    influx += fl;
                } else {
                    outflux += fl;
                }
            }
        }
        if outflux.abs() > 1e-300 {
            // rescale outlet velocities for exact discrete zero net flux
            let scale = -influx / outflux;
            for l in 0..quad.len() {
                if matches!(
                    surface.kinds[quad.patch_of[l] as usize],
                    PatchKind::Outlet(_)
                ) {
                    bc[l * 3] *= scale;
                    bc[l * 3 + 1] *= scale;
                    bc[l * 3 + 2] *= scale;
                }
            }
        }

        // record each port's prescribed discrete flux (positive into the
        // domain; n is outward, hence the sign flip)
        for port in &mut ports {
            let mut f = 0.0;
            for l in 0..quad.len() {
                let on_port = match surface.kinds[quad.patch_of[l] as usize] {
                    PatchKind::Inlet(p) | PatchKind::Outlet(p) => p == port.id,
                    PatchKind::Wall => false,
                };
                if on_port {
                    let u = Vec3::new(bc[l * 3], bc[l * 3 + 1], bc[l * 3 + 2]);
                    f -= u.dot(quad.normals[l]) * quad.weights[l];
                }
            }
            port.flux = f;
        }

        let meshes = build_meshes(&solver.surface, col_m);
        let volume = interior_volume(quad);

        Vessel {
            solver,
            bc,
            meshes,
            ports,
            volume,
            mu,
        }
    }

    /// Net discrete flux of the boundary condition through the surface
    /// (absolute value). Zero to rounding for a well-posed interior Stokes
    /// problem; the stepper records it each step ([`crate::StepStats`]'s
    /// `flux_imbalance`) and `sim-driver --assert-flux-balance` gates on
    /// it, so a drifted or mis-built port manifest fails loudly instead of
    /// feeding the solver an inconsistent right-hand side.
    pub fn port_flux_imbalance(&self) -> f64 {
        let quad = &self.solver.quad;
        let mut flux = 0.0;
        for l in 0..quad.len() {
            let u = Vec3::new(self.bc[l * 3], self.bc[l * 3 + 1], self.bc[l * 3 + 2]);
            flux += u.dot(quad.normals[l]) * quad.weights[l];
        }
        flux.abs()
    }

    /// Prescribed per-port fluxes (positive into the domain), in
    /// [`Vessel::ports`] order.
    pub fn port_fluxes(&self) -> Vec<f64> {
        self.ports.iter().map(|p| p.flux).collect()
    }
}

/// Collision triangle meshes from `col_m × col_m` samples per patch.
pub(crate) fn build_meshes(surface: &BoundarySurface, col_m: usize) -> Vec<TriMesh> {
    surface
        .collision_grid(col_m)
        .into_iter()
        .map(|g| triangulate_grid(&g, col_m))
        .collect()
}

/// Interior volume via the divergence theorem (normals outward).
pub(crate) fn interior_volume(quad: &patch::SurfaceQuad) -> f64 {
    let mut volume = 0.0;
    for l in 0..quad.len() {
        volume += quad.points[l].dot(quad.normals[l]) * quad.weights[l];
    }
    volume / 3.0
}

fn port_ids(surface: &BoundarySurface) -> Vec<u32> {
    let mut ids: Vec<u32> = surface
        .kinds
        .iter()
        .filter_map(|k| match k {
            PatchKind::Inlet(p) | PatchKind::Outlet(p) => Some(*p),
            PatchKind::Wall => None,
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch::{capsule_tube, StraightLine};

    fn tube_vessel() -> Vessel {
        let line = StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(6.0, 0.0, 0.0),
        };
        let s = capsule_tube(&line, 1.0, 3, 8);
        let opts = BieOptions {
            backend: bie::MatvecBackend::Dense,
            ..Default::default()
        };
        Vessel::new(s, 1.0, opts, 1.0, 8)
    }

    #[test]
    fn ports_identified_with_opposed_flow() {
        let v = tube_vessel();
        assert_eq!(v.ports.len(), 2);
        let inlet = v.ports.iter().find(|p| p.is_inlet).unwrap();
        let outlet = v.ports.iter().find(|p| !p.is_inlet).unwrap();
        // inlet at x≈0 cap pointing +x, outlet at x≈6 pointing −x inward
        assert!(inlet.center.x < 0.0, "{:?}", inlet.center);
        assert!(outlet.center.x > 6.0, "{:?}", outlet.center);
        assert!(inlet.inward.x > 0.9);
        assert!(outlet.inward.x < -0.9);
    }

    #[test]
    fn boundary_condition_has_zero_net_flux() {
        let v = tube_vessel();
        let quad = &v.solver.quad;
        let mut flux = 0.0;
        for l in 0..quad.len() {
            let u = Vec3::new(v.bc[l * 3], v.bc[l * 3 + 1], v.bc[l * 3 + 2]);
            flux += u.dot(quad.normals[l]) * quad.weights[l];
        }
        assert!(flux.abs() < 1e-12, "net flux {flux}");
        // walls are no-slip
        for l in 0..quad.len() {
            if matches!(
                v.solver.surface.kinds[quad.patch_of[l] as usize],
                PatchKind::Wall
            ) {
                assert_eq!(v.bc[l * 3], 0.0);
            }
        }
    }

    /// The rim-kink fix: the port profile must vanish *with its slope* at
    /// the rim (C¹ match to the no-slip wall) while carrying the same disk
    /// flux as the parabolic profile it replaced.
    #[test]
    fn port_profile_is_rim_smooth_and_flux_preserving() {
        let prof = |rho: f64| {
            let s: f64 = (1.0 - rho * rho).max(0.0);
            1.5 * s * s
        };
        // zero value and zero slope at the rim (the parabola had slope −2)
        assert_eq!(prof(1.0), 0.0);
        let h = 1e-6;
        let rim_slope = (prof(1.0) - prof(1.0 - h)) / h;
        assert!(rim_slope.abs() < 1e-4, "rim slope {rim_slope}");
        // disk mean equals the parabolic profile's 1/2 (flux preserved at
        // equal peak speed): mean = ∫₀¹ 2ρ·prof(ρ) dρ
        let n = 200_000;
        let mut mean = 0.0;
        for i in 0..n {
            let rho = (i as f64 + 0.5) / n as f64;
            mean += 2.0 * rho * prof(rho) / n as f64;
        }
        assert!((mean - 0.5).abs() < 1e-6, "disk mean {mean}");
        // ...and the *same* flux over a hemispherical cap, where ρ = sin θ
        // and the axis-projected area element is cos θ · r² sin θ dθ dφ:
        // flux/(π r² · peak) = 2·∫₀^{π/2} prof(sin θ) cos θ sin θ dθ = 1/2,
        // identical to the flat disk — the 3/2 normalization is exact on
        // both cap shapes, which is what lets the network BCs prescribe
        // port fluxes on hemispherical caps without shape corrections
        let mut hemi = 0.0;
        let dth = std::f64::consts::FRAC_PI_2 / n as f64;
        for i in 0..n {
            let th = (i as f64 + 0.5) * dth;
            hemi += 2.0 * prof(th.sin()) * th.cos() * th.sin() * dth;
        }
        assert!((hemi - 0.5).abs() < 1e-6, "hemisphere mean {hemi}");
        // and the built vessel's inlet peak reflects the 3/2 rescale: the
        // quadrature never samples the exact disk center, but only the
        // rescaled quartic can exceed the parabola's `peak_speed` cap of
        // 1.0 anywhere (it does so for ρ² < 1 − √(2/3), sampled by the
        // inner cap nodes)
        let v = tube_vessel();
        let quad = &v.solver.quad;
        let peak = (0..quad.len())
            .filter(|&l| {
                matches!(
                    v.solver.surface.kinds[quad.patch_of[l] as usize],
                    PatchKind::Inlet(_)
                )
            })
            .map(|l| Vec3::new(v.bc[l * 3], v.bc[l * 3 + 1], v.bc[l * 3 + 2]).norm())
            .fold(0.0f64, f64::max);
        assert!(
            peak > 1.0 && peak <= 1.5 + 1e-9,
            "inlet peak {peak} not in the rescaled-quartic range"
        );
    }

    /// The payoff of the rim-smooth profile, pinned at its *measured*
    /// size: a refined serpentine vessel's cell-free boundary solve
    /// (the `vessel_flow` registry geometry at smoke settings) floored
    /// at ~0.4 relative residual under the old parabolic/centroid
    /// profile — the O(1) value jump at the cap seam put unresolvable
    /// content in the data — and reaches ~0.11 with the rim-smooth
    /// quartic, a ~4× improvement this test ratchets.
    ///
    /// What the remaining O(0.1) floor at practical iteration budgets
    /// is NOT (all probed while landing this fix): not data smoothness
    /// (a C∞ bump profile floors at ~0.12, same as the quartic's
    /// ~0.11), not wall resolution (`wall_refine` 0/1/2 → 0.21 / 0.12
    /// / 0.21, no trend), not restart stagnation or the FMM backend
    /// (dense unrestarted GMRES on a small straight tube sits at
    /// 9.4e-2 after 400 iterations), and not inconsistency: the same
    /// full GMRES *does* converge to 2e-3 — at iteration 1334 of a
    /// 1944-unknown system. Through-flow port data excites a slowly
    /// resolving spectral tail that needs ~0.7·N Krylov iterations,
    /// so the practical fix is preconditioning (open ROADMAP item),
    /// not more wall refinement or smoother data.
    #[test]
    fn refined_serpentine_port_floor_improved() {
        let c = patch::Serpentine {
            length: 8.0,
            amp: 0.7,
            windings: 1.0,
        };
        let surface = capsule_tube(&c, 1.1, 1, 6).refine(1);
        let opts = BieOptions {
            backend: bie::MatvecBackend::Fmm,
            qf: 10,
            fmm: bie::FmmOptions {
                order: 4,
                ..Default::default()
            },
            gmres: linalg::GmresOptions {
                tol: 2e-3,
                max_iters: 30,
                stall_ratio: 0.9,
                restart: 10,
                ..Default::default()
            },
            check: bie::CheckSpec::Linear {
                big_r: 0.15,
                small_r: 0.15,
            },
            p_extrap: 5,
            ..Default::default()
        };
        let v = Vessel::new(surface, 1.0, opts, 1.0, 5);
        let (_, res) = v.solver.solve(&v.bc);
        // measured ~0.109 when the fix landed; 0.15 leaves noise margin
        // while staying far below the parabolic profile's ~0.4 floor
        assert!(
            res.rel_residual < 0.15,
            "cell-free refined port solve at residual {:.3e} after {} \
             iterations (stalled: {}) — the rim-smooth profile should \
             hold the floor near 0.11, well under the parabolic 0.4",
            res.rel_residual,
            res.iterations,
            res.stalled
        );
    }

    #[test]
    fn port_fluxes_recorded_and_balanced() {
        let v = tube_vessel();
        let fluxes = v.port_fluxes();
        assert_eq!(fluxes.len(), 2);
        let inlet = v.ports.iter().find(|p| p.is_inlet).unwrap();
        let outlet = v.ports.iter().find(|p| !p.is_inlet).unwrap();
        assert!(inlet.flux > 0.0, "inlet flux {}", inlet.flux);
        assert!(outlet.flux < 0.0, "outlet flux {}", outlet.flux);
        // ports balance exactly (the outlet rescale) and the live bc
        // integral agrees
        assert!((inlet.flux + outlet.flux).abs() < 1e-12);
        assert!(v.port_flux_imbalance() < 1e-12);
        // hemispherical cap at peak 1: flux ≈ π r²/2 (r = 1), up to the
        // max-node rim underestimate at this resolution (a few percent)
        let analytic = std::f64::consts::FRAC_PI_2;
        assert!(
            (inlet.flux - analytic).abs() / analytic < 0.2,
            "inlet flux {} vs analytic {analytic}",
            inlet.flux
        );
    }

    #[test]
    fn vessel_volume_close_to_capsule() {
        let v = tube_vessel();
        // capsule: cylinder π r² L + sphere 4/3 π r³
        let exact = std::f64::consts::PI * 6.0 + 4.0 / 3.0 * std::f64::consts::PI;
        assert!(
            (v.volume - exact).abs() / exact < 1e-2,
            "{} vs {exact}",
            v.volume
        );
    }
}
