//! The confined-flow domain: vessel boundary state, boundary conditions,
//! and inlet/outlet bookkeeping (§5.1).

use bie::{BieOptions, DoubleLayerSolver};
use collision::{triangulate_grid, TriMesh};
use kernels::{StokesDL, StokesEquiv};
use linalg::Vec3;
use patch::{BoundarySurface, PatchKind};

/// A flow port (inlet or outlet cap of the vessel).
#[derive(Clone, Copy, Debug)]
pub struct Port {
    /// Port id (matches [`PatchKind::Inlet`]/[`PatchKind::Outlet`]).
    pub id: u32,
    /// Whether fluid enters here.
    pub is_inlet: bool,
    /// Cap center.
    pub center: Vec3,
    /// Unit direction of flow *into* the domain at this port.
    pub inward: Vec3,
    /// Cap radius estimate.
    pub radius: f64,
}

/// The rigid vessel: boundary solver plus collision meshes and ports.
pub struct Vessel {
    /// The Stokes boundary solver on Γ.
    pub solver: DoubleLayerSolver<StokesDL, StokesEquiv>,
    /// Boundary condition `g` at the coarse nodes (3 per node).
    pub bc: Vec<f64>,
    /// Collision triangle meshes, one per patch (the paper's 22² grids).
    pub meshes: Vec<TriMesh>,
    /// Ports (inlets and outlets).
    pub ports: Vec<Port>,
    /// Interior volume of the vessel (from the divergence theorem).
    pub volume: f64,
    /// Fluid viscosity μ the boundary solver was built with (recorded so
    /// the checkpoint digest covers it).
    pub mu: f64,
}

impl Vessel {
    /// Builds the vessel state: boundary solver, parabolic port boundary
    /// conditions scaled so the net flux is zero (§5.1), and collision
    /// meshes with `col_m × col_m` samples per patch (paper: 22).
    pub fn new(
        surface: BoundarySurface,
        mu: f64,
        opts: BieOptions,
        peak_speed: f64,
        col_m: usize,
    ) -> Vessel {
        let solver = DoubleLayerSolver::new(surface, StokesDL, StokesEquiv { mu }, opts);
        let quad = &solver.quad;
        let surface = &solver.surface;

        // identify ports from cap patches
        let mut ports: Vec<Port> = Vec::new();
        for pid in port_ids(surface) {
            let (is_inlet, patches): (bool, Vec<usize>) = {
                let mut inlet = false;
                let idx: Vec<usize> = surface
                    .kinds
                    .iter()
                    .enumerate()
                    .filter_map(|(i, k)| match k {
                        PatchKind::Inlet(p) if *p == pid => {
                            inlet = true;
                            Some(i)
                        }
                        PatchKind::Outlet(p) if *p == pid => Some(i),
                        _ => None,
                    })
                    .collect();
                (inlet, idx)
            };
            // area-weighted center and mean normal over the cap
            let mut center = Vec3::ZERO;
            let mut normal = Vec3::ZERO;
            let mut area = 0.0;
            for l in 0..quad.len() {
                if patches.contains(&(quad.patch_of[l] as usize)) {
                    let w = quad.weights[l];
                    center += quad.points[l] * w;
                    normal += quad.normals[l] * w;
                    area += w;
                }
            }
            center /= area;
            // outward cap normal points out of the fluid; inward = −n
            let inward = -normal.normalized();
            let radius = (area / std::f64::consts::PI).sqrt();
            ports.push(Port {
                id: pid,
                is_inlet,
                center,
                inward,
                radius,
            });
        }

        // parabolic boundary condition on ports, zero on walls; outlet
        // speeds scaled for zero total flux
        let mut bc = vec![0.0; quad.len() * 3];
        let mut influx = 0.0;
        let mut outflux = 0.0;
        for l in 0..quad.len() {
            let k = surface.kinds[quad.patch_of[l] as usize];
            let port = match k {
                PatchKind::Inlet(p) | PatchKind::Outlet(p) => {
                    ports.iter().find(|q| q.id == p).copied()
                }
                PatchKind::Wall => None,
            };
            if let Some(port) = port {
                let rho = (quad.points[l] - port.center).norm() / port.radius;
                let profile = (1.0 - rho * rho).max(0.0);
                let u = port.inward * (peak_speed * profile);
                bc[l * 3] = u.x;
                bc[l * 3 + 1] = u.y;
                bc[l * 3 + 2] = u.z;
                let fl = u.dot(quad.normals[l]) * quad.weights[l];
                if port.is_inlet {
                    influx += fl;
                } else {
                    outflux += fl;
                }
            }
        }
        if outflux.abs() > 1e-300 {
            // rescale outlet velocities for exact discrete zero net flux
            let scale = -influx / outflux;
            for l in 0..quad.len() {
                if matches!(
                    surface.kinds[quad.patch_of[l] as usize],
                    PatchKind::Outlet(_)
                ) {
                    bc[l * 3] *= scale;
                    bc[l * 3 + 1] *= scale;
                    bc[l * 3 + 2] *= scale;
                }
            }
        }

        let meshes: Vec<TriMesh> = solver
            .surface
            .collision_grid(col_m)
            .into_iter()
            .map(|g| triangulate_grid(&g, col_m))
            .collect();

        // interior volume via the divergence theorem (normals outward)
        let mut volume = 0.0;
        for l in 0..quad.len() {
            volume += quad.points[l].dot(quad.normals[l]) * quad.weights[l];
        }
        volume /= 3.0;

        Vessel {
            solver,
            bc,
            meshes,
            ports,
            volume,
            mu,
        }
    }
}

fn port_ids(surface: &BoundarySurface) -> Vec<u32> {
    let mut ids: Vec<u32> = surface
        .kinds
        .iter()
        .filter_map(|k| match k {
            PatchKind::Inlet(p) | PatchKind::Outlet(p) => Some(*p),
            PatchKind::Wall => None,
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch::{capsule_tube, StraightLine};

    fn tube_vessel() -> Vessel {
        let line = StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(6.0, 0.0, 0.0),
        };
        let s = capsule_tube(&line, 1.0, 3, 8);
        let opts = BieOptions {
            backend: bie::MatvecBackend::Dense,
            ..Default::default()
        };
        Vessel::new(s, 1.0, opts, 1.0, 8)
    }

    #[test]
    fn ports_identified_with_opposed_flow() {
        let v = tube_vessel();
        assert_eq!(v.ports.len(), 2);
        let inlet = v.ports.iter().find(|p| p.is_inlet).unwrap();
        let outlet = v.ports.iter().find(|p| !p.is_inlet).unwrap();
        // inlet at x≈0 cap pointing +x, outlet at x≈6 pointing −x inward
        assert!(inlet.center.x < 0.0, "{:?}", inlet.center);
        assert!(outlet.center.x > 6.0, "{:?}", outlet.center);
        assert!(inlet.inward.x > 0.9);
        assert!(outlet.inward.x < -0.9);
    }

    #[test]
    fn boundary_condition_has_zero_net_flux() {
        let v = tube_vessel();
        let quad = &v.solver.quad;
        let mut flux = 0.0;
        for l in 0..quad.len() {
            let u = Vec3::new(v.bc[l * 3], v.bc[l * 3 + 1], v.bc[l * 3 + 2]);
            flux += u.dot(quad.normals[l]) * quad.weights[l];
        }
        assert!(flux.abs() < 1e-12, "net flux {flux}");
        // walls are no-slip
        for l in 0..quad.len() {
            if matches!(
                v.solver.surface.kinds[quad.patch_of[l] as usize],
                PatchKind::Wall
            ) {
                assert_eq!(v.bc[l * 3], 0.0);
            }
        }
    }

    #[test]
    fn vessel_volume_close_to_capsule() {
        let v = tube_vessel();
        // capsule: cylinder π r² L + sphere 4/3 π r³
        let exact = std::f64::consts::PI * 6.0 + 4.0 / 3.0 * std::f64::consts::PI;
        assert!(
            (v.volume - exact).abs() / exact < 1e-2,
            "{} vs {exact}",
            v.volume
        );
    }
}
