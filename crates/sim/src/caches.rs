//! Process-wide shared immutable caches for scenario building.
//!
//! The driver's batch farm runs many scenario builds in one process, and
//! most of what a build computes is immutable and reusable:
//!
//! - **FMM translation operators** are geometry-independent per
//!   (kernel, order) and already cached process-wide in [`fmm::ops`]
//!   (telemetry via [`fmm::ops_cache_stats`]);
//! - **refined wall surfaces** are deterministic functions of the coarse
//!   surface and the refinement level — `BoundarySurface::refine` re-fits
//!   `4^levels` polynomial patches, which jobs sharing a vessel geometry
//!   would otherwise redo from scratch. That cache lives here.
//!
//! [`refined_surface`] keys on an FNV digest of the coarse surface's exact
//! coefficient bits plus the level count, so two configs share an entry iff
//! they describe bit-identical geometry — a cached build is byte-for-byte
//! the clone of a cold one, which keeps vessel digests (and therefore
//! checkpoint compatibility and trajectory bit-identity) unchanged.
//! Counters are cumulative; per-window consumers (the farm's telemetry
//! report) snapshot before/after and subtract.

use linalg::{fnv1a64, ByteWriter};
use parking_lot::Mutex;
use patch::{BoundarySurface, PatchKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: (digest of the coarse surface's defining bits, refine levels).
type SurfaceKey = (u64, u32);
static SURFACE_CACHE: Mutex<Option<HashMap<SurfaceKey, Arc<BoundarySurface>>>> = Mutex::new(None);
static SURFACE_BUILDS: AtomicU64 = AtomicU64::new(0);
static SURFACE_HITS: AtomicU64 = AtomicU64::new(0);

/// Cumulative counters of the shared refined-surface cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SurfaceCacheStats {
    /// Cold refinements (`BoundarySurface::refine` actually ran).
    pub builds: u64,
    /// Refinements served from the shared cache.
    pub hits: u64,
}

/// Snapshot of the [`refined_surface`] hit/build counters.
pub fn surface_cache_stats() -> SurfaceCacheStats {
    SurfaceCacheStats {
        builds: SURFACE_BUILDS.load(Ordering::Relaxed),
        hits: SURFACE_HITS.load(Ordering::Relaxed),
    }
}

/// Exact-bit digest of a surface: quadrature order, patch kinds, and every
/// patch's Chebyshev coefficient bits.
fn surface_digest(s: &BoundarySurface) -> u64 {
    let mut w = ByteWriter::new();
    w.put_usize(s.q);
    w.put_usize(s.patches.len());
    for (patch, kind) in s.patches.iter().zip(&s.kinds) {
        match kind {
            PatchKind::Wall => w.put_u32(u32::MAX),
            PatchKind::Inlet(id) => {
                w.put_u8(0);
                w.put_u32(*id);
            }
            PatchKind::Outlet(id) => {
                w.put_u8(1);
                w.put_u32(*id);
            }
        }
        w.put_usize(patch.q);
        for c in 0..3 {
            w.put_f64_slice(&patch.coef[c]);
        }
    }
    fnv1a64(w.bytes())
}

/// `coarse.refine(levels)` through the process-wide cache: the first call
/// for a given (geometry, levels) pair pays the `4^levels` patch re-fits,
/// every later call (another job of the same vessel geometry, a rebuild
/// for a checkpoint restore) gets the shared immutable copy.
///
/// `levels == 0` is an identity clone — too cheap to be worth hashing the
/// surface for, so it bypasses the cache and touches no counter.
pub fn refined_surface(coarse: &BoundarySurface, levels: u32) -> Arc<BoundarySurface> {
    if levels == 0 {
        return Arc::new(coarse.clone());
    }
    let key = (surface_digest(coarse), levels);
    let mut guard = SURFACE_CACHE.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(s) = map.get(&key) {
        SURFACE_HITS.fetch_add(1, Ordering::Relaxed);
        return s.clone();
    }
    // built inside the lock: refines are rare, and duplicating one on a
    // race would skew the build telemetry the farm asserts on
    let s = Arc::new(coarse.refine(levels));
    SURFACE_BUILDS.fetch_add(1, Ordering::Relaxed);
    map.insert(key, s.clone());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Vec3;
    use patch::{capsule_tube, StraightLine};

    fn tiny_tube() -> BoundarySurface {
        let line = StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(0.0, 0.0, 2.0),
        };
        capsule_tube(&line, 0.8, 1, 4)
    }

    #[test]
    fn cached_refinement_is_bit_identical_and_counts_hits() {
        let coarse = tiny_tube();
        let before = surface_cache_stats();
        let a = refined_surface(&coarse, 1);
        let b = refined_surface(&coarse, 1);
        assert!(Arc::ptr_eq(&a, &b), "repeat refine not served from cache");
        let after = surface_cache_stats();
        assert!(after.hits >= before.hits + 1);
        assert!(after.builds >= before.builds + 1);
        // cached result is exactly what a cold refine produces
        let cold = coarse.refine(1);
        assert_eq!(cold.patches.len(), a.patches.len());
        for (pa, pc) in a.patches.iter().zip(&cold.patches) {
            for c in 0..3 {
                let x: Vec<u64> = pa.coef[c].iter().map(|v| v.to_bits()).collect();
                let y: Vec<u64> = pc.coef[c].iter().map(|v| v.to_bits()).collect();
                assert_eq!(x, y, "cached refine differs from cold refine");
            }
        }
    }

    #[test]
    fn distinct_geometry_and_levels_do_not_collide() {
        let coarse = tiny_tube();
        let one = refined_surface(&coarse, 1);
        let two = refined_surface(&coarse, 2);
        assert_eq!(two.patches.len(), 4 * one.patches.len());
        let line = StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(0.0, 0.0, 3.0),
        };
        let other = capsule_tube(&line, 0.8, 1, 4);
        let o1 = refined_surface(&other, 1);
        assert!(!Arc::ptr_eq(&one, &o1));
        assert_ne!(
            surface_digest(&coarse),
            surface_digest(&other),
            "different geometries digested identically"
        );
    }

    #[test]
    fn level_zero_bypasses_the_cache() {
        let coarse = tiny_tube();
        let before = surface_cache_stats();
        let same = refined_surface(&coarse, 0);
        assert_eq!(same.patches.len(), coarse.patches.len());
        assert_eq!(surface_cache_stats(), before);
    }
}
