//! # sim — the parallel RBC-flow simulation platform (the paper's core)
//!
//! Orchestrates everything: cells (`vesicle`), the vessel boundary solver
//! (`bie`), contact-free time stepping (`collision`), and far-field
//! summation (`fmm`), with per-component wall-time accounting matching the
//! COL / BIE-solve / BIE-FMM / Other-FMM / Other breakdown of Figs. 4–6.
//!
//! Modules:
//! - [`stepper`]: the time-step algorithm of §2.2;
//! - [`domain`]: vessel state, inlet/outlet ports, boundary conditions;
//! - [`network`]: branched vascular networks with flux-balanced N-port
//!   boundary conditions;
//! - [`physio`]: physiology observables (apparent viscosity, cell-free
//!   layer, branch hematocrit split);
//! - [`fill`]: the vessel-filling procedure of §5.1;
//! - [`timers`]: component timers;
//! - [`checkpoint`]: bit-exact checkpoint/restart for long runs.

#![warn(missing_docs)]

pub mod caches;
pub mod checkpoint;
pub mod domain;
pub mod fill;
pub mod network;
pub mod physio;
pub mod stepper;
pub mod timers;

pub use caches::{refined_surface, surface_cache_stats, SurfaceCacheStats};
pub use checkpoint::{simulation_from_checkpoint, vessel_digest, Checkpoint};
pub use domain::{Port, Vessel};
pub use fill::{cells_from_seeds, fill_seeds, fill_seeds_packed, Seed};
pub use network::{vessel_from_network, NetworkSpec, SegmentSpec};
pub use physio::{
    apparent_viscosity, branch_hematocrit, cell_free_layer, membrane_drag_power, tube_dimensions,
    BranchSplit,
};
pub use stepper::{DtControl, DtState, SimConfig, Simulation, StepStats};
pub use timers::{timed, StepTimers};
