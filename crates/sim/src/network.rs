//! Vascular network vessels: branched geometries with flux-balanced
//! multi-port boundary conditions (§5.1 generalized to N ports).
//!
//! A [`NetworkSpec`] describes a junction as segments radiating from a
//! center, each carrying a *prescribed flux* (positive into the domain).
//! [`vessel_from_network`] composes the closed surface through
//! [`patch::branched_network`] and builds a [`Vessel`] whose boundary
//! condition applies the rim-smooth quartic port profile of
//! [`Vessel::new`] *per quadrature node*: node→port membership is
//! geometric (behind the branch cap seam, within the cap cylinder) rather
//! than patch-kind based, because at practical template resolutions no
//! whole patch lies inside a port cap.
//!
//! Flux balance is enforced twice:
//! - at **build time**, [`NetworkSpec::validate`] rejects manifests whose
//!   fluxes do not sum to zero (an interior Stokes problem with net influx
//!   has no solution — the right-hand side would be inconsistent);
//! - **per step**, the stepper records [`Vessel::port_flux_imbalance`]
//!   into `StepStats::flux_imbalance`, and each port's *discrete* flux is
//!   made exact here by scaling its profile with the ratio of prescribed
//!   to raw quadrature flux — so the recorded imbalance stays at rounding
//!   level no matter how coarse the cap quadrature is.

use crate::domain::{build_meshes, interior_volume, Port, Vessel};
use bie::{BieOptions, DoubleLayerSolver};
use kernels::{StokesDL, StokesEquiv};
use linalg::Vec3;
use patch::BranchSpec;

/// One branch of a network manifest: geometry plus prescribed flux.
#[derive(Clone, Copy, Debug)]
pub struct SegmentSpec {
    /// Outward branch direction from the junction center.
    pub axis: Vec3,
    /// Junction center → cap seam distance.
    pub length: f64,
    /// Branch tube radius.
    pub radius: f64,
    /// Prescribed volumetric flux through the branch port, positive *into*
    /// the domain (inflow) and negative out of it (outflow).
    pub flux: f64,
}

/// A junction manifest: segments around a center, plus the geometric
/// composition knobs forwarded to [`patch::branched_network`].
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Junction center.
    pub center: Vec3,
    /// The branches (port id = branch index).
    pub segments: Vec<SegmentSpec>,
    /// Junction blend length `k` (see [`patch::branched_network`]).
    pub smoothing: f64,
    /// Per-face subdivision of the cube-sphere template.
    pub per_face: usize,
    /// Patch polynomial/quadrature order.
    pub q: usize,
}

impl NetworkSpec {
    /// Checks the flux manifest: every segment must carry a non-zero
    /// finite flux, at least one inflow and one outflow must exist, and
    /// the fluxes must sum to zero (relative to their total magnitude).
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.len() < 2 {
            return Err(format!(
                "network needs at least 2 segments, got {}",
                self.segments.len()
            ));
        }
        let mut sum = 0.0;
        let mut mag = 0.0;
        for (i, s) in self.segments.iter().enumerate() {
            if !(s.flux.is_finite() && s.flux != 0.0) {
                return Err(format!(
                    "segment {i}: flux must be non-zero and finite, got {}",
                    s.flux
                ));
            }
            sum += s.flux;
            mag += s.flux.abs();
        }
        if !self.segments.iter().any(|s| s.flux > 0.0) {
            return Err("network has no inflow segment (all fluxes negative)".to_string());
        }
        if !self.segments.iter().any(|s| s.flux < 0.0) {
            return Err("network has no outflow segment (all fluxes positive)".to_string());
        }
        if sum.abs() > 1e-12 * mag {
            return Err(format!(
                "port fluxes do not balance: sum {sum:e} against total magnitude \
                 {mag:e} — prescribe fluxes summing to zero (net influx has no \
                 interior Stokes solution)"
            ));
        }
        Ok(())
    }
}

/// Quartic rim-smooth port profile (see [`Vessel::new`] for its analytic
/// flux properties on flat and hemispherical caps).
fn quartic(rho: f64) -> f64 {
    let s = (1.0 - rho * rho).max(0.0);
    1.5 * s * s
}

/// Builds a [`Vessel`] from a network manifest: composed branched surface,
/// node-level flux-balanced port boundary conditions, collision meshes,
/// and interior volume. See the module docs for the two-level flux-balance
/// enforcement; errors on invalid manifests, non-star-shaped geometry,
/// overlapping port caps, and ports left without quadrature nodes.
pub fn vessel_from_network(
    spec: &NetworkSpec,
    mu: f64,
    opts: BieOptions,
    col_m: usize,
) -> Result<Vessel, String> {
    spec.validate()?;
    let branches: Vec<BranchSpec> = spec
        .segments
        .iter()
        .map(|s| BranchSpec {
            axis: s.axis,
            length: s.length,
            radius: s.radius,
            is_inlet: s.flux > 0.0,
        })
        .collect();
    let surface = patch::branched_network(
        spec.center,
        &branches,
        spec.smoothing,
        spec.per_face,
        spec.q,
    )?;
    let solver = DoubleLayerSolver::new(surface, StokesDL, StokesEquiv { mu }, opts);
    let quad = &solver.quad;
    let dirs: Vec<Vec3> = spec
        .segments
        .iter()
        .map(|s| s.axis * (1.0 / s.axis.norm()))
        .collect();

    // node → port membership: behind the cap seam, within the cap
    // cylinder. Ambiguity (a node on two caps) means the branch caps
    // overlap — a manifest error, not something to resolve silently.
    let mut port_of: Vec<Option<usize>> = vec![None; quad.len()];
    for (l, slot) in port_of.iter_mut().enumerate() {
        let x = quad.points[l] - spec.center;
        for (bi, (d, s)) in dirs.iter().zip(&spec.segments).enumerate() {
            let t = x.dot(*d);
            let ray = (x - *d * t).norm();
            if t > s.length && ray < 1.5 * s.radius {
                if let Some(prev) = *slot {
                    return Err(format!(
                        "quadrature node lies on two port caps (branches {prev} \
                         and {bi}) — branch caps overlap; lengthen the branches \
                         or widen their angles"
                    ));
                }
                *slot = Some(bi);
            }
        }
    }

    // per-port rim radius and area-weighted cap centroid. Unlike
    // [`Vessel::new`] — which must estimate the rim as the largest node
    // distance from the axis because it only sees patch kinds — the branch
    // radius is known analytically here, and the cap is an exact capsule
    // hemisphere, so the profile's rim is the true cap seam (a max-node
    // estimate under-shoots by O(h²) at coarse template resolutions,
    // squeezing the profile and biasing the cap flux low)
    let nb = spec.segments.len();
    let rim: Vec<f64> = spec.segments.iter().map(|s| s.radius).collect();
    let mut centroid = vec![Vec3::ZERO; nb];
    let mut cap_area = vec![0.0f64; nb];
    for (l, port) in port_of.iter().enumerate() {
        let Some(bi) = *port else { continue };
        centroid[bi] += quad.points[l] * quad.weights[l];
        cap_area[bi] += quad.weights[l];
    }
    for (bi, s) in spec.segments.iter().enumerate() {
        if cap_area[bi] == 0.0 {
            return Err(format!(
                "port {bi} (axis {:?}) has no quadrature nodes — raise per_face \
                 or the patch order",
                s.axis
            ));
        }
        centroid[bi] /= cap_area[bi];
    }

    // raw discrete flux of the unit-peak quartic through each cap
    // (positive: the profile is directed along −axis, i.e. inward), then
    // scale each port so its discrete flux equals the prescription exactly
    let mut raw = vec![0.0f64; nb];
    for (l, port) in port_of.iter().enumerate() {
        let Some(bi) = *port else { continue };
        let x = quad.points[l] - spec.center;
        let t = x.dot(dirs[bi]);
        let ray = (x - dirs[bi] * t).norm();
        raw[bi] += dirs[bi].dot(quad.normals[l]) * quartic(ray / rim[bi]) * quad.weights[l];
    }
    let mut scale = vec![0.0f64; nb];
    for (bi, s) in spec.segments.iter().enumerate() {
        if raw[bi] <= 0.0 {
            return Err(format!(
                "port {bi} raw cap flux {} is not positive — cap normals are \
                 not aligned with the branch axis (degenerate geometry)",
                raw[bi]
            ));
        }
        scale[bi] = s.flux / raw[bi];
    }
    let mut bc = vec![0.0; quad.len() * 3];
    for l in 0..quad.len() {
        let Some(bi) = port_of[l] else { continue };
        let x = quad.points[l] - spec.center;
        let t = x.dot(dirs[bi]);
        let ray = (x - dirs[bi] * t).norm();
        let u = dirs[bi] * (-scale[bi] * quartic(ray / rim[bi]));
        bc[l * 3] = u.x;
        bc[l * 3 + 1] = u.y;
        bc[l * 3 + 2] = u.z;
    }

    let ports: Vec<Port> = spec
        .segments
        .iter()
        .enumerate()
        .map(|(bi, s)| Port {
            id: bi as u32,
            is_inlet: s.flux > 0.0,
            center: centroid[bi],
            inward: -dirs[bi],
            radius: rim[bi],
            flux: s.flux,
        })
        .collect();

    let meshes = build_meshes(&solver.surface, col_m);
    let volume = interior_volume(quad);

    Ok(Vessel {
        solver,
        bc,
        meshes,
        ports,
        volume,
        mu,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn y_spec() -> NetworkSpec {
        let up = Vec3::new(-1.0, 0.6, 0.0).normalized();
        let dn = Vec3::new(-1.0, -0.6, 0.0).normalized();
        NetworkSpec {
            center: Vec3::ZERO,
            segments: vec![
                SegmentSpec {
                    axis: Vec3::new(1.0, 0.0, 0.0),
                    length: 1.6,
                    radius: 0.5,
                    flux: 1.0,
                },
                SegmentSpec {
                    axis: up,
                    length: 1.5,
                    radius: 0.4,
                    flux: -0.55,
                },
                SegmentSpec {
                    axis: dn,
                    length: 1.5,
                    radius: 0.4,
                    flux: -0.45,
                },
            ],
            smoothing: 0.15,
            per_face: 2,
            q: 8,
        }
    }

    fn dense_opts() -> BieOptions {
        BieOptions {
            backend: bie::MatvecBackend::Dense,
            ..Default::default()
        }
    }

    #[test]
    fn balanced_y_manifest_builds_with_exact_port_fluxes() {
        let v = vessel_from_network(&y_spec(), 1.0, dense_opts(), 6).unwrap();
        assert_eq!(v.ports.len(), 3);
        let fluxes = v.port_fluxes();
        assert_eq!(fluxes, vec![1.0, -0.55, -0.45]);
        assert!(v.ports[0].is_inlet && !v.ports[1].is_inlet && !v.ports[2].is_inlet);
        // the recorded Port.flux values are the prescription; the *live*
        // discrete fluxes must match them: recompute per port from bc
        let quad = &v.solver.quad;
        for port in &v.ports {
            let axis = -port.inward;
            let mut f = 0.0;
            for l in 0..quad.len() {
                let x = quad.points[l] - y_spec().center;
                let t = x.dot(axis);
                let ray = (x - axis * t).norm();
                let on = t > y_spec().segments[port.id as usize].length
                    && ray < 1.5 * y_spec().segments[port.id as usize].radius;
                if on {
                    let u = Vec3::new(v.bc[l * 3], v.bc[l * 3 + 1], v.bc[l * 3 + 2]);
                    f -= u.dot(quad.normals[l]) * quad.weights[l];
                }
            }
            assert!(
                (f - port.flux).abs() < 1e-12,
                "port {}: discrete flux {f} vs prescribed {}",
                port.id,
                port.flux
            );
        }
        // total imbalance at rounding level (ISSUE acceptance: < 1e-6;
        // the per-port exact scaling puts it at machine epsilon)
        assert!(
            v.port_flux_imbalance() < 1e-13,
            "imbalance {}",
            v.port_flux_imbalance()
        );
        // walls are no-slip
        for l in 0..quad.len() {
            let x = quad.points[l];
            if x.norm() < 1.0 {
                assert_eq!(v.bc[l * 3], 0.0);
            }
        }
    }

    /// The quartic's hemispherical-cap flux identity at the *discrete*
    /// level: each network port cap is an exact capsule hemisphere (the
    /// blend correction underflows far from the junction), so the raw
    /// unit-peak quartic flux through the cap quadrature must match the
    /// analytic `π r²/2` — the same value as on a flat disk, which is
    /// what makes the 3/2 normalization exact on both cap shapes.
    #[test]
    fn hemispherical_cap_quartic_flux_matches_analytic() {
        // per_face = 3: the cap quadrature does not conform to the cap
        // boundary, so the discrete flux of the C¹ integrand converges
        // with the template resolution (2.8% off at per_face = 2, under
        // 2% at 3); the *prescribed* flux is exact at any resolution via
        // the per-port scaling
        let mut spec = y_spec();
        spec.per_face = 3;
        let v = vessel_from_network(&spec, 1.0, dense_opts(), 6).unwrap();
        let quad = &v.solver.quad;
        for port in &v.ports {
            let seg = spec.segments[port.id as usize];
            let axis = -port.inward;
            let mut raw = 0.0;
            for l in 0..quad.len() {
                let x = quad.points[l] - spec.center;
                let t = x.dot(axis);
                let ray = (x - axis * t).norm();
                if t > seg.length && ray < 1.5 * seg.radius {
                    let s = (1.0 - (ray / port.radius).powi(2)).max(0.0);
                    raw += axis.dot(quad.normals[l]) * 1.5 * s * s * quad.weights[l];
                }
            }
            let analytic = 0.5 * PI * seg.radius * seg.radius;
            assert!(
                (raw - analytic).abs() / analytic < 0.02,
                "port {}: raw quartic cap flux {raw} vs analytic {analytic}",
                port.id
            );
        }
    }

    #[test]
    fn unbalanced_manifest_rejected_with_clear_error() {
        let mut spec = y_spec();
        spec.segments[2].flux = -0.2; // sum = +0.25
        let err = spec.validate().unwrap_err();
        assert!(
            err.contains("do not balance") && err.contains("summing to zero"),
            "unhelpful error: {err}"
        );
        // and the builder refuses it too
        assert!(vessel_from_network(&spec, 1.0, dense_opts(), 6).is_err());
    }

    #[test]
    fn all_in_or_all_out_manifests_rejected() {
        let mut spec = y_spec();
        for s in &mut spec.segments {
            s.flux = s.flux.abs();
        }
        assert!(spec.validate().unwrap_err().contains("no outflow"));
        for s in &mut spec.segments {
            s.flux = -s.flux;
        }
        assert!(spec.validate().unwrap_err().contains("no inflow"));
        let mut spec = y_spec();
        spec.segments[0].flux = 0.0;
        assert!(spec.validate().unwrap_err().contains("non-zero"));
    }

    #[test]
    fn overlapping_port_caps_rejected() {
        // two inflow branches 15° apart: their cap cylinders overlap, so
        // some cap node sits on both — must fail with the ambiguity error
        // rather than silently double-prescribing the velocity
        let a = 7.5f64.to_radians();
        let spec = NetworkSpec {
            center: Vec3::ZERO,
            segments: vec![
                SegmentSpec {
                    axis: Vec3::new(a.cos(), a.sin(), 0.0),
                    length: 2.0,
                    radius: 0.5,
                    flux: 0.5,
                },
                SegmentSpec {
                    axis: Vec3::new(a.cos(), -a.sin(), 0.0),
                    length: 2.0,
                    radius: 0.5,
                    flux: 0.5,
                },
                SegmentSpec {
                    axis: Vec3::new(-1.0, 0.0, 0.0),
                    length: 2.0,
                    radius: 0.6,
                    flux: -1.0,
                },
            ],
            smoothing: 0.1,
            per_face: 2,
            q: 8,
        };
        let err = match vessel_from_network(&spec, 1.0, dense_opts(), 6) {
            Err(e) => e,
            Ok(_) => panic!("overlapping caps accepted"),
        };
        assert!(
            err.contains("overlap") || err.contains("star-shaped"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn network_vessel_volume_reasonable() {
        // three branch capsule halves minus overlap: must land between the
        // largest single branch and the sum of all three
        let spec = y_spec();
        let v = vessel_from_network(&spec, 1.0, dense_opts(), 6).unwrap();
        let single: f64 = spec
            .segments
            .iter()
            .map(|s| PI * s.radius * s.radius * s.length)
            .fold(0.0, f64::max);
        let total: f64 = spec
            .segments
            .iter()
            .map(|s| PI * s.radius * s.radius * s.length + 0.5 * 4.0 / 3.0 * PI * s.radius.powi(3))
            .sum();
        assert!(
            v.volume > single && v.volume < 1.5 * total,
            "volume {} outside ({single}, {})",
            v.volume,
            1.5 * total
        );
    }
}
