//! Per-component wall-time accounting matching the categories of
//! Figs. 4–6: COL, BIE-solve, BIE-FMM, Other-FMM, Other.

use std::time::Instant;

/// Accumulated seconds per component of a simulation step.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimers {
    /// Collision detection + resolution (the paper's COL).
    pub col: f64,
    /// Boundary solve excluding far-field summation (BIE-solve).
    pub bie_solve: f64,
    /// Far-field summation inside the boundary solve and `u_Γ` evaluation
    /// (BIE-FMM).
    pub bie_fmm: f64,
    /// Far-field summation for cell–cell interactions (Other-FMM).
    pub other_fmm: f64,
    /// Everything else (membrane forces, implicit solves, bookkeeping).
    pub other: f64,
}

impl StepTimers {
    /// Total wall time.
    pub fn total(&self) -> f64 {
        self.col + self.bie_solve + self.bie_fmm + self.other_fmm + self.other
    }

    /// Adds another timer set.
    pub fn accumulate(&mut self, o: &StepTimers) {
        self.col += o.col;
        self.bie_solve += o.bie_solve;
        self.bie_fmm += o.bie_fmm;
        self.other_fmm += o.other_fmm;
        self.other += o.other;
    }

    /// The paper's headline combination "COL + BIE-solve".
    pub fn col_plus_bie_solve(&self) -> f64 {
        self.col + self.bie_solve
    }
}

/// Measures one closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = StepTimers {
            col: 1.0,
            bie_solve: 2.0,
            bie_fmm: 3.0,
            other_fmm: 4.0,
            other: 5.0,
        };
        assert!((a.total() - 15.0).abs() < 1e-12);
        assert!((a.col_plus_bie_solve() - 3.0).abs() < 1e-12);
        let b = a;
        a.accumulate(&b);
        assert!((a.total() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn timed_measures_something() {
        let (v, t) = timed(|| (0..10000).sum::<u64>());
        assert_eq!(v, 49995000);
        assert!(t >= 0.0);
    }
}
