//! # forest — a forest of quadtrees over boundary patches
//!
//! The p4est substitute (DESIGN.md substitution table). The paper manages
//! the vessel-boundary patch hierarchy with p4est: distributing patch data,
//! tracking parent–child relations between the coarse and fine
//! discretizations, and refining/coarsening in parallel (§3.2). This crate
//! provides the same services in shared memory:
//!
//! - one quadtree per root patch, with exact polynomial subdivision at
//!   every split;
//! - uniform and predicate-driven refinement, and coarsening;
//! - leaf enumeration in Morton order with balanced work partitioning
//!   (the "distribute the geometry among processors" role);
//! - cross-patch edge adjacency derived from shared edge geometry.

use linalg::Vec3;
use patch::{BoundarySurface, PatchKind, PolyPatch};
use rayon::prelude::*;

/// Sentinel for "no node".
pub const NONE: u32 = u32::MAX;

/// A node of a patch quadtree.
#[derive(Clone, Debug)]
pub struct QNode {
    /// Root patch index this node descends from.
    pub root: u32,
    /// Refinement level (0 = root patch).
    pub level: u32,
    /// Parameter rectangle inside the root patch (`[u0,u1,v0,v1]`).
    pub rect: [f64; 4],
    /// The fitted polynomial for this node's sub-rectangle.
    pub patch: PolyPatch,
    /// Child node ids (`NONE` if leaf), Morton order (u fastest).
    pub children: [u32; 4],
    /// Parent node id (`NONE` for roots).
    pub parent: u32,
    /// Whether this is a leaf.
    pub is_leaf: bool,
}

/// A forest of quadtrees over the root patches of a surface.
#[derive(Clone, Debug)]
pub struct QuadForest {
    /// Quadrature order carried to derived surfaces.
    pub q: usize,
    /// Per-root patch kind (inherited by all descendants).
    pub root_kinds: Vec<PatchKind>,
    /// All nodes; the first `root_kinds.len()` entries are the roots.
    pub nodes: Vec<QNode>,
}

impl QuadForest {
    /// Builds a forest whose roots are the patches of `surface`.
    pub fn from_surface(surface: &BoundarySurface) -> QuadForest {
        let nodes = surface
            .patches
            .iter()
            .enumerate()
            .map(|(i, p)| QNode {
                root: i as u32,
                level: 0,
                rect: [-1.0, 1.0, -1.0, 1.0],
                patch: p.clone(),
                children: [NONE; 4],
                parent: NONE,
                is_leaf: true,
            })
            .collect();
        QuadForest {
            q: surface.q,
            root_kinds: surface.kinds.clone(),
            nodes,
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf && (n.parent != NONE || n.level == 0))
            .count()
    }

    /// Splits leaf `ni` into four children (exact polynomial subdivision).
    pub fn split(&mut self, ni: u32) {
        let node = &self.nodes[ni as usize];
        assert!(node.is_leaf, "split: node {ni} is not a leaf");
        let [u0, u1, v0, v1] = node.rect;
        let (um, vm) = (0.5 * (u0 + u1), 0.5 * (v0 + v1));
        let rects = [
            [u0, um, v0, vm],
            [um, u1, v0, vm],
            [u0, um, vm, v1],
            [um, u1, vm, v1],
        ];
        let root = node.root;
        let level = node.level + 1;
        let children = node.patch.split4();
        for (k, (rect, child)) in rects.iter().zip(children).enumerate() {
            let id = self.nodes.len() as u32;
            self.nodes.push(QNode {
                root,
                level,
                rect: *rect,
                patch: child,
                children: [NONE; 4],
                parent: ni,
                is_leaf: true,
            });
            self.nodes[ni as usize].children[k] = id;
        }
        self.nodes[ni as usize].is_leaf = false;
    }

    /// Coarsens a family: detaches the (leaf) children of `ni`, making it a
    /// leaf again. Children must all be leaves.
    pub fn coarsen(&mut self, ni: u32) {
        let children = self.nodes[ni as usize].children;
        assert!(
            children.iter().all(|&c| c != NONE),
            "coarsen: {ni} has no children"
        );
        for &c in &children {
            assert!(
                self.nodes[c as usize].is_leaf,
                "coarsen: child {c} is not a leaf"
            );
            // detach; detached nodes are skipped by leaf iteration
            self.nodes[c as usize].parent = NONE;
            self.nodes[c as usize].is_leaf = false;
        }
        self.nodes[ni as usize].children = [NONE; 4];
        self.nodes[ni as usize].is_leaf = true;
    }

    /// Refines every leaf `levels` times (the weak-scaling rule M → 4M per
    /// level, §5.2).
    pub fn refine_uniform(&mut self, levels: u32) {
        for _ in 0..levels {
            let leaves = self.leaf_ids();
            for li in leaves {
                self.split(li);
            }
        }
    }

    /// Refines leaves while `pred` returns true, up to `max_level`.
    /// The predicate sees the node and can inspect geometry (e.g. patch
    /// size or curvature) — the adaptive-refinement hook the paper lists as
    /// future work for its boundary solver.
    pub fn refine_where(&mut self, max_level: u32, pred: impl Fn(&QNode) -> bool) {
        loop {
            let to_split: Vec<u32> = self
                .leaf_ids()
                .into_iter()
                .filter(|&li| {
                    let n = &self.nodes[li as usize];
                    n.level < max_level && pred(n)
                })
                .collect();
            if to_split.is_empty() {
                break;
            }
            for li in to_split {
                self.split(li);
            }
        }
    }

    /// Leaf ids in Morton order (depth-first by child index within each
    /// root, roots in order) — the paper's distribution order.
    pub fn leaf_ids(&self) -> Vec<u32> {
        let num_roots = self.root_kinds.len();
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for r in (0..num_roots as u32).rev() {
            stack.push(r);
        }
        while let Some(ni) = stack.pop() {
            let n = &self.nodes[ni as usize];
            if n.is_leaf {
                out.push(ni);
            } else if n.children[0] != NONE {
                for &c in n.children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Materializes the current leaves as a [`BoundarySurface`]
    /// (kind inherited from the root patch).
    pub fn leaf_surface(&self) -> BoundarySurface {
        let ids = self.leaf_ids();
        let patches: Vec<PolyPatch> = ids
            .iter()
            .map(|&i| self.nodes[i as usize].patch.clone())
            .collect();
        let kinds = ids
            .iter()
            .map(|&i| self.root_kinds[self.nodes[i as usize].root as usize])
            .collect();
        BoundarySurface {
            q: self.q,
            patches,
            kinds,
        }
    }

    /// Splits the Morton-ordered leaves into `parts` contiguous chunks of
    /// near-equal size — the shared-memory analogue of p4est's processor
    /// partitioning.
    pub fn partition(&self, parts: usize) -> Vec<Vec<u32>> {
        let ids = self.leaf_ids();
        let parts = parts.max(1);
        let per = ids.len().div_ceil(parts);
        ids.chunks(per.max(1)).map(|c| c.to_vec()).collect()
    }

    /// Finds leaf pairs whose patches share an edge (approximately, by
    /// matching sampled edge midpoints within `tol`). Used for neighbor
    /// queries across patch boundaries.
    pub fn edge_neighbors(&self, tol: f64) -> Vec<(u32, u32)> {
        let ids = self.leaf_ids();
        let edges: Vec<(Vec3, u32)> = ids
            .par_iter()
            .flat_map_iter(|&li| {
                let p = &self.nodes[li as usize].patch;
                [
                    p.eval(0.0, -1.0),
                    p.eval(0.0, 1.0),
                    p.eval(-1.0, 0.0),
                    p.eval(1.0, 0.0),
                ]
                .into_iter()
                .map(move |mid| (mid, li))
            })
            .collect();
        // match midpoints through a spatial hash to avoid O(E²)
        let grid = octree::SpatialHash::new(tol.max(1e-9) * 4.0, Vec3::ZERO);
        let mut keyed: Vec<(u64, u32, Vec3)> = edges
            .iter()
            .map(|e| (grid.key_of_point(e.0), e.1, e.0))
            .collect();
        keyed.sort_unstable_by_key(|k| k.0);
        let mut out = Vec::new();
        let mut i = 0;
        while i < keyed.len() {
            let mut j = i + 1;
            while j < keyed.len() && keyed[j].0 == keyed[i].0 {
                j += 1;
            }
            for a in i..j {
                for b in a + 1..j {
                    if keyed[a].1 != keyed[b].1 && keyed[a].2.dist(keyed[b].2) < tol {
                        let (x, y) = (keyed[a].1.min(keyed[b].1), keyed[a].1.max(keyed[b].1));
                        out.push((x, y));
                    }
                }
            }
            i = j;
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch::cube_sphere;

    #[test]
    fn uniform_refinement_multiplies_leaves() {
        let s = cube_sphere(1.0, Vec3::ZERO, 0, 6);
        let mut f = QuadForest::from_surface(&s);
        assert_eq!(f.num_leaves(), 6);
        f.refine_uniform(2);
        assert_eq!(f.num_leaves(), 6 * 16);
        // splitting subdivides the fitted polynomials exactly; the computed
        // areas differ only by the Clenshaw–Curtis error on the (non-
        // polynomial) Jacobian, ~1e-4 at q = 6
        let area = f.leaf_surface().quadrature().total_area();
        let root_area = s.quadrature().total_area();
        assert!(
            (area - root_area).abs() / root_area < 5e-4,
            "area {area} vs {root_area}"
        );
    }

    #[test]
    fn refine_where_respects_predicate_and_level_cap() {
        let s = cube_sphere(1.0, Vec3::ZERO, 0, 6);
        let mut f = QuadForest::from_surface(&s);
        f.refine_where(2, |n| n.patch.eval(0.0, 0.0).x > 0.0);
        let ids = f.leaf_ids();
        for &li in &ids {
            let n = &f.nodes[li as usize];
            assert!(n.level <= 2);
            if n.level > 0 {
                assert!(n.patch.eval(0.0, 0.0).x > -0.5);
            }
        }
        assert!(f.num_leaves() > 6);
    }

    #[test]
    fn coarsening_restores_leaf() {
        let s = cube_sphere(1.0, Vec3::ZERO, 0, 6);
        let mut f = QuadForest::from_surface(&s);
        f.split(0);
        assert_eq!(f.num_leaves(), 5 + 4);
        f.coarsen(0);
        assert_eq!(f.num_leaves(), 6);
        assert!(f.nodes[0].is_leaf);
    }

    #[test]
    fn partition_balanced_and_complete() {
        let s = cube_sphere(1.0, Vec3::ZERO, 1, 6);
        let mut f = QuadForest::from_surface(&s);
        f.refine_uniform(1);
        let total = f.num_leaves();
        let parts = f.partition(7);
        let sum: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(sum, total);
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        assert!(max - min <= max / 2 + 1, "imbalanced: {min}..{max}");
    }

    #[test]
    fn split_children_cover_parent_geometry() {
        let s = cube_sphere(1.0, Vec3::ZERO, 0, 8);
        let mut f = QuadForest::from_surface(&s);
        f.split(2);
        let parent_pt = f.nodes[2].patch.eval(-0.5, -0.5);
        let c0 = f.nodes[2].children[0];
        let child_pt = f.nodes[c0 as usize].patch.eval(0.0, 0.0);
        assert!((parent_pt - child_pt).norm() < 1e-10);
    }

    #[test]
    fn edge_neighbors_found_on_sphere() {
        let s = cube_sphere(1.0, Vec3::ZERO, 0, 6);
        let f = QuadForest::from_surface(&s);
        let nbrs = f.edge_neighbors(1e-6);
        // each cube face touches 4 others: 6·4/2 = 12 shared edges
        assert_eq!(nbrs.len(), 12, "neighbors: {nbrs:?}");
    }

    #[test]
    fn kinds_inherited_through_refinement() {
        let line = patch::StraightLine {
            a: Vec3::ZERO,
            b: Vec3::new(3.0, 0.0, 0.0),
        };
        let s = patch::capsule_tube(&line, 0.5, 2, 6);
        let mut f = QuadForest::from_surface(&s);
        f.refine_uniform(1);
        let ls = f.leaf_surface();
        let inlets = ls
            .kinds
            .iter()
            .filter(|k| matches!(k, PatchKind::Inlet(_)))
            .count();
        assert_eq!(inlets, 5 * 4);
    }
}
