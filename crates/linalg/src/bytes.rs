//! Minimal binary (de)serialization substrate for checkpoint files.
//!
//! The environment is offline, so instead of serde the simulation state is
//! persisted through this hand-rolled little-endian codec. Every crate that
//! owns persistent state (`vesicle` cells, `collision` meshes, `sim`
//! checkpoints) writes through [`ByteWriter`] and reads through
//! [`ByteReader`]; floats round-trip bit-exactly (`f64::to_le_bytes`), which
//! is what makes checkpoint/restart reproduce trajectories bit-identically.

use crate::vec3::Vec3;

/// Append-only little-endian byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (platform-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` bit-exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a [`Vec3`] as three `f64`s.
    pub fn put_vec3(&mut self, v: Vec3) {
        self.put_f64(v.x);
        self.put_f64(v.y);
        self.put_f64(v.z);
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Error type for [`ByteReader`]: truncated or malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Sequential reader over a byte slice produced by [`ByteWriter`].
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "truncated input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (written as `u64`).
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError(format!("usize overflow: {v}")))
    }

    /// Reads an `f64` bit-exactly.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `bool`.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a [`Vec3`].
    pub fn get_vec3(&mut self) -> Result<Vec3, CodecError> {
        Ok(Vec3::new(self.get_f64()?, self.get_f64()?, self.get_f64()?))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.get_usize()?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(CodecError(format!("truncated f64 vec of len {n}")));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, CodecError> {
        let n = self.get_usize()?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|e| CodecError(format!("invalid utf-8: {e}")))
    }
}

/// FNV-1a 64-bit hash of a byte slice — the deterministic digest used to
/// cross-check that a rebuilt domain matches the one a checkpoint was
/// captured from.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdeadbeef);
        w.put_u64(1 << 60);
        w.put_usize(544);
        w.put_f64(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_bool(true);
        w.put_vec3(Vec3::new(1.0, -2.5, 3e-300));
        w.put_f64_slice(&[0.1, 0.2, 0.3]);
        w.put_str("shear_pair");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.get_u64().unwrap(), 1 << 60);
        assert_eq!(r.get_usize().unwrap(), 544);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert!(r.get_bool().unwrap());
        let v = r.get_vec3().unwrap();
        assert_eq!((v.x, v.y, v.z), (1.0, -2.5, 3e-300));
        assert_eq!(r.get_f64_vec().unwrap(), vec![0.1, 0.2, 0.3]);
        assert_eq!(r.get_string().unwrap(), "shear_pair");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..4]);
        assert!(r.get_u64().is_err());
        // a bogus huge length prefix must not allocate
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_f64_vec().is_err());
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
