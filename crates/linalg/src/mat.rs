//! Dense row-major matrix type and basic BLAS-like operations.
//!
//! This stands in for the Intel MKL dense routines the paper links against.
//! Sizes in this code base are modest (at most a few thousand on a side, most
//! commonly a few hundred), so a straightforward cache-blocked
//! implementation is adequate and keeps the crate dependency-free.

use std::ops::{Index, IndexMut};

/// Dense row-major `f64` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates an `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Mat {
        assert_eq!(data.len(), rows * cols, "Mat::from_vec: size mismatch");
        Mat { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Mat {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product writing into a caller-provided buffer.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
    }

    /// Accumulating matrix–vector product `y += alpha * A x`.
    pub fn matvec_acc(&self, x: &[f64], alpha: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi += alpha * acc;
        }
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (yj, aij) in y.iter_mut().zip(self.row(i)) {
                *yj += aij * xi;
            }
        }
        y
    }

    /// Matrix–matrix product `C = A B`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, b: &Mat) -> Mat {
        assert_eq!(self.cols, b.rows, "matmul: inner dimension mismatch");
        let mut c = Mat::zeros(self.rows, b.cols);
        gemm_acc(
            self.rows,
            b.cols,
            self.cols,
            1.0,
            &self.data,
            &b.data,
            &mut c.data,
        );
        c
    }

    /// Accumulating matrix–matrix product `C += alpha · A B` into a
    /// caller-provided matrix (the GEMM path used by the batched FMM M2L).
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn matmul_acc(&self, b: &Mat, alpha: f64, c: &mut Mat) {
        assert_eq!(self.cols, b.rows, "matmul_acc: inner dimension mismatch");
        assert_eq!(c.rows, self.rows, "matmul_acc: output rows");
        assert_eq!(c.cols, b.cols, "matmul_acc: output cols");
        gemm_acc(
            self.rows,
            b.cols,
            self.cols,
            alpha,
            &self.data,
            &b.data,
            &mut c.data,
        );
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scales the matrix in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `A + alpha * B`.
    pub fn add_scaled(&self, b: &Mat, alpha: f64) -> Mat {
        assert_eq!((self.rows, self.cols), (b.rows, b.cols));
        let data = self
            .data
            .iter()
            .zip(&b.data)
            .map(|(x, y)| x + alpha * y)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Row-major GEMM on raw buffers: `C[m×n] += alpha · A[m×k] · B[k×n]`.
///
/// Register-tiled microkernel: `MR × NR` accumulator blocks (4 rows × 24
/// columns = 12 SIMD vectors at AVX-512 width) held across the full `k`
/// loop, with edge cleanup in plain axpy form. This is the workhorse
/// behind [`Mat::matmul`], [`Mat::matmul_acc`], and the FMM's batched M2L
/// dispatch, where `A` is a block of gathered equivalent densities and `B`
/// a translation operator.
///
/// # Panics
/// Panics if a buffer is smaller than its `m`/`n`/`k` shape implies.
pub fn gemm_acc(m: usize, n: usize, k: usize, alpha: f64, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert!(a.len() >= m * k, "gemm_acc: A too small");
    assert!(b.len() >= k * n, "gemm_acc: B too small");
    assert!(c.len() >= m * n, "gemm_acc: C too small");
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    const MR: usize = 4;
    let m_main = m - m % MR;
    // j-outer ordering: one k×NR strip of B stays cache-resident while
    // every row block of A streams against it. 24-wide tiles first, then
    // 8-wide tiles for the remainder, then a scalar-ish edge.
    let mut j0 = 0;
    while j0 + 24 <= n {
        gemm_tile::<MR, 24>(m_main, j0, n, k, alpha, a, b, c);
        j0 += 24;
    }
    while j0 + 8 <= n {
        gemm_tile::<MR, 8>(m_main, j0, n, k, alpha, a, b, c);
        j0 += 8;
    }
    // right edge (n % 8 columns) for the main row band
    if j0 < n {
        gemm_edge(0..m_main, j0, n, k, alpha, a, b, c);
    }
    // bottom edge (m % MR rows), full width
    if m_main < m {
        gemm_edge(m_main..m, 0, n, k, alpha, a, b, c);
    }
}

/// One `MR × W` register-tiled column strip of [`gemm_acc`].
#[allow(clippy::too_many_arguments)] // BLAS-shaped signature
#[inline]
fn gemm_tile<const MR: usize, const W: usize>(
    m_main: usize,
    j0: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    for i0 in (0..m_main).step_by(MR) {
        // register-resident accumulator block, held across the k loop
        let mut acc = [[0.0f64; W]; MR];
        for kk in 0..k {
            let brow = &b[kk * n + j0..kk * n + j0 + W];
            for (i, acci) in acc.iter_mut().enumerate() {
                let aik = a[(i0 + i) * k + kk];
                for (j, accij) in acci.iter_mut().enumerate() {
                    *accij += aik * brow[j];
                }
            }
        }
        for (i, acci) in acc.iter().enumerate() {
            let crow = &mut c[(i0 + i) * n + j0..(i0 + i) * n + j0 + W];
            for (cij, accij) in crow.iter_mut().zip(acci) {
                *cij += alpha * accij;
            }
        }
    }
}

/// Cleanup path of [`gemm_acc`]: axpy form over an arbitrary row range and
/// column window.
#[allow(clippy::too_many_arguments)] // BLAS-shaped signature
fn gemm_edge(
    rows: std::ops::Range<usize>,
    j0: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    for i in rows {
        for kk in 0..k {
            let aik = alpha * a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n + j0..kk * n + n];
            let crow = &mut c[i * n + j0..i * n + n];
            for (cij, bkj) in crow.iter_mut().zip(brow) {
                *cij += aik * bkj;
            }
        }
    }
}

/// y ← y + alpha x (BLAS axpy).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean dot product of two slices.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm of a slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f64 + 1.0);
        let i = Mat::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_fn(4, 3, |i, j| (i as f64) - 2.0 * (j as f64));
        let x = vec![1.0, -1.0, 2.0];
        let xm = Mat::from_vec(3, 1, x.clone());
        let y = a.matvec(&x);
        let ym = a.matmul(&xm);
        for i in 0..4 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_involution_and_matvec_t() {
        let a = Mat::from_fn(3, 5, |i, j| ((i + 1) * (j + 2)) as f64);
        assert_eq!(a.transpose().transpose(), a);
        let x = vec![1.0, 2.0, 3.0];
        let y1 = a.matvec_t(&x);
        let y2 = a.transpose().matvec(&x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn matmul_associativity_small() {
        let a = Mat::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Mat::from_fn(3, 4, |i, j| (i as f64) * 0.5 - j as f64);
        let c = Mat::from_fn(4, 2, |i, j| 1.0 / ((i + j + 1) as f64));
        let l = a.matmul(&b).matmul(&c);
        let r = a.matmul(&b.matmul(&c));
        assert!((l.add_scaled(&r, -1.0)).frobenius_norm() < 1e-12);
    }

    #[test]
    fn blas_helpers() {
        let x = vec![1.0, 2.0, 2.0];
        assert!((norm2(&x) - 3.0).abs() < 1e-15);
        assert_eq!(norm_inf(&x), 2.0);
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 5.0]);
        assert!((dot(&x, &y) - (3.0 + 10.0 + 10.0)).abs() < 1e-15);
    }

    #[test]
    fn gemm_acc_matches_matmul() {
        let a = Mat::from_fn(7, 5, |i, j| (i as f64 + 1.0) * 0.3 - j as f64 * 0.7);
        let b = Mat::from_fn(5, 9, |i, j| (i * 9 + j) as f64 * 0.01 - 0.2);
        let reference = a.matmul(&b);
        // accumulate twice with alpha = 0.5 into a pre-filled C
        let mut c = Mat::from_fn(7, 9, |i, j| (i + j) as f64);
        let base = c.clone();
        a.matmul_acc(&b, 0.5, &mut c);
        a.matmul_acc(&b, 0.5, &mut c);
        let expect = base.add_scaled(&reference, 1.0);
        assert!(c.add_scaled(&expect, -1.0).frobenius_norm() < 1e-12);
    }

    #[test]
    fn gemm_acc_handles_tall_blocks() {
        // m not a multiple of the row-block size
        let m = 21;
        let k = 13;
        let n = 17;
        let a = Mat::from_fn(m, k, |i, j| ((i * k + j) % 7) as f64 - 3.0);
        let b = Mat::from_fn(k, n, |i, j| ((i * n + j) % 5) as f64 * 0.25);
        let mut c = vec![0.0; m * n];
        gemm_acc(m, n, k, 1.0, a.data(), b.data(), &mut c);
        // independent naive triple loop as the reference
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[(i, l)] * b[(l, j)];
                }
                assert!((c[i * n + j] - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_acc_accumulates() {
        let a = Mat::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![1.0; 3];
        a.matvec_acc(&x, 2.0, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }
}
