//! Three-dimensional vector type used throughout the simulation.
//!
//! Kept deliberately small and `Copy`; all geometric quantities (points,
//! velocities, forces, normals) are `Vec3`. Arithmetic is implemented via
//! operator overloading so numerical code reads like the formulas in the
//! paper.

use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A vector (or point) in `R^3` with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `s`.
    #[inline]
    pub const fn splat(s: f64) -> Self {
        Vec3 { x: s, y: s, z: s }
    }

    /// Euclidean dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product `self × rhs`.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Returns the unit vector in the direction of `self`.
    ///
    /// Returns the zero vector when `self` is (numerically) zero, which is
    /// the convention most convenient for degenerate normals.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise product (Hadamard product).
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Returns `true` when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as a fixed-size array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from a `[x, y, z]` array.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }

    /// Returns an arbitrary unit vector orthogonal to `self`.
    ///
    /// Useful for constructing local frames around normals. `self` need not
    /// be normalized but must be nonzero.
    pub fn any_orthogonal(self) -> Vec3 {
        let a = if self.x.abs() <= self.y.abs() && self.x.abs() <= self.z.abs() {
            Vec3::new(1.0, 0.0, 0.0)
        } else if self.y.abs() <= self.z.abs() {
            Vec3::new(0.0, 1.0, 0.0)
        } else {
            Vec3::new(0.0, 0.0, 1.0)
        };
        self.cross(a).normalized()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of bounds: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of bounds: {i}"),
        }
    }
}

impl std::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

/// An axis-aligned bounding box in `R^3`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub lo: Vec3,
    /// Maximum corner.
    pub hi: Vec3,
}

impl Aabb {
    /// An empty box (inverted bounds) suitable as a fold identity.
    pub const EMPTY: Aabb = Aabb {
        lo: Vec3::splat(f64::INFINITY),
        hi: Vec3::splat(f64::NEG_INFINITY),
    };

    /// Builds a box from explicit corners.
    pub fn new(lo: Vec3, hi: Vec3) -> Aabb {
        Aabb { lo, hi }
    }

    /// Smallest box containing all points of the iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(pts: I) -> Aabb {
        pts.into_iter().fold(Aabb::EMPTY, |b, p| b.expanded_to(p))
    }

    /// Returns the box grown to contain `p`.
    #[inline]
    pub fn expanded_to(self, p: Vec3) -> Aabb {
        Aabb {
            lo: self.lo.min(p),
            hi: self.hi.max(p),
        }
    }

    /// Returns the union of two boxes.
    #[inline]
    pub fn union(self, other: Aabb) -> Aabb {
        Aabb {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Returns the box inflated by `d` in every direction.
    #[inline]
    pub fn inflated(self, d: f64) -> Aabb {
        Aabb {
            lo: self.lo - Vec3::splat(d),
            hi: self.hi + Vec3::splat(d),
        }
    }

    /// Center point.
    #[inline]
    pub fn center(self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    /// Edge lengths.
    #[inline]
    pub fn extent(self) -> Vec3 {
        self.hi - self.lo
    }

    /// Length of the box diagonal.
    #[inline]
    pub fn diagonal(self) -> f64 {
        self.extent().norm()
    }

    /// Whether the point lies inside (inclusive).
    #[inline]
    pub fn contains(self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x <= self.hi.x
            && p.y >= self.lo.y
            && p.y <= self.hi.y
            && p.z >= self.lo.z
            && p.z <= self.hi.z
    }

    /// Whether two boxes overlap (inclusive of touching).
    #[inline]
    pub fn intersects(self, o: Aabb) -> bool {
        self.lo.x <= o.hi.x
            && o.lo.x <= self.hi.x
            && self.lo.y <= o.hi.y
            && o.lo.y <= self.hi.y
            && self.lo.z <= o.hi.z
            && o.lo.z <= self.hi.z
    }

    /// Whether the box is empty (any inverted axis).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y || self.lo.z > self.hi.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_cross_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        // cross product is orthogonal to both arguments
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-14);
        assert!(c.dot(b).abs() < 1e-14);
        // Lagrange identity |a×b|² = |a|²|b|² − (a·b)²
        let lhs = c.norm_sq();
        let rhs = a.norm_sq() * b.norm_sq() - a.dot(b) * a.dot(b);
        assert!((lhs - rhs).abs() < 1e-12 * rhs.abs().max(1.0));
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let v = Vec3::new(3.0, 0.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn any_orthogonal_is_orthogonal_unit() {
        for v in [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1e-9, 5.0),
            Vec3::new(-3.0, 2.0, 1.0),
        ] {
            let o = v.any_orthogonal();
            assert!(o.dot(v).abs() < 1e-12 * v.norm());
            assert!((o.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn aabb_basics() {
        let b = Aabb::from_points([Vec3::new(0.0, 1.0, 2.0), Vec3::new(-1.0, 3.0, 0.0)]);
        assert_eq!(b.lo, Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!(b.hi, Vec3::new(0.0, 3.0, 2.0));
        assert!(b.contains(b.center()));
        assert!(!b.contains(Vec3::new(10.0, 0.0, 0.0)));
        let c = b.inflated(1.0);
        assert!(c.contains(Vec3::new(0.5, 0.5, -0.5)));
        assert!(b.intersects(c));
        assert!(Aabb::EMPTY.is_empty());
        assert!(!b.is_empty());
    }

    #[test]
    fn indexing_round_trip() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        for i in 0..3 {
            v[i] += i as f64;
        }
        assert_eq!(v, Vec3::new(1.0, 3.0, 5.0));
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }
}
