//! One-dimensional quadrature rules: Clenshaw–Curtis and Gauss–Legendre.
//!
//! The vessel boundary patches are sampled at tensor-product Clenshaw–Curtis
//! nodes (§3.1 of the paper) while the spherical-harmonic grids on RBC
//! surfaces use Gauss–Legendre nodes in latitude. Both rules are generated
//! from scratch here.

use std::f64::consts::PI;

/// A 1-D quadrature rule on `[-1, 1]`.
#[derive(Clone, Debug)]
pub struct Rule1d {
    /// Quadrature nodes in increasing order.
    pub nodes: Vec<f64>,
    /// Quadrature weights (positive for both supported families).
    pub weights: Vec<f64>,
}

impl Rule1d {
    /// Number of points in the rule.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the rule is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Integrates samples `f(nodes[i])` against the rule.
    pub fn integrate(&self, f: &[f64]) -> f64 {
        debug_assert_eq!(f.len(), self.weights.len());
        self.weights.iter().zip(f).map(|(w, v)| w * v).sum()
    }

    /// Maps the rule affinely from `[-1,1]` to `[a, b]`.
    pub fn mapped_to(&self, a: f64, b: f64) -> Rule1d {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        Rule1d {
            nodes: self.nodes.iter().map(|t| mid + half * t).collect(),
            weights: self.weights.iter().map(|w| w * half).collect(),
        }
    }
}

/// Clenshaw–Curtis rule with `n ≥ 2` points (Chebyshev extreme points).
///
/// Nodes are `x_j = -cos(π j / (n-1))`, j = 0..n−1, in increasing order. The
/// weights are computed from the standard cosine-sum formula, which is exact
/// for polynomials of degree `n−1` (and in practice converges like Gauss for
/// smooth integrands).
pub fn clenshaw_curtis(n: usize) -> Rule1d {
    assert!(n >= 2, "clenshaw_curtis requires n >= 2");
    let m = n - 1;
    let mut nodes = Vec::with_capacity(n);
    let mut weights = vec![0.0; n];
    for j in 0..n {
        nodes.push(-(PI * j as f64 / m as f64).cos());
    }
    // w_j = (c_j / m) * (1 - sum_{k=1}^{m/2} b_k cos(2 k θ_j) / (4k² − 1) * 2)
    for (j, w) in weights.iter_mut().enumerate() {
        let theta = PI * j as f64 / m as f64;
        let mut s = 0.0;
        let kmax = m / 2;
        for k in 1..=kmax {
            let bk = if 2 * k == m { 1.0 } else { 2.0 };
            s += bk * (2.0 * k as f64 * theta).cos() / ((4 * k * k - 1) as f64);
        }
        let cj = if j == 0 || j == m { 1.0 } else { 2.0 };
        *w = cj / m as f64 * (1.0 - s);
    }
    Rule1d { nodes, weights }
}

/// Gauss–Legendre rule with `n ≥ 1` points, computed by Newton iteration on
/// the Legendre polynomial with the Chebyshev initial guess. Accurate to
/// machine precision for the orders used here (n ≤ ~200).
pub fn gauss_legendre(n: usize) -> Rule1d {
    assert!(n >= 1, "gauss_legendre requires n >= 1");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    for i in 0..n {
        // initial guess (Chebyshev-like)
        let mut x = (PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            let (p, d) = legendre_and_derivative(n, x);
            dp = d;
            let dx = p / d;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[n - 1 - i] = x; // descending guess -> ascending storage
        weights[n - 1 - i] = 2.0 / ((1.0 - x * x) * dp * dp);
    }
    Rule1d { nodes, weights }
}

/// Evaluates the Legendre polynomial `P_n(x)` and its derivative via the
/// three-term recurrence.
pub fn legendre_and_derivative(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let mut p0 = 1.0;
    let mut p1 = x;
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    let d = n as f64 * (x * p1 - p0) / (x * x - 1.0);
    (p1, d)
}

/// Periodic trapezoidal rule with `n` points on `[0, 2π)` — spectrally
/// accurate for smooth periodic integrands (used for the longitude direction
/// of spherical-harmonic grids).
pub fn periodic_trapezoid(n: usize) -> Rule1d {
    assert!(n >= 1);
    let h = 2.0 * PI / n as f64;
    Rule1d {
        nodes: (0..n).map(|j| j as f64 * h).collect(),
        weights: vec![h; n],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly_exactness(rule: &Rule1d, max_deg: usize, tol: f64) {
        for d in 0..=max_deg {
            let f: Vec<f64> = rule.nodes.iter().map(|x| x.powi(d as i32)).collect();
            let num = rule.integrate(&f);
            let exact = if d % 2 == 0 {
                2.0 / (d as f64 + 1.0)
            } else {
                0.0
            };
            assert!(
                (num - exact).abs() < tol,
                "degree {d}: got {num}, want {exact}"
            );
        }
    }

    #[test]
    fn clenshaw_curtis_polynomial_exactness() {
        // n-point CC is exact for degree n-1
        for n in [2usize, 3, 5, 8, 11, 16] {
            let rule = clenshaw_curtis(n);
            assert!((rule.weights.iter().sum::<f64>() - 2.0).abs() < 1e-13);
            poly_exactness(&rule, n - 1, 1e-12);
        }
    }

    #[test]
    fn gauss_legendre_polynomial_exactness() {
        // n-point GL is exact for degree 2n-1
        for n in [1usize, 2, 3, 5, 10, 17, 33] {
            let rule = gauss_legendre(n);
            assert!((rule.weights.iter().sum::<f64>() - 2.0).abs() < 1e-12);
            poly_exactness(&rule, 2 * n - 1, 1e-11);
        }
    }

    #[test]
    fn gauss_legendre_nodes_sorted_symmetric() {
        let rule = gauss_legendre(12);
        for w in rule.nodes.windows(2) {
            assert!(w[0] < w[1]);
        }
        for i in 0..12 {
            assert!((rule.nodes[i] + rule.nodes[11 - i]).abs() < 1e-13);
            assert!((rule.weights[i] - rule.weights[11 - i]).abs() < 1e-13);
        }
    }

    #[test]
    fn smooth_integrand_converges_spectrally() {
        // ∫_{-1}^{1} e^x dx = e - 1/e
        let exact = std::f64::consts::E - 1.0 / std::f64::consts::E;
        let coarse = {
            let r = clenshaw_curtis(6);
            let f: Vec<f64> = r.nodes.iter().map(|x| x.exp()).collect();
            (r.integrate(&f) - exact).abs()
        };
        let fine = {
            let r = clenshaw_curtis(12);
            let f: Vec<f64> = r.nodes.iter().map(|x| x.exp()).collect();
            (r.integrate(&f) - exact).abs()
        };
        assert!(fine < 1e-12);
        assert!(coarse < 1e-4);
    }

    #[test]
    fn mapped_rule_integrates_on_interval() {
        // ∫_2^5 x² dx = (125-8)/3 = 39
        let r = gauss_legendre(4).mapped_to(2.0, 5.0);
        let f: Vec<f64> = r.nodes.iter().map(|x| x * x).collect();
        assert!((r.integrate(&f) - 39.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_trapezoid_integrates_fourier_modes() {
        let r = periodic_trapezoid(16);
        // ∫ cos(kθ) dθ = 0 for 1 ≤ k < n, ∫ 1 = 2π
        let ones = vec![1.0; 16];
        assert!((r.integrate(&ones) - 2.0 * PI).abs() < 1e-12);
        for k in 1..8 {
            let f: Vec<f64> = r.nodes.iter().map(|t| (k as f64 * t).cos()).collect();
            assert!(r.integrate(&f).abs() < 1e-12, "mode {k}");
        }
    }
}
