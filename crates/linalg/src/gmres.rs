//! Restarted GMRES for matrix-free linear operators.
//!
//! The paper solves the Nyström-discretized boundary integral equation
//! (Eq. 3.5) with PETSc's GMRES, never assembling the dense operator: each
//! iteration applies the singular-quadrature matrix-vector product. The same
//! matrix-free design is used here via the [`LinearOperator`] trait. The
//! paper caps iterations at 30 in its scaling runs (§5.1); the cap is a
//! parameter of [`GmresOptions`].

use crate::mat::{axpy, dot, norm2};

/// A linear operator `y = A x` applied matrix-free.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Applies the operator: writes `A x` into `y`. Both slices have length
    /// [`LinearOperator::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// Blanket implementation so closures can be used as operators in tests.
pub struct FnOperator<F: Fn(&[f64], &mut [f64])> {
    dim: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64])> FnOperator<F> {
    /// Wraps a closure applying `A x` into an operator of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnOperator { dim, f }
    }
}

impl<F: Fn(&[f64], &mut [f64])> LinearOperator for FnOperator<F> {
    fn dim(&self) -> usize {
        self.dim
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.f)(x, y)
    }
}

impl LinearOperator for crate::mat::Mat {
    fn dim(&self) -> usize {
        assert_eq!(self.rows(), self.cols());
        self.rows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

/// Options controlling the GMRES iteration.
#[derive(Clone, Copy, Debug)]
pub struct GmresOptions {
    /// Relative residual tolerance ‖r‖/‖b‖.
    pub tol: f64,
    /// Absolute residual tolerance (secondary stop).
    pub atol: f64,
    /// Maximum total iterations (the paper's scaling runs use 30).
    pub max_iters: usize,
    /// Restart length (Krylov subspace dimension).
    pub restart: usize,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions { tol: 1e-10, atol: 1e-14, max_iters: 200, restart: 60 }
    }
}

/// Outcome of a GMRES solve.
#[derive(Clone, Copy, Debug)]
pub struct GmresResult {
    /// Total iterations performed.
    pub iterations: usize,
    /// Final relative residual estimate.
    pub rel_residual: f64,
    /// Whether the tolerance was met before hitting the iteration cap.
    pub converged: bool,
}

/// Solves `A x = b` with restarted GMRES, starting from `x` as initial guess
/// (often zero). `x` is updated in place.
pub fn gmres<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    opts: &GmresOptions,
) -> GmresResult {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let m = opts.restart.max(1);

    let mut total_iters = 0usize;
    let mut w = vec![0.0; n];
    // Krylov basis
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    // Hessenberg stored column-wise: h[j] has j+2 entries
    let mut hcols: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut cs = vec![0.0; m];
    let mut sn = vec![0.0; m];
    let mut g = vec![0.0; m + 1];

    let mut rel_res;
    'outer: loop {
        // r = b - A x
        a.apply(x, &mut w);
        let mut r = vec![0.0; n];
        for i in 0..n {
            r[i] = b[i] - w[i];
        }
        let rnorm = norm2(&r);
        rel_res = rnorm / bnorm;
        if rel_res <= opts.tol || rnorm <= opts.atol {
            return GmresResult { iterations: total_iters, rel_residual: rel_res, converged: true };
        }
        if total_iters >= opts.max_iters {
            break 'outer;
        }

        basis.clear();
        hcols.clear();
        for v in &mut g {
            *v = 0.0;
        }
        g[0] = rnorm;
        for v in r.iter_mut() {
            *v /= rnorm;
        }
        basis.push(r);

        let mut k_used = 0usize;
        for j in 0..m {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            a.apply(&basis[j], &mut w);
            // modified Gram–Schmidt
            let mut h = vec![0.0; j + 2];
            for (i, vi) in basis.iter().enumerate().take(j + 1) {
                let hij = dot(&w, vi);
                h[i] = hij;
                axpy(-hij, vi, &mut w);
            }
            let hlast = norm2(&w);
            h[j + 1] = hlast;
            // apply previous Givens rotations to the new column
            for i in 0..j {
                let t = cs[i] * h[i] + sn[i] * h[i + 1];
                h[i + 1] = -sn[i] * h[i] + cs[i] * h[i + 1];
                h[i] = t;
            }
            // new rotation
            let denom = h[j].hypot(h[j + 1]).max(f64::MIN_POSITIVE);
            cs[j] = h[j] / denom;
            sn[j] = h[j + 1] / denom;
            h[j] = denom;
            h[j + 1] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            hcols.push(h);
            k_used = j + 1;

            rel_res = g[j + 1].abs() / bnorm;
            let happy = hlast <= 1e-14 * bnorm;
            if rel_res <= opts.tol || g[j + 1].abs() <= opts.atol || happy {
                break;
            }
            if hlast == 0.0 {
                break;
            }
            let vnext: Vec<f64> = w.iter().map(|v| v / hlast).collect();
            basis.push(vnext);
        }

        // solve the small triangular system and update x
        if k_used > 0 {
            let mut y = vec![0.0; k_used];
            for i in (0..k_used).rev() {
                let mut acc = g[i];
                for jj in i + 1..k_used {
                    acc -= hcols[jj][i] * y[jj];
                }
                y[i] = acc / hcols[i][i];
            }
            for (j, yj) in y.iter().enumerate() {
                axpy(*yj, &basis[j], x);
            }
        }

        if rel_res <= opts.tol {
            return GmresResult { iterations: total_iters, rel_residual: rel_res, converged: true };
        }
        if total_iters >= opts.max_iters {
            break 'outer;
        }
    }

    // recompute true residual for the report
    a.apply(x, &mut w);
    let mut rn = 0.0;
    for i in 0..n {
        let d = b[i] - w[i];
        rn += d * d;
    }
    let rel = rn.sqrt() / bnorm;
    GmresResult { iterations: total_iters, rel_residual: rel, converged: rel <= opts.tol }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn solves_identity_in_one_iteration() {
        let a = Mat::identity(10);
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut x = vec![0.0; 10];
        let res = gmres(&a, &b, &mut x, &GmresOptions::default());
        assert!(res.converged);
        assert!(res.iterations <= 1);
        for (u, v) in x.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_spd_system() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50;
        let m = Mat::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
        // A = MᵀM + n I is SPD and well conditioned
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b = a.matvec(&xtrue);
        let mut x = vec![0.0; n];
        let res = gmres(&a, &b, &mut x, &GmresOptions { tol: 1e-12, ..Default::default() });
        assert!(res.converged, "residual {}", res.rel_residual);
        let err: f64 = x.iter().zip(&xtrue).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "err={err}");
    }

    #[test]
    fn restarting_still_converges() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 40;
        let mut a = Mat::from_fn(n, n, |_, _| rng.random_range(-0.3..0.3));
        for i in 0..n {
            a[(i, i)] += 2.0;
        }
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let mut x = vec![0.0; n];
        let res = gmres(
            &a,
            &b,
            &mut x,
            &GmresOptions { tol: 1e-10, restart: 5, max_iters: 500, ..Default::default() },
        );
        assert!(res.converged, "residual {}", res.rel_residual);
        // verify residual directly
        let mut r = a.matvec(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(norm2(&r) / norm2(&b) < 1e-9);
    }

    #[test]
    fn iteration_cap_respected() {
        // nearly singular system; cap must stop the iteration
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30;
        let a = Mat::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = gmres(
            &a,
            &b,
            &mut x,
            &GmresOptions { tol: 1e-16, atol: 0.0, max_iters: 7, restart: 4 },
        );
        assert!(res.iterations <= 7);
    }

    #[test]
    fn second_kind_operator_converges_fast() {
        // (I/2 + K) with small smooth K mimics the double-layer spectrum;
        // GMRES should converge in few iterations, as the paper relies on.
        let n = 80;
        let k = Mat::from_fn(n, n, |i, j| {
            0.05 * (-(((i as f64 - j as f64) / 8.0).powi(2))).exp() / n as f64 * 8.0
        });
        let mut a = k;
        for i in 0..n {
            a[(i, i)] += 0.5;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let mut x = vec![0.0; n];
        let res = gmres(&a, &b, &mut x, &GmresOptions { tol: 1e-12, ..Default::default() });
        assert!(res.converged);
        assert!(res.iterations < 30, "iterations {}", res.iterations);
    }

    #[test]
    fn fn_operator_wrapper_works() {
        // diagonal operator as a closure
        let d: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let dc = d.clone();
        let op = FnOperator::new(20, move |x: &[f64], y: &mut [f64]| {
            for i in 0..20 {
                y[i] = dc[i] * x[i];
            }
        });
        let b = vec![2.0; 20];
        let mut x = vec![0.0; 20];
        let res = gmres(&op, &b, &mut x, &GmresOptions::default());
        assert!(res.converged);
        for i in 0..20 {
            assert!((x[i] - 2.0 / d[i]).abs() < 1e-9);
        }
    }
}
