//! Restarted GMRES for matrix-free linear operators, with optional right
//! preconditioning.
//!
//! The paper solves the Nyström-discretized boundary integral equation
//! (Eq. 3.5) with PETSc's GMRES, never assembling the dense operator: each
//! iteration applies the singular-quadrature matrix-vector product. The same
//! matrix-free design is used here via the [`LinearOperator`] trait. The
//! paper caps iterations at 30 in its scaling runs (§5.1); the cap is a
//! parameter of [`GmresOptions`].
//!
//! [`gmres_right`] solves the right-preconditioned system `A M⁻¹ u = b`,
//! `x = M⁻¹ u`, where the preconditioner application `z = M⁻¹ v` is itself
//! a [`LinearOperator`]. Right preconditioning keeps the Arnoldi residual
//! equal to the *true* residual `b − A x`, so tolerances mean the same
//! thing with and without a preconditioner, and restarts recompute the true
//! residual so the iteration is restart-safe.

use crate::mat::{axpy, dot, norm2};

/// A linear operator `y = A x` applied matrix-free.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Applies the operator: writes `A x` into `y`. Both slices have length
    /// [`LinearOperator::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// Blanket implementation so closures can be used as operators in tests.
pub struct FnOperator<F: Fn(&[f64], &mut [f64])> {
    dim: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64])> FnOperator<F> {
    /// Wraps a closure applying `A x` into an operator of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnOperator { dim, f }
    }
}

impl<F: Fn(&[f64], &mut [f64])> LinearOperator for FnOperator<F> {
    fn dim(&self) -> usize {
        self.dim
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.f)(x, y)
    }
}

impl LinearOperator for crate::mat::Mat {
    fn dim(&self) -> usize {
        assert_eq!(self.rows(), self.cols());
        self.rows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

/// Options controlling the GMRES iteration.
#[derive(Clone, Copy, Debug)]
pub struct GmresOptions {
    /// Relative residual tolerance ‖r‖/‖b‖.
    pub tol: f64,
    /// Absolute residual tolerance (secondary stop).
    pub atol: f64,
    /// Maximum total iterations (the paper's scaling runs use 30).
    pub max_iters: usize,
    /// Restart length (Krylov subspace dimension).
    pub restart: usize,
    /// Stagnation cutoff: stop early when the geometric mean per-iteration
    /// residual reduction over the last [`STALL_WINDOW`] iterations is
    /// worse than this ratio (e.g. `0.95`). `0` disables the check.
    ///
    /// Discretizations whose right-hand side carries content beyond the
    /// quadrature's resolution (near-wall cells in the vessel solve) hit a
    /// residual *floor* above any practical tolerance; without this check
    /// the iteration burns its full cap every solve for no improvement.
    /// A healthy solve contracts far faster than the cutoff, so the check
    /// does not fire before genuine convergence.
    pub stall_ratio: f64,
}

/// Window (iterations) over which [`GmresOptions::stall_ratio`] measures
/// the residual reduction rate.
pub const STALL_WINDOW: usize = 6;

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            tol: 1e-10,
            atol: 1e-14,
            max_iters: 200,
            restart: 60,
            stall_ratio: 0.0,
        }
    }
}

/// Outcome of a GMRES solve.
#[derive(Clone, Copy, Debug)]
pub struct GmresResult {
    /// Total iterations performed.
    pub iterations: usize,
    /// Final relative residual estimate.
    pub rel_residual: f64,
    /// Whether the tolerance was met before hitting the iteration cap.
    pub converged: bool,
    /// Whether the iteration was cut short by the stagnation check
    /// ([`GmresOptions::stall_ratio`]): the residual had stopped improving,
    /// so the returned solution is at the attainable floor.
    pub stalled: bool,
}

/// Solves `A x = b` with restarted GMRES, starting from `x` as initial guess
/// (often zero). `x` is updated in place.
pub fn gmres<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    opts: &GmresOptions,
) -> GmresResult {
    gmres_impl(a, None, b, x, opts)
}

/// Solves `A x = b` with restarted, **right-preconditioned** GMRES.
///
/// `m_inv` applies the preconditioner inverse `z = M⁻¹ v`; GMRES iterates
/// on `A M⁻¹ u = b` and recovers `x += M⁻¹ (V y)` at the end of every
/// restart cycle (one extra preconditioner application per cycle instead of
/// storing a second Krylov basis). The initial guess `x` is used as-is —
/// the first residual is the true `b − A x` — so warm starts compose with
/// preconditioning. With a good `M ≈ A` the iteration count drops sharply;
/// with `M = I` the result matches [`gmres`] exactly.
pub fn gmres_right<A: LinearOperator + ?Sized, M: LinearOperator + ?Sized>(
    a: &A,
    m_inv: &M,
    b: &[f64],
    x: &mut [f64],
    opts: &GmresOptions,
) -> GmresResult {
    assert_eq!(m_inv.dim(), a.dim(), "preconditioner dimension mismatch");
    gmres_impl(a, Some(&DynOp(m_inv)), b, x, opts)
}

/// Object-safe adapter so `gmres_impl` can take `Option<&dyn …>` without
/// monomorphizing the whole solver over the preconditioner type.
struct DynOp<'a, M: LinearOperator + ?Sized>(&'a M);

impl<M: LinearOperator + ?Sized> LinearOperator for DynOp<'_, M> {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.0.apply(x, y)
    }
}

fn gmres_impl<A: LinearOperator + ?Sized>(
    a: &A,
    precond: Option<&dyn LinearOperator>,
    b: &[f64],
    x: &mut [f64],
    opts: &GmresOptions,
) -> GmresResult {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let m = opts.restart.max(1);

    let mut total_iters = 0usize;
    let mut w = vec![0.0; n];
    // preconditioned direction `z = M⁻¹ v` (unused without a preconditioner)
    let mut z = vec![0.0; if precond.is_some() { n } else { 0 }];
    // Krylov basis
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    // Hessenberg stored column-wise: h[j] has j+2 entries
    let mut hcols: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut cs = vec![0.0; m];
    let mut sn = vec![0.0; m];
    let mut g = vec![0.0; m + 1];

    let mut rel_res;
    // per-iteration residual history for the stagnation check
    let mut hist: Vec<f64> = Vec::new();
    let mut stalled = false;
    // true residual and iteration count at the previous restart, for the
    // cross-cycle stagnation check (the Arnoldi estimate is monotone by
    // construction and can keep "improving" while the true residual sits
    // at the attainable floor; only restart boundaries expose the truth)
    let mut prev_cycle: Option<(f64, usize)> = None;
    'outer: loop {
        // r = b - A x
        a.apply(x, &mut w);
        let mut r = vec![0.0; n];
        for i in 0..n {
            r[i] = b[i] - w[i];
        }
        let rnorm = norm2(&r);
        rel_res = rnorm / bnorm;
        if rel_res <= opts.tol || rnorm <= opts.atol {
            return GmresResult {
                iterations: total_iters,
                rel_residual: rel_res,
                converged: true,
                stalled: false,
            };
        }
        if total_iters >= opts.max_iters {
            break 'outer;
        }
        if opts.stall_ratio > 0.0 {
            if let Some((prev_rnorm, prev_iters)) = prev_cycle {
                let done = (total_iters - prev_iters).max(1);
                if rnorm > prev_rnorm * opts.stall_ratio.powi(done as i32) {
                    stalled = true;
                    break 'outer;
                }
            }
            prev_cycle = Some((rnorm, total_iters));
        }

        basis.clear();
        hcols.clear();
        // the windowed check below must only compare estimates from the
        // same cycle: post-restart estimates are re-seeded from the true
        // residual, which can sit above the previous cycle's (monotone,
        // optimistic) Arnoldi estimates and would trip a false stall
        hist.clear();
        g.fill(0.0);
        g[0] = rnorm;
        for v in r.iter_mut() {
            *v /= rnorm;
        }
        basis.push(r);

        let mut k_used = 0usize;
        for j in 0..m {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            match precond {
                Some(m) => {
                    m.apply(&basis[j], &mut z);
                    a.apply(&z, &mut w);
                }
                None => a.apply(&basis[j], &mut w),
            }
            // modified Gram–Schmidt
            let mut h = vec![0.0; j + 2];
            for (i, vi) in basis.iter().enumerate().take(j + 1) {
                let hij = dot(&w, vi);
                h[i] = hij;
                axpy(-hij, vi, &mut w);
            }
            let hlast = norm2(&w);
            h[j + 1] = hlast;
            // apply previous Givens rotations to the new column
            for i in 0..j {
                let t = cs[i] * h[i] + sn[i] * h[i + 1];
                h[i + 1] = -sn[i] * h[i] + cs[i] * h[i + 1];
                h[i] = t;
            }
            // new rotation
            let denom = h[j].hypot(h[j + 1]).max(f64::MIN_POSITIVE);
            cs[j] = h[j] / denom;
            sn[j] = h[j + 1] / denom;
            h[j] = denom;
            h[j + 1] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            hcols.push(h);
            k_used = j + 1;

            rel_res = g[j + 1].abs() / bnorm;
            let happy = hlast <= 1e-14 * bnorm;
            if rel_res <= opts.tol || g[j + 1].abs() <= opts.atol || happy {
                break;
            }
            hist.push(rel_res);
            if opts.stall_ratio > 0.0 && hist.len() > STALL_WINDOW {
                let old = hist[hist.len() - 1 - STALL_WINDOW];
                if rel_res > old * opts.stall_ratio.powi(STALL_WINDOW as i32) {
                    stalled = true;
                    break;
                }
            }
            if hlast == 0.0 {
                break;
            }
            let vnext: Vec<f64> = w.iter().map(|v| v / hlast).collect();
            basis.push(vnext);
        }

        // solve the small triangular system and update x
        if k_used > 0 {
            let mut y = vec![0.0; k_used];
            for i in (0..k_used).rev() {
                let mut acc = g[i];
                for jj in i + 1..k_used {
                    acc -= hcols[jj][i] * y[jj];
                }
                y[i] = acc / hcols[i][i];
            }
            match precond {
                Some(m) => {
                    // x += M⁻¹ (V y): one preconditioner application per
                    // cycle instead of storing the preconditioned basis
                    let mut vy = vec![0.0; n];
                    for (j, yj) in y.iter().enumerate() {
                        axpy(*yj, &basis[j], &mut vy);
                    }
                    m.apply(&vy, &mut z);
                    axpy(1.0, &z, x);
                }
                None => {
                    for (j, yj) in y.iter().enumerate() {
                        axpy(*yj, &basis[j], x);
                    }
                }
            }
        }

        if rel_res <= opts.tol {
            return GmresResult {
                iterations: total_iters,
                rel_residual: rel_res,
                converged: true,
                stalled: false,
            };
        }
        if stalled || total_iters >= opts.max_iters {
            break 'outer;
        }
    }

    // recompute true residual for the report
    a.apply(x, &mut w);
    let mut rn = 0.0;
    for i in 0..n {
        let d = b[i] - w[i];
        rn += d * d;
    }
    let rel = rn.sqrt() / bnorm;
    GmresResult {
        iterations: total_iters,
        rel_residual: rel,
        converged: rel <= opts.tol,
        stalled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn solves_identity_in_one_iteration() {
        let a = Mat::identity(10);
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut x = vec![0.0; 10];
        let res = gmres(&a, &b, &mut x, &GmresOptions::default());
        assert!(res.converged);
        assert!(res.iterations <= 1);
        for (u, v) in x.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_spd_system() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50;
        let m = Mat::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
        // A = MᵀM + n I is SPD and well conditioned
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b = a.matvec(&xtrue);
        let mut x = vec![0.0; n];
        let res = gmres(
            &a,
            &b,
            &mut x,
            &GmresOptions {
                tol: 1e-12,
                ..Default::default()
            },
        );
        assert!(res.converged, "residual {}", res.rel_residual);
        let err: f64 = x
            .iter()
            .zip(&xtrue)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-8, "err={err}");
    }

    #[test]
    fn restarting_still_converges() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 40;
        let mut a = Mat::from_fn(n, n, |_, _| rng.random_range(-0.3..0.3));
        for i in 0..n {
            a[(i, i)] += 2.0;
        }
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let mut x = vec![0.0; n];
        let res = gmres(
            &a,
            &b,
            &mut x,
            &GmresOptions {
                tol: 1e-10,
                restart: 5,
                max_iters: 500,
                ..Default::default()
            },
        );
        assert!(res.converged, "residual {}", res.rel_residual);
        // verify residual directly
        let mut r = a.matvec(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(norm2(&r) / norm2(&b) < 1e-9);
    }

    #[test]
    fn iteration_cap_respected() {
        // nearly singular system; cap must stop the iteration
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30;
        let a = Mat::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = gmres(
            &a,
            &b,
            &mut x,
            &GmresOptions {
                tol: 1e-16,
                atol: 0.0,
                max_iters: 7,
                restart: 4,
                stall_ratio: 0.0,
            },
        );
        assert!(res.iterations <= 7);
    }

    #[test]
    fn second_kind_operator_converges_fast() {
        // (I/2 + K) with small smooth K mimics the double-layer spectrum;
        // GMRES should converge in few iterations, as the paper relies on.
        let n = 80;
        let k = Mat::from_fn(n, n, |i, j| {
            0.05 * (-(((i as f64 - j as f64) / 8.0).powi(2))).exp() / n as f64 * 8.0
        });
        let mut a = k;
        for i in 0..n {
            a[(i, i)] += 0.5;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let mut x = vec![0.0; n];
        let res = gmres(
            &a,
            &b,
            &mut x,
            &GmresOptions {
                tol: 1e-12,
                ..Default::default()
            },
        );
        assert!(res.converged);
        assert!(res.iterations < 30, "iterations {}", res.iterations);
    }

    /// Ill-conditioned diagonal-dominant operator shared by the
    /// preconditioning tests: condition number ~ 1e4.
    fn ill_conditioned(n: usize) -> (Mat, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(21);
        let mut a = Mat::from_fn(n, n, |_, _| 0.01 * rng.random_range(-1.0..1.0));
        let mut diag = vec![0.0; n];
        for i in 0..n {
            // diagonal spread over four orders of magnitude
            let d = 10f64.powf(4.0 * i as f64 / (n - 1) as f64);
            a[(i, i)] += d;
            diag[i] = d;
        }
        (a, diag)
    }

    #[test]
    fn right_preconditioning_cuts_iterations() {
        let n = 60;
        let (a, diag) = ill_conditioned(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin() + 1.5).collect();
        let opts = GmresOptions {
            tol: 1e-10,
            max_iters: 500,
            restart: 500,
            ..Default::default()
        };

        let mut x_plain = vec![0.0; n];
        let plain = gmres(&a, &b, &mut x_plain, &opts);
        assert!(plain.converged, "plain residual {}", plain.rel_residual);

        // Jacobi preconditioner: M⁻¹ = diag(A)⁻¹
        let m_inv = FnOperator::new(n, move |v: &[f64], y: &mut [f64]| {
            for i in 0..v.len() {
                y[i] = v[i] / diag[i];
            }
        });
        let mut x_pre = vec![0.0; n];
        let pre = gmres_right(&a, &m_inv, &b, &mut x_pre, &opts);
        assert!(
            pre.converged,
            "preconditioned residual {}",
            pre.rel_residual
        );
        assert!(
            pre.iterations * 2 < plain.iterations,
            "preconditioned {} vs plain {} iterations",
            pre.iterations,
            plain.iterations
        );
        // both converge to the same solution of the *unpreconditioned* system
        for (u, v) in x_pre.iter().zip(&x_plain) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn preconditioned_restart_cycles_stay_correct() {
        // short restart forces several cycles; the true-residual recompute
        // at each restart must keep the preconditioned iteration consistent
        let n = 50;
        let (a, diag) = ill_conditioned(n);
        let b: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 2.0).collect();
        let m_inv = FnOperator::new(n, move |v: &[f64], y: &mut [f64]| {
            for i in 0..v.len() {
                y[i] = v[i] / diag[i];
            }
        });
        let mut x = vec![0.0; n];
        let res = gmres_right(
            &a,
            &m_inv,
            &b,
            &mut x,
            &GmresOptions {
                tol: 1e-10,
                restart: 4,
                max_iters: 400,
                ..Default::default()
            },
        );
        assert!(res.converged, "residual {}", res.rel_residual);
        // verify the true residual directly
        let mut r = a.matvec(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(
            norm2(&r) / norm2(&b) < 1e-9,
            "true residual {}",
            norm2(&r) / norm2(&b)
        );
    }

    #[test]
    fn identity_preconditioner_matches_plain_gmres() {
        let n = 40;
        let (a, _) = ill_conditioned(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        let opts = GmresOptions {
            tol: 1e-11,
            max_iters: 300,
            restart: 30,
            ..Default::default()
        };
        let ident = FnOperator::new(n, |v: &[f64], y: &mut [f64]| y.copy_from_slice(v));
        let mut x1 = vec![0.0; n];
        let mut x2 = vec![0.0; n];
        let r1 = gmres(&a, &b, &mut x1, &opts);
        let r2 = gmres_right(&a, &ident, &b, &mut x2, &opts);
        assert_eq!(r1.iterations, r2.iterations);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn stagnation_check_stops_floored_iteration() {
        // continuously spread ill-conditioned spectrum: after the easy
        // modes, the per-iteration reduction collapses far below the
        // healthy rate and the stall check must stop the grind early
        let n = 120;
        let a = Mat::from_fn(n, n, |i, j| {
            if i == j {
                // geometric spread 1e-6 … 1
                1e-6_f64.powf(1.0 - i as f64 / (n - 1) as f64)
            } else {
                0.0
            }
        });
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let opts = GmresOptions {
            tol: 1e-13,
            atol: 0.0,
            max_iters: 1000,
            restart: 25,
            stall_ratio: 0.9,
        };
        let res = gmres(&a, &b, &mut x, &opts);
        assert!(res.stalled, "expected stall, got {res:?}");
        assert!(!res.converged);
        assert!(
            res.iterations < 200,
            "stall check should fire early, took {}",
            res.iterations
        );
        // a healthy solve must NOT trip the check
        let mut a2 = Mat::identity(n);
        a2[(0, 0)] = 2.0;
        let mut x2 = vec![0.0; n];
        let res2 = gmres(&a2, &b, &mut x2, &opts);
        assert!(res2.converged && !res2.stalled, "{res2:?}");
    }

    #[test]
    fn zero_rhs_early_exits_without_iterating() {
        let a = Mat::identity(12);
        let b = vec![0.0; 12];
        let mut x = vec![0.0; 12];
        let res = gmres(&a, &b, &mut x, &GmresOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn exact_initial_guess_early_exits() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 25;
        let mut a = Mat::from_fn(n, n, |_, _| rng.random_range(-0.2..0.2));
        for i in 0..n {
            a[(i, i)] += 3.0;
        }
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        let b = a.matvec(&xtrue);
        let mut x = xtrue.clone();
        let res = gmres(&a, &b, &mut x, &GmresOptions::default());
        assert!(res.converged);
        assert_eq!(
            res.iterations, 0,
            "warm start at the solution must not iterate"
        );
        assert_eq!(x, xtrue);
    }

    #[test]
    fn happy_breakdown_on_low_degree_operator() {
        // A = I ⇒ the Krylov space is exhausted after one vector; the
        // `hlast ≈ 0` breakdown path must still return the exact solution
        let n = 15;
        let a = Mat::identity(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut x = vec![0.0; n];
        let res = gmres(
            &a,
            &b,
            &mut x,
            &GmresOptions {
                tol: 1e-15,
                ..Default::default()
            },
        );
        assert!(res.converged);
        assert!(res.iterations <= 1, "iterations {}", res.iterations);
        for (u, v) in x.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn fn_operator_wrapper_works() {
        // diagonal operator as a closure
        let d: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let dc = d.clone();
        let op = FnOperator::new(20, move |x: &[f64], y: &mut [f64]| {
            for i in 0..20 {
                y[i] = dc[i] * x[i];
            }
        });
        let b = vec![2.0; 20];
        let mut x = vec![0.0; 20];
        let res = gmres(&op, &b, &mut x, &GmresOptions::default());
        assert!(res.converged);
        for i in 0..20 {
            assert!((x[i] - 2.0 / d[i]).abs() < 1e-9);
        }
    }
}
