//! One-sided Jacobi SVD and regularized pseudo-inverse.
//!
//! The kernel-independent FMM builds its equivalent-density maps by inverting
//! ill-conditioned check-surface → equivalent-surface kernel matrices; PVFMM
//! does this with a truncated/regularized SVD, which we reproduce here.
//! One-sided Jacobi is simple, numerically robust, and accurate for the
//! small-to-medium matrices involved (a few hundred on a side).

use crate::mat::Mat;

/// Result of a singular value decomposition `A = U Σ Vᵀ`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m × r` with `r = min(m, n)` columns.
    pub u: Mat,
    /// Singular values in non-increasing order, length `r`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × r` (columns are the right vectors).
    pub v: Mat,
}

impl Svd {
    /// Computes the thin SVD of `a` using one-sided Jacobi rotations.
    ///
    /// For `m < n` the decomposition is computed on the transpose and the
    /// factors are swapped, so any shape is accepted.
    pub fn new(a: &Mat) -> Svd {
        if a.rows() >= a.cols() {
            Self::tall(a)
        } else {
            let s = Self::tall(&a.transpose());
            Svd {
                u: s.v,
                sigma: s.sigma,
                v: s.u,
            }
        }
    }

    /// One-sided Jacobi on a tall (m ≥ n) matrix: orthogonalize columns of a
    /// working copy `W = A V` by plane rotations; on convergence the column
    /// norms are the singular values.
    fn tall(a: &Mat) -> Svd {
        let (m, n) = (a.rows(), a.cols());
        debug_assert!(m >= n);
        // work on the transpose so that "columns" of A are contiguous rows
        let mut wt = a.transpose(); // n × m, row i is column i of A
        let mut vt = Mat::identity(n); // accumulates Vᵀ rows

        let eps = 1e-15_f64;
        let max_sweeps = 60;
        for _sweep in 0..max_sweeps {
            let mut off = 0.0_f64;
            let mut denom = 0.0_f64;
            for p in 0..n {
                for q in p + 1..n {
                    // gram entries over the two rows of wt
                    let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                    {
                        let rp = wt.row(p);
                        let rq = wt.row(q);
                        for k in 0..m {
                            app += rp[k] * rp[k];
                            aqq += rq[k] * rq[k];
                            apq += rp[k] * rq[k];
                        }
                    }
                    off += apq * apq;
                    denom += app * aqq;
                    if apq.abs() <= eps * (app * aqq).sqrt() {
                        continue;
                    }
                    // Jacobi rotation annihilating the (p,q) Gram entry
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    // rotate rows p and q of wt and vt
                    rotate_rows(&mut wt, p, q, c, s);
                    rotate_rows(&mut vt, p, q, c, s);
                }
            }
            if off <= eps * eps * denom.max(f64::MIN_POSITIVE) {
                break;
            }
        }

        // singular values = row norms of wt; sort descending
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = (0..n)
            .map(|i| wt.row(i).iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect();
        order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

        let mut sigma = Vec::with_capacity(n);
        let mut u = Mat::zeros(m, n);
        let mut v = Mat::zeros(n, n);
        for (col, &i) in order.iter().enumerate() {
            let s = norms[i];
            sigma.push(s);
            if s > 0.0 {
                for k in 0..m {
                    u[(k, col)] = wt[(i, k)] / s;
                }
            }
            for k in 0..n {
                v[(k, col)] = vt[(i, k)];
            }
        }
        Svd { u, sigma, v }
    }

    /// Largest singular value.
    pub fn sigma_max(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }

    /// Builds the truncated pseudo-inverse `A⁺ = V Σ⁺ Uᵀ`, zeroing singular
    /// values below `rel_tol * σ_max` (PVFMM-style regularization for the
    /// equivalent-density solve).
    pub fn pseudo_inverse(&self, rel_tol: f64) -> Mat {
        let r = self.sigma.len();
        let cutoff = self.sigma_max() * rel_tol;
        // pinv = V * diag(1/sigma) * Uᵀ computed as (n × r)(r × m)
        let n = self.v.rows();
        let m = self.u.rows();
        let mut vs = Mat::zeros(n, r);
        for j in 0..r {
            let inv = if self.sigma[j] > cutoff && self.sigma[j] > 0.0 {
                1.0 / self.sigma[j]
            } else {
                0.0
            };
            for i in 0..n {
                vs[(i, j)] = self.v[(i, j)] * inv;
            }
        }
        let mut ut = Mat::zeros(r, m);
        for i in 0..m {
            for j in 0..r {
                ut[(j, i)] = self.u[(i, j)];
            }
        }
        vs.matmul(&ut)
    }

    /// Solves the regularized least-squares problem `min ‖Ax − b‖` via the
    /// truncated SVD, without forming the pseudo-inverse matrix.
    pub fn solve_regularized(&self, b: &[f64], rel_tol: f64) -> Vec<f64> {
        assert_eq!(b.len(), self.u.rows());
        let cutoff = self.sigma_max() * rel_tol;
        let r = self.sigma.len();
        let n = self.v.rows();
        let mut x = vec![0.0; n];
        for j in 0..r {
            if self.sigma[j] <= cutoff || self.sigma[j] == 0.0 {
                continue;
            }
            let mut uj_b = 0.0;
            for i in 0..b.len() {
                uj_b += self.u[(i, j)] * b[i];
            }
            let c = uj_b / self.sigma[j];
            for i in 0..n {
                x[i] += c * self.v[(i, j)];
            }
        }
        x
    }
}

#[inline]
fn rotate_rows(m: &mut Mat, p: usize, q: usize, c: f64, s: f64) {
    let cols = m.cols();
    let (pr, qr) = if p < q { (p, q) } else { (q, p) };
    debug_assert!(pr == p);
    // split_at_mut to borrow both rows
    let data = m.data_mut();
    let (first, second) = data.split_at_mut(qr * cols);
    let rowp = &mut first[pr * cols..pr * cols + cols];
    let rowq = &mut second[..cols];
    for k in 0..cols {
        let a = rowp[k];
        let b = rowq[k];
        rowp[k] = c * a - s * b;
        rowq[k] = s * a + c * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn reconstruct(svd: &Svd) -> Mat {
        let r = svd.sigma.len();
        let mut us = svd.u.clone();
        for i in 0..us.rows() {
            for j in 0..r {
                us[(i, j)] *= svd.sigma[j];
            }
        }
        us.matmul(&svd.v.transpose())
    }

    #[test]
    fn svd_reconstructs_random_matrices() {
        let mut rng = StdRng::seed_from_u64(42);
        for (m, n) in [(5usize, 5usize), (12, 7), (7, 12), (30, 30), (64, 20)] {
            let a = Mat::from_fn(m, n, |_, _| rng.random_range(-1.0..1.0));
            let svd = Svd::new(&a);
            let rec = reconstruct(&svd);
            let err = rec.add_scaled(&a, -1.0).frobenius_norm() / a.frobenius_norm();
            assert!(err < 1e-11, "({m},{n}) err={err}");
            // singular values sorted descending
            for w in svd.sigma.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mat::from_fn(20, 9, |_, _| rng.random_range(-1.0..1.0));
        let svd = Svd::new(&a);
        let utu = svd.u.transpose().matmul(&svd.u);
        let vtv = svd.v.transpose().matmul(&svd.v);
        let r = svd.sigma.len();
        let err_u = utu.add_scaled(&Mat::identity(r), -1.0).frobenius_norm();
        let err_v = vtv.add_scaled(&Mat::identity(r), -1.0).frobenius_norm();
        assert!(err_u < 1e-11, "UᵀU err {err_u}");
        assert!(err_v < 1e-11, "VᵀV err {err_v}");
    }

    #[test]
    fn pseudo_inverse_of_well_conditioned_is_inverse() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 10;
        let mut a = Mat::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
        for i in 0..n {
            a[(i, i)] += 5.0;
        }
        let pinv = Svd::new(&a).pseudo_inverse(1e-13);
        let prod = a.matmul(&pinv);
        let err = prod.add_scaled(&Mat::identity(n), -1.0).frobenius_norm();
        assert!(err < 1e-10, "err={err}");
    }

    #[test]
    fn truncation_regularizes_rank_deficient() {
        // rank-1 matrix: pinv solve must not blow up
        let a = Mat::from_fn(6, 4, |i, j| ((i + 1) as f64) * ((j + 1) as f64));
        let svd = Svd::new(&a);
        assert!(svd.sigma[1] < 1e-10 * svd.sigma[0]);
        let b = vec![1.0; 6];
        let x = svd.solve_regularized(&b, 1e-8);
        for v in &x {
            assert!(v.is_finite() && v.abs() < 10.0);
        }
        // the residual should be the projection error only
        let r = {
            let mut r = a.matvec(&x);
            for (ri, bi) in r.iter_mut().zip(&b) {
                *ri -= bi;
            }
            r
        };
        // Ax is the best rank-1 approximation of b in range(A)
        let g = a.matvec_t(&r);
        let gn = g.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(gn < 1e-9, "normal-equation residual {gn}");
    }

    #[test]
    fn solve_regularized_matches_pinv_matvec() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Mat::from_fn(15, 8, |_, _| rng.random_range(-1.0..1.0));
        let b: Vec<f64> = (0..15).map(|i| (i as f64).sin()).collect();
        let svd = Svd::new(&a);
        let x1 = svd.solve_regularized(&b, 1e-12);
        let x2 = svd.pseudo_inverse(1e-12).matvec(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
