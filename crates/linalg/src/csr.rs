//! Compressed-sparse-row matrices for the contact coupling system.
//!
//! The collision NCP assembles the coupling matrix `B` ("the change in the
//! jth contact volume induced by the kth contact force") from per-mesh
//! contributions. At dense packings the hash-map-of-triplets it used to
//! live in dominates the LCP matvec; this module provides the replacement:
//! a deterministic CSR build from *sorted* triplets plus a row-parallel
//! matvec whose per-row accumulation order is fixed by the stored column
//! order — so the result is bit-identical across runs and instances
//! (the restart/determinism guarantee the driver tests pin).

/// A sparse matrix in compressed-sparse-row layout.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s entries (len `rows+1`).
    row_ptr: Vec<usize>,
    /// Column of each stored entry, ascending within each row.
    col_idx: Vec<usize>,
    /// Value of each stored entry.
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// An empty `rows × cols` matrix (no stored entries).
    pub fn zeros(rows: usize, cols: usize) -> CsrMatrix {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds from triplets `(row, col, value)` that are already sorted by
    /// `(row, col)`. Duplicate coordinates are summed **in slice order**,
    /// which is what makes the assembly deterministic: the caller fixes a
    /// canonical contribution order (e.g. ascending mesh id) and the sum
    /// for every entry is evaluated in exactly that order.
    ///
    /// # Panics
    /// Panics if the triplets are not sorted by `(row, col)` or an index is
    /// out of range.
    pub fn from_sorted_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> CsrMatrix {
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut vals: Vec<f64> = Vec::with_capacity(triplets.len());
        let mut last: Option<(usize, usize)> = None;
        for &(r, c, v) in triplets {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of {rows}×{cols}"
            );
            if let Some(prev) = last {
                assert!(prev <= (r, c), "triplets not sorted by (row, col)");
                if prev == (r, c) {
                    *vals.last_mut().unwrap() += v;
                    continue;
                }
            }
            last = Some((r, c));
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            vals.push(v);
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The stored entries of row `i` as `(columns, values)` slices.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.vals[span])
    }

    /// `y = A x`. Rows are independent, so the fill is row-parallel; within
    /// a row the accumulation runs in stored (ascending-column) order,
    /// keeping the floating-point result independent of thread count.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        // row blocks amortize the dispatch; every output row is written by
        // exactly one dispatched block, so the fill is deterministic at any
        // thread count
        const BLK: usize = 64;
        rayon::par::chunks_mut(y, BLK, |bi, block| {
            for (r, yi) in block.iter_mut().enumerate() {
                let i = bi * BLK + r;
                let (cols, vals) = (
                    &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]],
                    &self.vals[self.row_ptr[i]..self.row_ptr[i + 1]],
                );
                let mut acc = 0.0;
                for (c, v) in cols.iter().zip(vals) {
                    acc += v * x[*c];
                }
                *yi = acc;
            }
        });
    }

    /// `A x` as a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Densifies into a row-major `rows × cols` buffer (tests/debugging).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.rows * self.cols];
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                out[i * self.cols + c] = *v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn builds_from_sorted_triplets_and_sums_duplicates() {
        // duplicate (0,1) entries sum in slice order; (1,2) single
        let t = [(0, 1, 1.0), (0, 1, 2.0), (1, 0, -1.0), (1, 2, 4.0)];
        let a = CsrMatrix::from_sorted_triplets(2, 3, &t);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.to_dense(), vec![0.0, 3.0, 0.0, -1.0, 0.0, 4.0]);
        let (cols, vals) = a.row(1);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[-1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn rejects_unsorted_triplets() {
        let t = [(1, 0, 1.0), (0, 0, 1.0)];
        CsrMatrix::from_sorted_triplets(2, 2, &t);
    }

    #[test]
    fn matvec_matches_dense_on_random_matrices() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let rows = rng.random_range(1..30);
            let cols = rng.random_range(1..30);
            let mut triplets: Vec<(usize, usize, f64)> = (0..rng.random_range(0..120))
                .map(|_| {
                    (
                        rng.random_range(0..rows),
                        rng.random_range(0..cols),
                        rng.random_range(-1.0..1.0),
                    )
                })
                .collect();
            triplets.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
            let a = CsrMatrix::from_sorted_triplets(rows, cols, &triplets);
            let x: Vec<f64> = (0..cols).map(|_| rng.random_range(-1.0..1.0)).collect();
            let y = a.matvec(&x);
            let dense = a.to_dense();
            for i in 0..rows {
                let want: f64 = (0..cols).map(|j| dense[i * cols + j] * x[j]).sum();
                assert!((y[i] - want).abs() < 1e-12, "row {i}: {} vs {want}", y[i]);
            }
        }
    }

    #[test]
    fn empty_and_zero_row_shapes() {
        let a = CsrMatrix::zeros(3, 4);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.matvec(&[1.0; 4]), vec![0.0; 3]);
        // a matrix whose middle row is empty
        let t = [(0, 0, 1.0), (2, 3, 2.0)];
        let a = CsrMatrix::from_sorted_triplets(3, 4, &t);
        assert_eq!(a.matvec(&[1.0; 4]), vec![1.0, 0.0, 2.0]);
    }
}
