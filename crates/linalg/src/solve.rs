//! Direct dense solvers: LU with partial pivoting and Householder QR.
//!
//! These replace the LAPACK routines (via MKL) used by the reference
//! implementation for small dense blocks: Newton systems in the closest-point
//! search, polynomial fitting of boundary patches, and the per-level
//! pseudo-inverse solves inside the kernel-independent FMM.

use crate::mat::Mat;

/// LU factorization with partial pivoting, `P A = L U`.
#[derive(Clone, Debug)]
pub struct Lu {
    lu: Mat,
    piv: Vec<usize>,
    /// Sign of the permutation (+1/−1); 0 if the matrix is singular.
    sign: f64,
}

impl Lu {
    /// Factors a square matrix. Returns `None` when a pivot underflows
    /// (numerically singular matrix).
    pub fn new(a: &Mat) -> Option<Lu> {
        assert_eq!(a.rows(), a.cols(), "Lu::new: matrix must be square");
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // pivot search
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < f64::MIN_POSITIVE * 4.0 {
                return None;
            }
            if p != k {
                piv.swap(p, k);
                sign = -sign;
                for j in 0..n {
                    let t = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = t;
                }
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in k + 1..n {
                        let v = lu[(k, j)];
                        lu[(i, j)] -= m * v;
                    }
                }
            }
        }
        Some(Lu { lu, piv, sign })
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n);
        // apply permutation
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // forward substitution with unit lower triangle
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // back substitution
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    pub fn solve_mat(&self, b: &Mat) -> Mat {
        let n = self.lu.rows();
        assert_eq!(b.rows(), n);
        let mut x = Mat::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let sol = self.solve(&col);
            for i in 0..n {
                x[(i, j)] = sol[i];
            }
        }
        x
    }

    /// Matrix inverse (column-by-column solve against the identity).
    pub fn inverse(&self) -> Mat {
        self.solve_mat(&Mat::identity(self.lu.rows()))
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// Used for least-squares solves, e.g. fitting tensor-product polynomial
/// patches through projected sample points.
#[derive(Clone, Debug)]
pub struct Qr {
    qr: Mat,
    // Householder scalar for each reflector.
    beta: Vec<f64>,
    rdiag: Vec<f64>,
}

impl Qr {
    /// Factors the matrix. Requires `rows ≥ cols`.
    pub fn new(a: &Mat) -> Qr {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "Qr::new: requires rows >= cols");
        let mut qr = a.clone();
        let mut beta = vec![0.0; n];
        let mut rdiag = vec![0.0; n];
        for k in 0..n {
            // norm of column k below the diagonal
            let mut nrm: f64 = 0.0;
            for i in k..m {
                nrm = nrm.hypot(qr[(i, k)]);
            }
            if nrm == 0.0 {
                beta[k] = 0.0;
                rdiag[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -nrm } else { nrm };
            // v = x - alpha e1, stored in place; v_k adjusted
            qr[(k, k)] -= alpha;
            // beta = 2 / (vᵀv)
            let mut vtv = 0.0;
            for i in k..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            beta[k] = if vtv > 0.0 { 2.0 / vtv } else { 0.0 };
            rdiag[k] = alpha;
            // apply reflector to trailing columns
            for j in k + 1..n {
                let mut dotv = 0.0;
                for i in k..m {
                    dotv += qr[(i, k)] * qr[(i, j)];
                }
                let s = beta[k] * dotv;
                for i in k..m {
                    let v = qr[(i, k)];
                    qr[(i, j)] -= s * v;
                }
            }
        }
        Qr { qr, beta, rdiag }
    }

    /// Least-squares solve `min ‖A x − b‖₂`.
    pub fn solve_ls(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        assert_eq!(b.len(), m);
        let mut y = b.to_vec();
        // apply Qᵀ
        for k in 0..n {
            if self.beta[k] == 0.0 {
                continue;
            }
            let mut dotv = 0.0;
            for (i, &yi) in y.iter().enumerate().skip(k) {
                dotv += self.qr[(i, k)] * yi;
            }
            let s = self.beta[k] * dotv;
            for (i, yi) in y.iter_mut().enumerate().skip(k) {
                *yi -= s * self.qr[(i, k)];
            }
        }
        // back substitution with R
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.qr[(i, j)] * xj;
            }
            let d = self.rdiag[i];
            x[i] = if d.abs() > 0.0 { acc / d } else { 0.0 };
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::{norm2, Mat};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_mat(rng: &mut StdRng, m: usize, n: usize) -> Mat {
        Mat::from_fn(m, n, |_, _| rng.random_range(-1.0..1.0))
    }

    #[test]
    fn lu_solves_random_systems() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 20, 60] {
            // diagonally boosted to stay well conditioned
            let mut a = random_mat(&mut rng, n, n);
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let xtrue: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let b = a.matvec(&xtrue);
            let lu = Lu::new(&a).expect("nonsingular");
            let x = lu.solve(&b);
            let err: f64 = x
                .iter()
                .zip(&xtrue)
                .map(|(u, v)| (u - v).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "n={n} err={err}");
        }
    }

    #[test]
    fn lu_detects_singularity_and_det() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(Lu::new(&a).is_none());
        let b = Mat::from_vec(2, 2, vec![0.0, 1.0, -1.0, 0.0]);
        let lu = Lu::new(&b).unwrap();
        assert!((lu.det() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn lu_inverse_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 12;
        let mut a = random_mat(&mut rng, n, n);
        for i in 0..n {
            a[(i, i)] += 4.0;
        }
        let inv = Lu::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        let err = prod.add_scaled(&Mat::identity(n), -1.0).frobenius_norm();
        assert!(err < 1e-10, "err={err}");
    }

    #[test]
    fn qr_least_squares_matches_normal_equations() {
        let mut rng = StdRng::seed_from_u64(11);
        let (m, n) = (40, 7);
        let a = random_mat(&mut rng, m, n);
        let b: Vec<f64> = (0..m).map(|i| (i as f64 * 0.3).cos()).collect();
        let x = Qr::new(&a).solve_ls(&b);
        // normal equations residual: Aᵀ(Ax − b) should vanish
        let mut r = a.matvec(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        let g = a.matvec_t(&r);
        assert!(norm2(&g) < 1e-10, "gradient norm {}", norm2(&g));
    }

    #[test]
    fn qr_exact_solve_square() {
        let a = Mat::from_vec(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 4.0]);
        let xtrue = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&xtrue);
        let x = Qr::new(&a).solve_ls(&b);
        for (u, v) in x.iter().zip(&xtrue) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
