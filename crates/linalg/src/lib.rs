//! # linalg — dense linear algebra and numerics substrate
//!
//! Foundation crate for the RBC-flow reproduction. It replaces the roles of
//! Intel MKL (dense kernels), PETSc's KSP (GMRES), and assorted LAPACK
//! routines in the reference implementation:
//!
//! - [`Vec3`]/[`Aabb`]: geometric primitives used by every crate above;
//! - [`Mat`], [`Lu`], [`Qr`], [`Svd`]: dense matrices and factorizations for
//!   patch fitting, Newton systems, and the FMM equivalent-density solves;
//! - [`mod@gmres`]: restarted matrix-free GMRES (the boundary-solver and LCP
//!   iterations of the paper both run on it);
//! - [`CsrMatrix`]: deterministic compressed-sparse-row matrices (the
//!   collision coupling matrix `B` is assembled into one per linearization);
//! - [`quad`]: Clenshaw–Curtis and Gauss–Legendre rules;
//! - [`interp`]: barycentric interpolation, tensor-product upsampling, and
//!   the check-point extrapolation weights of §3.1;
//! - [`bytes`]: the little-endian binary codec the checkpoint/restart
//!   system serializes state through (offline stand-in for serde).

#![warn(missing_docs)]

pub mod bytes;
pub mod csr;
pub mod gmres;
pub mod interp;
pub mod mat;
pub mod quad;
pub mod solve;
pub mod svd;
pub mod vec3;

pub use bytes::{fnv1a64, ByteReader, ByteWriter, CodecError};
pub use csr::CsrMatrix;
pub use gmres::{gmres, gmres_right, FnOperator, GmresOptions, GmresResult, LinearOperator};
pub use interp::{
    barycentric_weights, checkpoint_extrapolation_weights, lagrange_basis_at, tensor_interp_matrix,
    Interp1d,
};
pub use mat::{axpy, dot, gemm_acc, norm2, norm_inf, Mat};
pub use quad::{
    clenshaw_curtis, gauss_legendre, legendre_and_derivative, periodic_trapezoid, Rule1d,
};
pub use solve::{Lu, Qr};
pub use svd::Svd;
pub use vec3::{Aabb, Vec3};
