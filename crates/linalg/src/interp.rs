//! Polynomial interpolation and extrapolation utilities.
//!
//! Two uses in the paper's pipeline:
//! 1. upsampling patch densities from the coarse to the fine discretization
//!    (tensor-product interpolation at Clenshaw–Curtis nodes, §3.1 step 1);
//! 2. 1-D polynomial extrapolation of velocities from check points back to
//!    the on/near-surface target (§3.1 step 5, weights `e_q` in Eq. 3.3).
//!
//! Everything is built on barycentric Lagrange interpolation, which is
//! numerically stable for the node families used here.

use crate::mat::Mat;

/// Barycentric weights for an arbitrary set of distinct 1-D nodes.
///
/// For Chebyshev-type nodes the classical closed forms exist, but the O(n²)
/// direct computation is exact enough for n ≤ ~50 and keeps the code general.
pub fn barycentric_weights(nodes: &[f64]) -> Vec<f64> {
    let n = nodes.len();
    let mut w = vec![1.0; n];
    // scale to avoid overflow for larger n: use the node spread
    let spread = nodes.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - nodes.iter().cloned().fold(f64::INFINITY, f64::min);
    let c = if spread > 0.0 { 4.0 / spread } else { 1.0 };
    for j in 0..n {
        for k in 0..n {
            if k != j {
                w[j] *= (nodes[j] - nodes[k]) * c;
            }
        }
        w[j] = 1.0 / w[j];
    }
    w
}

/// Evaluates the Lagrange basis at `x`: returns `l_j(x)` for all nodes.
///
/// If `x` coincides (to machine precision) with a node, returns the
/// corresponding unit vector.
pub fn lagrange_basis_at(nodes: &[f64], bary: &[f64], x: f64) -> Vec<f64> {
    let n = nodes.len();
    debug_assert_eq!(bary.len(), n);
    // check for node coincidence
    for (j, &xj) in nodes.iter().enumerate() {
        if x == xj {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            return e;
        }
    }
    let mut terms = Vec::with_capacity(n);
    let mut denom = 0.0;
    for j in 0..n {
        let t = bary[j] / (x - nodes[j]);
        terms.push(t);
        denom += t;
    }
    terms.iter().map(|t| t / denom).collect()
}

/// A reusable 1-D interpolation/extrapolation operator on fixed nodes.
#[derive(Clone, Debug)]
pub struct Interp1d {
    nodes: Vec<f64>,
    bary: Vec<f64>,
}

impl Interp1d {
    /// Builds the operator from distinct nodes.
    pub fn new(nodes: Vec<f64>) -> Interp1d {
        let bary = barycentric_weights(&nodes);
        Interp1d { nodes, bary }
    }

    /// The interpolation nodes.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Weights `e_j` such that `p(x) = Σ_j e_j f(x_j)` for the unique
    /// interpolating polynomial; valid for extrapolation as well (Eq. 3.3).
    pub fn weights_at(&self, x: f64) -> Vec<f64> {
        lagrange_basis_at(&self.nodes, &self.bary, x)
    }

    /// Evaluates the interpolant of the samples `f` at `x`.
    pub fn eval(&self, f: &[f64], x: f64) -> f64 {
        debug_assert_eq!(f.len(), self.nodes.len());
        self.weights_at(x).iter().zip(f).map(|(w, v)| w * v).sum()
    }

    /// Dense matrix mapping samples on `self.nodes` to values at `targets`.
    pub fn matrix_to(&self, targets: &[f64]) -> Mat {
        let mut m = Mat::zeros(targets.len(), self.nodes.len());
        for (i, &x) in targets.iter().enumerate() {
            let w = self.weights_at(x);
            m.row_mut(i).copy_from_slice(&w);
        }
        m
    }
}

/// Tensor-product interpolation matrix on `[-1,1]²`.
///
/// Maps samples at the grid `src_u × src_v` (row-major, `u` fastest) to
/// values at the grid `dst_u × dst_v`. Used for upsampling patch densities
/// from coarse to fine Clenshaw–Curtis grids.
pub fn tensor_interp_matrix(src_u: &[f64], src_v: &[f64], dst_u: &[f64], dst_v: &[f64]) -> Mat {
    let iu = Interp1d::new(src_u.to_vec());
    let iv = Interp1d::new(src_v.to_vec());
    let mu = iu.matrix_to(dst_u); // |dst_u| × |src_u|
    let mv = iv.matrix_to(dst_v); // |dst_v| × |src_v|
    let (nsu, nsv) = (src_u.len(), src_v.len());
    let (ndu, ndv) = (dst_u.len(), dst_v.len());
    let mut m = Mat::zeros(ndu * ndv, nsu * nsv);
    for jv in 0..ndv {
        for ju in 0..ndu {
            let row = jv * ndu + ju;
            for kv in 0..nsv {
                let mvv = mv[(jv, kv)];
                if mvv == 0.0 {
                    continue;
                }
                for ku in 0..nsu {
                    m[(row, kv * nsu + ku)] = mvv * mu[(ju, ku)];
                }
            }
        }
    }
    m
}

/// Builds the extrapolation weights of Eq. (3.3): the check points lie at
/// parameters `t_i = R + i·r`, `i = 0..=p`, along the normal, and we
/// extrapolate to distance `t_x` (0 for on-surface targets).
pub fn checkpoint_extrapolation_weights(big_r: f64, r: f64, p: usize, t_x: f64) -> Vec<f64> {
    let nodes: Vec<f64> = (0..=p).map(|i| big_r + i as f64 * r).collect();
    let interp = Interp1d::new(nodes);
    interp.weights_at(t_x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quad::clenshaw_curtis;

    #[test]
    fn interpolation_reproduces_polynomials_exactly() {
        let nodes = clenshaw_curtis(9).nodes;
        let interp = Interp1d::new(nodes.clone());
        // degree-8 polynomial
        let f: Vec<f64> = nodes
            .iter()
            .map(|&x| 1.0 - 2.0 * x + 3.0 * x.powi(4) - 0.5 * x.powi(8))
            .collect();
        for &x in &[-0.95_f64, -0.3, 0.0, 0.123, 0.77, 1.0] {
            let exact = 1.0 - 2.0 * x + 3.0 * x.powi(4) - 0.5 * x.powi(8);
            assert!((interp.eval(&f, x) - exact).abs() < 1e-11, "x={x}");
        }
    }

    #[test]
    fn interpolation_at_node_is_identity() {
        let interp = Interp1d::new(vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        let f = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        for (j, &x) in interp.nodes().to_vec().iter().enumerate() {
            assert_eq!(interp.eval(&f, x), f[j]);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        // partition of unity: interpolating the constant 1 gives 1 anywhere
        let interp = Interp1d::new(clenshaw_curtis(7).nodes);
        for &x in &[-2.0, -1.0, 0.3, 1.5, 4.0] {
            let s: f64 = interp.weights_at(x).iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "x={x} s={s}");
        }
    }

    #[test]
    fn extrapolation_weights_recover_smooth_decay() {
        // f(t) = 1/(1+t); sample at check-point distances and extrapolate to 0
        let (big_r, r, p) = (0.1, 0.0125, 8usize);
        let w = checkpoint_extrapolation_weights(big_r, r, p, 0.0);
        assert_eq!(w.len(), p + 1);
        let mut val = 0.0;
        for (i, wi) in w.iter().enumerate() {
            let t = big_r + i as f64 * r;
            val += wi / (1.0 + t);
        }
        assert!((val - 1.0).abs() < 1e-6, "extrapolated {val}");
    }

    #[test]
    fn tensor_interp_upsamples_bilinear_exactly() {
        let src = clenshaw_curtis(5).nodes;
        let dst = clenshaw_curtis(9).nodes;
        let m = tensor_interp_matrix(&src, &src, &dst, &dst);
        // f(u,v) = (1+u)(2-v) is degree (1,1): reproduced exactly
        let f: Vec<f64> = {
            let mut f = Vec::new();
            for &v in &src {
                for &u in &src {
                    f.push((1.0 + u) * (2.0 - v));
                }
            }
            f
        };
        let g = m.matvec(&f);
        let mut idx = 0;
        for &v in &dst {
            for &u in &dst {
                let exact = (1.0 + u) * (2.0 - v);
                assert!((g[idx] - exact).abs() < 1e-12);
                idx += 1;
            }
        }
    }

    #[test]
    fn tensor_interp_spectral_accuracy() {
        let src = clenshaw_curtis(11).nodes;
        let dst = vec![-0.9, -0.33, 0.21, 0.87];
        let m = tensor_interp_matrix(&src, &src, &dst, &dst);
        let f: Vec<f64> = {
            let mut f = Vec::new();
            for &v in &src {
                for &u in &src {
                    f.push((2.0 * u).sin() * (1.5 * v).cos());
                }
            }
            f
        };
        let g = m.matvec(&f);
        let mut idx = 0;
        for &v in &dst {
            for &u in &dst {
                let exact = (2.0 * u).sin() * (1.5 * v).cos();
                assert!((g[idx] - exact).abs() < 1e-6, "u={u} v={v}");
                idx += 1;
            }
        }
    }
}
