//! Property tests (vendored `proptest` shim) for the checkpoint byte
//! codec: bit-exact f64 round-trips over adversarial values and the FNV
//! digest's sensitivity to single-byte corruption — the two properties the
//! checkpoint/restart system's bit-identical-restart guarantee rests on.

use linalg::{fnv1a64, ByteReader, ByteWriter};
use proptest::prelude::*;

/// Deterministic f64 generator covering normals, subnormals, signed zeros,
/// infinities and NaNs (bit patterns straight from a SplitMix stream).
fn f64_stream(seed: u64, len: usize) -> Vec<f64> {
    let mut rng = TestRng::new(seed);
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let v = match i % 7 {
            // raw bit pattern: hits NaN payloads, infs, subnormals
            0 => f64::from_bits(Strategy::sample(&(0u64..u64::MAX), &mut rng)),
            1 => 0.0,
            2 => -0.0,
            3 => f64::MIN_POSITIVE * Strategy::sample(&(0.0f64..2.0), &mut rng),
            4 => f64::INFINITY,
            5 => -Strategy::sample(&(0.0f64..1e300), &mut rng),
            _ => Strategy::sample(&(-1.0f64..1.0), &mut rng),
        };
        out.push(v);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode of an f64 slice is bit-exact for every value class,
    /// including NaN payloads and signed zeros.
    #[test]
    fn f64_slice_round_trips_bit_exactly(seed in 0u64..1_000_000, len in 0usize..80) {
        let vals = f64_stream(seed, len);
        let mut w = ByteWriter::new();
        w.put_f64_slice(&vals);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.get_f64_vec().expect("round trip");
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(back.len(), vals.len());
        for (a, b) in vals.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Mixed-type streams round-trip through the same reader sequence.
    #[test]
    fn mixed_stream_round_trips(seed in 0u64..1_000_000, n in 1usize..30) {
        let vals = f64_stream(seed ^ 0xABCD, n);
        let mut w = ByteWriter::new();
        w.put_usize(n);
        w.put_bool(n % 2 == 0);
        for &v in &vals {
            w.put_f64(v);
        }
        w.put_u32(seed as u32);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(r.get_usize().unwrap(), n);
        prop_assert_eq!(r.get_bool().unwrap(), n % 2 == 0);
        for &v in &vals {
            prop_assert_eq!(r.get_f64().unwrap().to_bits(), v.to_bits());
        }
        prop_assert_eq!(r.get_u32().unwrap(), seed as u32);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// FNV-1a detects *every* single-byte corruption: the per-byte step
    /// `h ← (h ⊕ b) · p` is a bijection in `h` for fixed `b`, so states
    /// that diverge at the corrupted byte never re-converge.
    #[test]
    fn fnv_digest_detects_single_byte_corruption(
        seed in 0u64..1_000_000,
        len in 1usize..60,
        pos_pick in 0usize..1_000_000,
        flip in 1u16..256,
    ) {
        let vals = f64_stream(seed ^ 0x5EED, len);
        let mut w = ByteWriter::new();
        w.put_f64_slice(&vals);
        let mut bytes = w.into_bytes();
        let clean = fnv1a64(&bytes);
        let pos = pos_pick % bytes.len();
        bytes[pos] ^= flip as u8; // flip != 0 ⇒ the byte genuinely changes
        let corrupt = fnv1a64(&bytes);
        prop_assert!(
            clean != corrupt,
            "single-byte corruption at {} (xor {:#04x}) not detected",
            pos,
            flip
        );
    }
}
