//! Parallel contact detection (§4, items 1–2 of the collision algorithm).
//!
//! 1. Space-time bounding boxes of all meshes are hashed and sorted to find
//!    candidate mesh pairs (Fig. 3; the same sort-based search as the
//!    closest-point machinery of §3.3, with `d_ε = 0` for static patches).
//! 2. A single binned uniform grid over the *triangle* AABBs of every mesh
//!    that survived step 1 generates vertex–triangle candidates: triangle
//!    boxes (inflated by δ) are binned into every grid cell they overlap,
//!    each vertex looks up only its own cell, and candidates are verified
//!    by the exact closest-point test. With cell size `δ + max(median
//!    edge, δ)` a
//!    triangle spans O(1) cells, so candidate generation is
//!    output-sensitive — the old path rebuilt a hash of *all* triangles of
//!    a mesh for every candidate mesh pair it appeared in. The old
//!    exhaustive scan survives behind [`BroadPhase::BruteForce`] as the
//!    equivalence-test reference.
//!
//! Determinism: both paths emit the identical pair set, canonically sorted
//! by `(object pair, vertex mesh, vertex, triangle mesh, triangle)` before
//! the interference values are accumulated, so `V` and every gradient is
//! bit-identical across paths, runs, and instances (the restart guarantee).
//!
//! Interference measure (DESIGN.md substitution): where \[17\]/\[25\] compute
//! exact piecewise-linear space-time interference volumes, we use
//! `V_k = −Σ_pairs (δ − dist)₊ · a_v` accumulated over the vertex–triangle
//! pairs of contact `k`, with `a_v` the vertex area weight and `δ` the
//! contact threshold. `V_k < 0` exactly when surfaces come within `δ`, and
//! `∇V` distributes along the closest-point directions — preserving the
//! complementarity structure (Eq. 2.7) the paper's algorithm relies on.

use crate::mesh::{barycentric, closest_point_on_triangle, TriMesh};
use linalg::{Aabb, Vec3};
use octree::{box_box_candidates_self, mean_diagonal_spacing, SpatialHash};
use rayon::prelude::*;
use std::collections::HashMap;

/// A single vertex–triangle interaction inside a contact.
#[derive(Clone, Copy, Debug)]
pub struct ContactPair {
    /// Mesh owning the vertex.
    pub vert_mesh: u32,
    /// Vertex index within its mesh.
    pub vert: u32,
    /// Mesh owning the triangle.
    pub tri_mesh: u32,
    /// Triangle index within its mesh.
    pub tri: u32,
    /// Surface separation `dist − δ` (negative ⇒ active interference).
    pub gap: f64,
    /// Unit direction from the closest point on the triangle to the vertex.
    pub dir: Vec3,
    /// Barycentric coordinates of the closest point on the triangle.
    pub bary: (f64, f64, f64),
    /// Area weight of the pair (vertex area).
    pub weight: f64,
}

/// A connected contact between two objects (one component of `V`).
#[derive(Clone, Debug)]
pub struct Contact {
    /// First object id (always < `obj_b`).
    pub obj_a: u32,
    /// Second object id.
    pub obj_b: u32,
    /// Interference value `V_k` (negative while interfering).
    pub value: f64,
    /// Active vertex–triangle pairs, in canonical
    /// `(vert_mesh, vert, tri_mesh, tri)` order.
    pub pairs: Vec<ContactPair>,
}

impl Contact {
    /// Gradient of `V_k` w.r.t. the vertices of object `obj`, as a sparse
    /// list `(vertex, dV/dx)`. Moving a vertex along `+dir` opens the gap,
    /// increasing `V` (since `V = Σ gap·w` over active pairs).
    pub fn gradient(&self, obj: u32, meshes: &[TriMesh]) -> Vec<(u32, Vec3)> {
        let mut acc: HashMap<u32, Vec3> = HashMap::new();
        for p in &self.pairs {
            if p.vert_mesh == obj {
                *acc.entry(p.vert).or_insert(Vec3::ZERO) += p.dir * p.weight;
            }
            if p.tri_mesh == obj {
                let tri = meshes[p.tri_mesh as usize].tris[p.tri as usize];
                let (b0, b1, b2) = p.bary;
                *acc.entry(tri[0]).or_insert(Vec3::ZERO) -= p.dir * (p.weight * b0);
                *acc.entry(tri[1]).or_insert(Vec3::ZERO) -= p.dir * (p.weight * b1);
                *acc.entry(tri[2]).or_insert(Vec3::ZERO) -= p.dir * (p.weight * b2);
            }
        }
        let mut out: Vec<(u32, Vec3)> = acc.into_iter().collect();
        out.sort_unstable_by_key(|e| e.0);
        out
    }
}

/// Candidate-generation strategy for the vertex–triangle narrow phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BroadPhase {
    /// One binned grid over all active triangles (output-sensitive; the
    /// production path).
    #[default]
    Grid,
    /// Exhaustive all-vertex × all-triangle scan per candidate mesh pair —
    /// O(n·m) per pair, kept only as the equivalence-test reference.
    BruteForce,
}

/// Options for contact detection.
#[derive(Clone, Copy, Debug)]
pub struct DetectOptions {
    /// Contact activation threshold δ (surfaces closer than this count as
    /// interfering; acts as the minimal separation the NCP enforces).
    pub delta: f64,
    /// Candidate-generation strategy (grid unless testing).
    pub broad_phase: BroadPhase,
}

impl DetectOptions {
    /// Grid-backed detection with threshold `delta`.
    pub fn new(delta: f64) -> DetectOptions {
        DetectOptions {
            delta,
            broad_phase: BroadPhase::Grid,
        }
    }
}

/// Finds all contacts among the meshes at their *end-of-step* positions.
///
/// `start` optionally holds start-of-step vertex positions per mesh for the
/// space-time bounding boxes (pass `None` for a static check). `obj_of`
/// maps each mesh to its owning object id (all vessel patches share one
/// object so one `V` component forms per touching body pair).
pub fn detect_contacts(
    meshes: &[TriMesh],
    start: Option<&[Vec<Vec3>]>,
    obj_of: &[u32],
    opts: DetectOptions,
) -> Vec<Contact> {
    assert_eq!(meshes.len(), obj_of.len());
    // 1. space-time boxes + candidate mesh pairs
    let boxes: Vec<Aabb> = meshes
        .par_iter()
        .enumerate()
        .map(|(i, m)| match start {
            Some(s) => m.space_time_box(&s[i], opts.delta),
            None => m.bounding_box().inflated(opts.delta),
        })
        .collect();
    let grid = SpatialHash::new(mean_diagonal_spacing(&boxes).max(opts.delta), Vec3::ZERO);
    let mesh_pairs: Vec<(u32, u32)> = box_box_candidates_self(&boxes, &grid)
        .into_iter()
        .filter(|&(a, b)| obj_of[a as usize] != obj_of[b as usize])
        .collect();

    // 2. vertex–triangle pairs among the meshes with candidate partners
    let mut raw: Vec<ContactPair> = match opts.broad_phase {
        BroadPhase::Grid => grid_pairs(meshes, &mesh_pairs, obj_of, opts.delta),
        BroadPhase::BruteForce => brute_force_pairs(meshes, &mesh_pairs, opts.delta),
    };

    // canonical order: by object pair, then (vert_mesh, vert, tri_mesh,
    // tri). Both broad phases and any parallel split then accumulate V and
    // the gradients in the same floating-point order.
    let pair_objs = |p: &ContactPair| {
        let oa = obj_of[p.vert_mesh as usize];
        let ob = obj_of[p.tri_mesh as usize];
        (oa.min(ob), oa.max(ob))
    };
    raw.par_sort_unstable_by_key(|p| (pair_objs(p), p.vert_mesh, p.vert, p.tri_mesh, p.tri));

    // group into contacts by scanning runs of equal object pairs
    let mut contacts: Vec<Contact> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let key = pair_objs(&raw[i]);
        let mut j = i;
        while j < raw.len() && pair_objs(&raw[j]) == key {
            j += 1;
        }
        let pairs = raw[i..j].to_vec();
        let value: f64 = pairs.iter().map(|p| p.gap * p.weight).sum();
        contacts.push(Contact {
            obj_a: key.0,
            obj_b: key.1,
            value,
            pairs,
        });
        i = j;
    }
    contacts
}

/// Exact narrow test: emits a pair when vertex `vi` of mesh `mv` lies
/// within `delta` of triangle `ti` of mesh `mt`.
#[inline]
fn try_pair(
    meshes: &[TriMesh],
    mv: u32,
    vi: u32,
    mt: u32,
    ti: u32,
    delta: f64,
) -> Option<ContactPair> {
    let vm = &meshes[mv as usize];
    let tm = &meshes[mt as usize];
    let t = tm.tris[ti as usize];
    let a = tm.verts[t[0] as usize];
    let b = tm.verts[t[1] as usize];
    let c = tm.verts[t[2] as usize];
    let p = vm.verts[vi as usize];
    let cp = closest_point_on_triangle(p, a, b, c);
    let d = (p - cp).norm();
    if d < delta && d > 1e-14 {
        Some(ContactPair {
            vert_mesh: mv,
            vert: vi,
            tri_mesh: mt,
            tri: ti,
            gap: d - delta,
            dir: (p - cp) / d,
            bary: barycentric(cp, a, b, c),
            weight: vm.vert_area[vi as usize],
        })
    } else {
        None
    }
}

/// Output-sensitive narrow phase: one uniform grid over every mesh that
/// appears in a candidate pair. Vertices are binned into their cell (one
/// entry each); each triangle enumerates the cells its δ-inflated AABB
/// overlaps and tests the vertices found there.
///
/// Completeness: a vertex within δ of a triangle lies inside the
/// triangle's inflated AABB, hence inside one of the cells that box
/// overlaps. Uniqueness: a vertex occupies exactly one cell, so no
/// (vertex, triangle) pair is ever emitted twice. Candidates pass a cheap
/// box-containment reject (which cannot discard a true pair) before the
/// exact closest-point test, so the result set is identical to
/// [`BroadPhase::BruteForce`]'s.
///
/// Cell size is `δ + max(median edge, δ)` — the median edge length,
/// floored at δ so over-resolved meshes cannot shrink cells below the
/// interaction distance: the meshes mix
/// resolutions (finely upsampled cells against coarse vessel patches, and
/// occasionally a blown-up mesh mid-transient), and sizing by the max —
/// or even the mean — edge would collapse the grid into a few enormous
/// cells whose contents cross all-to-all. With the median, an oversized
/// triangle simply enumerates more cells (capped below) while the grid
/// stays matched to the healthy geometry.
fn grid_pairs(
    meshes: &[TriMesh],
    mesh_pairs: &[(u32, u32)],
    obj_of: &[u32],
    delta: f64,
) -> Vec<ContactPair> {
    // meshes with at least one candidate partner
    let mut active: Vec<u32> = mesh_pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    active.sort_unstable();
    active.dedup();
    if active.is_empty() {
        return Vec::new();
    }

    // median edge length: robust to blown-up meshes (a diverged implicit
    // update can stretch a single cell's triangles by orders of magnitude
    // mid-transient; a mean — let alone a max — would inflate the grid
    // cell until every vertex lands in one bin and the narrow phase goes
    // quadratic)
    let mut edges: Vec<f64> = active
        .par_iter()
        .flat_map_iter(|&mi| {
            let m = &meshes[mi as usize];
            m.tris.iter().flat_map(move |t| {
                let a = m.verts[t[0] as usize];
                let b = m.verts[t[1] as usize];
                let c = m.verts[t[2] as usize];
                [(a - b).norm(), (b - c).norm(), (c - a).norm()]
            })
        })
        .collect();
    let median_edge = if edges.is_empty() {
        0.0
    } else {
        let mid = edges.len() / 2;
        let (_, med, _) = edges.select_nth_unstable_by(mid, f64::total_cmp);
        *med
    };
    let grid = SpatialHash::new(delta + median_edge.max(delta), Vec3::ZERO);

    // bin vertices by their *integer cell coordinates* — deliberately not
    // by wrapped Morton key: the conservative run rejects below derive a
    // run's AABB from its cell, and a 21-bit key collision would group
    // far-apart vertices under one box, turning the reject into a false
    // negative exactly in the blown-up-mesh regime the fallback serves
    #[derive(Clone, Copy)]
    struct VertEntry {
        cell: (i64, i64, i64),
        mesh: u32,
        vert: u32,
    }
    let mut verts: Vec<VertEntry> = active
        .par_iter()
        .flat_map_iter(|&mi| {
            meshes[mi as usize]
                .verts
                .iter()
                .enumerate()
                .map(move |(vi, &p)| VertEntry {
                    cell: grid.cell_of(p),
                    mesh: mi,
                    vert: vi as u32,
                })
        })
        .collect();
    verts.par_sort_unstable_by_key(|e| (e.cell, e.mesh, e.vert));
    // run = the vertices of one occupied cell; `cells` looks runs up by
    // cell for the enumeration path, `runs` keeps them in cell order with
    // their cell boxes for the capped-triangle fallback below
    struct CellRun {
        lo: Vec3,
        hi: Vec3,
        start: u32,
        end: u32,
    }
    let mut cells: HashMap<(i64, i64, i64), u32> = HashMap::new();
    let mut runs: Vec<CellRun> = Vec::new();
    let mut start = 0;
    for i in 1..=verts.len() {
        if i == verts.len() || verts[i].cell != verts[start].cell {
            cells.insert(verts[start].cell, runs.len() as u32);
            let cell = verts[start].cell;
            let lo = grid.origin + Vec3::new(cell.0 as f64, cell.1 as f64, cell.2 as f64) * grid.h;
            runs.push(CellRun {
                lo,
                hi: lo + Vec3::new(grid.h, grid.h, grid.h),
                start: start as u32,
                end: i as u32,
            });
            start = i;
        }
    }

    // a healthy triangle's inflated box overlaps a handful of cells; a
    // blown-up one could overlap billions, so enumeration is capped and
    // oversized triangles fall through to a sweep over the occupied-cell
    // runs, pruned by a box test and a plane-slab test (a stretched
    // triangle covers a huge box but stays razor-thin, so the slab rejects
    // nearly every cell). Both rejects are conservative — a vertex within
    // δ of the triangle can never be discarded — so the result set stays
    // identical to brute force.
    const CELL_CAP: f64 = 256.0;

    // per triangle: gather the vertices of every overlapped cell
    active
        .par_iter()
        .flat_map_iter(|&mi| {
            let m = &meshes[mi as usize];
            let obj = obj_of[mi as usize];
            let mut out = Vec::new();
            for (ti, t) in m.tris.iter().enumerate() {
                let (ta, tb, tc) = (
                    m.verts[t[0] as usize],
                    m.verts[t[1] as usize],
                    m.verts[t[2] as usize],
                );
                // every broad-phase reject below uses this box, inflated a
                // hair past δ: the extra margin absorbs the rounding of
                // `min − δ` and of the reconstructed run boxes, so no pair
                // whose exact test would pass (d < δ, to within an ulp)
                // can be discarded — only try_pair decides membership, and
                // the result set stays identical to brute force
                let coord_scale = [ta, tb, tc]
                    .iter()
                    .flat_map(|p| [p.x.abs(), p.y.abs(), p.z.abs()])
                    .fold(1.0, f64::max);
                let eps = 1e-9 * (delta + coord_scale);
                let b = Aabb::from_points([ta, tb, tc]).inflated(delta + eps);
                let (x0, y0, z0) = grid.cell_of(b.lo);
                let (x1, y1, z1) = grid.cell_of(b.hi);
                // in f64: a blown-up triangle's box can span enough cells
                // to overflow any integer product
                let span = (x1 as f64 - x0 as f64 + 1.0)
                    * (y1 as f64 - y0 as f64 + 1.0)
                    * (z1 as f64 - z0 as f64 + 1.0);
                let test = |v: &VertEntry, out: &mut Vec<ContactPair>| {
                    if obj_of[v.mesh as usize] == obj {
                        return;
                    }
                    // cheap reject: outside the margined box ⇒ farther
                    // than δ from the triangle
                    if !b.contains(meshes[v.mesh as usize].verts[v.vert as usize]) {
                        return;
                    }
                    if let Some(p) = try_pair(meshes, v.mesh, v.vert, mi, ti as u32, delta) {
                        out.push(p);
                    }
                };
                if span <= CELL_CAP {
                    for z in z0..=z1 {
                        for y in y0..=y1 {
                            for x in x0..=x1 {
                                let Some(&ri) = cells.get(&(x, y, z)) else {
                                    continue;
                                };
                                let run = &runs[ri as usize];
                                for v in &verts[run.start as usize..run.end as usize] {
                                    test(v, &mut out);
                                }
                            }
                        }
                    }
                } else {
                    let n = (tb - ta).cross(tc - ta);
                    let nn = n.norm();
                    for run in &runs {
                        if run.hi.x < b.lo.x
                            || run.lo.x > b.hi.x
                            || run.hi.y < b.lo.y
                            || run.lo.y > b.hi.y
                            || run.hi.z < b.lo.z
                            || run.lo.z > b.hi.z
                        {
                            continue;
                        }
                        if nn > 1e-300 {
                            // slab reject: the whole cell is farther than δ
                            // (plus the rounding margin) from the plane
                            let center = (run.lo + run.hi) * 0.5;
                            let half = 0.5 * grid.h;
                            let dist = n.dot(center - ta).abs() / nn;
                            let radius = half * (n.x.abs() + n.y.abs() + n.z.abs()) / nn;
                            if dist - radius > delta + eps {
                                continue;
                            }
                        }
                        for v in &verts[run.start as usize..run.end as usize] {
                            test(v, &mut out);
                        }
                    }
                }
            }
            out.into_iter()
        })
        .collect()
}

/// Reference narrow phase: every vertex of each candidate mesh pair against
/// every triangle of the partner, both directions.
fn brute_force_pairs(
    meshes: &[TriMesh],
    mesh_pairs: &[(u32, u32)],
    delta: f64,
) -> Vec<ContactPair> {
    mesh_pairs
        .par_iter()
        .flat_map_iter(|&(ma, mb)| {
            let mut out = Vec::new();
            for (mv, mt) in [(ma, mb), (mb, ma)] {
                for vi in 0..meshes[mv as usize].verts.len() as u32 {
                    for ti in 0..meshes[mt as usize].tris.len() as u32 {
                        if let Some(p) = try_pair(meshes, mv, vi, mt, ti, delta) {
                            out.push(p);
                        }
                    }
                }
            }
            out.into_iter()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{triangulate_grid, triangulate_latlon};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn flat_square(z: f64, shift: f64) -> TriMesh {
        let m = 5;
        let mut grid = Vec::new();
        for j in 0..m {
            for i in 0..m {
                grid.push(Vec3::new(i as f64 * 0.25 + shift, j as f64 * 0.25, z));
            }
        }
        triangulate_grid(&grid, m)
    }

    #[test]
    fn detects_close_parallel_sheets() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.05, 0.0);
        let contacts = detect_contacts(&[a, b], None, &[0, 1], DetectOptions::new(0.1));
        assert_eq!(contacts.len(), 1);
        let c = &contacts[0];
        assert!(c.value < 0.0, "V = {}", c.value);
        assert!(!c.pairs.is_empty());
        // gaps are dist − δ = −0.05
        for p in &c.pairs {
            assert!((p.gap + 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn no_contact_when_separated() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.5, 0.0);
        let contacts = detect_contacts(&[a, b], None, &[0, 1], DetectOptions::new(0.1));
        assert!(contacts.is_empty());
    }

    #[test]
    fn same_object_meshes_never_collide() {
        // two patches of the same vessel: near each other but same object id
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.05, 0.0);
        let contacts = detect_contacts(&[a, b], None, &[7, 7], DetectOptions::new(0.1));
        assert!(contacts.is_empty());
    }

    #[test]
    fn gradient_separates_objects() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.05, 0.0);
        let meshes = vec![a, b];
        let contacts = detect_contacts(&meshes, None, &[0, 1], DetectOptions::new(0.1));
        let c = &contacts[0];
        // gradient w.r.t. object 1 (upper sheet): moving up must increase V
        let g1 = c.gradient(1, &meshes);
        assert!(!g1.is_empty());
        let gsum: Vec3 = g1.iter().map(|(_, g)| *g).sum();
        assert!(
            gsum.z > 0.0,
            "gradient should push the upper sheet up: {gsum:?}"
        );
        let g0 = c.gradient(0, &meshes);
        let gsum0: Vec3 = g0.iter().map(|(_, g)| *g).sum();
        assert!(gsum0.z < 0.0, "lower sheet pushed down: {gsum0:?}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.06, 0.1);
        let meshes = vec![a.clone(), b.clone()];
        let opts = DetectOptions::new(0.1);
        let contacts = detect_contacts(&meshes, None, &[0, 1], opts);
        let c = &contacts[0];
        let g = c.gradient(1, &meshes);
        // pick a vertex with nonzero gradient and move it
        let (vi, grad) = g
            .iter()
            .max_by(|x, y| x.1.norm().partial_cmp(&y.1.norm()).unwrap())
            .copied()
            .unwrap();
        let h = 1e-7;
        for axis in 0..3 {
            let mut dir = Vec3::ZERO;
            dir[axis] = h;
            let mut moved = b.verts.clone();
            moved[vi as usize] += dir;
            let meshes2 = vec![a.clone(), b.with_positions(moved)];
            let c2 = detect_contacts(&meshes2, None, &[0, 1], opts);
            let v2 = c2.first().map(|c| c.value).unwrap_or(0.0);
            let fd = (v2 - c.value) / h;
            assert!(
                (fd - grad[axis]).abs() < 1e-4 * (1.0 + grad[axis].abs()),
                "axis {axis}: fd {fd} vs grad {}",
                grad[axis]
            );
        }
    }

    #[test]
    fn multiple_object_pairs_give_multiple_components() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.05, 0.0);
        let c = flat_square(0.0, 5.0);
        let d = flat_square(0.05, 5.0);
        let contacts = detect_contacts(&[a, b, c, d], None, &[0, 1, 2, 3], DetectOptions::new(0.1));
        assert_eq!(contacts.len(), 2);
        assert_eq!((contacts[0].obj_a, contacts[0].obj_b), (0, 1));
        assert_eq!((contacts[1].obj_a, contacts[1].obj_b), (2, 3));
    }

    /// A small lat–long sphere mesh centered at `c`.
    fn sphere(c: Vec3, r: f64, nlat: usize, nlon: usize) -> TriMesh {
        let mut grid = Vec::new();
        for i in 0..nlat {
            let th = std::f64::consts::PI * (i as f64 + 0.5) / nlat as f64;
            for j in 0..nlon {
                let ph = 2.0 * std::f64::consts::PI * j as f64 / nlon as f64;
                grid.push(c + Vec3::new(th.sin() * ph.cos(), th.sin() * ph.sin(), th.cos()) * r);
            }
        }
        triangulate_latlon(
            &grid,
            nlat,
            nlon,
            c + Vec3::new(0.0, 0.0, r),
            c - Vec3::new(0.0, 0.0, r),
        )
    }

    /// Exact bit-equality of two contact lists (values, pair sets, order).
    fn assert_contacts_identical(a: &[Contact], b: &[Contact]) {
        assert_eq!(a.len(), b.len(), "contact count differs");
        for (x, y) in a.iter().zip(b) {
            assert_eq!((x.obj_a, x.obj_b), (y.obj_a, y.obj_b));
            assert_eq!(
                x.value.to_bits(),
                y.value.to_bits(),
                "V differs for ({}, {}): {} vs {}",
                x.obj_a,
                x.obj_b,
                x.value,
                y.value
            );
            assert_eq!(x.pairs.len(), y.pairs.len());
            for (p, q) in x.pairs.iter().zip(&y.pairs) {
                assert_eq!(
                    (p.vert_mesh, p.vert, p.tri_mesh, p.tri),
                    (q.vert_mesh, q.vert, q.tri_mesh, q.tri)
                );
                assert_eq!(p.gap.to_bits(), q.gap.to_bits());
                assert_eq!(p.weight.to_bits(), q.weight.to_bits());
            }
        }
    }

    #[test]
    fn grid_matches_brute_force_on_random_dense_packings() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..5 {
            // jittered cluster of spheres, deliberately overlapping
            let n = 8 + trial;
            let meshes: Vec<TriMesh> = (0..n)
                .map(|_| {
                    let c = Vec3::new(
                        rng.random_range(-1.2..1.2),
                        rng.random_range(-1.2..1.2),
                        rng.random_range(-1.2..1.2),
                    );
                    sphere(c, rng.random_range(0.5..0.8), 7, 12)
                })
                .collect();
            let obj_of: Vec<u32> = (0..n as u32).collect();
            let delta = 0.08;
            let grid = detect_contacts(
                &meshes,
                None,
                &obj_of,
                DetectOptions {
                    delta,
                    broad_phase: BroadPhase::Grid,
                },
            );
            let brute = detect_contacts(
                &meshes,
                None,
                &obj_of,
                DetectOptions {
                    delta,
                    broad_phase: BroadPhase::BruteForce,
                },
            );
            assert!(
                grid.len() >= 3,
                "trial {trial}: dense packing produced only {} contacts",
                grid.len()
            );
            assert_contacts_identical(&grid, &brute);
        }
    }

    #[test]
    fn grid_matches_brute_force_with_a_blown_up_mesh() {
        // a diverged mesh mid-transient: one sphere stretched by orders of
        // magnitude so its triangles overflow the cell-enumeration cap and
        // take the occupied-cell-run fallback; the healthy cluster keeps
        // the grid cell size sane (median sizing)
        let mut rng = StdRng::seed_from_u64(4);
        let mut meshes: Vec<TriMesh> = (0..6)
            .map(|_| {
                let c = Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                );
                sphere(c, rng.random_range(0.5..0.8), 7, 12)
            })
            .collect();
        let monster = {
            let base = sphere(Vec3::ZERO, 0.6, 7, 12);
            // anisotropic blow-up: huge, thin triangles crossing the cluster
            let verts: Vec<Vec3> = base
                .verts
                .iter()
                .map(|&v| Vec3::new(v.x * 800.0, v.y * 600.0, v.z * 0.7))
                .collect();
            base.with_positions(verts)
        };
        meshes.push(monster);
        let obj_of: Vec<u32> = (0..meshes.len() as u32).collect();
        let delta = 0.08;
        let grid = detect_contacts(
            &meshes,
            None,
            &obj_of,
            DetectOptions {
                delta,
                broad_phase: BroadPhase::Grid,
            },
        );
        let brute = detect_contacts(
            &meshes,
            None,
            &obj_of,
            DetectOptions {
                delta,
                broad_phase: BroadPhase::BruteForce,
            },
        );
        assert!(
            brute.iter().any(|c| c.obj_b == 6 || c.obj_a == 6),
            "monster mesh produced no contacts; the fallback path is untested"
        );
        assert_contacts_identical(&grid, &brute);
    }

    #[test]
    fn grid_matches_brute_force_with_space_time_boxes_and_shared_objects() {
        // moving sheets + a two-mesh rigid "vessel" sharing one object id
        let mut rng = StdRng::seed_from_u64(7);
        let wall_a = flat_square(0.0, 0.0);
        let wall_b = flat_square(0.0, 0.9);
        let mut meshes = vec![wall_a, wall_b];
        let mut starts: Vec<Vec<Vec3>> = meshes.iter().map(|m| m.verts.clone()).collect();
        for _ in 0..6 {
            let z = rng.random_range(0.02..0.3);
            let shift = rng.random_range(-0.3..1.0);
            let m = flat_square(z, shift);
            // started higher up and moved down to its current position
            starts.push(
                m.verts
                    .iter()
                    .map(|&v| v + Vec3::new(0.0, 0.0, 0.5))
                    .collect(),
            );
            meshes.push(m);
        }
        let obj_of = [0u32, 0, 1, 2, 3, 4, 5, 6];
        for delta in [0.05, 0.12] {
            let grid = detect_contacts(
                &meshes,
                Some(&starts),
                &obj_of,
                DetectOptions {
                    delta,
                    broad_phase: BroadPhase::Grid,
                },
            );
            let brute = detect_contacts(
                &meshes,
                Some(&starts),
                &obj_of,
                DetectOptions {
                    delta,
                    broad_phase: BroadPhase::BruteForce,
                },
            );
            assert!(!grid.is_empty());
            assert_contacts_identical(&grid, &brute);
        }
    }
}
