//! Parallel contact detection (§4, items 1–2 of the collision algorithm).
//!
//! 1. Space-time bounding boxes of all meshes are hashed and sorted to find
//!    candidate mesh pairs (Fig. 3; the same sort-based search as the
//!    closest-point machinery of §3.3, with `d_ε = 0` for static patches).
//! 2. For each candidate mesh pair, vertex–triangle pairs within the
//!    contact threshold are found with a second spatial hash, and the
//!    interference measure `V` of each connected contact (one per touching
//!    object pair) is assembled together with its position gradient.
//!
//! Interference measure (DESIGN.md substitution): where \[17\]/\[25\] compute
//! exact piecewise-linear space-time interference volumes, we use
//! `V_k = −Σ_pairs (δ − dist)₊ · a_v` accumulated over the vertex–triangle
//! pairs of contact `k`, with `a_v` the vertex area weight and `δ` the
//! contact threshold. `V_k < 0` exactly when surfaces come within `δ`, and
//! `∇V` distributes along the closest-point directions — preserving the
//! complementarity structure (Eq. 2.7) the paper's algorithm relies on.

use crate::mesh::{barycentric, closest_point_on_triangle, TriMesh};
use linalg::{Aabb, Vec3};
use octree::{box_box_candidates_self, mean_diagonal_spacing, SpatialHash};
use rayon::prelude::*;
use std::collections::HashMap;

/// A single vertex–triangle interaction inside a contact.
#[derive(Clone, Copy, Debug)]
pub struct ContactPair {
    /// Mesh owning the vertex.
    pub vert_mesh: u32,
    /// Vertex index within its mesh.
    pub vert: u32,
    /// Mesh owning the triangle.
    pub tri_mesh: u32,
    /// Triangle index within its mesh.
    pub tri: u32,
    /// Surface separation `dist − δ` (negative ⇒ active interference).
    pub gap: f64,
    /// Unit direction from the closest point on the triangle to the vertex.
    pub dir: Vec3,
    /// Barycentric coordinates of the closest point on the triangle.
    pub bary: (f64, f64, f64),
    /// Area weight of the pair (vertex area).
    pub weight: f64,
}

/// A connected contact between two objects (one component of `V`).
#[derive(Clone, Debug)]
pub struct Contact {
    /// First object id (always < `obj_b`).
    pub obj_a: u32,
    /// Second object id.
    pub obj_b: u32,
    /// Interference value `V_k` (negative while interfering).
    pub value: f64,
    /// Active vertex–triangle pairs.
    pub pairs: Vec<ContactPair>,
}

impl Contact {
    /// Gradient of `V_k` w.r.t. the vertices of object `obj`, as a sparse
    /// list `(vertex, dV/dx)`. Moving a vertex along `+dir` opens the gap,
    /// increasing `V` (since `V = Σ gap·w` over active pairs).
    pub fn gradient(&self, obj: u32, meshes: &[TriMesh]) -> Vec<(u32, Vec3)> {
        let mut acc: HashMap<u32, Vec3> = HashMap::new();
        for p in &self.pairs {
            if p.vert_mesh == obj {
                *acc.entry(p.vert).or_insert(Vec3::ZERO) += p.dir * p.weight;
            }
            if p.tri_mesh == obj {
                let tri = meshes[p.tri_mesh as usize].tris[p.tri as usize];
                let (b0, b1, b2) = p.bary;
                *acc.entry(tri[0]).or_insert(Vec3::ZERO) -= p.dir * (p.weight * b0);
                *acc.entry(tri[1]).or_insert(Vec3::ZERO) -= p.dir * (p.weight * b1);
                *acc.entry(tri[2]).or_insert(Vec3::ZERO) -= p.dir * (p.weight * b2);
            }
        }
        let mut out: Vec<(u32, Vec3)> = acc.into_iter().collect();
        out.sort_unstable_by_key(|e| e.0);
        out
    }
}

/// Options for contact detection.
#[derive(Clone, Copy, Debug)]
pub struct DetectOptions {
    /// Contact activation threshold δ (surfaces closer than this count as
    /// interfering; acts as the minimal separation the NCP enforces).
    pub delta: f64,
}

/// Finds all contacts among the meshes at their *end-of-step* positions.
///
/// `start` optionally holds start-of-step vertex positions per mesh for the
/// space-time bounding boxes (pass `None` for a static check). `obj_of`
/// maps each mesh to its owning object id (all vessel patches share one
/// object so one `V` component forms per touching body pair).
pub fn detect_contacts(
    meshes: &[TriMesh],
    start: Option<&[Vec<Vec3>]>,
    obj_of: &[u32],
    opts: DetectOptions,
) -> Vec<Contact> {
    assert_eq!(meshes.len(), obj_of.len());
    // 1. space-time boxes + candidate mesh pairs
    let boxes: Vec<Aabb> = meshes
        .par_iter()
        .enumerate()
        .map(|(i, m)| match start {
            Some(s) => m.space_time_box(&s[i], opts.delta),
            None => m.bounding_box().inflated(opts.delta),
        })
        .collect();
    let grid = SpatialHash::new(mean_diagonal_spacing(&boxes).max(opts.delta), Vec3::ZERO);
    let mesh_pairs: Vec<(u32, u32)> = box_box_candidates_self(&boxes, &grid)
        .into_iter()
        .filter(|&(a, b)| obj_of[a as usize] != obj_of[b as usize])
        .collect();

    // 2. vertex–triangle pairs per candidate mesh pair (both directions)
    let raw: Vec<ContactPair> = mesh_pairs
        .par_iter()
        .flat_map_iter(|&(ma, mb)| {
            let mut out = Vec::new();
            vertex_triangle_pairs(meshes, ma, mb, opts.delta, &mut out);
            vertex_triangle_pairs(meshes, mb, ma, opts.delta, &mut out);
            out.into_iter()
        })
        .collect();

    // group into contacts by object pair
    let mut groups: HashMap<(u32, u32), Vec<ContactPair>> = HashMap::new();
    for p in raw {
        let oa = obj_of[p.vert_mesh as usize];
        let ob = obj_of[p.tri_mesh as usize];
        let key = (oa.min(ob), oa.max(ob));
        groups.entry(key).or_default().push(p);
    }
    let mut contacts: Vec<Contact> = groups
        .into_iter()
        .map(|((oa, ob), pairs)| {
            let value: f64 = pairs.iter().map(|p| p.gap * p.weight).sum();
            Contact { obj_a: oa, obj_b: ob, value, pairs }
        })
        .collect();
    contacts.sort_unstable_by_key(|c| (c.obj_a, c.obj_b));
    contacts
}

/// Collects active vertex(of `mv`)–triangle(of `mt`) pairs within `delta`.
fn vertex_triangle_pairs(meshes: &[TriMesh], mv: u32, mt: u32, delta: f64, out: &mut Vec<ContactPair>) {
    let vm = &meshes[mv as usize];
    let tm = &meshes[mt as usize];
    // hash triangle boxes against vertices
    let tri_boxes: Vec<Aabb> = tm
        .tris
        .iter()
        .map(|t| {
            Aabb::from_points([
                tm.verts[t[0] as usize],
                tm.verts[t[1] as usize],
                tm.verts[t[2] as usize],
            ])
            .inflated(delta)
        })
        .collect();
    let grid = SpatialHash::new(mean_diagonal_spacing(&tri_boxes).max(delta), Vec3::ZERO);
    let cands = octree::box_point_candidates(&tri_boxes, &vm.verts, &grid);
    for (ti, vi) in cands {
        let t = tm.tris[ti as usize];
        let a = tm.verts[t[0] as usize];
        let b = tm.verts[t[1] as usize];
        let c = tm.verts[t[2] as usize];
        let p = vm.verts[vi as usize];
        let cp = closest_point_on_triangle(p, a, b, c);
        let d = (p - cp).norm();
        if d < delta && d > 1e-14 {
            out.push(ContactPair {
                vert_mesh: mv,
                vert: vi,
                tri_mesh: mt,
                tri: ti,
                gap: d - delta,
                dir: (p - cp) / d,
                bary: barycentric(cp, a, b, c),
                weight: vm.vert_area[vi as usize],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::triangulate_grid;

    fn flat_square(z: f64, shift: f64) -> TriMesh {
        let m = 5;
        let mut grid = Vec::new();
        for j in 0..m {
            for i in 0..m {
                grid.push(Vec3::new(i as f64 * 0.25 + shift, j as f64 * 0.25, z));
            }
        }
        triangulate_grid(&grid, m)
    }

    #[test]
    fn detects_close_parallel_sheets() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.05, 0.0);
        let contacts = detect_contacts(&[a, b], None, &[0, 1], DetectOptions { delta: 0.1 });
        assert_eq!(contacts.len(), 1);
        let c = &contacts[0];
        assert!(c.value < 0.0, "V = {}", c.value);
        assert!(!c.pairs.is_empty());
        // gaps are dist − δ = −0.05
        for p in &c.pairs {
            assert!((p.gap + 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn no_contact_when_separated() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.5, 0.0);
        let contacts = detect_contacts(&[a, b], None, &[0, 1], DetectOptions { delta: 0.1 });
        assert!(contacts.is_empty());
    }

    #[test]
    fn same_object_meshes_never_collide() {
        // two patches of the same vessel: near each other but same object id
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.05, 0.0);
        let contacts = detect_contacts(&[a, b], None, &[7, 7], DetectOptions { delta: 0.1 });
        assert!(contacts.is_empty());
    }

    #[test]
    fn gradient_separates_objects() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.05, 0.0);
        let meshes = vec![a, b];
        let contacts = detect_contacts(&meshes, None, &[0, 1], DetectOptions { delta: 0.1 });
        let c = &contacts[0];
        // gradient w.r.t. object 1 (upper sheet): moving up must increase V
        let g1 = c.gradient(1, &meshes);
        assert!(!g1.is_empty());
        let gsum: Vec3 = g1.iter().map(|(_, g)| *g).sum();
        assert!(gsum.z > 0.0, "gradient should push the upper sheet up: {gsum:?}");
        let g0 = c.gradient(0, &meshes);
        let gsum0: Vec3 = g0.iter().map(|(_, g)| *g).sum();
        assert!(gsum0.z < 0.0, "lower sheet pushed down: {gsum0:?}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.06, 0.1);
        let meshes = vec![a.clone(), b.clone()];
        let opts = DetectOptions { delta: 0.1 };
        let contacts = detect_contacts(&meshes, None, &[0, 1], opts);
        let c = &contacts[0];
        let g = c.gradient(1, &meshes);
        // pick a vertex with nonzero gradient and move it
        let (vi, grad) = g
            .iter()
            .max_by(|x, y| x.1.norm().partial_cmp(&y.1.norm()).unwrap())
            .copied()
            .unwrap();
        let h = 1e-7;
        for axis in 0..3 {
            let mut dir = Vec3::ZERO;
            dir[axis] = h;
            let mut moved = b.verts.clone();
            moved[vi as usize] += dir;
            let meshes2 = vec![a.clone(), b.with_positions(moved)];
            let c2 = detect_contacts(&meshes2, None, &[0, 1], opts);
            let v2 = c2.first().map(|c| c.value).unwrap_or(0.0);
            let fd = (v2 - c.value) / h;
            assert!(
                (fd - grad[axis]).abs() < 1e-4 * (1.0 + grad[axis].abs()),
                "axis {axis}: fd {fd} vs grad {}",
                grad[axis]
            );
        }
    }

    #[test]
    fn multiple_object_pairs_give_multiple_components() {
        let a = flat_square(0.0, 0.0);
        let b = flat_square(0.05, 0.0);
        let c = flat_square(0.0, 5.0);
        let d = flat_square(0.05, 5.0);
        let contacts = detect_contacts(
            &[a, b, c, d],
            None,
            &[0, 1, 2, 3],
            DetectOptions { delta: 0.1 },
        );
        assert_eq!(contacts.len(), 2);
        assert_eq!((contacts[0].obj_a, contacts[0].obj_b), (0, 1));
        assert_eq!((contacts[1].obj_a, contacts[1].obj_b), (2, 3));
    }
}
