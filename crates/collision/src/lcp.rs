//! Linear complementarity solver: minimum-map Newton restructured over
//! GMRES, following [24, §3.2.2/§3.3] as §4 of the paper prescribes.
//!
//! The LCP is: find `λ ≥ 0` with `L = B λ + q ≥ 0` and `λ · L = 0`.
//! The minimum-map reformulation solves `H(λ) = min(λ, Bλ + q) = 0`
//! (componentwise) by a semismooth Newton method; each Newton system is
//! solved matrix-free with GMRES, so only `B`-matvecs are needed — in the
//! simulation these are sparse accumulations over shared cells, stored in a
//! concurrent hash-map (see `assemble`).

use linalg::{gmres, FnOperator, GmresOptions};

/// Options for the LCP solver.
#[derive(Clone, Copy, Debug)]
pub struct LcpOptions {
    /// Infinity-norm tolerance on the minimum map.
    pub tol: f64,
    /// Maximum Newton iterations.
    pub max_newton: usize,
    /// GMRES controls for the Newton systems.
    pub gmres: GmresOptions,
}

impl Default for LcpOptions {
    fn default() -> Self {
        LcpOptions {
            tol: 1e-10,
            max_newton: 50,
            gmres: GmresOptions {
                tol: 1e-10,
                atol: 1e-14,
                max_iters: 200,
                restart: 50,
                stall_ratio: 0.0,
            },
        }
    }
}

/// Outcome of an LCP solve.
#[derive(Clone, Debug)]
pub struct LcpResult {
    /// The multiplier vector λ.
    pub lambda: Vec<f64>,
    /// Final minimum-map residual (∞-norm).
    pub residual: f64,
    /// Newton iterations used.
    pub newton_iters: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Solves the LCP `λ ≥ 0 ⊥ Bλ + q ≥ 0` with `B` given as a matvec closure.
pub fn solve_lcp(
    m: usize,
    apply_b: impl Fn(&[f64], &mut [f64]) + Sync,
    q: &[f64],
    opts: &LcpOptions,
) -> LcpResult {
    assert_eq!(q.len(), m);
    if m == 0 {
        return LcpResult {
            lambda: Vec::new(),
            residual: 0.0,
            newton_iters: 0,
            converged: true,
        };
    }
    let mut lambda = vec![0.0; m];
    let mut blam = vec![0.0; m];
    let mut converged = false;
    let mut residual = f64::INFINITY;
    let mut iters = 0;

    for newton in 0..opts.max_newton {
        iters = newton + 1;
        apply_b(&lambda, &mut blam);
        // minimum map H(λ) = min(λ, Bλ + q)
        let h: Vec<f64> = (0..m).map(|i| lambda[i].min(blam[i] + q[i])).collect();
        residual = h.iter().fold(0.0_f64, |a, v| a.max(v.abs()));
        if residual <= opts.tol {
            converged = true;
            break;
        }
        // active set: rows where Bλ + q < λ take the B row, else identity
        let active: Vec<bool> = (0..m).map(|i| blam[i] + q[i] < lambda[i]).collect();
        let ab = &apply_b;
        let active_ref = &active;
        let op = FnOperator::new(m, move |x: &[f64], y: &mut [f64]| {
            let mut bx = vec![0.0; m];
            ab(x, &mut bx);
            for i in 0..m {
                y[i] = if active_ref[i] { bx[i] } else { x[i] };
            }
        });
        // solve J d = -H
        let rhs: Vec<f64> = h.iter().map(|v| -v).collect();
        let mut d = vec![0.0; m];
        gmres(&op, &rhs, &mut d, &opts.gmres);
        // backtracking line search on ‖H‖∞
        let mut step = 1.0;
        let mut accepted = false;
        for _ in 0..40 {
            let trial: Vec<f64> = (0..m).map(|i| lambda[i] + step * d[i]).collect();
            apply_b(&trial, &mut blam);
            let tres = (0..m)
                .map(|i| trial[i].min(blam[i] + q[i]).abs())
                .fold(0.0_f64, f64::max);
            if tres < residual * (1.0 - 1e-4 * step) || tres <= opts.tol {
                lambda = trial;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            break;
        }
    }
    // clamp tiny negatives from roundoff
    for v in &mut lambda {
        if *v < 0.0 && *v > -1e-13 {
            *v = 0.0;
        }
    }
    LcpResult {
        lambda,
        residual,
        newton_iters: iters,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Mat;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn check_lcp(b: &Mat, q: &[f64], res: &LcpResult) {
        let m = q.len();
        let l = {
            let mut bl = b.matvec(&res.lambda);
            for i in 0..m {
                bl[i] += q[i];
            }
            bl
        };
        for i in 0..m {
            assert!(res.lambda[i] >= -1e-9, "λ_{i} = {}", res.lambda[i]);
            assert!(l[i] >= -1e-8, "L_{i} = {}", l[i]);
            assert!(
                res.lambda[i] * l[i] < 1e-8,
                "complementarity {i}: λ={} L={}",
                res.lambda[i],
                l[i]
            );
        }
    }

    #[test]
    fn solves_strictly_feasible_case() {
        // q > 0 ⇒ λ = 0
        let b = Mat::identity(4);
        let q = vec![1.0, 2.0, 0.5, 3.0];
        let res = solve_lcp(4, |x, y| b.matvec_into(x, y), &q, &LcpOptions::default());
        assert!(res.converged);
        assert!(res.lambda.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn solves_identity_lcp() {
        // B = I: λ_i = max(0, -q_i)
        let b = Mat::identity(5);
        let q = vec![-1.0, 2.0, -0.3, 0.0, -5.0];
        let res = solve_lcp(5, |x, y| b.matvec_into(x, y), &q, &LcpOptions::default());
        assert!(res.converged);
        for i in 0..5 {
            assert!((res.lambda[i] - (-q[i]).max(0.0)).abs() < 1e-10);
        }
        check_lcp(&b, &q, &res);
    }

    #[test]
    fn random_diagonally_dominant_lcps() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..20 {
            let m = rng.random_range(1..25);
            let mut b = Mat::from_fn(m, m, |_, _| rng.random_range(-0.5..0.5));
            for i in 0..m {
                // symmetric positive-ish diagonally dominant (as the
                // contact-mobility matrices are)
                b[(i, i)] = m as f64;
            }
            let q: Vec<f64> = (0..m).map(|_| rng.random_range(-2.0..2.0)).collect();
            let res = solve_lcp(m, |x, y| b.matvec_into(x, y), &q, &LcpOptions::default());
            assert!(
                res.converged,
                "trial {trial} (m={m}): residual {}",
                res.residual
            );
            check_lcp(&b, &q, &res);
        }
    }

    #[test]
    fn empty_problem_is_trivial() {
        let res = solve_lcp(0, |_x, _y| {}, &[], &LcpOptions::default());
        assert!(res.converged);
        assert!(res.lambda.is_empty());
    }

    #[test]
    fn contact_like_physics() {
        // two overlapping "bodies" coupled through a compliance matrix:
        // both constraints violated (q < 0), forces must activate both
        let b = Mat::from_vec(2, 2, vec![2.0, 0.5, 0.5, 2.0]);
        let q = vec![-1.0, -1.0];
        let res = solve_lcp(2, |x, y| b.matvec_into(x, y), &q, &LcpOptions::default());
        assert!(res.converged);
        // symmetric problem: λ = (0.4, 0.4) solves Bλ + q = 0
        assert!((res.lambda[0] - 0.4).abs() < 1e-9);
        assert!((res.lambda[1] - 0.4).abs() < 1e-9);
        check_lcp(&b, &q, &res);
    }
}
