//! The outer NCP loop of §4: iterate contact detection and linearized LCP
//! solves until the configuration is interference-free (items 1–3 of the
//! collision algorithm; the paper reports ~7 LCP solves per NCP).
//!
//! The coupling matrix `B` — "the change in the jth contact volume induced
//! by the kth contact force" — is assembled per linearization into a
//! [`CsrMatrix`]: contributions are generated per *mesh* (two contacts
//! couple exactly when they share a movable mesh), stably sorted into
//! `(j, k)` order, and summed in ascending-mesh order, so every entry's
//! floating-point accumulation order is canonical — bit-identical across
//! runs and instances, which the checkpoint/restart guarantee requires.
//! The LCP's Newton/GMRES inner iterations then run on the CSR matvec; the
//! matrix (and the mobility response columns below) are computed once per
//! linearization and reused across all inner iterations.
//!
//! Mobility responses are *batched*: instead of one [`Mobility::apply`] per
//! (contact, mesh) probe, all contact-force columns touching a mesh are
//! handed to [`Mobility::apply_many`] in one call, so an implementation can
//! pack them into matrices and run its linear stages as GEMMs (the
//! simulation's cell mobility does exactly that).

use crate::detect::{detect_contacts, Contact, DetectOptions};
use crate::lcp::{solve_lcp, LcpOptions};
use crate::mesh::TriMesh;
use linalg::{CsrMatrix, Vec3};
use std::collections::BTreeMap;

/// Maps contact forces on a mesh's vertices to vertex displacements over
/// one time step (`Δt ×` the object's mobility). The simulation supplies
/// the cell self-interaction mobility (Eq. 2.12); rigid vessel meshes
/// report [`Mobility::is_rigid`] and are never moved.
pub trait Mobility: Sync {
    /// Whether this mesh belongs to a rigid (immovable) object.
    fn is_rigid(&self, mesh: u32) -> bool;
    /// Applies the (time-step-scaled) mobility of mesh `mesh` to a sparse
    /// vertex force list, returning dense per-vertex displacements.
    fn apply(&self, mesh: u32, force: &[(u32, Vec3)], nverts: usize) -> Vec<Vec3>;
    /// Applies the mobility of mesh `mesh` to a batch of sparse force
    /// columns at the same linearization point, returning one dense
    /// displacement field per column. The default loops [`Mobility::apply`];
    /// implementations with a linear dense core should override it and
    /// process all columns in one matrix pass.
    fn apply_many(&self, mesh: u32, forces: &[&[(u32, Vec3)]], nverts: usize) -> Vec<Vec<Vec3>> {
        forces.iter().map(|f| self.apply(mesh, f, nverts)).collect()
    }
}

/// Free-particle mobility: displacement = `scale ×` force at each vertex.
/// Used in tests and as a fallback penalty-like response.
pub struct IdentityMobility {
    /// Displacement per unit force.
    pub scale: f64,
    /// Meshes flagged rigid.
    pub rigid: Vec<bool>,
}

impl Mobility for IdentityMobility {
    fn is_rigid(&self, mesh: u32) -> bool {
        self.rigid.get(mesh as usize).copied().unwrap_or(false)
    }
    fn apply(&self, _mesh: u32, force: &[(u32, Vec3)], nverts: usize) -> Vec<Vec3> {
        let mut out = vec![Vec3::ZERO; nverts];
        for &(v, f) in force {
            out[v as usize] = f * self.scale;
        }
        out
    }
}

/// Options for the NCP solve.
#[derive(Clone, Copy, Debug)]
pub struct NcpOptions {
    /// Contact detection threshold δ.
    pub detect: DetectOptions,
    /// Inner LCP controls.
    pub lcp: LcpOptions,
    /// Maximum outer (re-linearization) iterations.
    pub max_outer: usize,
}

impl Default for NcpOptions {
    fn default() -> Self {
        NcpOptions {
            detect: DetectOptions::new(1e-2),
            lcp: LcpOptions::default(),
            max_outer: 10,
        }
    }
}

/// Outcome of the NCP solve.
#[derive(Clone, Debug)]
pub struct NcpResult {
    /// Accumulated contact displacement per mesh vertex.
    pub displacements: Vec<Vec<Vec3>>,
    /// Sum of multipliers per outer iteration (diagnostic).
    pub lambda_total: f64,
    /// Contacts active at the first detection (collision statistics for the
    /// scaling tables: "#collision/#RBCs").
    pub initial_contacts: usize,
    /// Outer iterations used.
    pub outer_iters: usize,
    /// Whether a contact-free state was reached.
    pub resolved: bool,
}

/// One linearized contact: the movable meshes it touches, its interference
/// gradient restricted to each, and (once the batched mobility applies have
/// run) the dense displacement response per mesh.
struct ContactData {
    meshes: Vec<u32>,
    grads: Vec<Vec<(u32, Vec3)>>,
    disps: Vec<Vec<Vec3>>, // dense per mesh, filled by the batched applies
}

/// Mesh id → the `(contact, slot)` probes that touch it, in ascending
/// contact order; the map itself iterates in ascending mesh order. Both
/// orders are what makes the downstream accumulation canonical.
type MeshProbes = BTreeMap<u32, Vec<(usize, usize)>>;

/// Builds the per-contact linearization data and the mesh → probes index.
fn contact_linearization(
    contacts: &[Contact],
    current: &[TriMesh],
    mobility: &impl Mobility,
) -> (Vec<ContactData>, MeshProbes) {
    // one slot per contact, committed in contact order — the parallel
    // split cannot perturb the canonical ordering the assembly relies on
    let mut data: Vec<ContactData> = rayon::par::map_indexed(contacts.len(), |k| {
        let c = &contacts[k];
        // meshes involved in this contact (movable only)
        let mut involved: Vec<u32> = c
            .pairs
            .iter()
            .flat_map(|p| [p.vert_mesh, p.tri_mesh])
            .filter(|&mi| !mobility.is_rigid(mi))
            .collect();
        involved.sort_unstable();
        involved.dedup();
        let grads: Vec<Vec<(u32, Vec3)>> =
            involved.iter().map(|&mi| c.gradient(mi, current)).collect();
        ContactData {
            meshes: involved,
            grads,
            disps: Vec::new(),
        }
    });

    let mut by_mesh: BTreeMap<u32, Vec<(usize, usize)>> = BTreeMap::new();
    for (k, d) in data.iter().enumerate() {
        for (slot, &mi) in d.meshes.iter().enumerate() {
            by_mesh.entry(mi).or_default().push((k, slot));
        }
    }
    for d in &mut data {
        d.disps = vec![Vec::new(); d.meshes.len()];
    }
    (data, by_mesh)
}

/// Runs one batched [`Mobility::apply_many`] per mesh and scatters the
/// displacement columns back into each contact's slot.
fn batched_mobility_responses(
    data: &mut [ContactData],
    by_mesh: &MeshProbes,
    meshes: &[TriMesh],
    mobility: &impl Mobility,
) {
    let groups: Vec<(&u32, &Vec<(usize, usize)>)> = by_mesh.iter().collect();
    // meshes are independent batches; results land in ascending-mesh order
    let data_ref = &data[..];
    let results: Vec<Vec<Vec<Vec3>>> = rayon::par::map_indexed(groups.len(), |gi| {
        let (&mi, probes) = groups[gi];
        let cols: Vec<&[(u32, Vec3)]> = probes
            .iter()
            .map(|&(k, slot)| data_ref[k].grads[slot].as_slice())
            .collect();
        mobility.apply_many(mi, &cols, meshes[mi as usize].verts.len())
    });
    for ((_, probes), res) in groups.into_iter().zip(results) {
        assert_eq!(
            res.len(),
            probes.len(),
            "apply_many returned a wrong column count"
        );
        for (&(k, slot), d) in probes.iter().zip(res) {
            data[k].disps[slot] = d;
        }
    }
}

/// Assembles `B_jk = Σ_mesh ∇V_j(mesh) · Δx_k(mesh)` over the meshes each
/// contact pair shares. Contributions are generated per mesh in ascending
/// mesh order, stably sorted to `(j, k)`, and summed in that order by the
/// CSR build — a fixed accumulation order regardless of parallel split.
fn assemble_b(m: usize, data: &[ContactData], by_mesh: &MeshProbes) -> CsrMatrix {
    // per-mesh triplet batches computed in parallel, concatenated in
    // ascending-mesh order (the BTreeMap's iteration order), so the stable
    // sort below sees the same sequence at any thread count
    let groups: Vec<&Vec<(usize, usize)>> = by_mesh.values().collect();
    let batches: Vec<Vec<(usize, usize, f64)>> = rayon::par::map_indexed(groups.len(), |gi| {
        let probes = groups[gi];
        let mut out = Vec::with_capacity(probes.len() * probes.len());
        for &(j, slot_j) in probes {
            for &(k, slot_k) in probes {
                // B_jk += ∇V_j(mesh) · Δx_k(mesh)
                let mut acc = 0.0;
                for &(v, g) in &data[j].grads[slot_j] {
                    acc += g.dot(data[k].disps[slot_k][v as usize]);
                }
                out.push((j, k, acc));
            }
        }
        out
    });
    let mut triplets: Vec<(usize, usize, f64)> = batches.into_iter().flatten().collect();
    // stable: duplicates keep ascending-mesh order
    triplets.sort_by_key(|&(j, k, _)| (j, k));
    CsrMatrix::from_sorted_triplets(m, m, &triplets)
}

/// Resolves interference: updates `end_positions` (one `Vec<Vec3>` per
/// mesh) in place so that all meshes are separated by at least δ, moving
/// only non-rigid meshes through their mobility.
pub fn resolve_contacts(
    meshes: &[TriMesh],
    end_positions: &mut [Vec<Vec3>],
    start_positions: &[Vec<Vec3>],
    obj_of: &[u32],
    mobility: &impl Mobility,
    opts: &NcpOptions,
) -> NcpResult {
    let nm = meshes.len();
    assert_eq!(end_positions.len(), nm);
    assert_eq!(start_positions.len(), nm);
    let mut displacements: Vec<Vec<Vec3>> = meshes
        .iter()
        .map(|m| vec![Vec3::ZERO; m.verts.len()])
        .collect();
    let mut lambda_total = 0.0;
    let mut initial_contacts = 0;
    let mut resolved = false;
    let mut outer = 0;

    for it in 0..opts.max_outer {
        outer = it + 1;
        // current end-of-step meshes (one slot per mesh, index order)
        let end_ref = &end_positions[..];
        let current: Vec<TriMesh> =
            rayon::par::map_indexed(nm, |mi| meshes[mi].with_positions(end_ref[mi].clone()));
        let contacts: Vec<Contact> =
            detect_contacts(&current, Some(start_positions), obj_of, opts.detect)
                .into_iter()
                .filter(|c| c.value < 0.0)
                .collect();
        if it == 0 {
            initial_contacts = contacts.len();
        }
        if contacts.is_empty() {
            resolved = true;
            break;
        }
        let m = contacts.len();

        // linearize: gradients, then one batched mobility apply per mesh
        let (mut data, by_mesh) = contact_linearization(&contacts, &current, mobility);
        batched_mobility_responses(&mut data, &by_mesh, meshes, mobility);

        // sparse B in CSR; the LCP's inner iterations reuse the matrix and
        // the cached displacement columns across the whole linearization
        let b = assemble_b(m, &data, &by_mesh);
        let q: Vec<f64> = contacts.iter().map(|c| c.value).collect();
        let apply_b = |x: &[f64], y: &mut [f64]| b.matvec_into(x, y);
        let res = solve_lcp(m, apply_b, &q, &opts.lcp);
        lambda_total += res.lambda.iter().sum::<f64>();

        // apply Δx = Σ_k λ_k M ∇V_k to the end positions
        for (k, d) in data.iter().enumerate() {
            let lam = res.lambda[k];
            if lam == 0.0 {
                continue;
            }
            for (slot, &mi) in d.meshes.iter().enumerate() {
                let pos = &mut end_positions[mi as usize];
                let disp = &d.disps[slot];
                let dtot = &mut displacements[mi as usize];
                for (v, p) in pos.iter_mut().enumerate() {
                    *p += disp[v] * lam;
                    dtot[v] += disp[v] * lam;
                }
            }
        }
    }

    if !resolved {
        // final check
        let current: Vec<TriMesh> = meshes
            .iter()
            .zip(end_positions.iter())
            .map(|(m, pos)| m.with_positions(pos.clone()))
            .collect();
        resolved = detect_contacts(&current, Some(start_positions), obj_of, opts.detect)
            .iter()
            .all(|c| c.value >= -1e-12);
    }

    NcpResult {
        displacements,
        lambda_total,
        initial_contacts,
        outer_iters: outer,
        resolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::triangulate_grid;
    use std::collections::HashMap;

    fn flat_square(z: f64) -> TriMesh {
        let m = 5;
        let mut grid = Vec::new();
        for j in 0..m {
            for i in 0..m {
                grid.push(Vec3::new(i as f64 * 0.25, j as f64 * 0.25, z));
            }
        }
        triangulate_grid(&grid, m)
    }

    #[test]
    fn separates_two_sheets() {
        let a = flat_square(0.0);
        let b = flat_square(0.04);
        let meshes = vec![a.clone(), b.clone()];
        let start = vec![a.verts.clone(), b.verts.clone()];
        let mut end = start.clone();
        let mobility = IdentityMobility {
            scale: 1.0,
            rigid: vec![false, false],
        };
        let opts = NcpOptions {
            detect: DetectOptions::new(0.1),
            ..Default::default()
        };
        let res = resolve_contacts(&meshes, &mut end, &start, &[0, 1], &mobility, &opts);
        assert!(
            res.resolved,
            "not resolved after {} iterations",
            res.outer_iters
        );
        assert!(res.initial_contacts == 1);
        // sheets now separated by ≥ δ (within LCP tolerance)
        let zmax_a = end[0].iter().map(|p| p.z).fold(f64::MIN, f64::max);
        let zmin_b = end[1].iter().map(|p| p.z).fold(f64::MAX, f64::min);
        assert!(
            zmin_b - zmax_a > 0.1 - 1e-6,
            "separation {} < delta",
            zmin_b - zmax_a
        );
        // symmetric: both sheets moved by equal and opposite amounts
        let da: Vec3 = res.displacements[0].iter().copied().sum();
        let db: Vec3 = res.displacements[1].iter().copied().sum();
        assert!((da + db).norm() < 1e-8 * (da.norm() + db.norm()).max(1e-30));
    }

    #[test]
    fn rigid_wall_moves_only_the_cell() {
        let wall = flat_square(0.0);
        let sheet = flat_square(0.05);
        let meshes = vec![wall.clone(), sheet.clone()];
        let start = vec![wall.verts.clone(), sheet.verts.clone()];
        let mut end = start.clone();
        let mobility = IdentityMobility {
            scale: 1.0,
            rigid: vec![true, false],
        };
        let opts = NcpOptions {
            detect: DetectOptions::new(0.1),
            ..Default::default()
        };
        let res = resolve_contacts(&meshes, &mut end, &start, &[0, 1], &mobility, &opts);
        assert!(res.resolved);
        // wall untouched
        for (p, q) in end[0].iter().zip(&wall.verts) {
            assert_eq!(p, q);
        }
        // sheet lifted to z ≥ 0.1
        let zmin = end[1].iter().map(|p| p.z).fold(f64::MAX, f64::min);
        assert!(zmin > 0.1 - 1e-6, "zmin {zmin}");
    }

    #[test]
    fn no_contacts_is_noop() {
        let a = flat_square(0.0);
        let b = flat_square(5.0);
        let meshes = vec![a.clone(), b.clone()];
        let start = vec![a.verts.clone(), b.verts.clone()];
        let mut end = start.clone();
        let mobility = IdentityMobility {
            scale: 1.0,
            rigid: vec![false, false],
        };
        let res = resolve_contacts(
            &meshes,
            &mut end,
            &start,
            &[0, 1],
            &mobility,
            &NcpOptions::default(),
        );
        assert!(res.resolved);
        assert_eq!(res.initial_contacts, 0);
        assert_eq!(res.lambda_total, 0.0);
        assert_eq!(end, start);
    }

    #[test]
    fn three_body_pileup_resolves() {
        let a = flat_square(0.0);
        let b = flat_square(0.05);
        let c = flat_square(0.10);
        let meshes = vec![a.clone(), b.clone(), c.clone()];
        let start: Vec<Vec<Vec3>> = meshes.iter().map(|m| m.verts.clone()).collect();
        let mut end = start.clone();
        let mobility = IdentityMobility {
            scale: 1.0,
            rigid: vec![false, false, false],
        };
        let opts = NcpOptions {
            detect: DetectOptions::new(0.08),
            max_outer: 20,
            ..Default::default()
        };
        let res = resolve_contacts(&meshes, &mut end, &start, &[0, 1, 2], &mobility, &opts);
        assert!(res.resolved, "unresolved after {}", res.outer_iters);
        let z0 = end[0].iter().map(|p| p.z).fold(f64::MIN, f64::max);
        let z1min = end[1].iter().map(|p| p.z).fold(f64::MAX, f64::min);
        let z1max = end[1].iter().map(|p| p.z).fold(f64::MIN, f64::max);
        let z2 = end[2].iter().map(|p| p.z).fold(f64::MAX, f64::min);
        assert!(z1min - z0 > 0.08 - 1e-6);
        assert!(z2 - z1max > 0.08 - 1e-6);
    }

    /// The CSR assembly must match a straightforward hash-map reference
    /// (the representation the pre-CSR implementation used) on a
    /// multi-contact fixture with shared meshes — including the diagonal
    /// entries that accumulate one contribution per involved mesh.
    #[test]
    fn csr_assembly_matches_hashmap_reference() {
        // four-sheet pileup: contacts (0,1), (1,2), (2,3); neighbours
        // couple through the shared middle sheets
        let meshes: Vec<TriMesh> = (0..4).map(|i| flat_square(0.05 * i as f64)).collect();
        let start: Vec<Vec<Vec3>> = meshes.iter().map(|m| m.verts.clone()).collect();
        let mobility = IdentityMobility {
            scale: 0.7,
            rigid: vec![false; 4],
        };
        let current: Vec<TriMesh> = meshes.clone();
        let contacts: Vec<Contact> = detect_contacts(
            &current,
            Some(&start),
            &[0, 1, 2, 3],
            DetectOptions::new(0.08),
        )
        .into_iter()
        .filter(|c| c.value < 0.0)
        .collect();
        let m = contacts.len();
        assert!(m >= 3, "fixture lost its contacts ({m})");

        let (mut data, by_mesh) = contact_linearization(&contacts, &current, &mobility);
        batched_mobility_responses(&mut data, &by_mesh, &meshes, &mobility);
        let csr = assemble_b(m, &data, &by_mesh);

        // reference: hash-map accumulation from the same linearization,
        // summed in the same ascending-mesh order (bit-exact match)
        let mut reference: HashMap<(usize, usize), f64> = HashMap::new();
        for probes in by_mesh.values() {
            for &(j, slot_j) in probes {
                for &(k, slot_k) in probes {
                    let mut acc = 0.0;
                    for &(v, g) in &data[j].grads[slot_j] {
                        acc += g.dot(data[k].disps[slot_k][v as usize]);
                    }
                    *reference.entry((j, k)).or_insert(0.0) += acc;
                }
            }
        }
        assert!(
            reference.keys().any(|&(j, k)| j != k),
            "fixture has no off-diagonal coupling"
        );
        let dense = csr.to_dense();
        assert_eq!(csr.nnz(), reference.len());
        for (&(j, k), &v) in &reference {
            assert_eq!(
                dense[j * m + k].to_bits(),
                v.to_bits(),
                "B[{j},{k}] differs: csr {} vs reference {v}",
                dense[j * m + k]
            );
        }
    }

    /// `apply_many`'s default implementation and a batched override must be
    /// interchangeable inside the resolve loop.
    #[test]
    fn apply_many_default_matches_per_column_apply() {
        struct Batched(IdentityMobility);
        impl Mobility for Batched {
            fn is_rigid(&self, mesh: u32) -> bool {
                self.0.is_rigid(mesh)
            }
            fn apply(&self, mesh: u32, force: &[(u32, Vec3)], nverts: usize) -> Vec<Vec3> {
                self.0.apply(mesh, force, nverts)
            }
            fn apply_many(
                &self,
                mesh: u32,
                forces: &[&[(u32, Vec3)]],
                nverts: usize,
            ) -> Vec<Vec<Vec3>> {
                // a deliberately different (but equivalent) batched path
                let mut out = vec![vec![Vec3::ZERO; nverts]; forces.len()];
                for (col, f) in forces.iter().enumerate() {
                    for &(v, g) in *f {
                        out[col][v as usize] = g * self.0.scale;
                    }
                }
                let _ = mesh;
                out
            }
        }

        let a = flat_square(0.0);
        let b = flat_square(0.04);
        let c = flat_square(0.08);
        let meshes = vec![a, b, c];
        let start: Vec<Vec<Vec3>> = meshes.iter().map(|m| m.verts.clone()).collect();
        let opts = NcpOptions {
            detect: DetectOptions::new(0.06),
            max_outer: 20,
            ..Default::default()
        };
        let plain = IdentityMobility {
            scale: 1.0,
            rigid: vec![false; 3],
        };
        let batched = Batched(IdentityMobility {
            scale: 1.0,
            rigid: vec![false; 3],
        });

        let mut end_plain = start.clone();
        let res_plain =
            resolve_contacts(&meshes, &mut end_plain, &start, &[0, 1, 2], &plain, &opts);
        let mut end_batched = start.clone();
        let res_batched = resolve_contacts(
            &meshes,
            &mut end_batched,
            &start,
            &[0, 1, 2],
            &batched,
            &opts,
        );

        assert_eq!(res_plain.resolved, res_batched.resolved);
        assert_eq!(res_plain.outer_iters, res_batched.outer_iters);
        for (pa, pb) in end_plain.iter().zip(&end_batched) {
            for (x, y) in pa.iter().zip(pb) {
                assert_eq!(x.x.to_bits(), y.x.to_bits());
                assert_eq!(x.y.to_bits(), y.y.to_bits());
                assert_eq!(x.z.to_bits(), y.z.to_bits());
            }
        }
    }
}
