//! The outer NCP loop of §4: iterate contact detection and linearized LCP
//! solves until the configuration is interference-free (items 1–3 of the
//! collision algorithm; the paper reports ~7 LCP solves per NCP).
//!
//! The coupling matrix `B` — "the change in the jth contact volume induced
//! by the kth contact force" — is assembled sparsely into a hash-map keyed
//! by contact pairs, exactly as the paper stores it (the distributed
//! `MPI_All_to_Allv` accumulation becomes a shared-memory parallel fold).

use crate::detect::{detect_contacts, Contact, DetectOptions};
use crate::lcp::{solve_lcp, LcpOptions};
use crate::mesh::TriMesh;
use linalg::Vec3;
use rayon::prelude::*;
use std::collections::HashMap;

/// Maps contact forces on a mesh's vertices to vertex displacements over
/// one time step (`Δt ×` the object's mobility). The simulation supplies
/// the cell self-interaction mobility (Eq. 2.12); rigid vessel meshes
/// report [`Mobility::is_rigid`] and are never moved.
pub trait Mobility: Sync {
    /// Whether this mesh belongs to a rigid (immovable) object.
    fn is_rigid(&self, mesh: u32) -> bool;
    /// Applies the (time-step-scaled) mobility of mesh `mesh` to a sparse
    /// vertex force list, returning dense per-vertex displacements.
    fn apply(&self, mesh: u32, force: &[(u32, Vec3)], nverts: usize) -> Vec<Vec3>;
}

/// Free-particle mobility: displacement = `scale ×` force at each vertex.
/// Used in tests and as a fallback penalty-like response.
pub struct IdentityMobility {
    /// Displacement per unit force.
    pub scale: f64,
    /// Meshes flagged rigid.
    pub rigid: Vec<bool>,
}

impl Mobility for IdentityMobility {
    fn is_rigid(&self, mesh: u32) -> bool {
        self.rigid.get(mesh as usize).copied().unwrap_or(false)
    }
    fn apply(&self, _mesh: u32, force: &[(u32, Vec3)], nverts: usize) -> Vec<Vec3> {
        let mut out = vec![Vec3::ZERO; nverts];
        for &(v, f) in force {
            out[v as usize] = f * self.scale;
        }
        out
    }
}

/// Options for the NCP solve.
#[derive(Clone, Copy, Debug)]
pub struct NcpOptions {
    /// Contact detection threshold δ.
    pub detect: DetectOptions,
    /// Inner LCP controls.
    pub lcp: LcpOptions,
    /// Maximum outer (re-linearization) iterations.
    pub max_outer: usize,
}

impl Default for NcpOptions {
    fn default() -> Self {
        NcpOptions {
            detect: DetectOptions { delta: 1e-2 },
            lcp: LcpOptions::default(),
            max_outer: 10,
        }
    }
}

/// Outcome of the NCP solve.
#[derive(Clone, Debug)]
pub struct NcpResult {
    /// Accumulated contact displacement per mesh vertex.
    pub displacements: Vec<Vec<Vec3>>,
    /// Sum of multipliers per outer iteration (diagnostic).
    pub lambda_total: f64,
    /// Contacts active at the first detection (collision statistics for the
    /// scaling tables: "#collision/#RBCs").
    pub initial_contacts: usize,
    /// Outer iterations used.
    pub outer_iters: usize,
    /// Whether a contact-free state was reached.
    pub resolved: bool,
}

/// Resolves interference: updates `end_positions` (one `Vec<Vec3>` per
/// mesh) in place so that all meshes are separated by at least δ, moving
/// only non-rigid meshes through their mobility.
pub fn resolve_contacts(
    meshes: &[TriMesh],
    end_positions: &mut [Vec<Vec3>],
    start_positions: &[Vec<Vec3>],
    obj_of: &[u32],
    mobility: &impl Mobility,
    opts: &NcpOptions,
) -> NcpResult {
    let nm = meshes.len();
    assert_eq!(end_positions.len(), nm);
    assert_eq!(start_positions.len(), nm);
    let mut displacements: Vec<Vec<Vec3>> = meshes
        .iter()
        .map(|m| vec![Vec3::ZERO; m.verts.len()])
        .collect();
    let mut lambda_total = 0.0;
    let mut initial_contacts = 0;
    let mut resolved = false;
    let mut outer = 0;

    for it in 0..opts.max_outer {
        outer = it + 1;
        // current end-of-step meshes
        let current: Vec<TriMesh> = meshes
            .par_iter()
            .zip(end_positions.par_iter())
            .map(|(m, pos)| m.with_positions(pos.clone()))
            .collect();
        let contacts: Vec<Contact> =
            detect_contacts(&current, Some(start_positions), obj_of, opts.detect)
                .into_iter()
                .filter(|c| c.value < 0.0)
                .collect();
        if it == 0 {
            initial_contacts = contacts.len();
        }
        if contacts.is_empty() {
            resolved = true;
            break;
        }
        let m = contacts.len();

        // per-contact: gradients and mobility responses on involved meshes
        struct ContactData {
            meshes: Vec<u32>,
            grads: Vec<Vec<(u32, Vec3)>>,
            disps: Vec<Vec<Vec3>>, // dense per mesh
        }
        let data: Vec<ContactData> = contacts
            .par_iter()
            .map(|c| {
                // meshes involved in this contact (movable only)
                let mut involved: Vec<u32> = c
                    .pairs
                    .iter()
                    .flat_map(|p| [p.vert_mesh, p.tri_mesh])
                    .filter(|&mi| !mobility.is_rigid(mi))
                    .collect();
                involved.sort_unstable();
                involved.dedup();
                let grads: Vec<Vec<(u32, Vec3)>> = involved
                    .iter()
                    .map(|&mi| c.gradient(mi, &current))
                    .collect();
                let disps: Vec<Vec<Vec3>> = involved
                    .iter()
                    .zip(&grads)
                    .map(|(&mi, g)| mobility.apply(mi, g, meshes[mi as usize].verts.len()))
                    .collect();
                ContactData {
                    meshes: involved,
                    grads,
                    disps,
                }
            })
            .collect();

        // sparse B keyed by (j, k): nonzero only when two contacts share a
        // movable mesh. Iteration must be in *sorted* mesh order: HashMap
        // order differs per instance (per-map hasher seeds), and the
        // floating-point accumulation order below would otherwise make
        // trajectories differ between bit-identical simulations — breaking
        // the checkpoint/restart bit-identity guarantee.
        let mut by_mesh: HashMap<u32, Vec<usize>> = HashMap::new();
        for (k, d) in data.iter().enumerate() {
            for &mi in &d.meshes {
                by_mesh.entry(mi).or_default().push(k);
            }
        }
        let mut mesh_groups: Vec<(u32, Vec<usize>)> = by_mesh.into_iter().collect();
        mesh_groups.sort_unstable_by_key(|e| e.0);
        let entries: Vec<((usize, usize), f64)> = mesh_groups
            .par_iter()
            .flat_map_iter(|&(mi, ref cs)| {
                let mut out = Vec::with_capacity(cs.len() * cs.len());
                for &j in cs {
                    let dj = &data[j];
                    let slot_j = dj.meshes.iter().position(|&x| x == mi).unwrap();
                    for &k in cs {
                        let dk = &data[k];
                        let slot_k = dk.meshes.iter().position(|&x| x == mi).unwrap();
                        // B_jk += ∇V_j(mesh) · Δx_k(mesh)
                        let mut acc = 0.0;
                        for &(v, g) in &dj.grads[slot_j] {
                            acc += g.dot(dk.disps[slot_k][v as usize]);
                        }
                        out.push(((j, k), acc));
                    }
                }
                out.into_iter()
            })
            .collect();
        let mut b_map: HashMap<(usize, usize), f64> = HashMap::new();
        for (key, v) in entries {
            *b_map.entry(key).or_insert(0.0) += v;
        }
        // sorted sparse triplets: the matvec accumulation into y[j] must
        // not depend on HashMap iteration order (see mesh_groups above)
        let mut b_entries: Vec<((usize, usize), f64)> = b_map.into_iter().collect();
        b_entries.sort_unstable_by_key(|&(k, _)| k);

        let q: Vec<f64> = contacts.iter().map(|c| c.value).collect();
        let apply_b = |x: &[f64], y: &mut [f64]| {
            y.iter_mut().for_each(|v| *v = 0.0);
            for &((j, k), v) in &b_entries {
                y[j] += v * x[k];
            }
        };
        let res = solve_lcp(m, apply_b, &q, &opts.lcp);
        lambda_total += res.lambda.iter().sum::<f64>();

        // apply Δx = Σ_k λ_k M ∇V_k to the end positions
        for (k, d) in data.iter().enumerate() {
            let lam = res.lambda[k];
            if lam == 0.0 {
                continue;
            }
            for (slot, &mi) in d.meshes.iter().enumerate() {
                let pos = &mut end_positions[mi as usize];
                let disp = &d.disps[slot];
                let dtot = &mut displacements[mi as usize];
                for (v, p) in pos.iter_mut().enumerate() {
                    *p += disp[v] * lam;
                    dtot[v] += disp[v] * lam;
                }
            }
        }
    }

    if !resolved {
        // final check
        let current: Vec<TriMesh> = meshes
            .iter()
            .zip(end_positions.iter())
            .map(|(m, pos)| m.with_positions(pos.clone()))
            .collect();
        resolved = detect_contacts(&current, Some(start_positions), obj_of, opts.detect)
            .iter()
            .all(|c| c.value >= -1e-12);
    }

    NcpResult {
        displacements,
        lambda_total,
        initial_contacts,
        outer_iters: outer,
        resolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::triangulate_grid;

    fn flat_square(z: f64) -> TriMesh {
        let m = 5;
        let mut grid = Vec::new();
        for j in 0..m {
            for i in 0..m {
                grid.push(Vec3::new(i as f64 * 0.25, j as f64 * 0.25, z));
            }
        }
        triangulate_grid(&grid, m)
    }

    #[test]
    fn separates_two_sheets() {
        let a = flat_square(0.0);
        let b = flat_square(0.04);
        let meshes = vec![a.clone(), b.clone()];
        let start = vec![a.verts.clone(), b.verts.clone()];
        let mut end = start.clone();
        let mobility = IdentityMobility {
            scale: 1.0,
            rigid: vec![false, false],
        };
        let opts = NcpOptions {
            detect: DetectOptions { delta: 0.1 },
            ..Default::default()
        };
        let res = resolve_contacts(&meshes, &mut end, &start, &[0, 1], &mobility, &opts);
        assert!(
            res.resolved,
            "not resolved after {} iterations",
            res.outer_iters
        );
        assert!(res.initial_contacts == 1);
        // sheets now separated by ≥ δ (within LCP tolerance)
        let zmax_a = end[0].iter().map(|p| p.z).fold(f64::MIN, f64::max);
        let zmin_b = end[1].iter().map(|p| p.z).fold(f64::MAX, f64::min);
        assert!(
            zmin_b - zmax_a > 0.1 - 1e-6,
            "separation {} < delta",
            zmin_b - zmax_a
        );
        // symmetric: both sheets moved by equal and opposite amounts
        let da: Vec3 = res.displacements[0].iter().copied().sum();
        let db: Vec3 = res.displacements[1].iter().copied().sum();
        assert!((da + db).norm() < 1e-8 * (da.norm() + db.norm()).max(1e-30));
    }

    #[test]
    fn rigid_wall_moves_only_the_cell() {
        let wall = flat_square(0.0);
        let sheet = flat_square(0.05);
        let meshes = vec![wall.clone(), sheet.clone()];
        let start = vec![wall.verts.clone(), sheet.verts.clone()];
        let mut end = start.clone();
        let mobility = IdentityMobility {
            scale: 1.0,
            rigid: vec![true, false],
        };
        let opts = NcpOptions {
            detect: DetectOptions { delta: 0.1 },
            ..Default::default()
        };
        let res = resolve_contacts(&meshes, &mut end, &start, &[0, 1], &mobility, &opts);
        assert!(res.resolved);
        // wall untouched
        for (p, q) in end[0].iter().zip(&wall.verts) {
            assert_eq!(p, q);
        }
        // sheet lifted to z ≥ 0.1
        let zmin = end[1].iter().map(|p| p.z).fold(f64::MAX, f64::min);
        assert!(zmin > 0.1 - 1e-6, "zmin {zmin}");
    }

    #[test]
    fn no_contacts_is_noop() {
        let a = flat_square(0.0);
        let b = flat_square(5.0);
        let meshes = vec![a.clone(), b.clone()];
        let start = vec![a.verts.clone(), b.verts.clone()];
        let mut end = start.clone();
        let mobility = IdentityMobility {
            scale: 1.0,
            rigid: vec![false, false],
        };
        let res = resolve_contacts(
            &meshes,
            &mut end,
            &start,
            &[0, 1],
            &mobility,
            &NcpOptions::default(),
        );
        assert!(res.resolved);
        assert_eq!(res.initial_contacts, 0);
        assert_eq!(res.lambda_total, 0.0);
        assert_eq!(end, start);
    }

    #[test]
    fn three_body_pileup_resolves() {
        let a = flat_square(0.0);
        let b = flat_square(0.05);
        let c = flat_square(0.10);
        let meshes = vec![a.clone(), b.clone(), c.clone()];
        let start: Vec<Vec<Vec3>> = meshes.iter().map(|m| m.verts.clone()).collect();
        let mut end = start.clone();
        let mobility = IdentityMobility {
            scale: 1.0,
            rigid: vec![false, false, false],
        };
        let opts = NcpOptions {
            detect: DetectOptions { delta: 0.08 },
            max_outer: 20,
            ..Default::default()
        };
        let res = resolve_contacts(&meshes, &mut end, &start, &[0, 1, 2], &mobility, &opts);
        assert!(res.resolved, "unresolved after {}", res.outer_iters);
        let z0 = end[0].iter().map(|p| p.z).fold(f64::MIN, f64::max);
        let z1min = end[1].iter().map(|p| p.z).fold(f64::MAX, f64::min);
        let z1max = end[1].iter().map(|p| p.z).fold(f64::MIN, f64::max);
        let z2 = end[2].iter().map(|p| p.z).fold(f64::MAX, f64::min);
        assert!(z1min - z0 > 0.08 - 1e-6);
        assert!(z2 - z1max > 0.08 - 1e-6);
    }
}
