//! Linear triangle-mesh proxies for collision handling.
//!
//! "The key step to algorithmically unify RBCs and patches is to form a
//! linear triangle mesh approximation of both objects" (§4). RBC meshes
//! come from the upsampled lat–long grid (2,112 points at the paper's
//! resolution), vessel-patch meshes from the 22² equispaced grid.

use linalg::{Aabb, ByteReader, ByteWriter, CodecError, Vec3};

/// A triangle mesh with per-vertex area weights (used to weight the
/// interference measure).
#[derive(Clone, Debug)]
pub struct TriMesh {
    /// Vertex positions.
    pub verts: Vec<Vec3>,
    /// Triangles (ccw indices into `verts`).
    pub tris: Vec<[u32; 3]>,
    /// Per-vertex area weight (one third of incident triangle areas).
    pub vert_area: Vec<f64>,
}

impl TriMesh {
    /// Builds a mesh and computes vertex area weights.
    pub fn new(verts: Vec<Vec3>, tris: Vec<[u32; 3]>) -> TriMesh {
        let mut vert_area = vec![0.0; verts.len()];
        for t in &tris {
            let a = verts[t[0] as usize];
            let b = verts[t[1] as usize];
            let c = verts[t[2] as usize];
            let area = 0.5 * (b - a).cross(c - a).norm();
            for &v in t {
                vert_area[v as usize] += area / 3.0;
            }
        }
        TriMesh {
            verts,
            tris,
            vert_area,
        }
    }

    /// Replaces vertex positions (same connectivity), refreshing areas.
    pub fn with_positions(&self, verts: Vec<Vec3>) -> TriMesh {
        assert_eq!(verts.len(), self.verts.len());
        TriMesh::new(verts, self.tris.clone())
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        self.vert_area.iter().sum()
    }

    /// Bounding box of the mesh.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::from_points(self.verts.iter().copied())
    }

    /// Space-time bounding box: the box containing the mesh at these
    /// positions and at `end_verts` (§4, Fig. 3), inflated by `margin`.
    pub fn space_time_box(&self, end_verts: &[Vec3], margin: f64) -> Aabb {
        let b = Aabb::from_points(self.verts.iter().chain(end_verts.iter()).copied());
        b.inflated(margin)
    }

    /// Serializes the mesh (vertices, connectivity, area weights)
    /// bit-exactly — the checkpoint system hashes these bytes to verify a
    /// rebuilt domain matches the one a checkpoint was captured from.
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.verts.len());
        for v in &self.verts {
            w.put_vec3(*v);
        }
        w.put_usize(self.tris.len());
        for t in &self.tris {
            w.put_u32(t[0]);
            w.put_u32(t[1]);
            w.put_u32(t[2]);
        }
        w.put_f64_slice(&self.vert_area);
    }

    /// Reconstructs a mesh from bytes written by [`TriMesh::write_state`].
    pub fn read_state(r: &mut ByteReader) -> Result<TriMesh, CodecError> {
        let nv = r.get_usize()?;
        let mut verts = Vec::with_capacity(nv.min(r.remaining() / 24));
        for _ in 0..nv {
            verts.push(r.get_vec3()?);
        }
        let nt = r.get_usize()?;
        let mut tris = Vec::with_capacity(nt.min(r.remaining() / 12));
        for _ in 0..nt {
            let t = [r.get_u32()?, r.get_u32()?, r.get_u32()?];
            if t.iter().any(|&i| i as usize >= verts.len()) {
                return Err(CodecError(format!("triangle index out of range: {t:?}")));
            }
            tris.push(t);
        }
        let vert_area = r.get_f64_vec()?;
        if vert_area.len() != verts.len() {
            return Err(CodecError("vertex-area length mismatch".into()));
        }
        Ok(TriMesh {
            verts,
            tris,
            vert_area,
        })
    }
}

/// Triangulates a closed lat–long grid (nlat rows × nlon periodic columns,
/// latitude-major) by adding two pole vertices. Used for RBC collision
/// meshes: for order-16 cells upsampled 2× this yields the paper's 2,112
/// surface points (33 × 64) plus poles.
pub fn triangulate_latlon(
    grid: &[Vec3],
    nlat: usize,
    nlon: usize,
    north: Vec3,
    south: Vec3,
) -> TriMesh {
    assert_eq!(grid.len(), nlat * nlon);
    let mut verts = grid.to_vec();
    let np = verts.len() as u32;
    verts.push(north); // index np
    verts.push(south); // index np + 1
    let mut tris = Vec::with_capacity(2 * nlat * nlon);
    let idx = |i: usize, j: usize| (i * nlon + (j % nlon)) as u32;
    // pole fans (row 0 is closest to θ = 0, i.e. north)
    for j in 0..nlon {
        tris.push([np, idx(0, j + 1), idx(0, j)]);
        tris.push([np + 1, idx(nlat - 1, j), idx(nlat - 1, j + 1)]);
    }
    // body quads
    for i in 0..nlat - 1 {
        for j in 0..nlon {
            let v00 = idx(i, j);
            let v01 = idx(i, j + 1);
            let v10 = idx(i + 1, j);
            let v11 = idx(i + 1, j + 1);
            tris.push([v00, v01, v11]);
            tris.push([v00, v11, v10]);
        }
    }
    TriMesh::new(verts, tris)
}

/// Triangulates an `m × m` patch sample grid (u fastest).
pub fn triangulate_grid(grid: &[Vec3], m: usize) -> TriMesh {
    assert_eq!(grid.len(), m * m);
    let mut tris = Vec::with_capacity(2 * (m - 1) * (m - 1));
    for j in 0..m - 1 {
        for i in 0..m - 1 {
            let v00 = (j * m + i) as u32;
            let v10 = v00 + 1;
            let v01 = ((j + 1) * m + i) as u32;
            let v11 = v01 + 1;
            tris.push([v00, v10, v11]);
            tris.push([v00, v11, v01]);
        }
    }
    TriMesh::new(grid.to_vec(), tris)
}

/// Closest point on triangle `(a, b, c)` to point `p` (Ericson, *Real-Time
/// Collision Detection*). Returns the closest point.
pub fn closest_point_on_triangle(p: Vec3, a: Vec3, b: Vec3, c: Vec3) -> Vec3 {
    let ab = b - a;
    let ac = c - a;
    let ap = p - a;
    let d1 = ab.dot(ap);
    let d2 = ac.dot(ap);
    if d1 <= 0.0 && d2 <= 0.0 {
        return a;
    }
    let bp = p - b;
    let d3 = ab.dot(bp);
    let d4 = ac.dot(bp);
    if d3 >= 0.0 && d4 <= d3 {
        return b;
    }
    let vc = d1 * d4 - d3 * d2;
    if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
        let v = d1 / (d1 - d3);
        return a + ab * v;
    }
    let cp = p - c;
    let d5 = ab.dot(cp);
    let d6 = ac.dot(cp);
    if d6 >= 0.0 && d5 <= d6 {
        return c;
    }
    let vb = d5 * d2 - d1 * d6;
    if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
        let w = d2 / (d2 - d6);
        return a + ac * w;
    }
    let va = d3 * d6 - d5 * d4;
    if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
        let w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
        return b + (c - b) * w;
    }
    let denom = 1.0 / (va + vb + vc);
    let v = vb * denom;
    let w = vc * denom;
    a + ab * v + ac * w
}

/// Barycentric coordinates of a point assumed on the triangle plane.
pub fn barycentric(p: Vec3, a: Vec3, b: Vec3, c: Vec3) -> (f64, f64, f64) {
    let v0 = b - a;
    let v1 = c - a;
    let v2 = p - a;
    let d00 = v0.dot(v0);
    let d01 = v0.dot(v1);
    let d11 = v1.dot(v1);
    let d20 = v2.dot(v0);
    let d21 = v2.dot(v1);
    let denom = d00 * d11 - d01 * d01;
    if denom.abs() < 1e-300 {
        return (1.0, 0.0, 0.0);
    }
    let v = (d11 * d20 - d01 * d21) / denom;
    let w = (d00 * d21 - d01 * d20) / denom;
    (1.0 - v - w, v, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latlon_mesh_is_closed_sphere() {
        // sample a unit sphere on a 9 × 16 grid
        let (nlat, nlon) = (9usize, 16usize);
        let mut grid = Vec::new();
        for i in 0..nlat {
            let th = std::f64::consts::PI * (i as f64 + 0.5) / nlat as f64;
            for j in 0..nlon {
                let ph = 2.0 * std::f64::consts::PI * j as f64 / nlon as f64;
                grid.push(Vec3::new(
                    th.sin() * ph.cos(),
                    th.sin() * ph.sin(),
                    th.cos(),
                ));
            }
        }
        let mesh = triangulate_latlon(
            &grid,
            nlat,
            nlon,
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, -1.0),
        );
        assert_eq!(mesh.verts.len(), nlat * nlon + 2);
        assert_eq!(mesh.tris.len(), 2 * nlon + 2 * (nlat - 1) * nlon);
        // area close to 4π, Euler characteristic 2 for a sphere
        let area = mesh.area();
        assert!((area - 4.0 * std::f64::consts::PI).abs() / (4.0 * std::f64::consts::PI) < 0.05);
        let v = mesh.verts.len() as i64;
        let f = mesh.tris.len() as i64;
        // count unique edges
        let mut edges = std::collections::HashSet::new();
        for t in &mesh.tris {
            for k in 0..3 {
                let a = t[k].min(t[(k + 1) % 3]);
                let b = t[k].max(t[(k + 1) % 3]);
                edges.insert((a, b));
            }
        }
        let e = edges.len() as i64;
        assert_eq!(v - e + f, 2, "Euler characteristic");
    }

    #[test]
    fn grid_mesh_counts_and_area() {
        let m = 5;
        let mut grid = Vec::new();
        for j in 0..m {
            for i in 0..m {
                grid.push(Vec3::new(i as f64, j as f64, 0.0));
            }
        }
        let mesh = triangulate_grid(&grid, m);
        assert_eq!(mesh.tris.len(), 2 * 16);
        assert!((mesh.area() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn closest_point_on_triangle_regions() {
        let a = Vec3::ZERO;
        let b = Vec3::new(1.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        // interior projection
        let p = Vec3::new(0.25, 0.25, 1.0);
        assert!(
            (closest_point_on_triangle(p, a, b, c) - Vec3::new(0.25, 0.25, 0.0)).norm() < 1e-14
        );
        // vertex region
        let p = Vec3::new(-1.0, -1.0, 0.0);
        assert_eq!(closest_point_on_triangle(p, a, b, c), a);
        // edge region
        let p = Vec3::new(0.5, -1.0, 0.0);
        assert!((closest_point_on_triangle(p, a, b, c) - Vec3::new(0.5, 0.0, 0.0)).norm() < 1e-14);
    }

    #[test]
    fn barycentric_roundtrip() {
        let a = Vec3::new(0.0, 0.0, 1.0);
        let b = Vec3::new(2.0, 0.0, 1.0);
        let c = Vec3::new(0.0, 3.0, 1.0);
        let p = a * 0.2 + b * 0.5 + c * 0.3;
        let (u, v, w) = barycentric(p, a, b, c);
        assert!((u - 0.2).abs() < 1e-12);
        assert!((v - 0.5).abs() < 1e-12);
        assert!((w - 0.3).abs() < 1e-12);
    }

    #[test]
    fn space_time_box_covers_both_ends() {
        let mesh = triangulate_grid(
            &[
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
            ],
            2,
        );
        let moved: Vec<Vec3> = mesh
            .verts
            .iter()
            .map(|&v| v + Vec3::new(0.0, 0.0, 2.0))
            .collect();
        let b = mesh.space_time_box(&moved, 0.1);
        assert!(b.contains(Vec3::new(0.5, 0.5, 0.0)));
        assert!(b.contains(Vec3::new(0.5, 0.5, 2.0)));
        assert!(b.contains(Vec3::new(-0.05, 0.0, 1.0)));
    }

    #[test]
    fn mesh_state_round_trips_bit_exactly() {
        let grid: Vec<Vec3> = (0..12)
            .map(|i| Vec3::new((i % 4) as f64 * 0.3, (i / 4) as f64 * 0.7, (i as f64).sin()))
            .collect();
        let mesh = triangulate_latlon(
            &grid,
            3,
            4,
            Vec3::new(0.5, 0.5, 2.0),
            Vec3::new(0.5, 0.5, -2.0),
        );
        let mut w = linalg::ByteWriter::new();
        mesh.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = linalg::ByteReader::new(&bytes);
        let back = TriMesh::read_state(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back.tris, mesh.tris);
        for (a, b) in back.verts.iter().zip(&mesh.verts) {
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits(), a.z.to_bits()),
                (b.x.to_bits(), b.y.to_bits(), b.z.to_bits())
            );
        }
        let a: Vec<u64> = back.vert_area.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = mesh.vert_area.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);

        // corrupt a triangle index beyond the vertex count → rejected
        let mut bad = bytes.clone();
        // first triangle starts right after the vertex block
        let tri_off = 8 + mesh.verts.len() * 24 + 8;
        bad[tri_off..tri_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(TriMesh::read_state(&mut linalg::ByteReader::new(&bad)).is_err());
    }
}
