//! # collision — parallel contact detection and resolution (§4)
//!
//! Keeps RBC–RBC and RBC–vessel configurations interference-free by solving
//! the nonlinear complementarity problem (Eq. 2.11) as a sequence of
//! linearized LCPs:
//!
//! - [`mesh`]: linear triangle-mesh proxies of cells (upsampled lat–long
//!   grids) and vessel patches (equispaced grids), the unifying step of §4;
//! - [`detect`]: space-time bounding boxes + Morton-hash candidate search
//!   and the per-object-pair interference measure `V` with gradients
//!   (see DESIGN.md for the documented simplification of the space-time
//!   volume of \[17\]/\[25\]);
//! - [`lcp`]: minimum-map Newton over GMRES;
//! - [`ncp`]: the outer re-linearization loop with the sparse hash-map
//!   coupling matrix `B` and the object mobilities supplied by the caller.

#![warn(missing_docs)]

pub mod detect;
pub mod lcp;
pub mod mesh;
pub mod ncp;

pub use detect::{detect_contacts, Contact, ContactPair, DetectOptions};
pub use lcp::{solve_lcp, LcpOptions, LcpResult};
pub use mesh::{
    barycentric, closest_point_on_triangle, triangulate_grid, triangulate_latlon, TriMesh,
};
pub use ncp::{resolve_contacts, IdentityMobility, Mobility, NcpOptions, NcpResult};
