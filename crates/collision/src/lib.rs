//! # collision — parallel contact detection and resolution (§4)
//!
//! Keeps RBC–RBC and RBC–vessel configurations interference-free by solving
//! the nonlinear complementarity problem (Eq. 2.11) as a sequence of
//! linearized LCPs:
//!
//! - [`mesh`]: linear triangle-mesh proxies of cells (upsampled lat–long
//!   grids) and vessel patches (equispaced grids), the unifying step of §4;
//! - [`detect`]: space-time bounding boxes + a binned uniform grid over
//!   triangle AABBs for output-sensitive vertex–triangle candidates, and
//!   the per-object-pair interference measure `V` with gradients (see
//!   DESIGN.md for the documented simplification of the space-time volume
//!   of \[17\]/\[25\]; the exhaustive reference scan stays available behind
//!   [`detect::BroadPhase::BruteForce`]);
//! - [`lcp`]: minimum-map Newton over GMRES;
//! - [`ncp`]: the outer re-linearization loop with the deterministic CSR
//!   coupling matrix `B`, batched per-mesh mobility applies
//!   ([`Mobility::apply_many`]), and the object mobilities supplied by the
//!   caller.
//!
//! See `crates/collision/README.md` for the pipeline walk-through, the
//! broad-phase cell sizing rule, and the determinism rules every parallel
//! fold in this crate follows.

#![warn(missing_docs)]

pub mod detect;
pub mod lcp;
pub mod mesh;
pub mod ncp;

pub use detect::{detect_contacts, BroadPhase, Contact, ContactPair, DetectOptions};
pub use lcp::{solve_lcp, LcpOptions, LcpResult};
pub use mesh::{
    barycentric, closest_point_on_triangle, triangulate_grid, triangulate_latlon, TriMesh,
};
pub use ncp::{resolve_contacts, IdentityMobility, Mobility, NcpOptions, NcpResult};
