//! Singular self-interaction quadrature for the single-layer potential on a
//! cell surface.
//!
//! The paper evaluates `S_i f_i` on `γ_i` with the spectral rotation
//! quadrature of \[14, 48\] and the precomputed-operator variant of \[28\]. We
//! substitute the unified check-point scheme already used for the vessel
//! boundary (§3.1) — the QBX-style evaluation both build on: upsample the
//! density to the 2×-refined grid, evaluate the (now smooth) potential at
//! check points along the outward normal, and extrapolate back to the
//! surface. Like \[28\], the composed linear operator is precomputed per cell
//! per time step, so the many applications inside the implicit solve and
//! the LCP assembly are dense matvecs (MKL-style BLAS work in the paper).

use crate::geometry::surface_geometry;
use kernels::stokeslet_matrix;
use linalg::{checkpoint_extrapolation_weights, Mat};
use parking_lot::Mutex;
use rayon::prelude::*;
use sphharm::{SphBasis, SphCoeffs};
use std::collections::HashMap;
use std::sync::Arc;

/// Parameters of the self-interaction quadrature.
#[derive(Clone, Copy, Debug)]
pub struct SelfOpOptions {
    /// Upsampling factor for the fine grid (2 reproduces the paper's 544 →
    /// 2,112 points at p = 16).
    pub upsample: usize,
    /// Number of check points − 1.
    pub p_extrap: usize,
    /// First check distance as a multiple of the mean grid spacing.
    pub big_r: f64,
    /// Check spacing as a multiple of the mean grid spacing.
    pub small_r: f64,
}

impl Default for SelfOpOptions {
    fn default() -> Self {
        SelfOpOptions {
            upsample: 2,
            p_extrap: 8,
            big_r: 2.0,
            small_r: 1.0,
        }
    }
}

/// Process-wide cache of the (geometry-independent) spectral upsampling
/// matrices `p → p_up` (grid values to grid values, one scalar component).
static UPSAMPLE_CACHE: Mutex<Option<HashMap<(usize, usize), Arc<Mat>>>> = Mutex::new(None);

/// Returns the dense grid-to-grid spectral upsampling matrix from order `p`
/// to order `pu` (zero-padding in coefficient space).
pub fn upsample_matrix(p: usize, pu: usize) -> Arc<Mat> {
    let key = (p, pu);
    let mut guard = UPSAMPLE_CACHE.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(m) = map.get(&key) {
        return m.clone();
    }
    let bp = SphBasis::new(p);
    let bu = SphBasis::new(pu);
    let n = bp.grid_size();
    let nu = bu.grid_size();
    let mut m = Mat::zeros(nu, n);
    // columns: unit impulses at coarse grid nodes
    let cols: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|j| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let c = bp.analyze(&e).resampled(pu);
            bu.synthesize(&c, sphharm::Deriv::None)
        })
        .collect();
    for (j, col) in cols.iter().enumerate() {
        for i in 0..nu {
            m[(i, j)] = col[i];
        }
    }
    let arc = Arc::new(m);
    map.insert(key, arc.clone());
    arc
}

/// The precomputed self-interaction operator of one cell: applies
/// `f ↦ S_i f` (single-layer Stokes) from the coarse grid to the coarse
/// grid. Rebuilt whenever the cell geometry changes (once per time step).
pub struct SelfInteraction {
    /// Kernel+extrapolation matrix: (3N × 3N_up).
    k_mat: Mat,
    /// Shared spectral upsampling matrix (N_up × N, per component).
    upsample: Arc<Mat>,
    n: usize,
    nu: usize,
}

impl SelfInteraction {
    /// Builds the operator for a cell with the given position coefficients.
    pub fn build(
        basis: &SphBasis,
        coeffs: &[SphCoeffs; 3],
        mu: f64,
        opts: SelfOpOptions,
    ) -> SelfInteraction {
        let pu = basis.p * opts.upsample;
        let bu = SphBasis::new(pu);
        let upsample = upsample_matrix(basis.p, pu);
        // fine geometry (positions + quadrature weights)
        let cu: [SphCoeffs; 3] = [
            coeffs[0].resampled(pu),
            coeffs[1].resampled(pu),
            coeffs[2].resampled(pu),
        ];
        let geo_u = surface_geometry(&bu, &cu);
        let geo_c = surface_geometry(basis, coeffs);

        let n = basis.grid_size();
        let nu = bu.grid_size();
        // mean grid spacing of the fine grid: sqrt(area / N_up)
        let h = (geo_u.area() / nu as f64).sqrt();
        let big_r = opts.big_r * h;
        let small_r = opts.small_r * h;
        let p1 = opts.p_extrap + 1;
        let ew = checkpoint_extrapolation_weights(big_r, small_r, opts.p_extrap, 0.0);

        // K[(3i+a),(3j+b)] = Σ_k e_k S_ab(c_ik, y_j) w_j
        let mut k_mat = Mat::zeros(3 * n, 3 * nu);
        let rows: Vec<(usize, Vec<f64>)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let mut row = vec![0.0; 3 * 3 * nu]; // 3 rows of the matrix
                let xi = geo_c.x[i];
                let ni = geo_c.normal[i];
                for k in 0..p1 {
                    let t = big_r + k as f64 * small_r;
                    let c = xi + ni * t; // exterior check point
                    let e = ew[k];
                    for j in 0..nu {
                        let s = stokeslet_matrix(c, geo_u.x[j], mu);
                        let w = geo_u.w_quad[j] * e;
                        for a in 0..3 {
                            for b in 0..3 {
                                row[a * 3 * nu + 3 * j + b] += s[a][b] * w;
                            }
                        }
                    }
                }
                (i, row)
            })
            .collect();
        for (i, row) in rows {
            for a in 0..3 {
                k_mat
                    .row_mut(3 * i + a)
                    .copy_from_slice(&row[a * 3 * nu..(a + 1) * 3 * nu]);
            }
        }
        SelfInteraction {
            k_mat,
            upsample,
            n,
            nu,
        }
    }

    /// Applies `S_i` to a force density on the coarse grid (xyz-interleaved,
    /// `3N` entries), returning the velocity on the coarse grid.
    pub fn apply(&self, f: &[f64]) -> Vec<f64> {
        assert_eq!(f.len(), 3 * self.n);
        // upsample per component
        let mut fu = vec![0.0; 3 * self.nu];
        let mut comp = vec![0.0; self.n];
        for c in 0..3 {
            for i in 0..self.n {
                comp[i] = f[3 * i + c];
            }
            let up = self.upsample.matvec(&comp);
            for j in 0..self.nu {
                fu[3 * j + c] = up[j];
            }
        }
        self.k_mat.matvec(&fu)
    }

    /// Applies `S_i` to a batch of `K` force-density columns at once
    /// (`3N × K`, each column xyz-interleaved on the coarse grid),
    /// returning the `3N × K` velocity columns. Same operator as
    /// [`SelfInteraction::apply`], but both linear stages (spectral
    /// upsampling and the kernel matrix) run as GEMMs over the packed
    /// columns — this is what makes the collision pipeline's batched
    /// per-mesh mobility applies cheap.
    pub fn apply_many(&self, f_cols: &Mat) -> Mat {
        assert_eq!(f_cols.rows(), 3 * self.n, "apply_many: column height");
        let k = f_cols.cols();
        // upsample per component: gather (N × K), GEMM, scatter (N_up × K)
        let mut fu = Mat::zeros(3 * self.nu, k);
        let mut comp = Mat::zeros(self.n, k);
        for c in 0..3 {
            for i in 0..self.n {
                comp.row_mut(i).copy_from_slice(f_cols.row(3 * i + c));
            }
            let up = self.upsample.matmul(&comp);
            for j in 0..self.nu {
                fu.row_mut(3 * j + c).copy_from_slice(up.row(j));
            }
        }
        self.k_mat.matmul(&fu)
    }

    /// Coarse grid size N.
    pub fn grid_size(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::sphere_coeffs;
    use linalg::Vec3;

    #[test]
    fn upsample_matrix_reproduces_bandlimited() {
        let (p, pu) = (6, 12);
        let m = upsample_matrix(p, pu);
        let bp = SphBasis::new(p);
        let bu = SphBasis::new(pu);
        let mut c = SphCoeffs::zeros(p);
        c.set_a(2, 1, 0.7);
        c.set_b(3, 2, -0.4);
        let coarse = bp.synthesize(&c, sphharm::Deriv::None);
        let fine = m.matvec(&coarse);
        let exact = bu.synthesize(&c.resampled(pu), sphharm::Deriv::None);
        for (u, v) in fine.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn translating_sphere_identity() {
        // single layer of the uniform Stokes-drag traction on a sphere of
        // radius a gives the rigid translation velocity U on the surface:
        // t = 3μU/(2a)  ⇒  S[t] = U.
        let p = 12;
        let a = 1.3;
        let mu = 0.8;
        let basis = SphBasis::new(p);
        let coeffs = sphere_coeffs(&basis, a, Vec3::ZERO);
        let op = SelfInteraction::build(&basis, &coeffs, mu, SelfOpOptions::default());
        let n = basis.grid_size();
        let u_ref = Vec3::new(0.3, -1.0, 0.5);
        let t = u_ref * (3.0 * mu / (2.0 * a));
        let mut f = vec![0.0; 3 * n];
        for i in 0..n {
            f[3 * i] = t.x;
            f[3 * i + 1] = t.y;
            f[3 * i + 2] = t.z;
        }
        let u = op.apply(&f);
        let mut max_err = 0.0_f64;
        for i in 0..n {
            let got = Vec3::new(u[3 * i], u[3 * i + 1], u[3 * i + 2]);
            max_err = max_err.max((got - u_ref).norm());
        }
        // accuracy is limited by the extrapolation span relative to the
        // surface curvature scale; it tightens with the grid (≈1e-5 at the
        // production p = 16)
        assert!(
            max_err < 2.5e-3 * u_ref.norm(),
            "translating-sphere error {max_err}"
        );
    }

    #[test]
    fn apply_many_matches_per_column_apply() {
        let p = 8;
        let basis = SphBasis::new(p);
        let coeffs = sphere_coeffs(&basis, 1.0, Vec3::ZERO);
        let op = SelfInteraction::build(&basis, &coeffs, 1.0, SelfOpOptions::default());
        let n = basis.grid_size();
        let k = 5;
        let cols = Mat::from_fn(3 * n, k, |i, c| ((i * 7 + c * 13) as f64 * 0.11).sin());
        let batched = op.apply_many(&cols);
        assert_eq!((batched.rows(), batched.cols()), (3 * n, k));
        for c in 0..k {
            let f: Vec<f64> = (0..3 * n).map(|i| cols[(i, c)]).collect();
            let single = op.apply(&f);
            let scale: f64 = single.iter().fold(1e-30, |a, v| a.max(v.abs()));
            for i in 0..3 * n {
                assert!(
                    (batched[(i, c)] - single[i]).abs() < 1e-12 * scale,
                    "col {c} row {i}: {} vs {}",
                    batched[(i, c)],
                    single[i]
                );
            }
        }
    }

    #[test]
    fn operator_is_linear_and_symmetricish() {
        let p = 8;
        let basis = SphBasis::new(p);
        let coeffs = sphere_coeffs(&basis, 1.0, Vec3::ZERO);
        let op = SelfInteraction::build(&basis, &coeffs, 1.0, SelfOpOptions::default());
        let n = basis.grid_size();
        let f1: Vec<f64> = (0..3 * n).map(|i| (i as f64 * 0.17).sin()).collect();
        let f2: Vec<f64> = (0..3 * n).map(|i| (i as f64 * 0.05).cos()).collect();
        let u1 = op.apply(&f1);
        let u2 = op.apply(&f2);
        let fsum: Vec<f64> = f1.iter().zip(&f2).map(|(a, b)| a + 2.0 * b).collect();
        let usum = op.apply(&fsum);
        for i in 0..3 * n {
            assert!((usum[i] - u1[i] - 2.0 * u2[i]).abs() < 1e-10);
        }
    }
}
