//! Differential geometry of spherical-harmonic cell surfaces.
//!
//! From the three coefficient sets of the position field we compute, on the
//! (p+1) × 2p grid: tangents, normals, the first and second fundamental
//! forms, mean and Gaussian curvature, the area element, and the
//! Laplace–Beltrami operator — everything the Canham–Helfrich bending force
//! (§2.1) and the inextensibility tension need.

use linalg::Vec3;
use sphharm::{Deriv, SphBasis, SphCoeffs};

/// Pointwise surface geometry on the spherical-harmonic grid.
#[derive(Clone, Debug)]
pub struct SurfaceGeometry {
    /// Positions `X`.
    pub x: Vec<Vec3>,
    /// ∂X/∂θ.
    pub xt: Vec<Vec3>,
    /// ∂X/∂φ.
    pub xp: Vec<Vec3>,
    /// Outward unit normals.
    pub normal: Vec<Vec3>,
    /// First fundamental form E = X_θ·X_θ.
    pub e: Vec<f64>,
    /// First fundamental form F = X_θ·X_φ.
    pub f: Vec<f64>,
    /// First fundamental form G = X_φ·X_φ.
    pub g: Vec<f64>,
    /// Area element W = √(EG − F²).
    pub w: Vec<f64>,
    /// Mean curvature H = (E·N − 2F·M + G·L)/(2W²); for a sphere of radius
    /// `a` with outward normals this convention gives `H = −1/a`.
    pub h: Vec<f64>,
    /// Gaussian curvature K = (LN − M²)/W².
    pub kg: Vec<f64>,
    /// Quadrature weight per grid node for surface integrals
    /// (`∫ f dA = Σ w_quad f`), Jacobian included.
    pub w_quad: Vec<f64>,
    /// First-order Laplace–Beltrami coefficient `b¹` (see
    /// [`SurfaceGeometry::laplace_beltrami`]).
    pub lb_b1: Vec<f64>,
    /// First-order Laplace–Beltrami coefficient `b²`.
    pub lb_b2: Vec<f64>,
}

/// Computes the geometry of the surface given its position coefficients.
pub fn surface_geometry(basis: &SphBasis, coeffs: &[SphCoeffs; 3]) -> SurfaceGeometry {
    let n = basis.grid_size();
    let synth = |d: Deriv| -> Vec<Vec3> {
        let gx = basis.synthesize(&coeffs[0], d);
        let gy = basis.synthesize(&coeffs[1], d);
        let gz = basis.synthesize(&coeffs[2], d);
        (0..n).map(|i| Vec3::new(gx[i], gy[i], gz[i])).collect()
    };
    let x = synth(Deriv::None);
    let xt = synth(Deriv::Dtheta);
    let xp = synth(Deriv::Dphi);
    let xtt = synth(Deriv::Dtheta2);
    let xtp = synth(Deriv::DthetaDphi);
    let xpp = synth(Deriv::Dphi2);

    let mut geo = SurfaceGeometry {
        x,
        xt,
        xp,
        normal: vec![Vec3::ZERO; n],
        e: vec![0.0; n],
        f: vec![0.0; n],
        g: vec![0.0; n],
        w: vec![0.0; n],
        h: vec![0.0; n],
        kg: vec![0.0; n],
        w_quad: vec![0.0; n],
        lb_b1: vec![0.0; n],
        lb_b2: vec![0.0; n],
    };
    for i in 0..n {
        let e = geo.xt[i].dot(geo.xt[i]);
        let f = geo.xt[i].dot(geo.xp[i]);
        let g = geo.xp[i].dot(geo.xp[i]);
        let cross = geo.xt[i].cross(geo.xp[i]);
        let w = cross.norm().max(1e-300);
        let nrm = cross / w;
        let l = xtt[i].dot(nrm);
        let m = xtp[i].dot(nrm);
        let nn = xpp[i].dot(nrm);
        geo.e[i] = e;
        geo.f[i] = f;
        geo.g[i] = g;
        geo.w[i] = w;
        geo.normal[i] = nrm;
        geo.h[i] = (e * nn - 2.0 * f * m + g * l) / (2.0 * w * w);
        geo.kg[i] = (l * nn - m * m) / (w * w);
    }
    // Laplace–Beltrami first-order coefficients from pointwise metric
    // derivatives (spectral X-derivatives are exact at the nodes, while the
    // flux intermediates of the divergence form are not smooth scalar
    // fields on the sphere and must not be differentiated spectrally):
    //   b¹ = [∂θ(G/W) + ∂φ(−F/W)] / W,   b² = [∂θ(−F/W) + ∂φ(E/W)] / W.
    for i in 0..n {
        let (e, f, g, w) = (geo.e[i], geo.f[i], geo.g[i], geo.w[i]);
        let e_t = 2.0 * geo.xt[i].dot(xtt[i]);
        let e_p = 2.0 * geo.xt[i].dot(xtp[i]);
        let f_t = xtt[i].dot(geo.xp[i]) + geo.xt[i].dot(xtp[i]);
        let f_p = xtp[i].dot(geo.xp[i]) + geo.xt[i].dot(xpp[i]);
        let g_t = 2.0 * geo.xp[i].dot(xtp[i]);
        let g_p = 2.0 * geo.xp[i].dot(xpp[i]);
        let w_t = (e_t * g + e * g_t - 2.0 * f * f_t) / (2.0 * w);
        let w_p = (e_p * g + e * g_p - 2.0 * f * f_p) / (2.0 * w);
        let d_t_g_over_w = (g_t * w - g * w_t) / (w * w);
        let d_p_f_over_w = (f_p * w - f * w_p) / (w * w);
        let d_t_f_over_w = (f_t * w - f * w_t) / (w * w);
        let d_p_e_over_w = (e_p * w - e * w_p) / (w * w);
        geo.lb_b1[i] = (d_t_g_over_w - d_p_f_over_w) / w;
        geo.lb_b2[i] = (-d_t_f_over_w + d_p_e_over_w) / w;
    }
    // quadrature: parametric weight × W / sinθ (the GL weights absorb sinθ)
    for ilat in 0..basis.nlat {
        let s = basis.theta[ilat].sin();
        let wq = basis.sphere_weight(ilat);
        for j in 0..basis.nlon {
            let idx = basis.grid_index(ilat, j);
            geo.w_quad[idx] = wq * geo.w[idx] / s;
        }
    }
    geo
}

impl SurfaceGeometry {
    /// Surface area.
    pub fn area(&self) -> f64 {
        self.w_quad.iter().sum()
    }

    /// Enclosed volume `(1/3) ∫ X·n dA`.
    pub fn volume(&self) -> f64 {
        self.x
            .iter()
            .zip(&self.normal)
            .zip(&self.w_quad)
            .map(|((x, n), w)| x.dot(*n) * w)
            .sum::<f64>()
            / 3.0
    }

    /// Centroid (volume-weighted approximation from the surface:
    /// `∫ x (x·n) dA / (2·... )`; we use the simpler area-weighted mean,
    /// which is adequate for the convergence diagnostics of Fig. 11).
    pub fn centroid(&self) -> Vec3 {
        let a = self.area();
        self.x
            .iter()
            .zip(&self.w_quad)
            .map(|(x, w)| *x * *w)
            .sum::<Vec3>()
            / a
    }

    /// Applies the surface Laplace–Beltrami operator to a smooth scalar
    /// grid function in non-divergence form,
    /// `Δf = g¹¹ f_θθ + 2 g¹² f_θφ + g²² f_φφ + b¹ f_θ + b² f_φ`,
    /// with the metric coefficients differentiated pointwise (exactly) at
    /// construction time. The spectral derivatives are applied only to `f`
    /// itself, which is a genuine scalar field on the surface.
    pub fn laplace_beltrami(&self, basis: &SphBasis, f: &[f64]) -> Vec<f64> {
        let n = basis.grid_size();
        assert_eq!(f.len(), n);
        let cf = basis.analyze(f);
        let ft = basis.synthesize(&cf, Deriv::Dtheta);
        let fp = basis.synthesize(&cf, Deriv::Dphi);
        let ftt = basis.synthesize(&cf, Deriv::Dtheta2);
        let ftp = basis.synthesize(&cf, Deriv::DthetaDphi);
        let fpp = basis.synthesize(&cf, Deriv::Dphi2);
        (0..n)
            .map(|i| {
                let w2 = self.w[i] * self.w[i];
                let g11 = self.g[i] / w2;
                let g12 = -self.f[i] / w2;
                let g22 = self.e[i] / w2;
                g11 * ftt[i]
                    + 2.0 * g12 * ftp[i]
                    + g22 * fpp[i]
                    + self.lb_b1[i] * ft[i]
                    + self.lb_b2[i] * fp[i]
            })
            .collect()
    }

    /// `∇_γ σ · ∇_γ f` for two smooth scalar grid fields.
    pub fn grad_dot(&self, basis: &SphBasis, sigma: &[f64], f: &[f64]) -> Vec<f64> {
        let n = basis.grid_size();
        let cs = basis.analyze(sigma);
        let st = basis.synthesize(&cs, Deriv::Dtheta);
        let sp = basis.synthesize(&cs, Deriv::Dphi);
        let cf = basis.analyze(f);
        let ft = basis.synthesize(&cf, Deriv::Dtheta);
        let fp = basis.synthesize(&cf, Deriv::Dphi);
        (0..n)
            .map(|i| {
                let w2 = self.w[i] * self.w[i];
                let g11 = self.g[i] / w2;
                let g12 = -self.f[i] / w2;
                let g22 = self.e[i] / w2;
                g11 * st[i] * ft[i] + g12 * (st[i] * fp[i] + sp[i] * ft[i]) + g22 * sp[i] * fp[i]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{biconcave_coeffs, sphere_coeffs};
    use std::f64::consts::PI;

    #[test]
    fn sphere_geometry_exact() {
        let p = 12;
        let basis = SphBasis::new(p);
        let coeffs = sphere_coeffs(&basis, 1.5, Vec3::new(0.3, -0.2, 0.1));
        let geo = surface_geometry(&basis, &coeffs);
        let area = geo.area();
        let exact_area = 4.0 * PI * 1.5 * 1.5;
        assert!(
            (area - exact_area).abs() / exact_area < 1e-10,
            "area {area}"
        );
        let vol = geo.volume();
        let exact_vol = 4.0 / 3.0 * PI * 1.5_f64.powi(3);
        assert!((vol - exact_vol).abs() / exact_vol < 1e-10, "vol {vol}");
        // H = −1/a everywhere with our convention, K = 1/a²
        for i in 0..basis.grid_size() {
            assert!((geo.h[i] + 1.0 / 1.5).abs() < 1e-8, "H {}", geo.h[i]);
            assert!((geo.kg[i] - 1.0 / 2.25).abs() < 1e-7, "K {}", geo.kg[i]);
            // outward normal
            let dir = (geo.x[i] - Vec3::new(0.3, -0.2, 0.1)).normalized();
            assert!(geo.normal[i].dot(dir) > 0.999);
        }
        let c = geo.centroid();
        assert!((c - Vec3::new(0.3, -0.2, 0.1)).norm() < 1e-9);
    }

    #[test]
    fn biconcave_has_rbc_proportions() {
        let p = 16;
        let basis = SphBasis::new(p);
        let coeffs = biconcave_coeffs(&basis, 1.0, Vec3::ZERO);
        let geo = surface_geometry(&basis, &coeffs);
        // reduced volume of a healthy RBC shape ≈ 0.64
        let a = geo.area();
        let v = geo.volume();
        let reduced = 6.0 * PI.sqrt() * v / a.powf(1.5);
        assert!((0.55..0.75).contains(&reduced), "reduced volume {reduced}");
        assert!(v > 0.0);
    }

    #[test]
    fn laplace_beltrami_of_sphere_harmonic() {
        // on the unit sphere, Δ Y_n^m = −n(n+1) Y_n^m
        let p = 10;
        let basis = SphBasis::new(p);
        let coeffs = sphere_coeffs(&basis, 1.0, Vec3::ZERO);
        let geo = surface_geometry(&basis, &coeffs);
        let mut c = sphharm::SphCoeffs::zeros(p);
        c.set_a(3, 2, 1.0);
        let f = basis.synthesize(&c, Deriv::None);
        let lap = geo.laplace_beltrami(&basis, &f);
        for i in 0..basis.grid_size() {
            let expect = -12.0 * f[i];
            assert!(
                (lap[i] - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                "node {i}: {} vs {expect}",
                lap[i]
            );
        }
    }

    #[test]
    fn laplace_beltrami_of_position_is_curvature_normal() {
        // Δ_γ X = 2 H n (with our H sign convention)
        let p = 12;
        let basis = SphBasis::new(p);
        let coeffs = sphere_coeffs(&basis, 2.0, Vec3::ZERO);
        let geo = surface_geometry(&basis, &coeffs);
        let fx: Vec<f64> = geo.x.iter().map(|v| v.x).collect();
        let lap = geo.laplace_beltrami(&basis, &fx);
        for i in (0..basis.grid_size()).step_by(17) {
            let expect = 2.0 * geo.h[i] * geo.normal[i].x;
            assert!(
                (lap[i] - expect).abs() < 1e-6,
                "node {i}: {} vs {expect}",
                lap[i]
            );
        }
    }
}
