//! Reference cell shapes: spheres and the biconcave RBC profile.

use linalg::Vec3;
use rand::Rng;
use sphharm::{SphBasis, SphCoeffs};

/// Spherical-harmonic coefficients of a sphere surface.
pub fn sphere_coeffs(basis: &SphBasis, radius: f64, center: Vec3) -> [SphCoeffs; 3] {
    shape_from_radial(basis, center, |_, _| radius)
}

/// Coefficients of the classical biconcave RBC shape (Evans & Fung): in
/// cylindrical coordinates with `ρ = sin θ`,
/// `z(ρ) = ±(c/2)·√(1−ρ²)·(c0 + c1 ρ² + c2 ρ⁴)` with the standard
/// constants `c0 = 0.2072, c1 = 2.0026, c2 = −1.1228`, scaled so the
/// maximal diameter is `2·radius`.
pub fn biconcave_coeffs(basis: &SphBasis, radius: f64, center: Vec3) -> [SphCoeffs; 3] {
    let (c0, c1, c2) = (0.2072, 2.0026, -1.1228);
    let n = basis.grid_size();
    let mut gx = vec![0.0; n];
    let mut gy = vec![0.0; n];
    let mut gz = vec![0.0; n];
    for i in 0..basis.nlat {
        let th = basis.theta[i];
        let rho = th.sin();
        let zmag = 0.5 * (1.0 - rho * rho).abs().sqrt() * (c0 + c1 * rho * rho + c2 * rho.powi(4));
        let z = if th < std::f64::consts::FRAC_PI_2 {
            zmag
        } else {
            -zmag
        };
        for j in 0..basis.nlon {
            let ph = basis.phi[j];
            let idx = basis.grid_index(i, j);
            gx[idx] = center.x + radius * rho * ph.cos();
            gy[idx] = center.y + radius * rho * ph.sin();
            gz[idx] = center.z + radius * z;
        }
    }
    [basis.analyze(&gx), basis.analyze(&gy), basis.analyze(&gz)]
}

/// Builds coefficients from a radial function `r(θ, φ)` about a center.
pub fn shape_from_radial(
    basis: &SphBasis,
    center: Vec3,
    r: impl Fn(f64, f64) -> f64,
) -> [SphCoeffs; 3] {
    let n = basis.grid_size();
    let mut gx = vec![0.0; n];
    let mut gy = vec![0.0; n];
    let mut gz = vec![0.0; n];
    for i in 0..basis.nlat {
        let th = basis.theta[i];
        for j in 0..basis.nlon {
            let ph = basis.phi[j];
            let rad = r(th, ph);
            let idx = basis.grid_index(i, j);
            gx[idx] = center.x + rad * th.sin() * ph.cos();
            gy[idx] = center.y + rad * th.sin() * ph.sin();
            gz[idx] = center.z + rad * th.cos();
        }
    }
    [basis.analyze(&gx), basis.analyze(&gy), basis.analyze(&gz)]
}

/// Perturbed sphere: `r = a (1 + amp·Y-like bump)`, used by relaxation and
/// convergence tests.
pub fn bumpy_sphere_coeffs(
    basis: &SphBasis,
    radius: f64,
    center: Vec3,
    amp: f64,
) -> [SphCoeffs; 3] {
    shape_from_radial(basis, center, |th, ph| {
        radius * (1.0 + amp * (2.0 * th).sin() * (2.0 * ph).cos())
    })
}

/// Applies a random 3-D rotation to position coefficients by re-analyzing
/// rotated grid samples (used by the vessel-filling procedure of §5.1,
/// which places cells "in a random orientation").
pub fn rotated_coeffs(
    basis: &SphBasis,
    coeffs: &[SphCoeffs; 3],
    rng: &mut impl Rng,
) -> [SphCoeffs; 3] {
    // random rotation from three Euler angles
    let a = rng.random_range(0.0..std::f64::consts::TAU);
    let b = rng.random_range(0.0..std::f64::consts::PI);
    let c = rng.random_range(0.0..std::f64::consts::TAU);
    let (sa, ca) = a.sin_cos();
    let (sb, cb) = b.sin_cos();
    let (sc, cc) = c.sin_cos();
    // Rz(a)·Ry(b)·Rz(c)
    let rot = |v: Vec3| -> Vec3 {
        let v1 = Vec3::new(cc * v.x - sc * v.y, sc * v.x + cc * v.y, v.z);
        let v2 = Vec3::new(cb * v1.x + sb * v1.z, v1.y, -sb * v1.x + cb * v1.z);
        Vec3::new(ca * v2.x - sa * v2.y, sa * v2.x + ca * v2.y, v2.z)
    };
    // centroid-preserving rotation
    let n = basis.grid_size();
    let gx = basis.synthesize(&coeffs[0], sphharm::Deriv::None);
    let gy = basis.synthesize(&coeffs[1], sphharm::Deriv::None);
    let gz = basis.synthesize(&coeffs[2], sphharm::Deriv::None);
    let mut cx = 0.0;
    let mut cy = 0.0;
    let mut cz = 0.0;
    for i in 0..n {
        cx += gx[i];
        cy += gy[i];
        cz += gz[i];
    }
    let center = Vec3::new(cx, cy, cz) / n as f64;
    let mut rx = vec![0.0; n];
    let mut ry = vec![0.0; n];
    let mut rz = vec![0.0; n];
    for i in 0..n {
        let p = rot(Vec3::new(gx[i], gy[i], gz[i]) - center) + center;
        rx[i] = p.x;
        ry[i] = p.y;
        rz[i] = p.z;
    }
    [basis.analyze(&rx), basis.analyze(&ry), basis.analyze(&rz)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::surface_geometry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rotation_preserves_area_and_volume() {
        let basis = SphBasis::new(12);
        let coeffs = biconcave_coeffs(&basis, 1.0, Vec3::new(1.0, 2.0, 3.0));
        let g0 = surface_geometry(&basis, &coeffs);
        let mut rng = StdRng::seed_from_u64(5);
        let rotated = rotated_coeffs(&basis, &coeffs, &mut rng);
        let g1 = surface_geometry(&basis, &rotated);
        assert!((g0.area() - g1.area()).abs() / g0.area() < 1e-6);
        assert!((g0.volume() - g1.volume()).abs() / g0.volume() < 1e-6);
        assert!((g0.centroid() - g1.centroid()).norm() < 1e-6);
    }

    #[test]
    fn bumpy_sphere_reduces_to_sphere_at_zero_amp() {
        let basis = SphBasis::new(8);
        let a = bumpy_sphere_coeffs(&basis, 1.0, Vec3::ZERO, 0.0);
        let b = sphere_coeffs(&basis, 1.0, Vec3::ZERO);
        for k in 0..3 {
            for (u, v) in a[k].data.iter().zip(&b[k].data) {
                assert!((u - v).abs() < 1e-12);
            }
        }
    }
}
