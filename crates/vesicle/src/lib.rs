//! # vesicle — the deformable RBC model (§2 of the paper)
//!
//! Spherical-harmonic cell surfaces with:
//! - [`geometry`]: fundamental forms, curvatures, area elements,
//!   Laplace–Beltrami (the ingredients of Eq. 2.1's interfacial forces);
//! - [`shape`]: sphere and biconcave (Evans–Fung) reference shapes, random
//!   orientations for the vessel-filling procedure;
//! - [`selfop`]: precomputed singular self-interaction quadrature for the
//!   single-layer potential (the \[28\]-style precomputed operator);
//! - [`cell`]: Canham–Helfrich bending + area-penalty tension and the
//!   locally-implicit backward-Euler step (Eq. 2.12);
//! - [`state`]: bit-exact cell (de)serialization hooks for the
//!   checkpoint/restart system (`sim::checkpoint`).

#![warn(missing_docs)]

pub mod cell;
pub mod geometry;
pub mod selfop;
pub mod shape;
pub mod state;

pub use cell::{
    implicit_step, implicit_substep_chain, sdc2_step, step_health, weighted_div_grad, Cell,
    CellHealth, CellParams, StepOptions,
};
pub use geometry::{surface_geometry, SurfaceGeometry};
pub use selfop::{upsample_matrix, SelfInteraction, SelfOpOptions};
pub use shape::{
    biconcave_coeffs, bumpy_sphere_coeffs, rotated_coeffs, shape_from_radial, sphere_coeffs,
};
