//! The RBC (vesicle) model: membrane forces and the locally-implicit time
//! step of §2.2.
//!
//! Membranes are inextensible with no in-plane shear rigidity; bending
//! follows the Canham–Helfrich model (§2.1). Two documented substitutions
//! (DESIGN.md): the exact Lagrange-multiplier tension solve of \[48\] is
//! replaced by a stiff area-dilation penalty `σ = k_a (J − 1)` against the
//! reference metric (conserves area to `O(1/k_a)`), and the self-interaction
//! quadrature uses the check-point scheme of `selfop`.

use crate::geometry::{surface_geometry, SurfaceGeometry};
use crate::selfop::{SelfInteraction, SelfOpOptions};
use linalg::{gmres, FnOperator, GmresOptions, GmresResult, Vec3};
use sphharm::{Deriv, SphBasis, SphCoeffs};

/// Physical and numerical parameters of a cell.
#[derive(Clone, Copy, Debug)]
pub struct CellParams {
    /// Bending modulus κ_b.
    pub kappa_b: f64,
    /// Area-dilation penalty stiffness k_a (inextensibility).
    pub k_area: f64,
    /// Ambient viscosity μ (no viscosity contrast, as in the paper's runs).
    pub mu: f64,
    /// Self-interaction quadrature options.
    pub selfop: SelfOpOptions,
}

impl Default for CellParams {
    fn default() -> Self {
        CellParams {
            kappa_b: 0.01,
            k_area: 1.0,
            mu: 1.0,
            selfop: SelfOpOptions::default(),
        }
    }
}

/// A deformable cell: spherical-harmonic position coefficients plus the
/// reference area element for the inextensibility penalty.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Position coefficients (x, y, z).
    pub coeffs: [SphCoeffs; 3],
    /// Reference area element `W_ref` per grid node.
    pub ref_w: Vec<f64>,
    /// Parameters.
    pub params: CellParams,
}

impl Cell {
    /// Creates a cell, capturing the current geometry as the reference
    /// (unstretched) state.
    pub fn new(basis: &SphBasis, coeffs: [SphCoeffs; 3], params: CellParams) -> Cell {
        let geo = surface_geometry(basis, &coeffs);
        Cell {
            coeffs,
            ref_w: geo.w.clone(),
            params,
        }
    }

    /// Current surface geometry.
    pub fn geometry(&self, basis: &SphBasis) -> SurfaceGeometry {
        surface_geometry(basis, &self.coeffs)
    }

    /// Grid positions (latitude-major).
    pub fn positions(&self, basis: &SphBasis) -> Vec<Vec3> {
        let gx = basis.synthesize(&self.coeffs[0], Deriv::None);
        let gy = basis.synthesize(&self.coeffs[1], Deriv::None);
        let gz = basis.synthesize(&self.coeffs[2], Deriv::None);
        (0..basis.grid_size())
            .map(|i| Vec3::new(gx[i], gy[i], gz[i]))
            .collect()
    }

    /// Replaces positions from grid values.
    pub fn set_positions(&mut self, basis: &SphBasis, pos: &[Vec3]) {
        let n = basis.grid_size();
        assert_eq!(pos.len(), n);
        let gx: Vec<f64> = pos.iter().map(|p| p.x).collect();
        let gy: Vec<f64> = pos.iter().map(|p| p.y).collect();
        let gz: Vec<f64> = pos.iter().map(|p| p.z).collect();
        self.coeffs = [basis.analyze(&gx), basis.analyze(&gy), basis.analyze(&gz)];
    }

    /// Rigid translation.
    pub fn translate(&mut self, basis: &SphBasis, d: Vec3) {
        // shifting only affects the (0,0) coefficient of each component
        let c00 = (4.0 * std::f64::consts::PI).sqrt();
        let _ = basis;
        let a = self.coeffs[0].a(0, 0);
        self.coeffs[0].set_a(0, 0, a + d.x * c00);
        let a = self.coeffs[1].a(0, 0);
        self.coeffs[1].set_a(0, 0, a + d.y * c00);
        let a = self.coeffs[2].a(0, 0);
        self.coeffs[2].set_a(0, 0, a + d.z * c00);
    }

    /// Upsampled collision grid points (order `p_up = upsample · p`) plus
    /// pole points: the lat–long grid the triangle proxy mesh is built on
    /// (2,112 points at the paper's p = 16, 2× upsampling).
    pub fn collision_points(
        &self,
        basis: &SphBasis,
        upsample: usize,
    ) -> (Vec<Vec3>, usize, usize, Vec3, Vec3) {
        let pu = basis.p * upsample;
        let bu = SphBasis::new(pu);
        let cu: [SphCoeffs; 3] = [
            self.coeffs[0].resampled(pu),
            self.coeffs[1].resampled(pu),
            self.coeffs[2].resampled(pu),
        ];
        let gx = bu.synthesize(&cu[0], Deriv::None);
        let gy = bu.synthesize(&cu[1], Deriv::None);
        let gz = bu.synthesize(&cu[2], Deriv::None);
        let pts: Vec<Vec3> = (0..bu.grid_size())
            .map(|i| Vec3::new(gx[i], gy[i], gz[i]))
            .collect();
        let north = Vec3::new(
            bu.synthesize_at(&cu[0], 1e-9, 0.0),
            bu.synthesize_at(&cu[1], 1e-9, 0.0),
            bu.synthesize_at(&cu[2], 1e-9, 0.0),
        );
        let south = Vec3::new(
            bu.synthesize_at(&cu[0], std::f64::consts::PI - 1e-9, 0.0),
            bu.synthesize_at(&cu[1], std::f64::consts::PI - 1e-9, 0.0),
            bu.synthesize_at(&cu[2], std::f64::consts::PI - 1e-9, 0.0),
        );
        (pts, bu.nlat, bu.nlon, north, south)
    }

    /// Builds the self-interaction operator for the current geometry.
    pub fn self_interaction(&self, basis: &SphBasis) -> SelfInteraction {
        SelfInteraction::build(basis, &self.coeffs, self.params.mu, self.params.selfop)
    }

    /// Membrane force density `f = f_b + f_σ` on the grid.
    ///
    /// Bending (Canham–Helfrich): `f_b = −κ_b [Δ_γ H + 2H(H² − K)] n` in
    /// our curvature convention (H < 0 for spheres with outward normals);
    /// the sign is fixed by the dissipation requirement (perturbed spheres
    /// must relax under Willmore flow — see the relaxation test).
    /// Tension penalty: `f_σ = ∇_γ·(σ ∇_γ X)` with `σ = k_a (W/W_ref − 1)`.
    pub fn membrane_force(&self, basis: &SphBasis, geo: &SurfaceGeometry) -> Vec<Vec3> {
        let n = basis.grid_size();
        let lap_h = geo.laplace_beltrami(basis, &geo.h);
        let sigma: Vec<f64> = (0..n)
            .map(|i| self.params.k_area * (geo.w[i] / self.ref_w[i] - 1.0))
            .collect();
        let fx: Vec<f64> = geo.x.iter().map(|v| v.x).collect();
        let fy: Vec<f64> = geo.x.iter().map(|v| v.y).collect();
        let fz: Vec<f64> = geo.x.iter().map(|v| v.z).collect();
        let tx = weighted_div_grad(basis, geo, &sigma, &fx);
        let ty = weighted_div_grad(basis, geo, &sigma, &fy);
        let tz = weighted_div_grad(basis, geo, &sigma, &fz);
        (0..n)
            .map(|i| {
                let bend = -self.params.kappa_b
                    * (lap_h[i] + 2.0 * geo.h[i] * (geo.h[i] * geo.h[i] - geo.kg[i]));
                geo.normal[i] * bend + Vec3::new(tx[i], ty[i], tz[i])
            })
            .collect()
    }
}

/// `∇_γ·(σ ∇_γ f) = σ Δ_γ f + ∇_γ σ · ∇_γ f` on the grid. Both factors are
/// smooth scalar fields, so the product-rule form avoids spectrally
/// differentiating non-smooth flux intermediates.
pub fn weighted_div_grad(
    basis: &SphBasis,
    geo: &SurfaceGeometry,
    sigma: &[f64],
    f: &[f64],
) -> Vec<f64> {
    let n = basis.grid_size();
    let lap = geo.laplace_beltrami(basis, f);
    let gd = geo.grad_dot(basis, sigma, f);
    (0..n).map(|i| sigma[i] * lap[i] + gd[i]).collect()
}

/// Time-stepping controls for the per-cell implicit update.
#[derive(Clone, Copy, Debug)]
pub struct StepOptions {
    /// Time-step size Δt.
    pub dt: f64,
    /// GMRES controls for the implicit solve.
    pub gmres: GmresOptions,
}

impl Default for StepOptions {
    fn default() -> Self {
        StepOptions {
            dt: 1e-3,
            gmres: GmresOptions {
                tol: 1e-8,
                atol: 1e-14,
                max_iters: 60,
                restart: 60,
                stall_ratio: 0.0,
            },
        }
    }
}

/// One locally-implicit backward-Euler update for a single cell (Eq. 2.12):
/// `X⁺ = X + Δt (b + S_i f_i(X⁺))`, with the membrane force linearized
/// about the current geometry (metric, normals and curvature factors
/// frozen; the stiff 4th-order bending term and the 2nd-order tension act
/// on `X⁺`). `b_grid` is the explicit inter-cell + boundary velocity.
/// Returns the new positions (grid) and the GMRES stats.
pub fn implicit_step(
    basis: &SphBasis,
    cell: &Cell,
    selfop: &SelfInteraction,
    b_grid: &[Vec3],
    opts: &StepOptions,
) -> (Vec<Vec3>, GmresResult) {
    let n = basis.grid_size();
    assert_eq!(b_grid.len(), n);
    let geo = cell.geometry(basis);
    let dt = opts.dt;
    let kb = cell.params.kappa_b;
    let ka = cell.params.k_area;

    // frozen geometric factors
    let sigma0: Vec<f64> = (0..n)
        .map(|i| ka * (geo.w[i] / cell.ref_w[i] - 1.0))
        .collect();

    // linearized force: f_lin(X⁺) = κ_b Δ0(H_lin(X⁺)) n0 + ∇·(σ0 ∇ X⁺)
    // where H_lin uses frozen first-form and normals.
    let force_lin = |pos: &[f64]| -> Vec<Vec3> {
        // transforms of the candidate positions
        let px: Vec<f64> = (0..n).map(|i| pos[3 * i]).collect();
        let py: Vec<f64> = (0..n).map(|i| pos[3 * i + 1]).collect();
        let pz: Vec<f64> = (0..n).map(|i| pos[3 * i + 2]).collect();
        let cx = basis.analyze(&px);
        let cy = basis.analyze(&py);
        let cz = basis.analyze(&pz);
        let d = |c: &SphCoeffs, d: Deriv| basis.synthesize(c, d);
        let xtt: Vec<Vec3> = {
            let a = d(&cx, Deriv::Dtheta2);
            let b = d(&cy, Deriv::Dtheta2);
            let c2 = d(&cz, Deriv::Dtheta2);
            (0..n).map(|i| Vec3::new(a[i], b[i], c2[i])).collect()
        };
        let xtp: Vec<Vec3> = {
            let a = d(&cx, Deriv::DthetaDphi);
            let b = d(&cy, Deriv::DthetaDphi);
            let c2 = d(&cz, Deriv::DthetaDphi);
            (0..n).map(|i| Vec3::new(a[i], b[i], c2[i])).collect()
        };
        let xpp: Vec<Vec3> = {
            let a = d(&cx, Deriv::Dphi2);
            let b = d(&cy, Deriv::Dphi2);
            let c2 = d(&cz, Deriv::Dphi2);
            (0..n).map(|i| Vec3::new(a[i], b[i], c2[i])).collect()
        };
        let hl: Vec<f64> = (0..n)
            .map(|i| {
                let l = xtt[i].dot(geo.normal[i]);
                let m = xtp[i].dot(geo.normal[i]);
                let nn = xpp[i].dot(geo.normal[i]);
                (geo.e[i] * nn - 2.0 * geo.f[i] * m + geo.g[i] * l) / (2.0 * geo.w[i] * geo.w[i])
            })
            .collect();
        let lap_hl = geo.laplace_beltrami(basis, &hl);
        let tx = weighted_div_grad(basis, &geo, &sigma0, &px);
        let ty = weighted_div_grad(basis, &geo, &sigma0, &py);
        let tz = weighted_div_grad(basis, &geo, &sigma0, &pz);
        (0..n)
            .map(|i| geo.normal[i] * (-kb * lap_hl[i]) + Vec3::new(tx[i], ty[i], tz[i]))
            .collect()
    };

    // explicit remainder of the bending force (lower-order terms)
    let f_expl: Vec<Vec3> = (0..n)
        .map(|i| geo.normal[i] * (-kb * 2.0 * geo.h[i] * (geo.h[i] * geo.h[i] - geo.kg[i])))
        .collect();

    // right-hand side: X + Δt (b + S f_expl)
    let fe_flat: Vec<f64> = f_expl.iter().flat_map(|v| [v.x, v.y, v.z]).collect();
    let se = selfop.apply(&fe_flat);
    let mut rhs = vec![0.0; 3 * n];
    for i in 0..n {
        for c in 0..3 {
            rhs[3 * i + c] = geo.x[i][c] + dt * (b_grid[i][c] + se[3 * i + c]);
        }
    }

    // operator: X⁺ − Δt S f_lin(X⁺)
    let op = FnOperator::new(3 * n, |x: &[f64], y: &mut [f64]| {
        let fl = force_lin(x);
        let fl_flat: Vec<f64> = fl.iter().flat_map(|v| [v.x, v.y, v.z]).collect();
        let sf = selfop.apply(&fl_flat);
        for i in 0..3 * n {
            y[i] = x[i] - dt * sf[i];
        }
    });
    let mut xplus: Vec<f64> = geo.x.iter().flat_map(|v| [v.x, v.y, v.z]).collect();
    let res = gmres(&op, &rhs, &mut xplus, &opts.gmres);
    let pos: Vec<Vec3> = (0..n)
        .map(|i| Vec3::new(xplus[3 * i], xplus[3 * i + 1], xplus[3 * i + 2]))
        .collect();
    (pos, res)
}

/// Per-cell step-health metrics: what the adaptive time-step controller in
/// `sim` inspects after the implicit stage to decide whether a candidate
/// update is acceptable or must be rolled back and retried at a smaller Δt.
///
/// All three metrics are pure functions of (cell, candidate positions), so
/// the controller built on them is deterministic: two instances evaluating
/// the same state reach bit-identical accept/retry decisions.
#[derive(Clone, Copy, Debug)]
pub struct CellHealth {
    /// Maximum local stretch ratio vs the rest configuration,
    /// `max_i √(W_i / W_ref,i)` — the linear stretch of the surface element
    /// against the reference metric captured at [`Cell::new`]. Edge lengths
    /// of any surface-sampled mesh (including the upsampled collision
    /// proxy) scale with this factor, so it is the spectral-grid stand-in
    /// for the "edges stretching ~10⁴×" blow-up signature of a diverging
    /// implicit update. ∞ when the candidate positions are non-finite.
    pub max_stretch: f64,
    /// Relative enclosed-volume change over the candidate step,
    /// `|V⁺ − V| / |V|`. A locally-implicit update that is merely stiff
    /// wobbles the surface; one that is diverging inflates or collapses the
    /// cell, which this catches even before the stretch bound trips.
    pub volume_drift: f64,
    /// Whether every candidate position is finite. `false` means the solve
    /// itself produced NaN/∞ and nothing downstream of it can be trusted.
    pub finite: bool,
}

impl CellHealth {
    /// Whether this candidate update passes the controller's bounds.
    pub fn ok(&self, max_stretch: f64, max_volume_drift: f64) -> bool {
        self.finite && self.max_stretch <= max_stretch && self.volume_drift <= max_volume_drift
    }
}

/// Evaluates the step-health of candidate grid positions `pos_new` for
/// `cell`, against the pre-step enclosed volume `vol_before` (computed from
/// the geometry the step started from, so callers that already have it
/// don't pay for it twice).
pub fn step_health(basis: &SphBasis, cell: &Cell, pos_new: &[Vec3], vol_before: f64) -> CellHealth {
    if !pos_new.iter().all(|p| p.is_finite()) {
        return CellHealth {
            max_stretch: f64::INFINITY,
            volume_drift: f64::INFINITY,
            finite: false,
        };
    }
    let n = basis.grid_size();
    let gx: Vec<f64> = pos_new.iter().map(|p| p.x).collect();
    let gy: Vec<f64> = pos_new.iter().map(|p| p.y).collect();
    let gz: Vec<f64> = pos_new.iter().map(|p| p.z).collect();
    let coeffs = [basis.analyze(&gx), basis.analyze(&gy), basis.analyze(&gz)];
    let geo = surface_geometry(basis, &coeffs);
    let mut max_stretch = 0.0f64;
    for i in 0..n {
        let ratio = (geo.w[i] / cell.ref_w[i]).abs().sqrt();
        max_stretch = max_stretch.max(ratio);
    }
    let vol_new = geo.volume();
    let volume_drift = if vol_before.abs() > 0.0 {
        (vol_new - vol_before).abs() / vol_before.abs()
    } else {
        vol_new.abs()
    };
    if !max_stretch.is_finite() || !volume_drift.is_finite() {
        // non-finite metrics from finite positions (degenerate geometry)
        return CellHealth {
            max_stretch: f64::INFINITY,
            volume_drift: f64::INFINITY,
            finite: false,
        };
    }
    CellHealth {
        max_stretch,
        volume_drift,
        finite: true,
    }
}

/// Chains `n_sub` locally-implicit backward-Euler updates of `Δt / n_sub`
/// each — the sub-stepping entry point of the adaptive time-step
/// controller. The explicit velocity `b_grid` is held constant over the
/// sub-steps (its time dependence is resolved by the outer loop, exactly
/// as [`sdc2_step`] treats it), while the linearization point — geometry
/// *and* the singular self-interaction operator — is rebuilt between
/// sub-steps, which is what makes two chained half-steps stabler than one
/// full step for the same arithmetic cost profile.
///
/// `n_sub = 1` delegates to [`implicit_step`] and is bit-identical to it.
/// Returns the final positions and the GMRES stats of the *last* sub-step.
pub fn implicit_substep_chain(
    basis: &SphBasis,
    cell: &Cell,
    selfop: &SelfInteraction,
    b_grid: &[Vec3],
    opts: &StepOptions,
    n_sub: usize,
) -> (Vec<Vec3>, GmresResult) {
    assert!(n_sub >= 1, "n_sub must be ≥ 1");
    if n_sub == 1 {
        return implicit_step(basis, cell, selfop, b_grid, opts);
    }
    let sub_opts = StepOptions {
        dt: opts.dt / n_sub as f64,
        ..*opts
    };
    let (mut pos, mut res) = implicit_step(basis, cell, selfop, b_grid, &sub_opts);
    let mut work = cell.clone();
    for _ in 1..n_sub {
        work.set_positions(basis, &pos);
        // a sub-step that already went non-finite cannot be continued; stop
        // and let the caller's health gate reject the chain
        if !pos.iter().all(|p| p.is_finite()) {
            return (pos, res);
        }
        let sub_selfop = work.self_interaction(basis);
        let (p, r) = implicit_step(basis, &work, &sub_selfop, b_grid, &sub_opts);
        pos = p;
        res = r;
    }
    (pos, res)
}

/// One step of a two-stage spectral-deferred-correction-style corrector
/// (the §5.3 extension: "spectral deferred correction (SDC) can be
/// incorporated into the algorithm exactly as in the 2D version described
/// in \[24\]"): a backward-Euler predictor followed by one correction sweep
/// against the trapezoidal quadrature of the Picard integral, lifting the
/// update to second order in Δt.
///
/// `b_grid` is treated as constant over the step (its time dependence is
/// resolved by the outer loop). Returns the corrected positions.
pub fn sdc2_step(
    basis: &SphBasis,
    cell: &Cell,
    selfop: &SelfInteraction,
    b_grid: &[Vec3],
    opts: &StepOptions,
) -> (Vec<Vec3>, GmresResult) {
    let n = basis.grid_size();
    // predictor: backward Euler to t + Δt
    let (pred, res) = implicit_step(basis, cell, selfop, b_grid, opts);
    // evaluate the full (nonlinear) membrane force at both endpoints
    let geo0 = cell.geometry(basis);
    let f0 = cell.membrane_force(basis, &geo0);
    let mut cell1 = cell.clone();
    cell1.set_positions(basis, &pred);
    let geo1 = cell1.geometry(basis);
    let f1 = cell1.membrane_force(basis, &geo1);
    // self-interaction velocities at both states (frozen operator at t for
    // the start, rebuilt at the predictor for the end point)
    let flat = |f: &[Vec3]| -> Vec<f64> { f.iter().flat_map(|v| [v.x, v.y, v.z]).collect() };
    let u0 = selfop.apply(&flat(&f0));
    let selfop1 = cell1.self_interaction(basis);
    let u1 = selfop1.apply(&flat(&f1));
    // trapezoidal correction: X⁺ = X + Δt (b + (u0 + u1)/2)
    let dt = opts.dt;
    let out: Vec<Vec3> = (0..n)
        .map(|i| {
            let avg = Vec3::new(
                0.5 * (u0[3 * i] + u1[3 * i]),
                0.5 * (u0[3 * i + 1] + u1[3 * i + 1]),
                0.5 * (u0[3 * i + 2] + u1[3 * i + 2]),
            );
            geo0.x[i] + (b_grid[i] + avg) * dt
        })
        .collect();
    (out, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{bumpy_sphere_coeffs, sphere_coeffs};

    fn perturbation_energy(basis: &SphBasis, geo: &SurfaceGeometry) -> f64 {
        // variance of H is zero on a sphere; grows with shape perturbation
        let n = basis.grid_size();
        let mean: f64 = geo.h.iter().sum::<f64>() / n as f64;
        geo.h.iter().map(|h| (h - mean) * (h - mean)).sum::<f64>() / n as f64
    }

    #[test]
    fn sphere_is_equilibrium() {
        let p = 8;
        let basis = SphBasis::new(p);
        let params = CellParams::default();
        let cell = Cell::new(&basis, sphere_coeffs(&basis, 1.0, Vec3::ZERO), params);
        let geo = cell.geometry(&basis);
        let f = cell.membrane_force(&basis, &geo);
        let fmax = f.iter().map(|v| v.norm()).fold(0.0, f64::max);
        assert!(fmax < 1e-6, "force on equilibrium sphere: {fmax}");
    }

    #[test]
    fn bending_relaxes_perturbed_sphere() {
        let p = 10;
        let basis = SphBasis::new(p);
        let params = CellParams {
            kappa_b: 0.05,
            k_area: 0.0,
            ..Default::default()
        };
        let mut cell = Cell::new(
            &basis,
            bumpy_sphere_coeffs(&basis, 1.0, Vec3::ZERO, 0.04),
            params,
        );
        let e0 = perturbation_energy(&basis, &cell.geometry(&basis));
        let opts = StepOptions {
            dt: 2e-2,
            ..Default::default()
        };
        let zero = vec![Vec3::ZERO; basis.grid_size()];
        for _ in 0..8 {
            let selfop = cell.self_interaction(&basis);
            let (pos, res) = implicit_step(&basis, &cell, &selfop, &zero, &opts);
            assert!(
                res.rel_residual < 1e-6,
                "implicit solve residual {}",
                res.rel_residual
            );
            cell.set_positions(&basis, &pos);
        }
        let e1 = perturbation_energy(&basis, &cell.geometry(&basis));
        assert!(e1 < 0.8 * e0, "perturbation should decay: {e0} -> {e1}");
    }

    #[test]
    fn tension_penalty_conserves_area() {
        let p = 10;
        let basis = SphBasis::new(p);
        let params = CellParams {
            kappa_b: 0.02,
            k_area: 5.0,
            ..Default::default()
        };
        let mut cell = Cell::new(
            &basis,
            bumpy_sphere_coeffs(&basis, 1.0, Vec3::ZERO, 0.03),
            params,
        );
        let a0 = cell.geometry(&basis).area();
        let opts = StepOptions {
            dt: 1e-2,
            ..Default::default()
        };
        let zero = vec![Vec3::ZERO; basis.grid_size()];
        for _ in 0..5 {
            let selfop = cell.self_interaction(&basis);
            let (pos, _) = implicit_step(&basis, &cell, &selfop, &zero, &opts);
            cell.set_positions(&basis, &pos);
        }
        let a1 = cell.geometry(&basis).area();
        assert!((a1 - a0).abs() / a0 < 2e-2, "area drift {} -> {}", a0, a1);
    }

    #[test]
    fn translation_moves_centroid_exactly() {
        let p = 8;
        let basis = SphBasis::new(p);
        let mut cell = Cell::new(
            &basis,
            sphere_coeffs(&basis, 1.0, Vec3::ZERO),
            CellParams::default(),
        );
        let c0 = cell.geometry(&basis).centroid();
        cell.translate(&basis, Vec3::new(0.5, -1.0, 2.0));
        let c1 = cell.geometry(&basis).centroid();
        assert!((c1 - c0 - Vec3::new(0.5, -1.0, 2.0)).norm() < 1e-10);
    }

    #[test]
    fn collision_points_match_paper_counts() {
        // p = 16, 2× upsampling: 33 × 64 = 2,112 grid points
        let basis = SphBasis::new(16);
        let cell = Cell::new(
            &basis,
            sphere_coeffs(&basis, 1.0, Vec3::ZERO),
            CellParams::default(),
        );
        let (pts, nlat, nlon, north, south) = cell.collision_points(&basis, 2);
        assert_eq!(pts.len(), 2112);
        assert_eq!(nlat, 33);
        assert_eq!(nlon, 64);
        assert!((north.norm() - 1.0).abs() < 1e-6);
        assert!((south.norm() - 1.0).abs() < 1e-6);
        // quadrature count on the coarse grid matches the paper's 544
        assert_eq!(basis.grid_size(), 544);
    }

    #[test]
    fn sdc2_matches_euler_for_rigid_motion_and_improves_relaxation() {
        // with no forces both schemes advect exactly; with bending, the
        // corrected step stays stable and keeps the invariants
        let p = 8;
        let basis = SphBasis::new(p);
        let params = CellParams {
            kappa_b: 0.02,
            k_area: 0.0,
            ..Default::default()
        };
        let cell = Cell::new(
            &basis,
            bumpy_sphere_coeffs(&basis, 1.0, Vec3::ZERO, 0.02),
            params,
        );
        let selfop = cell.self_interaction(&basis);
        let b = vec![Vec3::new(0.5, 0.0, 0.0); basis.grid_size()];
        let opts = StepOptions {
            dt: 1e-2,
            ..Default::default()
        };
        let (pos, res) = sdc2_step(&basis, &cell, &selfop, &b, &opts);
        assert!(res.rel_residual < 1e-6);
        // advection component exact: mean displacement = dt·b
        let geo0 = cell.geometry(&basis);
        let mean: Vec3 =
            pos.iter().zip(&geo0.x).map(|(a, b)| *a - *b).sum::<Vec3>() / basis.grid_size() as f64;
        assert!(
            (mean - Vec3::new(5e-3, 0.0, 0.0)).norm() < 1e-4,
            "mean {mean:?}"
        );
        // positions stay finite and near the sphere
        for q in &pos {
            assert!(q.is_finite());
            assert!((q.norm() - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn step_health_reports_stretch_drift_and_nonfinite() {
        let p = 8;
        let basis = SphBasis::new(p);
        let cell = Cell::new(
            &basis,
            sphere_coeffs(&basis, 1.0, Vec3::ZERO),
            CellParams::default(),
        );
        let geo = cell.geometry(&basis);
        let vol0 = geo.volume();

        // unchanged positions: stretch ≈ 1, no drift
        let h = step_health(&basis, &cell, &geo.x, vol0);
        assert!(h.finite);
        assert!((h.max_stretch - 1.0).abs() < 1e-8, "{}", h.max_stretch);
        assert!(h.volume_drift < 1e-10);
        assert!(h.ok(10.0, 0.25));

        // uniformly scaled ×3: stretch ≈ 3, volume drift ≈ 26×
        let scaled: Vec<Vec3> = geo.x.iter().map(|p| *p * 3.0).collect();
        let h = step_health(&basis, &cell, &scaled, vol0);
        assert!(h.finite);
        assert!((h.max_stretch - 3.0).abs() < 1e-6, "{}", h.max_stretch);
        assert!((h.volume_drift - 26.0).abs() < 1e-6, "{}", h.volume_drift);
        assert!(!h.ok(2.0, 0.25) && h.ok(4.0, 30.0));

        // one NaN vertex: non-finite, never ok
        let mut bad = geo.x.clone();
        bad[7] = Vec3::new(f64::NAN, 0.0, 0.0);
        let h = step_health(&basis, &cell, &bad, vol0);
        assert!(!h.finite);
        assert!(!h.ok(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn substep_chain_of_one_matches_implicit_step_bit_exactly() {
        let p = 8;
        let basis = SphBasis::new(p);
        let params = CellParams {
            kappa_b: 0.02,
            k_area: 1.0,
            ..Default::default()
        };
        let cell = Cell::new(
            &basis,
            bumpy_sphere_coeffs(&basis, 1.0, Vec3::ZERO, 0.03),
            params,
        );
        let selfop = cell.self_interaction(&basis);
        let b = vec![Vec3::new(0.2, -0.1, 0.05); basis.grid_size()];
        let opts = StepOptions {
            dt: 1e-2,
            ..Default::default()
        };
        let (a, _) = implicit_step(&basis, &cell, &selfop, &b, &opts);
        let (c, _) = implicit_substep_chain(&basis, &cell, &selfop, &b, &opts, 1);
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(x.x.to_bits(), y.x.to_bits());
            assert_eq!(x.y.to_bits(), y.y.to_bits());
            assert_eq!(x.z.to_bits(), y.z.to_bits());
        }
    }

    #[test]
    fn substep_chain_advects_and_stays_healthy() {
        // uniform background, two sub-steps: advection remains exact
        // (b frozen ⇒ each half-step moves Δt/2·b) and the chained update
        // keeps the relaxation behavior of the single step
        let p = 8;
        let basis = SphBasis::new(p);
        let params = CellParams {
            kappa_b: 0.02,
            k_area: 0.5,
            ..Default::default()
        };
        let cell = Cell::new(
            &basis,
            bumpy_sphere_coeffs(&basis, 1.0, Vec3::ZERO, 0.02),
            params,
        );
        let selfop = cell.self_interaction(&basis);
        let b = vec![Vec3::new(1.0, 0.0, 0.0); basis.grid_size()];
        let opts = StepOptions {
            dt: 2e-2,
            ..Default::default()
        };
        let (pos, res) = implicit_substep_chain(&basis, &cell, &selfop, &b, &opts, 2);
        assert!(res.rel_residual < 1e-6);
        let geo0 = cell.geometry(&basis);
        let mean: Vec3 =
            pos.iter().zip(&geo0.x).map(|(a, b)| *a - *b).sum::<Vec3>() / basis.grid_size() as f64;
        assert!(
            (mean - Vec3::new(2e-2, 0.0, 0.0)).norm() < 1e-4,
            "mean {mean:?}"
        );
        let h = step_health(&basis, &cell, &pos, geo0.volume());
        assert!(h.finite && h.max_stretch < 2.0 && h.volume_drift < 0.1);
    }

    #[test]
    fn drag_translation_under_uniform_background() {
        // b = const velocity with no forces: X⁺ = X + Δt·b exactly
        let p = 8;
        let basis = SphBasis::new(p);
        let params = CellParams {
            kappa_b: 0.0,
            k_area: 0.0,
            ..Default::default()
        };
        let cell = Cell::new(&basis, sphere_coeffs(&basis, 1.0, Vec3::ZERO), params);
        let selfop = cell.self_interaction(&basis);
        let b = vec![Vec3::new(1.0, 2.0, 3.0); basis.grid_size()];
        let opts = StepOptions {
            dt: 0.1,
            ..Default::default()
        };
        let (pos, _) = implicit_step(&basis, &cell, &selfop, &b, &opts);
        let geo = cell.geometry(&basis);
        for (p1, p0) in pos.iter().zip(&geo.x) {
            assert!((*p1 - *p0 - Vec3::new(0.1, 0.2, 0.3)).norm() < 1e-9);
        }
    }
}
