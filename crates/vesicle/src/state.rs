//! Cell state (de)serialization hooks for the checkpoint/restart system.
//!
//! A [`Cell`] is fully determined by its spectral position coefficients,
//! the captured reference area element, and its parameters; everything else
//! (geometry, self-interaction operators) is recomputed per step. All
//! floats round-trip bit-exactly through [`linalg::bytes`], so a restored
//! cell continues the trajectory bit-identically.

use crate::cell::{Cell, CellParams};
use crate::selfop::SelfOpOptions;
use linalg::{ByteReader, ByteWriter, CodecError};
use sphharm::SphCoeffs;

/// Format tag guarding against layout drift between PRs.
const CELL_STATE_VERSION: u8 = 1;

fn write_coeffs(w: &mut ByteWriter, c: &SphCoeffs) {
    w.put_usize(c.p);
    w.put_f64_slice(&c.data);
}

fn read_coeffs(r: &mut ByteReader) -> Result<SphCoeffs, CodecError> {
    let p = r.get_usize()?;
    let data = r.get_f64_vec()?;
    if data.len() != (p + 1) * (p + 1) {
        return Err(CodecError(format!(
            "coefficient length {} does not match order {p}",
            data.len()
        )));
    }
    Ok(SphCoeffs { p, data })
}

impl Cell {
    /// Serializes the full cell state (coefficients, reference area
    /// element, parameters) into `w`.
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_u8(CELL_STATE_VERSION);
        for c in &self.coeffs {
            write_coeffs(w, c);
        }
        w.put_f64_slice(&self.ref_w);
        let p = &self.params;
        w.put_f64(p.kappa_b);
        w.put_f64(p.k_area);
        w.put_f64(p.mu);
        w.put_usize(p.selfop.upsample);
        w.put_usize(p.selfop.p_extrap);
        w.put_f64(p.selfop.big_r);
        w.put_f64(p.selfop.small_r);
    }

    /// Reconstructs a cell from bytes written by [`Cell::write_state`].
    ///
    /// Unlike [`Cell::new`] this does **not** recapture the reference
    /// geometry: the stored `ref_w` (the unstretched state the tension
    /// penalty measures against) is restored verbatim.
    pub fn read_state(r: &mut ByteReader) -> Result<Cell, CodecError> {
        let version = r.get_u8()?;
        if version != CELL_STATE_VERSION {
            return Err(CodecError(format!(
                "unsupported cell state version {version}"
            )));
        }
        let coeffs = [read_coeffs(r)?, read_coeffs(r)?, read_coeffs(r)?];
        let ref_w = r.get_f64_vec()?;
        let params = CellParams {
            kappa_b: r.get_f64()?,
            k_area: r.get_f64()?,
            mu: r.get_f64()?,
            selfop: SelfOpOptions {
                upsample: r.get_usize()?,
                p_extrap: r.get_usize()?,
                big_r: r.get_f64()?,
                small_r: r.get_f64()?,
            },
        };
        Ok(Cell {
            coeffs,
            ref_w,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::bumpy_sphere_coeffs;
    use linalg::Vec3;
    use sphharm::SphBasis;

    #[test]
    fn cell_state_round_trips_bit_exactly() {
        let basis = SphBasis::new(8);
        let params = CellParams {
            kappa_b: 0.037,
            k_area: 2.5,
            mu: 1.25,
            ..Default::default()
        };
        let mut cell = Cell::new(
            &basis,
            bumpy_sphere_coeffs(&basis, 1.0, Vec3::new(0.3, -0.7, 2.0), 0.05),
            params,
        );
        // deform away from the reference so ref_w ≠ current geometry
        let pos: Vec<Vec3> = cell
            .positions(&basis)
            .iter()
            .map(|p| *p * 1.1 + Vec3::new(0.0, 0.0, 0.01))
            .collect();
        cell.set_positions(&basis, &pos);

        let mut w = ByteWriter::new();
        cell.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = Cell::read_state(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);

        for c in 0..3 {
            assert_eq!(back.coeffs[c].p, cell.coeffs[c].p);
            let a: Vec<u64> = cell.coeffs[c].data.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = back.coeffs[c].data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "component {c} coefficients differ");
        }
        let a: Vec<u64> = cell.ref_w.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = back.ref_w.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "reference area element differs");
        assert_eq!(back.params.kappa_b, cell.params.kappa_b);
        assert_eq!(back.params.selfop.p_extrap, cell.params.selfop.p_extrap);
    }

    #[test]
    fn corrupt_version_is_rejected() {
        let basis = SphBasis::new(6);
        let cell = Cell::new(
            &basis,
            bumpy_sphere_coeffs(&basis, 1.0, Vec3::ZERO, 0.02),
            CellParams::default(),
        );
        let mut w = ByteWriter::new();
        cell.write_state(&mut w);
        let mut bytes = w.into_bytes();
        bytes[0] = 99;
        assert!(Cell::read_state(&mut ByteReader::new(&bytes)).is_err());
    }
}
