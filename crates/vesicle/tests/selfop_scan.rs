//! Parameter scan for the self-interaction quadrature (run with --ignored).
use linalg::Vec3;
use sphharm::SphBasis;
use vesicle::{sphere_coeffs, SelfInteraction, SelfOpOptions};

#[test]
#[ignore]
fn scan() {
    let p = 12;
    let a = 1.3;
    let mu = 0.8;
    let basis = SphBasis::new(p);
    let coeffs = sphere_coeffs(&basis, a, Vec3::ZERO);
    let n = basis.grid_size();
    let u_ref = Vec3::new(0.3, -1.0, 0.5);
    let t = u_ref * (3.0 * mu / (2.0 * a));
    let mut f = vec![0.0; 3 * n];
    for i in 0..n {
        f[3 * i] = t.x;
        f[3 * i + 1] = t.y;
        f[3 * i + 2] = t.z;
    }
    for upsample in [2usize, 3] {
        for pe in [4usize, 6, 8] {
            for (br, sr) in [
                (1.0, 0.5),
                (1.5, 0.5),
                (2.0, 0.5),
                (2.0, 1.0),
                (3.0, 1.0),
                (1.0, 0.25),
            ] {
                let op = SelfInteraction::build(
                    &basis,
                    &coeffs,
                    mu,
                    SelfOpOptions {
                        upsample,
                        p_extrap: pe,
                        big_r: br,
                        small_r: sr,
                    },
                );
                let u = op.apply(&f);
                let mut e = 0.0_f64;
                for i in 0..n {
                    let got = Vec3::new(u[3 * i], u[3 * i + 1], u[3 * i + 2]);
                    e = e.max((got - u_ref).norm());
                }
                println!(
                    "up={upsample} pe={pe} R={br} r={sr}: err {:.2e}",
                    e / u_ref.norm()
                );
            }
        }
    }
}
