//! Adaptive, 2:1-balanced linear octree over source and target point sets.
//!
//! This is the tree structure underneath the kernel-independent FMM (the
//! role PVFMM's distributed octree plays in the paper). Construction:
//!
//! 1. sort source and target points by their Morton codes at maximum depth;
//! 2. split top-down while a node holds more points than the leaf capacity
//!    (children that contain no points are pruned);
//! 3. enforce the 2:1 balance condition (adjacent leaves differ by at most
//!    one level) by splitting coarse leaves, which keeps the FMM interaction
//!    lists bounded;
//! 4. build the classic adaptive-FMM interaction lists (colleagues, U, V,
//!    W, X) for every node.
//!
//! Every node stores contiguous ranges into the Morton-sorted permutations
//! of the input points, so per-leaf point access is allocation-free.

use crate::morton::{point_morton, MortonKey, MAX_DEPTH};
use linalg::{Aabb, Vec3};
use rayon::prelude::*;
use std::collections::HashMap;

/// Sentinel for "no node".
pub const NONE: u32 = u32::MAX;

/// Result of [`Octree::retarget`]: targets that could not be assigned to a
/// leaf of the frozen (source-built) tree.
///
/// A source-only tree prunes boxes that hold no sources, so a target may
/// land in a region with no leaf — its deepest covering node is *internal*
/// (a "virtual leaf" position). Targets outside the root cube cannot be
/// Morton-binned at all and are listed separately.
#[derive(Clone, Debug, Default)]
pub struct Retarget {
    /// Original indices of targets outside the root cube.
    pub outside: Vec<u32>,
    /// `(owner node, deep Morton code, original index)` for each target
    /// whose deepest covering node is internal, sorted by that tuple — so
    /// entries sharing an owner are contiguous and Morton-ordered within
    /// the owner.
    pub virt: Vec<(u32, u64, u32)>,
}

/// A node of the octree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Geometric key (level + anchor).
    pub key: MortonKey,
    /// Parent node index (`NONE` for the root).
    pub parent: u32,
    /// Child node indices (`NONE` where the child does not exist).
    pub children: [u32; 8],
    /// Whether this node is a leaf.
    pub is_leaf: bool,
    /// Range into [`Octree::src_order`] of sources inside this node.
    pub src_range: (u32, u32),
    /// Range into [`Octree::trg_order`] of targets inside this node.
    pub trg_range: (u32, u32),
    /// Same-level adjacent nodes that exist in the tree.
    pub colleagues: Vec<u32>,
    /// U list (leaves only): adjacent leaves of any level, including self.
    pub u_list: Vec<u32>,
    /// V list: children of the parent's colleagues not adjacent to this node.
    pub v_list: Vec<u32>,
    /// W list (leaves only): non-adjacent descendants of colleagues whose
    /// parent is adjacent; their multipole is evaluated directly at targets.
    pub w_list: Vec<u32>,
    /// X list: dual of W — leaves whose sources enter this node's local
    /// expansion directly.
    pub x_list: Vec<u32>,
}

impl Node {
    fn new(key: MortonKey, parent: u32) -> Node {
        Node {
            key,
            parent,
            children: [NONE; 8],
            is_leaf: true,
            src_range: (0, 0),
            trg_range: (0, 0),
            colleagues: Vec::new(),
            u_list: Vec::new(),
            v_list: Vec::new(),
            w_list: Vec::new(),
            x_list: Vec::new(),
        }
    }

    /// Number of source points in this node.
    pub fn nsrc(&self) -> usize {
        (self.src_range.1 - self.src_range.0) as usize
    }

    /// Number of target points in this node.
    pub fn ntrg(&self) -> usize {
        (self.trg_range.1 - self.trg_range.0) as usize
    }
}

/// Construction options.
#[derive(Clone, Copy, Debug)]
pub struct TreeOptions {
    /// Split a node when it holds more than this many points (src + trg).
    pub leaf_capacity: usize,
    /// Hard depth limit.
    pub max_depth: u32,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            leaf_capacity: 160,
            max_depth: 12,
        }
    }
}

/// The adaptive octree. See the module docs.
#[derive(Clone, Debug)]
pub struct Octree {
    /// Center of the root cube.
    pub center: Vec3,
    /// Half-width of the root cube.
    pub half: f64,
    /// All nodes; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Permutation of the source points in Morton order.
    pub src_order: Vec<u32>,
    /// Permutation of the target points in Morton order.
    pub trg_order: Vec<u32>,
    /// Node indices grouped by level (index 0 = root level).
    pub levels: Vec<Vec<u32>>,
    key_to_node: HashMap<MortonKey, u32>,
    src_codes: Vec<u64>,
    trg_codes: Vec<u64>,
}

impl Octree {
    /// Builds the tree over the given sources and targets.
    ///
    /// The root cube is the inflated bounding cube of all points. Either set
    /// may be empty (but not both).
    pub fn build(src: &[Vec3], trg: &[Vec3], opts: TreeOptions) -> Octree {
        assert!(
            !src.is_empty() || !trg.is_empty(),
            "Octree::build: no points"
        );
        let bbox = Aabb::from_points(src.iter().chain(trg.iter()).copied());
        let ext = bbox.extent();
        let half = (0.5 * ext.max_component()).max(1e-12) * (1.0 + 1e-9) + 1e-300;
        let center = bbox.center();

        // Morton codes at max resolution + argsort
        let mut src_codes: Vec<u64> = src
            .par_iter()
            .map(|&p| point_morton(p, center, half))
            .collect();
        let mut trg_codes: Vec<u64> = trg
            .par_iter()
            .map(|&p| point_morton(p, center, half))
            .collect();
        let mut src_order: Vec<u32> = (0..src.len() as u32).collect();
        let mut trg_order: Vec<u32> = (0..trg.len() as u32).collect();
        src_order.par_sort_unstable_by_key(|&i| src_codes[i as usize]);
        trg_order.par_sort_unstable_by_key(|&i| trg_codes[i as usize]);
        // reorder codes into sorted order for range splitting
        src_codes = src_order.iter().map(|&i| src_codes[i as usize]).collect();
        trg_codes = trg_order.iter().map(|&i| trg_codes[i as usize]).collect();

        let mut tree = Octree {
            center,
            half,
            nodes: vec![Node::new(MortonKey::ROOT, NONE)],
            src_order,
            trg_order,
            levels: Vec::new(),
            key_to_node: HashMap::new(),
            src_codes,
            trg_codes,
        };
        tree.nodes[0].src_range = (0, tree.src_order.len() as u32);
        tree.nodes[0].trg_range = (0, tree.trg_order.len() as u32);

        // top-down refinement
        let mut stack = vec![0u32];
        while let Some(ni) = stack.pop() {
            let n = &tree.nodes[ni as usize];
            if n.nsrc() + n.ntrg() > opts.leaf_capacity && n.key.level < opts.max_depth {
                let children = tree.split(ni);
                stack.extend(children);
            }
        }

        tree.balance(opts.max_depth);
        tree.finalize();
        tree
    }

    /// Splits node `ni` into its nonempty children; returns their indices.
    fn split(&mut self, ni: u32) -> Vec<u32> {
        let key = self.nodes[ni as usize].key;
        let (s0, s1) = self.nodes[ni as usize].src_range;
        let (t0, t1) = self.nodes[ni as usize].trg_range;
        let child_keys = key.children();
        let mut out = Vec::with_capacity(8);
        // children partition the Morton code range of the parent; find
        // boundaries by binary search on the sorted deep codes.
        let mut s_lo = s0 as usize;
        let mut t_lo = t0 as usize;
        for (ci, ck) in child_keys.iter().enumerate() {
            // upper bound of this child's code range
            let hi_code = child_code_upper_bound(*ck);
            let s_hi = upper_bound(&self.src_codes[..s1 as usize], s_lo, hi_code);
            let t_hi = upper_bound(&self.trg_codes[..t1 as usize], t_lo, hi_code);
            if s_hi > s_lo || t_hi > t_lo {
                let idx = self.nodes.len() as u32;
                let mut child = Node::new(*ck, ni);
                child.src_range = (s_lo as u32, s_hi as u32);
                child.trg_range = (t_lo as u32, t_hi as u32);
                self.nodes.push(child);
                self.nodes[ni as usize].children[ci] = idx;
                out.push(idx);
            }
            s_lo = s_hi;
            t_lo = t_hi;
        }
        self.nodes[ni as usize].is_leaf = false;
        out
    }

    /// Enforces the 2:1 balance condition by splitting coarse leaves that
    /// neighbour much finer ones. Splitting a leaf may create new
    /// violations, so we iterate to a fixed point.
    fn balance(&mut self, max_depth: u32) {
        loop {
            let mut to_split: Vec<u32> = Vec::new();
            // collect current leaves by level, finest first
            let mut leaves: Vec<u32> = (0..self.nodes.len() as u32)
                .filter(|&i| self.nodes[i as usize].is_leaf)
                .collect();
            leaves.sort_by_key(|&i| std::cmp::Reverse(self.nodes[i as usize].key.level));
            for &li in &leaves {
                let key = self.nodes[li as usize].key;
                if key.level <= 1 {
                    continue;
                }
                // every neighbour region at level-1 must not be covered by a
                // leaf coarser than level-1
                for nb in key.parent().neighbors() {
                    if let Some(cover) = self.deepest_node_covering(nb) {
                        let cn = &self.nodes[cover as usize];
                        if cn.is_leaf && cn.key.level < nb.level && cn.key.level < max_depth {
                            to_split.push(cover);
                        }
                    }
                }
            }
            to_split.sort_unstable();
            to_split.dedup();
            if to_split.is_empty() {
                break;
            }
            for ni in to_split {
                if self.nodes[ni as usize].is_leaf {
                    self.split(ni);
                }
            }
        }
    }

    /// Finds the deepest existing node whose region contains the region of
    /// `key` (i.e. the node is an ancestor-or-self of `key`).
    fn deepest_node_covering(&self, key: MortonKey) -> Option<u32> {
        let mut cur = 0u32; // root
        loop {
            let node = &self.nodes[cur as usize];
            if node.key.level == key.level || node.is_leaf {
                return Some(cur);
            }
            let child_key = key.ancestor_at(node.key.level + 1);
            let ci = child_key.child_index();
            let child = node.children[ci];
            if child == NONE {
                // region exists geometrically but holds no points
                return Some(cur);
            }
            cur = child;
        }
    }

    /// Looks up a node by exact key.
    pub fn node_by_key(&self, key: MortonKey) -> Option<u32> {
        self.key_to_node.get(&key).copied()
    }

    /// Re-bins a new target set onto the existing (frozen) tree without
    /// touching its structure, sources, or interaction lists.
    ///
    /// Targets that land in a leaf are Morton-sorted into `trg_order` and
    /// the per-node `trg_range`s are rebuilt top-down. Targets whose
    /// deepest covering node is internal (their region was pruned at build
    /// time) and targets outside the root cube are returned in the
    /// [`Retarget`] — the caller must evaluate those separately.
    pub fn retarget(&mut self, trg: &[Vec3]) -> Retarget {
        let mut ret = Retarget::default();
        let mut regular: Vec<(u64, u32)> = Vec::with_capacity(trg.len());
        for (i, &p) in trg.iter().enumerate() {
            // `point_morton` clamps to the cube, so outside-ness must be
            // tested explicitly
            let d = p - self.center;
            if d.x.abs() > self.half || d.y.abs() > self.half || d.z.abs() > self.half {
                ret.outside.push(i as u32);
                continue;
            }
            let code = point_morton(p, self.center, self.half);
            let deep = MortonKey {
                level: MAX_DEPTH,
                code,
            };
            let mut cur = 0u32;
            loop {
                let node = &self.nodes[cur as usize];
                if node.is_leaf {
                    regular.push((code, i as u32));
                    break;
                }
                let ci = deep.ancestor_at(node.key.level + 1).child_index();
                let child = node.children[ci];
                if child == NONE {
                    ret.virt.push((cur, code, i as u32));
                    break;
                }
                cur = child;
            }
        }
        ret.virt.sort_unstable();
        regular.sort_unstable();
        self.trg_codes = regular.iter().map(|&(c, _)| c).collect();
        self.trg_order = regular.iter().map(|&(_, i)| i).collect();

        // rebuild target ranges top-down in level order (a node's range is
        // fixed before its children partition it)
        for n in &mut self.nodes {
            n.trg_range = (0, 0);
        }
        self.nodes[0].trg_range = (0, self.trg_order.len() as u32);
        let level_order: Vec<u32> = self.levels.iter().flatten().copied().collect();
        for &ni in &level_order {
            if self.nodes[ni as usize].is_leaf {
                continue;
            }
            let (t0, t1) = self.nodes[ni as usize].trg_range;
            let child_keys = self.nodes[ni as usize].key.children();
            let children = self.nodes[ni as usize].children;
            let mut t_lo = t0 as usize;
            for (ci, ck) in child_keys.iter().enumerate() {
                let t_hi = upper_bound(
                    &self.trg_codes[..t1 as usize],
                    t_lo,
                    child_code_upper_bound(*ck),
                );
                if children[ci] != NONE {
                    self.nodes[children[ci] as usize].trg_range = (t_lo as u32, t_hi as u32);
                } else {
                    // targets in pruned regions were routed to `virt` above
                    debug_assert_eq!(t_lo, t_hi);
                }
                t_lo = t_hi;
            }
        }
        ret
    }

    /// Builds the level lists, the key map, and all interaction lists.
    fn finalize(&mut self) {
        let max_level = self.nodes.iter().map(|n| n.key.level).max().unwrap_or(0);
        self.levels = vec![Vec::new(); (max_level + 1) as usize];
        self.key_to_node = HashMap::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            self.levels[n.key.level as usize].push(i as u32);
            self.key_to_node.insert(n.key, i as u32);
        }

        // colleagues + V lists (any node), computed in parallel per node
        let cols_v: Vec<(Vec<u32>, Vec<u32>)> = (0..self.nodes.len())
            .into_par_iter()
            .map(|i| {
                let node = &self.nodes[i];
                let mut colleagues = Vec::new();
                for nb in node.key.neighbors() {
                    if let Some(j) = self.node_by_key(nb) {
                        colleagues.push(j);
                    }
                }
                // V list: children of parent's colleagues not adjacent to me
                let mut v = Vec::new();
                if node.parent != NONE {
                    let parent = &self.nodes[node.parent as usize];
                    for nb in parent.key.neighbors() {
                        if let Some(pc) = self.node_by_key(nb) {
                            for &c in &self.nodes[pc as usize].children {
                                if c != NONE && !self.nodes[c as usize].key.is_adjacent(node.key) {
                                    v.push(c);
                                }
                            }
                        }
                    }
                }
                (colleagues, v)
            })
            .collect();
        for (i, (c, v)) in cols_v.into_iter().enumerate() {
            self.nodes[i].colleagues = c;
            self.nodes[i].v_list = v;
        }

        // U and W lists for leaves
        let uw: Vec<(usize, Vec<u32>, Vec<u32>)> = (0..self.nodes.len())
            .into_par_iter()
            .filter(|&i| self.nodes[i].is_leaf)
            .map(|i| {
                let (u, w) = self.compute_u_w(i as u32);
                (i, u, w)
            })
            .collect();
        for (i, u, w) in &uw {
            self.nodes[*i].u_list = u.clone();
            self.nodes[*i].w_list = w.clone();
        }

        // X list = dual of W
        let mut x: Vec<Vec<u32>> = vec![Vec::new(); self.nodes.len()];
        for (i, _, w) in &uw {
            for &c in w {
                x[c as usize].push(*i as u32);
            }
        }
        for (i, xi) in x.into_iter().enumerate() {
            self.nodes[i].x_list = xi;
        }
    }

    /// Computes the U and W lists of leaf `li`.
    fn compute_u_w(&self, li: u32) -> (Vec<u32>, Vec<u32>) {
        let (mut u, w) = self.near_lists(li);
        u.push(li);
        u.sort_unstable();
        u.dedup();
        (u, w)
    }

    /// Near-field lists of *any* node (leaf or internal), excluding the
    /// node itself: adjacent leaves (U-style, exact P2P) and non-adjacent
    /// subtrees whose parent is adjacent (W-style, multipole-at-target).
    ///
    /// Walks the (≤26) same-level neighbour regions. For each region we find
    /// the covering node: a coarser-or-equal leaf goes straight to U; an
    /// internal node is descended, collecting adjacent leaves into U and
    /// non-adjacent child subtrees (whose parent is adjacent) into W.
    ///
    /// For a leaf this is its U (minus self) and W lists. For an internal
    /// node it gives the near field of a point anywhere inside the node —
    /// the W margin is the same as for a leaf (a W member at level `l` is
    /// non-adjacent to the node, so any interior point is at least three
    /// level-`l` half-widths from the member's centre). Sources inside the
    /// node's own subtree are *not* covered and must be handled by the
    /// caller.
    pub fn near_lists(&self, ni: u32) -> (Vec<u32>, Vec<u32>) {
        let key = self.nodes[ni as usize].key;
        let mut u = Vec::new();
        let mut w = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        for nb in key.neighbors() {
            if let Some(ci) = self.deepest_node_covering(nb) {
                let cn = &self.nodes[ci as usize];
                if cn.key.level < nb.level {
                    // coarser covering node: if it's a leaf it is adjacent
                    if cn.is_leaf {
                        u.push(ci);
                    }
                    // an internal coarser cover means the region holds no
                    // points (child absent) -> nothing to do
                } else if cn.is_leaf {
                    u.push(ci);
                } else {
                    stack.push(ci);
                }
            }
        }
        while let Some(si) = stack.pop() {
            for &c in &self.nodes[si as usize].children {
                if c == NONE {
                    continue;
                }
                let cn = &self.nodes[c as usize];
                if cn.key.is_adjacent(key) {
                    if cn.is_leaf {
                        u.push(c);
                    } else {
                        stack.push(c);
                    }
                } else {
                    // parent was adjacent, this child is not: W list
                    w.push(c);
                }
            }
        }
        u.sort_unstable();
        u.dedup();
        (u, w)
    }

    /// Leaf node indices.
    pub fn leaves(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].is_leaf)
            .collect()
    }

    /// Center of a node's cube.
    pub fn node_center(&self, ni: u32) -> Vec3 {
        let key = self.nodes[ni as usize].key;
        let (x, y, z) = key.anchor();
        let w = 2.0 * self.half / (1u64 << key.level) as f64;
        let lo = self.center - Vec3::splat(self.half);
        lo + Vec3::new(
            (x as f64 + 0.5) * w,
            (y as f64 + 0.5) * w,
            (z as f64 + 0.5) * w,
        )
    }

    /// Half-width of a node's cube.
    pub fn node_half(&self, ni: u32) -> f64 {
        self.half / (1u64 << self.nodes[ni as usize].key.level) as f64
    }

    /// Source indices (into the original input array) owned by node `ni`.
    pub fn node_sources(&self, ni: u32) -> &[u32] {
        let (a, b) = self.nodes[ni as usize].src_range;
        &self.src_order[a as usize..b as usize]
    }

    /// Target indices (into the original input array) owned by node `ni`.
    pub fn node_targets(&self, ni: u32) -> &[u32] {
        let (a, b) = self.nodes[ni as usize].trg_range;
        &self.trg_order[a as usize..b as usize]
    }

    /// Maximum depth actually present in the tree.
    pub fn depth(&self) -> u32 {
        (self.levels.len() as u32).saturating_sub(1)
    }
}

/// Exclusive upper bound of the deep-Morton code range covered by `key`.
fn child_code_upper_bound(key: MortonKey) -> u64 {
    let shift = 3 * (MAX_DEPTH - key.level) as u64;
    if shift >= 64 {
        u64::MAX
    } else {
        key.code + (1u64 << shift)
    }
}

/// First index in `codes[lo..]` with `codes[i] >= bound`, i.e. the exclusive
/// end of the range `< bound`.
fn upper_bound(codes: &[u64], lo: usize, bound: u64) -> usize {
    let slice = &codes[lo..];
    lo + slice.partition_point(|&c| c < bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_cloud(rng: &mut StdRng, n: usize, spread: f64) -> Vec<Vec3> {
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-spread..spread),
                    rng.random_range(-spread..spread),
                    rng.random_range(-spread..spread),
                )
            })
            .collect()
    }

    fn check_invariants(tree: &Octree, nsrc: usize, ntrg: usize) {
        // every point appears in exactly one leaf
        let mut src_seen = vec![false; nsrc];
        let mut trg_seen = vec![false; ntrg];
        for li in tree.leaves() {
            for &s in tree.node_sources(li) {
                assert!(!src_seen[s as usize], "source {s} in two leaves");
                src_seen[s as usize] = true;
            }
            for &t in tree.node_targets(li) {
                assert!(!trg_seen[t as usize], "target {t} in two leaves");
                trg_seen[t as usize] = true;
            }
        }
        assert!(src_seen.iter().all(|&b| b));
        assert!(trg_seen.iter().all(|&b| b));

        // children ranges partition parents; parent/child keys consistent
        for (i, n) in tree.nodes.iter().enumerate() {
            if !n.is_leaf {
                let mut ns = 0;
                let mut nt = 0;
                for &c in &n.children {
                    if c != NONE {
                        let cn = &tree.nodes[c as usize];
                        assert_eq!(cn.parent, i as u32);
                        assert_eq!(cn.key.parent(), n.key);
                        ns += cn.nsrc();
                        nt += cn.ntrg();
                    }
                }
                assert_eq!(ns, n.nsrc(), "node {i} source partition");
                assert_eq!(nt, n.ntrg(), "node {i} target partition");
            }
        }
    }

    #[test]
    fn build_uniform_cloud() {
        let mut rng = StdRng::seed_from_u64(1);
        let src = random_cloud(&mut rng, 500, 1.0);
        let trg = random_cloud(&mut rng, 300, 1.0);
        let tree = Octree::build(
            &src,
            &trg,
            TreeOptions {
                leaf_capacity: 40,
                max_depth: 10,
            },
        );
        check_invariants(&tree, 500, 300);
        // leaves respect capacity unless depth-limited
        for li in tree.leaves() {
            let n = &tree.nodes[li as usize];
            if n.key.level < 10 {
                assert!(
                    n.nsrc() + n.ntrg() <= 40,
                    "leaf overflow: {}",
                    n.nsrc() + n.ntrg()
                );
            }
        }
    }

    #[test]
    fn two_to_one_balance_holds() {
        let mut rng = StdRng::seed_from_u64(2);
        // highly non-uniform: dense cluster + sparse halo
        let mut pts = random_cloud(&mut rng, 800, 0.01);
        pts.extend(random_cloud(&mut rng, 50, 1.0));
        let tree = Octree::build(
            &pts,
            &pts,
            TreeOptions {
                leaf_capacity: 30,
                max_depth: 14,
            },
        );
        let leaves = tree.leaves();
        for &a in &leaves {
            for &b in &leaves {
                let ka = tree.nodes[a as usize].key;
                let kb = tree.nodes[b as usize].key;
                if ka.is_adjacent(kb) {
                    let d = (ka.level as i64 - kb.level as i64).abs();
                    assert!(
                        d <= 1,
                        "balance violated: levels {} vs {}",
                        ka.level,
                        kb.level
                    );
                }
            }
        }
    }

    #[test]
    fn u_list_symmetric_and_contains_self() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = random_cloud(&mut rng, 600, 1.0);
        let tree = Octree::build(
            &pts,
            &pts,
            TreeOptions {
                leaf_capacity: 25,
                max_depth: 10,
            },
        );
        for li in tree.leaves() {
            let u = &tree.nodes[li as usize].u_list;
            assert!(u.contains(&li), "U list must contain self");
            for &o in u {
                assert!(tree.nodes[o as usize].is_leaf);
                assert!(
                    tree.nodes[o as usize].u_list.contains(&li),
                    "U list not symmetric between {li} and {o}"
                );
            }
        }
    }

    #[test]
    fn interaction_lists_cover_all_pairs_exactly_once() {
        // Structural completeness: simulate the FMM contribution paths with
        // a counting kernel. For each (target leaf B, source leaf L) the
        // source must be counted exactly once through U, V, W or X.
        let mut rng = StdRng::seed_from_u64(4);
        let mut pts = random_cloud(&mut rng, 300, 1.0);
        pts.extend(random_cloud(&mut rng, 300, 0.05)); // cluster for adaptivity
        let tree = Octree::build(
            &pts,
            &pts,
            TreeOptions {
                leaf_capacity: 20,
                max_depth: 12,
            },
        );
        let n = tree.nodes.len();

        // multipole counts: number of sources per node (upward pass)
        let mut mult = vec![0usize; n];
        for i in 0..n {
            mult[i] = tree.nodes[i].nsrc();
        }

        // local counts via V and X lists, propagated down (L2L)
        let mut local = vec![0usize; n];
        let level_order: Vec<u32> = tree.levels.iter().flatten().copied().collect();
        for &i in &level_order {
            let node = &tree.nodes[i as usize];
            for &v in &node.v_list {
                local[i as usize] += mult[v as usize];
            }
            for &x in &node.x_list {
                local[i as usize] += tree.nodes[x as usize].nsrc();
            }
        }
        // push locals to children
        for &i in &level_order {
            let node = &tree.nodes[i as usize];
            if !node.is_leaf {
                for &c in &node.children {
                    if c != NONE {
                        local[c as usize] += local[i as usize];
                    }
                }
            }
        }

        let total: usize = tree.nodes[0].nsrc();
        for li in tree.leaves() {
            if tree.nodes[li as usize].ntrg() == 0 {
                continue;
            }
            let node = &tree.nodes[li as usize];
            let mut count = local[li as usize];
            for &u in &node.u_list {
                count += tree.nodes[u as usize].nsrc();
            }
            for &w in &node.w_list {
                count += mult[w as usize];
            }
            assert_eq!(
                count, total,
                "leaf {li}: covered {count} of {total} sources"
            );
        }
    }

    #[test]
    fn node_geometry_contains_its_points() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = random_cloud(&mut rng, 400, 2.5);
        let tree = Octree::build(
            &pts,
            &[],
            TreeOptions {
                leaf_capacity: 15,
                max_depth: 10,
            },
        );
        for li in tree.leaves() {
            let c = tree.node_center(li);
            let h = tree.node_half(li) * (1.0 + 1e-9);
            for &s in tree.node_sources(li) {
                let p = pts[s as usize];
                assert!(
                    (p.x - c.x).abs() <= h && (p.y - c.y).abs() <= h && (p.z - c.z).abs() <= h,
                    "point outside its leaf box"
                );
            }
        }
    }

    #[test]
    fn single_point_tree() {
        let pts = vec![Vec3::new(0.3, -0.2, 0.9)];
        let tree = Octree::build(&pts, &pts, TreeOptions::default());
        assert_eq!(tree.nodes.len(), 1);
        assert!(tree.nodes[0].is_leaf);
        assert_eq!(tree.node_sources(0), &[0]);
    }

    /// A frozen source-only tree re-binned onto a new target set must
    /// account for every target exactly once: in a leaf, as a virtual
    /// target of an internal owner, or as outside the root cube.
    #[test]
    fn retarget_partitions_every_target_exactly_once() {
        let mut rng = StdRng::seed_from_u64(6);
        // shell-like sources (pruned interior) so virtual owners appear
        let src: Vec<Vec3> = (0..700)
            .map(|_| {
                let d = Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
                .normalized();
                d * rng.random_range(0.9..1.0)
            })
            .collect();
        let mut tree = Octree::build(
            &src,
            &[],
            TreeOptions {
                leaf_capacity: 20,
                max_depth: 10,
            },
        );
        // targets throughout the interior + a few outside the cube
        let mut trg = random_cloud(&mut rng, 400, 0.8);
        trg.extend(random_cloud(&mut rng, 10, 5.0));
        let ret = tree.retarget(&trg);

        let mut seen = vec![0usize; trg.len()];
        for li in tree.leaves() {
            for &t in tree.node_targets(li) {
                seen[t as usize] += 1;
            }
        }
        for &(owner, code, t) in &ret.virt {
            let node = &tree.nodes[owner as usize];
            assert!(!node.is_leaf, "virtual owner must be internal");
            let deep = MortonKey {
                level: MAX_DEPTH,
                code,
            };
            assert!(node.key.is_ancestor_of(deep.ancestor_at(node.key.level)));
            // the child cell holding the target really is absent
            let ci = deep.ancestor_at(node.key.level + 1).child_index();
            assert_eq!(node.children[ci], NONE);
            seen[t as usize] += 1;
        }
        for &t in &ret.outside {
            let d = trg[t as usize] - tree.center;
            assert!(
                d.x.abs() > tree.half || d.y.abs() > tree.half || d.z.abs() > tree.half,
                "outside target is inside the cube"
            );
            seen[t as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "targets not partitioned");
        assert!(
            !ret.virt.is_empty(),
            "test geometry produced no virtual targets"
        );
        assert!(
            ret.outside.len() >= 1,
            "test geometry produced no outside targets"
        );

        // per-node target ranges still partition parents
        for (i, n) in tree.nodes.iter().enumerate() {
            if !n.is_leaf {
                let nt: usize = n
                    .children
                    .iter()
                    .filter(|&&c| c != NONE)
                    .map(|&c| tree.nodes[c as usize].ntrg())
                    .sum();
                assert_eq!(nt, n.ntrg(), "node {i} target partition");
            }
        }

        // re-binning a second target set and then the first again must
        // reproduce the first assignment exactly
        let order1 = tree.trg_order.clone();
        let ranges1: Vec<(u32, u32)> = tree.nodes.iter().map(|n| n.trg_range).collect();
        let other = random_cloud(&mut rng, 123, 0.5);
        let _ = tree.retarget(&other);
        let ret2 = tree.retarget(&trg);
        assert_eq!(order1, tree.trg_order);
        assert_eq!(
            ranges1,
            tree.nodes.iter().map(|n| n.trg_range).collect::<Vec<_>>()
        );
        assert_eq!(ret.outside, ret2.outside);
        assert_eq!(ret.virt, ret2.virt);
    }

    /// The virtual-owner evaluation identity: for an internal owner `n`,
    /// local(n) (V/X of `n` and its ancestors) + near_lists(n) + subtree(n)
    /// must cover every source exactly once — the same counting-kernel
    /// check `interaction_lists_cover_all_pairs_exactly_once` runs for
    /// leaves.
    #[test]
    fn virtual_owner_lists_cover_all_sources_exactly_once() {
        let mut rng = StdRng::seed_from_u64(14);
        let src: Vec<Vec3> = (0..900)
            .map(|_| {
                let d = Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
                .normalized();
                d * rng.random_range(0.85..1.0)
            })
            .collect();
        let mut tree = Octree::build(
            &src,
            &[],
            TreeOptions {
                leaf_capacity: 15,
                max_depth: 12,
            },
        );
        let trg = random_cloud(&mut rng, 300, 0.9);
        let ret = tree.retarget(&trg);
        assert!(!ret.virt.is_empty(), "no virtual owners to check");

        // local counts via V and X lists, propagated down (as in the leaf
        // coverage test; an internal node's nsrc() is its subtree count)
        let n = tree.nodes.len();
        let mut local = vec![0usize; n];
        let level_order: Vec<u32> = tree.levels.iter().flatten().copied().collect();
        for &i in &level_order {
            let node = &tree.nodes[i as usize];
            for &v in &node.v_list {
                local[i as usize] += tree.nodes[v as usize].nsrc();
            }
            for &x in &node.x_list {
                local[i as usize] += tree.nodes[x as usize].nsrc();
            }
        }
        for &i in &level_order {
            let node = &tree.nodes[i as usize];
            if !node.is_leaf {
                for &c in &node.children {
                    if c != NONE {
                        local[c as usize] += local[i as usize];
                    }
                }
            }
        }

        let total = tree.nodes[0].nsrc();
        let mut owners: Vec<u32> = ret.virt.iter().map(|&(o, _, _)| o).collect();
        owners.dedup();
        for owner in owners {
            let (u, w) = tree.near_lists(owner);
            assert!(!u.contains(&owner), "near_lists must exclude self");
            let mut count = local[owner as usize] + tree.nodes[owner as usize].nsrc();
            for &ui in &u {
                assert!(tree.nodes[ui as usize].is_leaf);
                count += tree.nodes[ui as usize].nsrc();
            }
            for &wi in &w {
                assert!(!tree.nodes[wi as usize]
                    .key
                    .is_adjacent(tree.nodes[owner as usize].key));
                count += tree.nodes[wi as usize].nsrc();
            }
            assert_eq!(
                count, total,
                "owner {owner}: covered {count} of {total} sources"
            );
        }
    }

    /// `near_lists` on a leaf must agree with its stored U (minus self)
    /// and W lists.
    #[test]
    fn near_lists_matches_leaf_u_w() {
        let mut rng = StdRng::seed_from_u64(15);
        let pts = random_cloud(&mut rng, 500, 1.0);
        let tree = Octree::build(
            &pts,
            &pts,
            TreeOptions {
                leaf_capacity: 25,
                max_depth: 10,
            },
        );
        for li in tree.leaves() {
            let (u, w) = tree.near_lists(li);
            let mut expect: Vec<u32> = tree.nodes[li as usize]
                .u_list
                .iter()
                .copied()
                .filter(|&x| x != li)
                .collect();
            expect.sort_unstable();
            assert_eq!(u, expect, "leaf {li} U mismatch");
            assert_eq!(w, tree.nodes[li as usize].w_list, "leaf {li} W mismatch");
        }
    }
}
