//! Sort-based spatial hashing for near-pair detection.
//!
//! Implements the parallel candidate-search pattern of §3.3 (near-zone
//! detection for near-singular integration) and §4 (collision candidate
//! pairs): assign spatial sort keys to inflated bounding boxes and to query
//! points, sort everything by key, and pair up entries that land in the same
//! cell.
//!
//! Two deliberate deviations from the paper, both documented in DESIGN.md:
//! the parallel distributed HykSort is replaced by `rayon`'s parallel sort,
//! and instead of *sampling* each box with equispaced samples we enumerate
//! exactly the grid cells the box overlaps (same effect as sampling at grid
//! resolution, with no risk of missed cells). Hash aliasing can only create
//! false positives — candidates are always verified by an exact geometric
//! test downstream — never false negatives.

use crate::morton::morton_encode;
use linalg::{Aabb, Vec3};
use rayon::prelude::*;

/// A uniform grid over space with spacing `h`, used to generate sort keys.
#[derive(Clone, Copy, Debug)]
pub struct SpatialHash {
    /// Grid spacing (the paper's `H`, the average inflated box diagonal).
    pub h: f64,
    /// Grid origin.
    pub origin: Vec3,
}

const COORD_MASK: u64 = 0x1f_ffff; // 21 bits
const COORD_OFFSET: i64 = 1 << 20;

impl SpatialHash {
    /// Creates a grid with spacing `h` anchored at `origin`.
    pub fn new(h: f64, origin: Vec3) -> SpatialHash {
        assert!(h > 0.0, "SpatialHash spacing must be positive");
        SpatialHash { h, origin }
    }

    /// Integer cell coordinates of a point.
    #[inline]
    pub fn cell_of(&self, p: Vec3) -> (i64, i64, i64) {
        (
            ((p.x - self.origin.x) / self.h).floor() as i64,
            ((p.y - self.origin.y) / self.h).floor() as i64,
            ((p.z - self.origin.z) / self.h).floor() as i64,
        )
    }

    /// Morton sort key of a cell (coordinates wrapped into 21 bits; see the
    /// module docs on why aliasing is harmless).
    #[inline]
    pub fn key_of_cell(&self, c: (i64, i64, i64)) -> u64 {
        let x = ((c.0 + COORD_OFFSET) as u64) & COORD_MASK;
        let y = ((c.1 + COORD_OFFSET) as u64) & COORD_MASK;
        let z = ((c.2 + COORD_OFFSET) as u64) & COORD_MASK;
        morton_encode(x, y, z)
    }

    /// Sort key of the cell containing a point.
    #[inline]
    pub fn key_of_point(&self, p: Vec3) -> u64 {
        self.key_of_cell(self.cell_of(p))
    }

    /// Enumerates the keys of every cell overlapped by the box.
    pub fn keys_of_box(&self, b: Aabb, out: &mut Vec<u64>) {
        let (x0, y0, z0) = self.cell_of(b.lo);
        let (x1, y1, z1) = self.cell_of(b.hi);
        for z in z0..=z1 {
            for y in y0..=y1 {
                for x in x0..=x1 {
                    out.push(self.key_of_cell((x, y, z)));
                }
            }
        }
    }
}

/// Picks a grid spacing from a set of boxes: the mean diagonal (the paper's
/// `H`), floored to avoid degenerate spacing.
pub fn mean_diagonal_spacing(boxes: &[Aabb]) -> f64 {
    if boxes.is_empty() {
        return 1.0;
    }
    let sum: f64 = boxes.iter().map(|b| b.diagonal()).sum();
    (sum / boxes.len() as f64).max(1e-12)
}

/// Finds all (box, point) candidate pairs: every pair where the point lies
/// in a grid cell overlapped by the box. The boxes should already be
/// inflated by the interaction distance. Exactness: if `pt ∈ box`, the pair
/// is always produced (plus possible false positives from hash aliasing).
pub fn box_point_candidates(boxes: &[Aabb], pts: &[Vec3], grid: &SpatialHash) -> Vec<(u32, u32)> {
    #[derive(Clone, Copy)]
    struct Entry {
        key: u64,
        id: u32,
        is_box: bool,
    }
    // emit entries in parallel per box / per point chunk
    let mut entries: Vec<Entry> = boxes
        .par_iter()
        .enumerate()
        .flat_map_iter(|(i, b)| {
            let mut keys = Vec::new();
            grid.keys_of_box(*b, &mut keys);
            keys.into_iter().map(move |key| Entry {
                key,
                id: i as u32,
                is_box: true,
            })
        })
        .collect();
    entries.extend(
        pts.par_iter()
            .enumerate()
            .map(|(i, &p)| Entry {
                key: grid.key_of_point(p),
                id: i as u32,
                is_box: false,
            })
            .collect::<Vec<_>>(),
    );
    entries.par_sort_unstable_by_key(|e| (e.key, e.is_box));

    // pair up within runs of equal keys (points come before boxes is not
    // guaranteed; we scan each run and cross both groups)
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    for i in 1..=entries.len() {
        if i == entries.len() || entries[i].key != entries[start].key {
            runs.push((start, i));
            start = i;
        }
    }
    runs.par_iter()
        .flat_map_iter(|&(a, b)| {
            let run = &entries[a..b];
            let pts_in: Vec<u32> = run.iter().filter(|e| !e.is_box).map(|e| e.id).collect();
            let boxes_in: Vec<u32> = run.iter().filter(|e| e.is_box).map(|e| e.id).collect();
            let mut out = Vec::with_capacity(pts_in.len() * boxes_in.len());
            for &bi in &boxes_in {
                for &pi in &pts_in {
                    out.push((bi, pi));
                }
            }
            out.into_iter()
        })
        .collect()
}

/// Finds all (i, j) candidate pairs between two sets of boxes (i from `a`,
/// j from `b`), i.e. pairs whose boxes overlap at least one common grid
/// cell. Pairs are deduplicated. Use `a == b` semantics via
/// [`box_box_candidates_self`] instead when both sets are the same.
pub fn box_box_candidates(a: &[Aabb], b: &[Aabb], grid: &SpatialHash) -> Vec<(u32, u32)> {
    let mut pairs = raw_box_pairs(a, b, grid, false);
    pairs.par_sort_unstable();
    pairs.dedup();
    pairs
}

/// Candidate pairs within a single set of boxes; returns each unordered pair
/// once with `i < j`.
pub fn box_box_candidates_self(boxes: &[Aabb], grid: &SpatialHash) -> Vec<(u32, u32)> {
    let mut pairs = raw_box_pairs(boxes, boxes, grid, true);
    pairs.par_sort_unstable();
    pairs.dedup();
    pairs
}

fn raw_box_pairs(a: &[Aabb], b: &[Aabb], grid: &SpatialHash, self_mode: bool) -> Vec<(u32, u32)> {
    #[derive(Clone, Copy)]
    struct Entry {
        key: u64,
        id: u32,
        from_a: bool,
    }
    let mut entries: Vec<Entry> = a
        .par_iter()
        .enumerate()
        .flat_map_iter(|(i, bx)| {
            let mut keys = Vec::new();
            grid.keys_of_box(*bx, &mut keys);
            keys.into_iter().map(move |key| Entry {
                key,
                id: i as u32,
                from_a: true,
            })
        })
        .collect();
    if !self_mode {
        let more: Vec<Entry> = b
            .par_iter()
            .enumerate()
            .flat_map_iter(|(i, bx)| {
                let mut keys = Vec::new();
                grid.keys_of_box(*bx, &mut keys);
                keys.into_iter().map(move |key| Entry {
                    key,
                    id: i as u32,
                    from_a: false,
                })
            })
            .collect();
        entries.extend(more);
    }
    entries.par_sort_unstable_by_key(|e| e.key);

    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    for i in 1..=entries.len() {
        if i == entries.len() || entries[i].key != entries[start].key {
            runs.push((start, i));
            start = i;
        }
    }
    runs.par_iter()
        .flat_map_iter(|&(s, e)| {
            let run = &entries[s..e];
            let mut out = Vec::new();
            if self_mode {
                for i in 0..run.len() {
                    for j in i + 1..run.len() {
                        let (x, y) = (run[i].id, run[j].id);
                        if x != y {
                            out.push((x.min(y), x.max(y)));
                        }
                    }
                }
            } else {
                for ea in run.iter().filter(|e| e.from_a) {
                    for eb in run.iter().filter(|e| !e.from_a) {
                        out.push((ea.id, eb.id));
                    }
                }
            }
            out.into_iter()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn rand_box(rng: &mut StdRng, spread: f64, size: f64) -> Aabb {
        let c = Vec3::new(
            rng.random_range(-spread..spread),
            rng.random_range(-spread..spread),
            rng.random_range(-spread..spread),
        );
        let e = Vec3::new(
            rng.random_range(0.0..size),
            rng.random_range(0.0..size),
            rng.random_range(0.0..size),
        );
        Aabb::new(c - e, c + e)
    }

    #[test]
    fn box_point_candidates_complete() {
        let mut rng = StdRng::seed_from_u64(10);
        let boxes: Vec<Aabb> = (0..50).map(|_| rand_box(&mut rng, 2.0, 0.3)).collect();
        let pts: Vec<Vec3> = (0..200)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-2.0..2.0),
                    rng.random_range(-2.0..2.0),
                    rng.random_range(-2.0..2.0),
                )
            })
            .collect();
        let grid = SpatialHash::new(mean_diagonal_spacing(&boxes), Vec3::ZERO);
        let cands = box_point_candidates(&boxes, &pts, &grid);
        let set: std::collections::HashSet<(u32, u32)> = cands.into_iter().collect();
        // completeness vs brute force
        for (bi, b) in boxes.iter().enumerate() {
            for (pi, &p) in pts.iter().enumerate() {
                if b.contains(p) {
                    assert!(
                        set.contains(&(bi as u32, pi as u32)),
                        "missed containing pair ({bi},{pi})"
                    );
                }
            }
        }
    }

    #[test]
    fn box_box_candidates_complete() {
        let mut rng = StdRng::seed_from_u64(11);
        let a: Vec<Aabb> = (0..40).map(|_| rand_box(&mut rng, 1.5, 0.4)).collect();
        let b: Vec<Aabb> = (0..40).map(|_| rand_box(&mut rng, 1.5, 0.4)).collect();
        let grid = SpatialHash::new(0.5, Vec3::ZERO);
        let set: std::collections::HashSet<(u32, u32)> =
            box_box_candidates(&a, &b, &grid).into_iter().collect();
        for (i, ba) in a.iter().enumerate() {
            for (j, bb) in b.iter().enumerate() {
                if ba.intersects(*bb) {
                    assert!(set.contains(&(i as u32, j as u32)), "missed pair ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn self_candidates_unordered_unique() {
        let mut rng = StdRng::seed_from_u64(12);
        let boxes: Vec<Aabb> = (0..60).map(|_| rand_box(&mut rng, 1.0, 0.3)).collect();
        let grid = SpatialHash::new(0.4, Vec3::ZERO);
        let cands = box_box_candidates_self(&boxes, &grid);
        let mut seen = std::collections::HashSet::new();
        for &(i, j) in &cands {
            assert!(i < j, "pair not ordered");
            assert!(seen.insert((i, j)), "duplicate pair");
        }
        // completeness
        let set: std::collections::HashSet<(u32, u32)> = cands.into_iter().collect();
        for i in 0..boxes.len() {
            for j in i + 1..boxes.len() {
                if boxes[i].intersects(boxes[j]) {
                    assert!(
                        set.contains(&(i as u32, j as u32)),
                        "missed self pair ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn negative_coordinates_work() {
        let grid = SpatialHash::new(1.0, Vec3::ZERO);
        let b = Aabb::new(Vec3::new(-3.2, -3.2, -3.2), Vec3::new(-2.8, -2.8, -2.8));
        let p = Vec3::new(-3.0, -3.0, -3.0);
        let cands = box_point_candidates(&[b], &[p], &grid);
        assert!(cands.contains(&(0, 0)));
    }

    #[test]
    fn spacing_helper_is_mean_diagonal() {
        let boxes = vec![
            Aabb::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)),
            Aabb::new(Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0)),
        ];
        assert!((mean_diagonal_spacing(&boxes) - 2.0).abs() < 1e-14);
    }
}
