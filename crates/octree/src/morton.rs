//! Morton (Z-order) keys for octree nodes and spatial sorting.
//!
//! The paper sorts bounding-box samples and target points by a Morton-order
//! spatial hash (§3.3, step c) and distributes octree nodes in Morton order
//! inside PVFMM. Keys here carry 21 bits per dimension plus a level, enough
//! for trees of depth ≤ 21.

/// Maximum representable octree depth.
pub const MAX_DEPTH: u32 = 21;

/// A node key: refinement level and integer anchor coordinates.
///
/// The anchor is the lower corner of the node in units of the level-`level`
/// grid: coordinates lie in `[0, 2^level)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MortonKey {
    /// Refinement level (0 = root).
    pub level: u32,
    /// Interleaved Morton code of the anchor at `MAX_DEPTH` resolution.
    pub code: u64,
}

/// Spreads the low 21 bits of `v` so that there are two zero bits between
/// consecutive bits (the standard magic-number dilation).
#[inline]
pub fn dilate3(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`dilate3`].
#[inline]
pub fn contract3(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Interleaves three 21-bit coordinates into a Morton code.
#[inline]
pub fn morton_encode(x: u64, y: u64, z: u64) -> u64 {
    dilate3(x) | (dilate3(y) << 1) | (dilate3(z) << 2)
}

/// Splits a Morton code back into its three coordinates.
#[inline]
pub fn morton_decode(code: u64) -> (u64, u64, u64) {
    (contract3(code), contract3(code >> 1), contract3(code >> 2))
}

impl MortonKey {
    /// The root key (level 0, anchor at the origin).
    pub const ROOT: MortonKey = MortonKey { level: 0, code: 0 };

    /// Builds a key from level-local anchor coordinates in `[0, 2^level)`.
    pub fn from_anchor(level: u32, x: u64, y: u64, z: u64) -> MortonKey {
        debug_assert!(level <= MAX_DEPTH);
        debug_assert!(
            x < (1 << level).max(1) && y < (1 << level).max(1) && z < (1 << level).max(1)
        );
        let shift = MAX_DEPTH - level;
        MortonKey {
            level,
            code: morton_encode(x << shift, y << shift, z << shift),
        }
    }

    /// Anchor coordinates in the level-local grid `[0, 2^level)`.
    pub fn anchor(self) -> (u64, u64, u64) {
        let (x, y, z) = morton_decode(self.code);
        let shift = MAX_DEPTH - self.level;
        (x >> shift, y >> shift, z >> shift)
    }

    /// Parent key; the root is its own parent.
    pub fn parent(self) -> MortonKey {
        if self.level == 0 {
            return self;
        }
        let level = self.level - 1;
        let shift = MAX_DEPTH - level;
        // zero out the bits below the parent level
        let mask = !((1u64 << (3 * shift.min(63) as u64)).wrapping_sub(1));
        let mask = if shift >= 21 { 0 } else { mask };
        MortonKey {
            level,
            code: self.code & mask,
        }
    }

    /// The eight children, in Morton order.
    pub fn children(self) -> [MortonKey; 8] {
        debug_assert!(self.level < MAX_DEPTH);
        let level = self.level + 1;
        let shift = MAX_DEPTH - level;
        let mut out = [MortonKey { level, code: 0 }; 8];
        for (i, o) in out.iter_mut().enumerate() {
            let dx = (i & 1) as u64;
            let dy = ((i >> 1) & 1) as u64;
            let dz = ((i >> 2) & 1) as u64;
            o.code = self.code | morton_encode(dx << shift, dy << shift, dz << shift);
        }
        out
    }

    /// Index of this node among its parent's children (0–7).
    pub fn child_index(self) -> usize {
        if self.level == 0 {
            return 0;
        }
        let shift = MAX_DEPTH - self.level;
        let (x, y, z) = morton_decode(self.code);
        (((x >> shift) & 1) | (((y >> shift) & 1) << 1) | (((z >> shift) & 1) << 2)) as usize
    }

    /// Whether `self` is an ancestor of `other` (inclusive of equality).
    pub fn is_ancestor_of(self, other: MortonKey) -> bool {
        if self.level > other.level {
            return false;
        }
        other.ancestor_at(self.level) == self
    }

    /// The ancestor of this key at the given (coarser or equal) level.
    pub fn ancestor_at(self, level: u32) -> MortonKey {
        debug_assert!(level <= self.level);
        let shift = MAX_DEPTH - level;
        let mask = if shift >= 21 {
            0u64
        } else {
            !((1u64 << (3 * shift as u64)) - 1)
        };
        MortonKey {
            level,
            code: self.code & mask,
        }
    }

    /// Same-level neighbours sharing a face, edge, or corner (≤ 26), clipped
    /// to the root cube.
    pub fn neighbors(self) -> Vec<MortonKey> {
        let (x, y, z) = self.anchor();
        let n = 1u64 << self.level;
        let mut out = Vec::with_capacity(26);
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    let nz = z as i64 + dz;
                    if nx < 0 || ny < 0 || nz < 0 {
                        continue;
                    }
                    let (nx, ny, nz) = (nx as u64, ny as u64, nz as u64);
                    if nx >= n || ny >= n || nz >= n {
                        continue;
                    }
                    out.push(MortonKey::from_anchor(self.level, nx, ny, nz));
                }
            }
        }
        out
    }

    /// Whether two same- or different-level boxes are adjacent (share at
    /// least a corner) or overlap. Works on the integer anchor geometry.
    pub fn is_adjacent(self, other: MortonKey) -> bool {
        // compare in the finer of the two grids
        let (a, b) = if self.level >= other.level {
            (self, other)
        } else {
            (other, self)
        };
        let shift = a.level - b.level;
        let (ax, ay, az) = a.anchor();
        let (bx, by, bz) = b.anchor();
        // box b in a's grid units: [b*2^shift, (b+1)*2^shift]
        let scale = 1u64 << shift;
        let adj1 = |p: u64, q0: u64| -> bool {
            let q1 = q0 + scale;
            // interval [p, p+1] vs [q0, q1]: adjacent or overlapping
            p + 1 >= q0 && p <= q1
        };
        adj1(ax, bx * scale) && adj1(ay, by * scale) && adj1(az, bz * scale)
    }
}

/// Computes the Morton code (at `MAX_DEPTH` resolution) of a point inside
/// the root cube `[center − half, center + half]³`.
pub fn point_morton(p: linalg::Vec3, center: linalg::Vec3, half: f64) -> u64 {
    let n = (1u64 << MAX_DEPTH) as f64;
    let clampi = |v: f64| -> u64 {
        let t = (v + half) / (2.0 * half);
        let i = (t * n).floor();
        i.clamp(0.0, n - 1.0) as u64
    };
    morton_encode(
        clampi(p.x - center.x),
        clampi(p.y - center.y),
        clampi(p.z - center.z),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilate_contract_roundtrip() {
        for v in [0u64, 1, 2, 7, 0x1f_ffff, 123456, 0x15555] {
            assert_eq!(contract3(dilate3(v)), v);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for (x, y, z) in [
            (0u64, 0, 0),
            (1, 2, 3),
            (100, 2000, 30000),
            (0x1fffff, 0, 0x1fffff),
        ] {
            assert_eq!(morton_decode(morton_encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn parent_child_roundtrip() {
        let k = MortonKey::from_anchor(5, 13, 7, 22);
        let children = k.children();
        for (i, c) in children.iter().enumerate() {
            assert_eq!(c.parent(), k);
            assert_eq!(c.child_index(), i);
            assert!(k.is_ancestor_of(*c));
        }
        assert_eq!(k.anchor(), (13, 7, 22));
    }

    #[test]
    fn ancestor_checks() {
        let root = MortonKey::ROOT;
        let k = MortonKey::from_anchor(4, 3, 9, 14);
        assert!(root.is_ancestor_of(k));
        assert!(k.is_ancestor_of(k));
        assert!(!k.is_ancestor_of(root));
        assert_eq!(k.ancestor_at(0), root);
    }

    #[test]
    fn neighbor_counts() {
        // interior node: 26 neighbours
        let k = MortonKey::from_anchor(3, 3, 3, 3);
        assert_eq!(k.neighbors().len(), 26);
        // corner node: 7 neighbours
        let c = MortonKey::from_anchor(3, 0, 0, 0);
        assert_eq!(c.neighbors().len(), 7);
        // all neighbours are adjacent
        for n in k.neighbors() {
            assert!(k.is_adjacent(n), "{n:?}");
        }
    }

    #[test]
    fn adjacency_across_levels() {
        let coarse = MortonKey::from_anchor(2, 0, 0, 0);
        // fine box just outside the corner of `coarse`
        let fine_touching = MortonKey::from_anchor(4, 4, 0, 0);
        let fine_far = MortonKey::from_anchor(4, 9, 9, 9);
        assert!(coarse.is_adjacent(fine_touching));
        assert!(!coarse.is_adjacent(fine_far));
        // containment counts as adjacent
        let inside = MortonKey::from_anchor(4, 1, 2, 3);
        assert!(coarse.is_adjacent(inside));
    }

    #[test]
    fn point_codes_sort_spatially() {
        use linalg::Vec3;
        let c = Vec3::ZERO;
        let a = point_morton(Vec3::new(-0.9, -0.9, -0.9), c, 1.0);
        let b = point_morton(Vec3::new(0.9, 0.9, 0.9), c, 1.0);
        assert!(a < b);
        // same cell at max depth → same code
        let p = Vec3::new(0.123456, -0.654, 0.999);
        assert_eq!(point_morton(p, c, 1.0), point_morton(p, c, 1.0));
    }

    #[test]
    fn morton_order_refines_lexicographic_on_level() {
        // children are contiguous and ordered
        let k = MortonKey::from_anchor(2, 1, 1, 1);
        let ch = k.children();
        for w in ch.windows(2) {
            assert!(w[0].code < w[1].code);
        }
        assert!(ch[0].code >= k.code);
    }
}
