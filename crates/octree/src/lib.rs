//! # octree — spatial indexing substrate
//!
//! Two spatial data structures used throughout the platform:
//!
//! - [`Octree`]: an adaptive, 2:1-balanced linear octree with the classic
//!   adaptive-FMM interaction lists (U, V, W, X). This is the tree layer of
//!   the PVFMM substitute (`fmm` crate).
//! - [`SpatialHash`] + the sort-based candidate searches: the parallel
//!   near-pair detection of §3.3 (near-singular quadrature zones) and §4
//!   (collision candidates), with `rayon`'s parallel sort standing in for
//!   the distributed HykSort of the paper.

pub mod hashgrid;
pub mod morton;
pub mod tree;

pub use hashgrid::{
    box_box_candidates, box_box_candidates_self, box_point_candidates, mean_diagonal_spacing,
    SpatialHash,
};
pub use morton::{morton_decode, morton_encode, point_morton, MortonKey, MAX_DEPTH};
pub use tree::{Node, Octree, Retarget, TreeOptions, NONE};
