//! Real spherical-harmonic basis on Gauss–Legendre × uniform grids.
//!
//! RBC surfaces in the paper are "discretized using a spherical harmonic
//! representation, with surfaces sampled uniformly in the standard
//! latitude-longitude sphere parametrization" (§2.2); order p = 16 gives the
//! paper's 544 quadrature points per cell ((p+1) Gauss–Legendre latitudes ×
//! 2p uniform longitudes).
//!
//! We use orthonormal *real* spherical harmonics
//! `Y_n^0 = Q_n^0`, `Y_n^{m,c} = √2 Q_n^m cos mφ`, `Y_n^{m,s} = √2 Q_n^m sin mφ`
//! where `Q_n^m` are the fully normalized associated Legendre functions
//! computed with the standard stable three-term recurrence. Analysis uses
//! Gauss–Legendre quadrature in latitude (exact for band-limited data) and
//! the trapezoidal rule in longitude.

use linalg::quad::gauss_legendre;
use rayon::prelude::*;
use std::f64::consts::PI;

/// Which derivative of the basis to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deriv {
    /// Function values.
    None,
    /// ∂/∂θ.
    Dtheta,
    /// ∂/∂φ.
    Dphi,
    /// ∂²/∂θ².
    Dtheta2,
    /// ∂²/∂φ².
    Dphi2,
    /// ∂²/∂θ∂φ.
    DthetaDphi,
}

/// Spectral coefficients of a scalar field at order `p`.
///
/// Layout: the `m = 0` block holds `a_{n,0}` for `n = 0..=p`; each `m ≥ 1`
/// block holds `a_{n,m}` for `n = m..=p` followed by `b_{n,m}` — `(p+1)²`
/// values in total.
#[derive(Clone, Debug, PartialEq)]
pub struct SphCoeffs {
    /// Basis order.
    pub p: usize,
    /// Packed coefficients.
    pub data: Vec<f64>,
}

impl SphCoeffs {
    /// All-zero coefficients at order `p`.
    pub fn zeros(p: usize) -> SphCoeffs {
        SphCoeffs {
            p,
            data: vec![0.0; (p + 1) * (p + 1)],
        }
    }

    /// Offset of the `m` block inside `data`.
    fn block_start(p: usize, m: usize) -> usize {
        if m == 0 {
            0
        } else {
            // m = 0 block: p+1; blocks 1..m: 2(p+1-k) each
            (p + 1) + (1..m).map(|k| 2 * (p + 1 - k)).sum::<usize>()
        }
    }

    /// Cosine coefficient `a_{n,m}` (for `m = 0` the only kind).
    pub fn a(&self, n: usize, m: usize) -> f64 {
        debug_assert!(m <= n && n <= self.p);
        let s = Self::block_start(self.p, m);
        if m == 0 {
            self.data[s + n]
        } else {
            self.data[s + (n - m)]
        }
    }

    /// Sine coefficient `b_{n,m}` (`m ≥ 1`).
    pub fn b(&self, n: usize, m: usize) -> f64 {
        debug_assert!(m >= 1 && m <= n && n <= self.p);
        let s = Self::block_start(self.p, m);
        self.data[s + (self.p + 1 - m) + (n - m)]
    }

    /// Sets the cosine coefficient `a_{n,m}`.
    pub fn set_a(&mut self, n: usize, m: usize, v: f64) {
        *self.a_mut(n, m) = v;
    }

    /// Sets the sine coefficient `b_{n,m}` (`m ≥ 1`).
    pub fn set_b(&mut self, n: usize, m: usize, v: f64) {
        *self.b_mut(n, m) = v;
    }

    fn a_mut(&mut self, n: usize, m: usize) -> &mut f64 {
        let s = Self::block_start(self.p, m);
        if m == 0 {
            &mut self.data[s + n]
        } else {
            &mut self.data[s + (n - m)]
        }
    }

    fn b_mut(&mut self, n: usize, m: usize) -> &mut f64 {
        let s = Self::block_start(self.p, m);
        let off = self.p + 1 - m;
        &mut self.data[s + off + (n - m)]
    }

    /// Re-expands the coefficients at a different order: truncation when
    /// `q < p`, zero-padding when `q > p` (the spectrally exact up/down
    /// sampling used for the fine collision grids).
    pub fn resampled(&self, q: usize) -> SphCoeffs {
        let mut out = SphCoeffs::zeros(q);
        let nmax = self.p.min(q);
        for m in 0..=nmax {
            for n in m..=nmax {
                if m == 0 {
                    *out.a_mut(n, 0) = self.a(n, 0);
                } else {
                    *out.a_mut(n, m) = self.a(n, m);
                    *out.b_mut(n, m) = self.b(n, m);
                }
            }
        }
        out
    }

    /// Truncated spectral energy above degree `n0` relative to the total —
    /// a cheap smoothness diagnostic used to monitor aliasing.
    pub fn high_frequency_fraction(&self, n0: usize) -> f64 {
        let mut hi = 0.0;
        let mut total = 0.0;
        for m in 0..=self.p {
            for n in m..=self.p {
                let e = if m == 0 {
                    self.a(n, 0).powi(2)
                } else {
                    self.a(n, m).powi(2) + self.b(n, m).powi(2)
                };
                total += e;
                if n > n0 {
                    hi += e;
                }
            }
        }
        if total > 0.0 {
            hi / total
        } else {
            0.0
        }
    }
}

/// Precomputed tables for one order `p` (grid, Legendre values and
/// θ-derivatives at the grid latitudes, Fourier tables).
pub struct SphBasis {
    /// Basis order.
    pub p: usize,
    /// Number of latitudes `p + 1`.
    pub nlat: usize,
    /// Number of longitudes `2p` (at least 4).
    pub nlon: usize,
    /// Latitude angles θ_i (from the Gauss–Legendre nodes, θ = acos x).
    pub theta: Vec<f64>,
    /// Gauss–Legendre weights (w.r.t. x = cos θ).
    pub glw: Vec<f64>,
    /// Longitude angles φ_j = 2π j / nlon.
    pub phi: Vec<f64>,
    /// `q[m][(n−m)·nlat + i]` = Q_n^m(cos θ_i).
    q: Vec<Vec<f64>>,
    /// Matching table of dQ_n^m/dθ.
    dq: Vec<Vec<f64>>,
    /// Matching table of d²Q_n^m/dθ².
    d2q: Vec<Vec<f64>>,
}

/// Computes `Q_n^m(x)` for fixed `x` and all `m ≤ n ≤ p`, plus first and
/// second θ-derivatives. Returns three tables indexed like [`SphBasis::q`].
fn legendre_tables(p: usize, xs: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let nlat = xs.len();
    let mut q: Vec<Vec<f64>> = (0..=p).map(|m| vec![0.0; (p + 1 - m) * nlat]).collect();
    for (i, &x) in xs.iter().enumerate() {
        let s = (1.0 - x * x).sqrt(); // sin θ > 0 at interior GL nodes
                                      // diagonal terms Q_m^m
        let mut qmm = (1.0 / (4.0 * PI)).sqrt();
        for m in 0..=p {
            if m > 0 {
                qmm *= s * ((2.0 * m as f64 + 1.0) / (2.0 * m as f64)).sqrt();
            }
            q[m][i] = qmm; // n = m entry
            if m < p {
                q[m][nlat + i] = x * (2.0 * m as f64 + 3.0).sqrt() * qmm; // n = m+1
            }
            for n in (m + 2)..=p {
                let nf = n as f64;
                let mf = m as f64;
                let anm = ((4.0 * nf * nf - 1.0) / (nf * nf - mf * mf)).sqrt();
                let bnm = (((nf - 1.0) * (nf - 1.0) - mf * mf)
                    / (4.0 * (nf - 1.0) * (nf - 1.0) - 1.0))
                    .sqrt();
                q[m][(n - m) * nlat + i] =
                    anm * (x * q[m][(n - 1 - m) * nlat + i] - bnm * q[m][(n - 2 - m) * nlat + i]);
            }
        }
    }
    // first derivative: dQ_n^m/dθ = [n x Q_n^m − c_nm Q_{n−1}^m] / sin θ
    let mut dq: Vec<Vec<f64>> = (0..=p).map(|m| vec![0.0; (p + 1 - m) * nlat]).collect();
    for m in 0..=p {
        for n in m..=p {
            let nf = n as f64;
            let mf = m as f64;
            let c = if n > m {
                ((2.0 * nf + 1.0) * (nf * nf - mf * mf) / (2.0 * nf - 1.0)).sqrt()
            } else {
                0.0
            };
            for (i, &x) in xs.iter().enumerate() {
                let s = (1.0 - x * x).sqrt();
                let qn = q[m][(n - m) * nlat + i];
                let qn1 = if n > m {
                    q[m][(n - 1 - m) * nlat + i]
                } else {
                    0.0
                };
                dq[m][(n - m) * nlat + i] = (nf * x * qn - c * qn1) / s;
            }
        }
    }
    // second derivative from the ODE of associated Legendre functions:
    // d²Q/dθ² = −cot θ · dQ/dθ + (m²/sin²θ − n(n+1)) Q
    let mut d2q: Vec<Vec<f64>> = (0..=p).map(|m| vec![0.0; (p + 1 - m) * nlat]).collect();
    for m in 0..=p {
        for n in m..=p {
            let nf = n as f64;
            let mf = m as f64;
            for (i, &x) in xs.iter().enumerate() {
                let s2 = 1.0 - x * x;
                let s = s2.sqrt();
                let qn = q[m][(n - m) * nlat + i];
                let dqn = dq[m][(n - m) * nlat + i];
                d2q[m][(n - m) * nlat + i] = -(x / s) * dqn + (mf * mf / s2 - nf * (nf + 1.0)) * qn;
            }
        }
    }
    (q, dq, d2q)
}

impl SphBasis {
    /// Builds the basis tables for order `p ≥ 1`.
    pub fn new(p: usize) -> SphBasis {
        assert!(p >= 1, "spherical harmonic order must be >= 1");
        let nlat = p + 1;
        let nlon = (2 * p).max(4);
        let gl = gauss_legendre(nlat);
        // θ decreasing in x; keep natural order θ_0 < θ_1 < ... by reversing
        let theta: Vec<f64> = gl.nodes.iter().rev().map(|&x| x.acos()).collect();
        let xs: Vec<f64> = theta.iter().map(|t| t.cos()).collect();
        let glw: Vec<f64> = gl.weights.iter().rev().copied().collect();
        let phi: Vec<f64> = (0..nlon)
            .map(|j| 2.0 * PI * j as f64 / nlon as f64)
            .collect();
        let (q, dq, d2q) = legendre_tables(p, &xs);
        SphBasis {
            p,
            nlat,
            nlon,
            theta,
            glw,
            phi,
            q,
            dq,
            d2q,
        }
    }

    /// Total number of grid points `(p+1)·2p`.
    pub fn grid_size(&self) -> usize {
        self.nlat * self.nlon
    }

    /// Flat grid index of latitude `i`, longitude `j` (latitude-major).
    #[inline]
    pub fn grid_index(&self, i: usize, j: usize) -> usize {
        i * self.nlon + j
    }

    /// Quadrature weight for surface integration *in parameter space*:
    /// `∫ f dΩ = Σ_ij w_ij f_ij` on the unit sphere (the `sin θ` Jacobian is
    /// absorbed in the Gauss–Legendre weights over `x = cos θ`).
    pub fn sphere_weight(&self, i: usize) -> f64 {
        self.glw[i] * 2.0 * PI / self.nlon as f64
    }

    /// Analysis: grid samples (latitude-major) → coefficients.
    pub fn analyze(&self, f: &[f64]) -> SphCoeffs {
        assert_eq!(f.len(), self.grid_size(), "analyze: grid size mismatch");
        let mut out = SphCoeffs::zeros(self.p);
        // longitude DFT per latitude: A_m(i), B_m(i)
        let nlon = self.nlon;
        let mut am = vec![0.0; (self.p + 1) * self.nlat];
        let mut bm = vec![0.0; (self.p + 1) * self.nlat];
        for i in 0..self.nlat {
            let row = &f[i * nlon..(i + 1) * nlon];
            for m in 0..=self.p {
                let mut ca = 0.0;
                let mut cb = 0.0;
                for (j, &v) in row.iter().enumerate() {
                    let ang = m as f64 * self.phi[j];
                    ca += v * ang.cos();
                    cb += v * ang.sin();
                }
                am[m * self.nlat + i] = ca * 2.0 * PI / nlon as f64;
                bm[m * self.nlat + i] = cb * 2.0 * PI / nlon as f64;
            }
        }
        // Legendre transform per (n, m) with GL weights
        for m in 0..=self.p {
            let norm = if m == 0 {
                1.0
            } else {
                std::f64::consts::SQRT_2
            };
            for n in m..=self.p {
                let mut ac = 0.0;
                let mut bc = 0.0;
                for i in 0..self.nlat {
                    let qv = self.q[m][(n - m) * self.nlat + i] * self.glw[i];
                    ac += qv * am[m * self.nlat + i];
                    bc += qv * bm[m * self.nlat + i];
                }
                if m == 0 {
                    *out.a_mut(n, 0) = ac * norm;
                } else if 2 * m == self.nlon {
                    // Nyquist longitude mode: cos(mφ_j) = ±1 at every grid
                    // point, so its discrete norm is doubled, and sin(mφ_j)
                    // vanishes identically — the sine coefficient is not
                    // representable on this grid and is pinned to zero.
                    *out.a_mut(n, m) = 0.5 * ac * norm;
                    *out.b_mut(n, m) = 0.0;
                } else {
                    *out.a_mut(n, m) = ac * norm;
                    *out.b_mut(n, m) = bc * norm;
                }
            }
        }
        out
    }

    /// Synthesis of the field (or a derivative) on this basis' grid.
    pub fn synthesize(&self, c: &SphCoeffs, d: Deriv) -> Vec<f64> {
        assert_eq!(c.p, self.p, "synthesize: order mismatch");
        let nlat = self.nlat;
        let nlon = self.nlon;
        let mut out = vec![0.0; self.grid_size()];
        // per-latitude Fourier coefficients of the result
        // gm_a[m][i], gm_b[m][i]
        let table = |m: usize| -> &Vec<f64> {
            match d {
                Deriv::None | Deriv::Dphi | Deriv::Dphi2 => &self.q[m],
                Deriv::Dtheta | Deriv::DthetaDphi => &self.dq[m],
                Deriv::Dtheta2 => &self.d2q[m],
            }
        };
        let mut ga = vec![0.0; (self.p + 1) * nlat];
        let mut gb = vec![0.0; (self.p + 1) * nlat];
        for m in 0..=self.p {
            let norm = if m == 0 {
                1.0
            } else {
                std::f64::consts::SQRT_2
            };
            let tab = table(m);
            for n in m..=self.p {
                let (an, bn) = if m == 0 {
                    (c.a(n, 0), 0.0)
                } else {
                    (c.a(n, m), c.b(n, m))
                };
                if an == 0.0 && bn == 0.0 {
                    continue;
                }
                for i in 0..nlat {
                    let qv = tab[(n - m) * nlat + i] * norm;
                    ga[m * nlat + i] += qv * an;
                    gb[m * nlat + i] += qv * bn;
                }
            }
        }
        // apply the φ part with derivative factors
        for i in 0..nlat {
            for j in 0..nlon {
                let mut v = 0.0;
                for m in 0..=self.p {
                    let a = ga[m * nlat + i];
                    let b = gb[m * nlat + i];
                    if a == 0.0 && b == 0.0 {
                        continue;
                    }
                    let ang = m as f64 * self.phi[j];
                    let mf = m as f64;
                    v += match d {
                        Deriv::None | Deriv::Dtheta | Deriv::Dtheta2 => {
                            a * ang.cos() + b * ang.sin()
                        }
                        Deriv::Dphi | Deriv::DthetaDphi => mf * (-a * ang.sin() + b * ang.cos()),
                        Deriv::Dphi2 => -mf * mf * (a * ang.cos() + b * ang.sin()),
                    };
                }
                out[self.grid_index(i, j)] = v;
            }
        }
        out
    }

    /// Point synthesis at arbitrary `(θ, φ)` (used for resampling onto
    /// rotated or refined grids, and by the closest-point machinery).
    pub fn synthesize_at(&self, c: &SphCoeffs, theta: f64, phi: f64) -> f64 {
        assert_eq!(c.p, self.p);
        let x = theta.cos();
        let (q, _, _) = legendre_tables(self.p, &[x]);
        let mut v = 0.0;
        for m in 0..=self.p {
            let norm = if m == 0 {
                1.0
            } else {
                std::f64::consts::SQRT_2
            };
            let ang = m as f64 * phi;
            let (cm, sm) = (ang.cos(), ang.sin());
            for n in m..=self.p {
                let qv = q[m][n - m] * norm;
                if m == 0 {
                    v += qv * c.a(n, 0) * cm;
                } else {
                    v += qv * (c.a(n, m) * cm + c.b(n, m) * sm);
                }
            }
        }
        v
    }

    /// Analyzes a 3-component (xyz-interleaved) vector field; returns one
    /// coefficient set per component. Runs the three transforms in parallel.
    pub fn analyze_vec3(&self, f: &[f64]) -> [SphCoeffs; 3] {
        assert_eq!(f.len(), 3 * self.grid_size());
        let comps: Vec<SphCoeffs> = (0..3)
            .into_par_iter()
            .map(|k| {
                let scalar: Vec<f64> = (0..self.grid_size()).map(|i| f[3 * i + k]).collect();
                self.analyze(&scalar)
            })
            .collect();
        let mut it = comps.into_iter();
        [it.next().unwrap(), it.next().unwrap(), it.next().unwrap()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn roundtrip_bandlimited_random() {
        let p = 8;
        let basis = SphBasis::new(p);
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = SphCoeffs::zeros(p);
        for v in &mut c.data {
            *v = rng.random_range(-1.0..1.0);
        }
        // the sine Nyquist modes (m = nlon/2) are invisible on the grid;
        // exclude them from the representable subspace
        if 2 * p == basis.nlon {
            for n in p..=p {
                c.set_b(n, p, 0.0);
            }
        }
        let grid = basis.synthesize(&c, Deriv::None);
        let c2 = basis.analyze(&grid);
        for (u, v) in c.data.iter().zip(&c2.data) {
            assert!((u - v).abs() < 1e-11, "{u} vs {v}");
        }
    }

    #[test]
    fn analyze_constant_gives_y00_only() {
        let basis = SphBasis::new(6);
        let grid = vec![3.0; basis.grid_size()];
        let c = basis.analyze(&grid);
        // a_{0,0} = 3·√(4π), everything else ~ 0
        let expect = 3.0 * (4.0 * PI).sqrt();
        assert!((c.a(0, 0) - expect).abs() < 1e-10);
        let energy: f64 = c.data.iter().skip(1).map(|v| v * v).sum();
        assert!(energy < 1e-20);
    }

    #[test]
    fn known_harmonic_z_is_degree_one() {
        // f = cos θ = √(4π/3) Y_1^0
        let basis = SphBasis::new(5);
        let mut grid = vec![0.0; basis.grid_size()];
        for i in 0..basis.nlat {
            for j in 0..basis.nlon {
                grid[basis.grid_index(i, j)] = basis.theta[i].cos();
            }
        }
        let c = basis.analyze(&grid);
        assert!((c.a(1, 0) - (4.0 * PI / 3.0).sqrt()).abs() < 1e-12);
        for n in [0usize, 2, 3, 4, 5] {
            assert!(c.a(n, 0).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn theta_derivative_matches_finite_difference() {
        let p = 10;
        let basis = SphBasis::new(p);
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = SphCoeffs::zeros(p);
        for v in &mut c.data {
            *v = rng.random_range(-1.0..1.0);
        }
        let dth = basis.synthesize(&c, Deriv::Dtheta);
        let h = 1e-6;
        for &(i, j) in &[(2usize, 3usize), (5, 10), (8, 0)] {
            let t = basis.theta[i];
            let ph = basis.phi[j];
            let fd = (basis.synthesize_at(&c, t + h, ph) - basis.synthesize_at(&c, t - h, ph))
                / (2.0 * h);
            assert!(
                (dth[basis.grid_index(i, j)] - fd).abs() < 1e-6,
                "({i},{j}): {} vs {fd}",
                dth[basis.grid_index(i, j)]
            );
        }
    }

    #[test]
    fn phi_derivatives_match_finite_difference() {
        let p = 9;
        let basis = SphBasis::new(p);
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = SphCoeffs::zeros(p);
        for v in &mut c.data {
            *v = rng.random_range(-1.0..1.0);
        }
        let dph = basis.synthesize(&c, Deriv::Dphi);
        let dph2 = basis.synthesize(&c, Deriv::Dphi2);
        let h = 1e-5;
        let (i, j) = (4usize, 7usize);
        let t = basis.theta[i];
        let ph = basis.phi[j];
        let f = |x: f64| basis.synthesize_at(&c, t, x);
        let fd1 = (f(ph + h) - f(ph - h)) / (2.0 * h);
        let fd2 = (f(ph + h) - 2.0 * f(ph) + f(ph - h)) / (h * h);
        assert!((dph[basis.grid_index(i, j)] - fd1).abs() < 1e-7);
        assert!((dph2[basis.grid_index(i, j)] - fd2).abs() < 1e-4);
    }

    #[test]
    fn second_theta_derivative_matches_finite_difference() {
        let p = 8;
        let basis = SphBasis::new(p);
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = SphCoeffs::zeros(p);
        for v in &mut c.data {
            *v = rng.random_range(-1.0..1.0);
        }
        let d2 = basis.synthesize(&c, Deriv::Dtheta2);
        let h = 1e-4;
        let (i, j) = (3usize, 5usize);
        let t = basis.theta[i];
        let ph = basis.phi[j];
        let f = |x: f64| basis.synthesize_at(&c, x, ph);
        let fd = (f(t + h) - 2.0 * f(t) + f(t - h)) / (h * h);
        assert!(
            (d2[basis.grid_index(i, j)] - fd).abs() < 1e-4 * fd.abs().max(1.0),
            "{} vs {fd}",
            d2[basis.grid_index(i, j)]
        );
    }

    #[test]
    fn mixed_derivative_consistent() {
        let p = 7;
        let basis = SphBasis::new(p);
        let mut rng = StdRng::seed_from_u64(6);
        let mut c = SphCoeffs::zeros(p);
        for v in &mut c.data {
            *v = rng.random_range(-1.0..1.0);
        }
        let dtp = basis.synthesize(&c, Deriv::DthetaDphi);
        let h = 1e-5;
        let (i, j) = (2usize, 9usize);
        let t = basis.theta[i];
        let ph = basis.phi[j];
        let fd = (basis.synthesize_at(&c, t + h, ph + h)
            - basis.synthesize_at(&c, t + h, ph - h)
            - basis.synthesize_at(&c, t - h, ph + h)
            + basis.synthesize_at(&c, t - h, ph - h))
            / (4.0 * h * h);
        assert!((dtp[basis.grid_index(i, j)] - fd).abs() < 1e-4);
    }

    #[test]
    fn resampling_preserves_low_modes() {
        let p = 6;
        let q = 12;
        let bp = SphBasis::new(p);
        let bq = SphBasis::new(q);
        let mut rng = StdRng::seed_from_u64(7);
        let mut c = SphCoeffs::zeros(p);
        for v in &mut c.data {
            *v = rng.random_range(-1.0..1.0);
        }
        let up = c.resampled(q);
        // synthesize on the fine grid and analyze back: low modes intact
        let fine = bq.synthesize(&up, Deriv::None);
        let back = bq.analyze(&fine).resampled(p);
        for (u, v) in c.data.iter().zip(&back.data) {
            assert!((u - v).abs() < 1e-10);
        }
        // evaluating the coarse and fine representations at a point agrees
        let v1 = bp.synthesize_at(&c, 1.1, 2.2);
        let v2 = bq.synthesize_at(&up, 1.1, 2.2);
        assert!((v1 - v2).abs() < 1e-11);
    }

    #[test]
    fn sphere_quadrature_weights_integrate_area() {
        let basis = SphBasis::new(8);
        let mut area = 0.0;
        for i in 0..basis.nlat {
            area += basis.sphere_weight(i) * basis.nlon as f64;
        }
        assert!((area - 4.0 * PI).abs() < 1e-10);
    }

    #[test]
    fn high_frequency_fraction_detects_roughness() {
        let p = 8;
        let mut smooth = SphCoeffs::zeros(p);
        *smooth.a_mut(1, 0) = 1.0;
        assert_eq!(smooth.high_frequency_fraction(4), 0.0);
        let mut rough = SphCoeffs::zeros(p);
        *rough.a_mut(8, 3) = 1.0;
        assert_eq!(rough.high_frequency_fraction(4), 1.0);
    }
}
