//! # sphharm — spherical-harmonic surface representation
//!
//! The RBC-surface substrate (§2.2 of the paper): spectral analysis and
//! synthesis on Gauss–Legendre × uniform longitude grids, with first and
//! second parametric derivatives, spectrally exact up/down-sampling, and
//! quadrature weights for surface integrals. Order p = 16 reproduces the
//! paper's 544 quadrature points per cell; the 2×-upsampled grid gives the
//! 2,112 collision points.

pub mod basis;

pub use basis::{Deriv, SphBasis, SphCoeffs};
