//! The [`Kernel`] abstraction consumed by the kernel-independent FMM and the
//! direct (P2P) evaluators.
//!
//! A kernel maps per-source data (e.g. a force vector, or a density/normal
//! pair) to per-target values (velocity components or a scalar potential).
//! The FMM additionally needs a *translation* kernel — the single-layer
//! kernel of the same PDE — and the homogeneity degree for per-level scaling
//! of precomputed operators.

use crate::{laplace, stokes};
use linalg::Vec3;

/// An elliptic kernel evaluated pairwise between points.
pub trait Kernel: Sync {
    /// Number of `f64` data entries carried per source point.
    fn src_dim(&self) -> usize;
    /// Number of `f64` value entries produced per target point.
    fn trg_dim(&self) -> usize;
    /// Accumulates the contribution of one source into the target value:
    /// `out += K(trg, src) · data`. `data` has length [`Kernel::src_dim`],
    /// `out` length [`Kernel::trg_dim`]. Must be zero for `trg == src`.
    fn eval_acc(&self, trg: Vec3, src: Vec3, data: &[f64], out: &mut [f64]);
    /// Homogeneity degree `d` such that `K(s·r) = s^d K(r)` (−1 for
    /// single-layer kernels, −2 for double-layer). The kernel-independent
    /// FMM uses this to rescale unit-box operators across tree levels.
    fn scale_invariance(&self) -> f64 {
        -1.0
    }
    /// A short stable identifier used as part of precomputed-operator cache
    /// keys in the FMM.
    fn name(&self) -> &'static str;
    /// Bit pattern of any continuous kernel parameters (e.g. viscosity),
    /// folded into precomputed-operator cache keys. Defaults to 0 for
    /// parameter-free kernels.
    fn param_bits(&self) -> u64 {
        0
    }
    /// Per-source-component scale exponents `e_j`: when a density lives on
    /// a surface of half-width `h`, its physical contribution uses the
    /// stored component multiplied by `h^{e_j}`. All zero for plain kernels;
    /// the augmented Stokes equivalent kernel uses `[0,0,0,1]` so that the
    /// mixed-homogeneity (Stokeslet −1, point source −2) basis behaves as a
    /// uniform degree −1 family across octree levels.
    fn src_scale_exponents(&self) -> Vec<i32> {
        vec![0; self.src_dim()]
    }
    /// Batched evaluation: accumulates the contribution of every source
    /// into every target, `out[i] += Σ_j K(trg_i, src_j) · data_j`.
    /// `data` is source-major (`src_dim` per source), `out` target-major
    /// (`trg_dim` per target). Semantically identical to looping
    /// [`Kernel::eval_acc`]; the hot kernels override it with tiled
    /// structure-of-arrays inner loops that hoist the kernel constants and
    /// autovectorize (this is the P2P/S2M/P2L/L2T/M2T workhorse of the
    /// FMM).
    fn eval_block(&self, trgs: &[Vec3], srcs: &[Vec3], data: &[f64], out: &mut [f64]) {
        let sd = self.src_dim();
        let td = self.trg_dim();
        debug_assert_eq!(data.len(), srcs.len() * sd);
        debug_assert_eq!(out.len(), trgs.len() * td);
        for (i, &t) in trgs.iter().enumerate() {
            let o = &mut out[i * td..(i + 1) * td];
            for (j, &s) in srcs.iter().enumerate() {
                self.eval_acc(t, s, &data[j * sd..(j + 1) * sd], o);
            }
        }
    }
}

/// Source-tile width of the vectorized `eval_block` implementations: the
/// per-tile SoA buffers (≤ 7 lanes of `TILE` f64) stay in registers / L1
/// and give LLVM fixed-trip-count inner loops to vectorize.
pub(crate) const TILE: usize = 32;

/// SIMD accumulator width: contributions are summed into `LANES` partial
/// accumulators and reduced once per (target, tile). A plain scalar
/// accumulator would be a strict-FP reduction, which LLVM refuses to
/// vectorize; explicit lanes sidestep that without fast-math.
pub(crate) const LANES: usize = 8;

/// Copies a tile of source points into SoA lanes. Tail lanes keep stale
/// coordinates — callers zero the tail of the *data* lanes instead, which
/// forces the stale contributions to zero while keeping every inner loop
/// at a fixed `TILE` trip count.
#[inline(always)]
pub(crate) fn load_tile(
    srcs: &[Vec3],
    xs: &mut [f64; TILE],
    ys: &mut [f64; TILE],
    zs: &mut [f64; TILE],
) {
    for (l, s) in srcs.iter().enumerate() {
        xs[l] = s.x;
        ys[l] = s.y;
        zs[l] = s.z;
    }
}

/// Augmented Stokes equivalent-density kernel for the kernel-independent
/// FMM: a point force (Stokeslet) plus a potential point source,
/// `u = S(r) f + q · r / (4π |r|³)`.
///
/// The source component is required to represent stresslet (double-layer)
/// far fields, which carry net mass flux that a Stokeslet-only basis cannot
/// produce — the same augmentation PVFMM applies for its Stokes
/// double-layer translations.
#[derive(Clone, Copy, Debug)]
pub struct StokesEquiv {
    /// Ambient fluid viscosity μ (for the Stokeslet part).
    pub mu: f64,
}

impl Kernel for StokesEquiv {
    fn name(&self) -> &'static str {
        "stokes_equiv"
    }
    fn scale_invariance(&self) -> f64 {
        -1.0
    }
    fn param_bits(&self) -> u64 {
        self.mu.to_bits()
    }
    fn src_scale_exponents(&self) -> Vec<i32> {
        vec![0, 0, 0, 1]
    }
    fn src_dim(&self) -> usize {
        4
    }
    fn trg_dim(&self) -> usize {
        3
    }
    #[inline]
    fn eval_acc(&self, trg: Vec3, src: Vec3, data: &[f64], out: &mut [f64]) {
        let f = Vec3::new(data[0], data[1], data[2]);
        let u = stokes::stokeslet(trg, src, f, self.mu);
        let r = trg - src;
        let r2 = r.norm_sq();
        let srcq = if r2 == 0.0 {
            Vec3::ZERO
        } else {
            r * (data[3] / (4.0 * std::f64::consts::PI * r2 * r2.sqrt()))
        };
        out[0] += u.x + srcq.x;
        out[1] += u.y + srcq.y;
        out[2] += u.z + srcq.z;
    }
    #[inline]
    fn eval_block(&self, trgs: &[Vec3], srcs: &[Vec3], data: &[f64], out: &mut [f64]) {
        stokes::stokes_equiv_block(trgs, srcs, data, self.mu, out);
    }
}

/// Stokes single-layer kernel (velocity from point forces), 3 → 3.
#[derive(Clone, Copy, Debug)]
pub struct StokesSL {
    /// Ambient fluid viscosity μ.
    pub mu: f64,
}

impl Kernel for StokesSL {
    fn name(&self) -> &'static str {
        "stokes_sl"
    }
    fn param_bits(&self) -> u64 {
        self.mu.to_bits()
    }
    fn scale_invariance(&self) -> f64 {
        -1.0
    }
    fn src_dim(&self) -> usize {
        3
    }
    fn trg_dim(&self) -> usize {
        3
    }
    #[inline]
    fn eval_acc(&self, trg: Vec3, src: Vec3, data: &[f64], out: &mut [f64]) {
        let f = Vec3::new(data[0], data[1], data[2]);
        let u = stokes::stokeslet(trg, src, f, self.mu);
        out[0] += u.x;
        out[1] += u.y;
        out[2] += u.z;
    }
    #[inline]
    fn eval_block(&self, trgs: &[Vec3], srcs: &[Vec3], data: &[f64], out: &mut [f64]) {
        stokes::stokeslet_block(trgs, srcs, data, self.mu, out);
    }
}

/// Stokes double-layer kernel (velocity from density+normal pairs), 6 → 3.
/// Source data layout: `[φx, φy, φz, nx, ny, nz]` where the normal is
/// premultiplied by the quadrature weight if used for integration.
#[derive(Clone, Copy, Debug, Default)]
pub struct StokesDL;

impl Kernel for StokesDL {
    fn name(&self) -> &'static str {
        "stokes_dl"
    }
    fn scale_invariance(&self) -> f64 {
        -2.0
    }
    fn src_dim(&self) -> usize {
        6
    }
    fn trg_dim(&self) -> usize {
        3
    }
    #[inline]
    fn eval_acc(&self, trg: Vec3, src: Vec3, data: &[f64], out: &mut [f64]) {
        let phi = Vec3::new(data[0], data[1], data[2]);
        let n = Vec3::new(data[3], data[4], data[5]);
        let u = stokes::stresslet(trg, src, phi, n);
        out[0] += u.x;
        out[1] += u.y;
        out[2] += u.z;
    }
    #[inline]
    fn eval_block(&self, trgs: &[Vec3], srcs: &[Vec3], data: &[f64], out: &mut [f64]) {
        stokes::stresslet_block(trgs, srcs, data, out);
    }
}

/// Laplace single-layer kernel, 1 → 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaplaceSL;

impl Kernel for LaplaceSL {
    fn name(&self) -> &'static str {
        "laplace_sl"
    }
    fn scale_invariance(&self) -> f64 {
        -1.0
    }
    fn src_dim(&self) -> usize {
        1
    }
    fn trg_dim(&self) -> usize {
        1
    }
    #[inline]
    fn eval_acc(&self, trg: Vec3, src: Vec3, data: &[f64], out: &mut [f64]) {
        out[0] += laplace::laplace_sl(trg, src, data[0]);
    }
    #[inline]
    fn eval_block(&self, trgs: &[Vec3], srcs: &[Vec3], data: &[f64], out: &mut [f64]) {
        laplace::laplace_sl_block(trgs, srcs, data, out);
    }
}

/// Laplace double-layer kernel, 4 → 1 (`[q, nx, ny, nz]`).
#[derive(Clone, Copy, Debug, Default)]
pub struct LaplaceDL;

impl Kernel for LaplaceDL {
    fn name(&self) -> &'static str {
        "laplace_dl"
    }
    fn scale_invariance(&self) -> f64 {
        -2.0
    }
    fn src_dim(&self) -> usize {
        4
    }
    fn trg_dim(&self) -> usize {
        1
    }
    #[inline]
    fn eval_acc(&self, trg: Vec3, src: Vec3, data: &[f64], out: &mut [f64]) {
        let n = Vec3::new(data[1], data[2], data[3]);
        out[0] += laplace::laplace_dl(trg, src, data[0], n);
    }
    #[inline]
    fn eval_block(&self, trgs: &[Vec3], srcs: &[Vec3], data: &[f64], out: &mut [f64]) {
        laplace::laplace_dl_block(trgs, srcs, data, out);
    }
}

/// Direct (all-pairs) evaluation: for every target accumulate the sum over
/// all sources, in parallel over targets.
///
/// `src_data` is laid out source-major (`src_dim` entries per source);
/// `out` target-major (`trg_dim` per target) and is **accumulated into**.
pub fn direct_eval<K: Kernel>(
    kernel: &K,
    src_pts: &[Vec3],
    src_data: &[f64],
    trg_pts: &[Vec3],
    out: &mut [f64],
) {
    let sd = kernel.src_dim();
    let td = kernel.trg_dim();
    assert_eq!(
        src_data.len(),
        src_pts.len() * sd,
        "source data length mismatch"
    );
    assert_eq!(
        out.len(),
        trg_pts.len() * td,
        "target buffer length mismatch"
    );
    // parallel over target blocks, vectorized eval_block within each block
    const BLK: usize = 64;
    rayon::par::chunks_mut(out, BLK * td, |bi, chunk| {
        let t0 = bi * BLK;
        let t1 = t0 + chunk.len() / td;
        kernel.eval_block(&trg_pts[t0..t1], src_pts, src_data, chunk);
    });
}

/// Serial variant of [`direct_eval`] for small problems (avoids rayon
/// overhead inside already-parallel outer loops).
pub fn direct_eval_serial<K: Kernel>(
    kernel: &K,
    src_pts: &[Vec3],
    src_data: &[f64],
    trg_pts: &[Vec3],
    out: &mut [f64],
) {
    let sd = kernel.src_dim();
    let td = kernel.trg_dim();
    assert_eq!(src_data.len(), src_pts.len() * sd);
    assert_eq!(out.len(), trg_pts.len() * td);
    kernel.eval_block(trg_pts, src_pts, src_data, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(rng: &mut StdRng, n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
            })
            .collect()
    }

    /// Scalar reference: eval_acc looped over all pairs.
    fn eval_pairwise<K: Kernel>(
        kernel: &K,
        trgs: &[Vec3],
        srcs: &[Vec3],
        data: &[f64],
        out: &mut [f64],
    ) {
        let sd = kernel.src_dim();
        let td = kernel.trg_dim();
        for (i, &t) in trgs.iter().enumerate() {
            let o = &mut out[i * td..(i + 1) * td];
            for (j, &s) in srcs.iter().enumerate() {
                kernel.eval_acc(t, s, &data[j * sd..(j + 1) * sd], o);
            }
        }
    }

    fn check_block_matches_scalar<K: Kernel>(kernel: &K, name: &str) {
        let mut rng = StdRng::seed_from_u64(71);
        // deliberately awkward sizes (not tile multiples), plus a target
        // coincident with a source to exercise the self-interaction guard
        for (nt, ns) in [(1usize, 1usize), (7, 33), (65, 130), (3, 100)] {
            let srcs = random_points(&mut rng, ns);
            let mut trgs = random_points(&mut rng, nt);
            trgs[0] = srcs[0];
            let data: Vec<f64> = (0..ns * kernel.src_dim())
                .map(|_| rng.random_range(-1.0..1.0))
                .collect();
            let mut blocked = vec![0.1; nt * kernel.trg_dim()];
            let mut scalar = vec![0.1; nt * kernel.trg_dim()];
            kernel.eval_block(&trgs, &srcs, &data, &mut blocked);
            eval_pairwise(kernel, &trgs, &srcs, &data, &mut scalar);
            for (a, b) in blocked.iter().zip(&scalar) {
                assert!(
                    (a - b).abs() <= 1e-13 * b.abs().max(1.0),
                    "{name} ({nt}x{ns}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn eval_block_matches_eval_acc_for_all_kernels() {
        check_block_matches_scalar(&LaplaceSL, "laplace_sl");
        check_block_matches_scalar(&LaplaceDL, "laplace_dl");
        check_block_matches_scalar(&StokesSL { mu: 0.7 }, "stokes_sl");
        check_block_matches_scalar(&StokesDL, "stokes_dl");
        check_block_matches_scalar(&StokesEquiv { mu: 1.3 }, "stokes_equiv");
    }

    #[test]
    fn parallel_and_serial_direct_agree() {
        let mut rng = StdRng::seed_from_u64(17);
        let srcs = random_points(&mut rng, 40);
        let trgs = random_points(&mut rng, 23);
        let kernel = StokesSL { mu: 1.3 };
        let data: Vec<f64> = (0..srcs.len() * 3)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let mut out_p = vec![0.0; trgs.len() * 3];
        let mut out_s = vec![0.0; trgs.len() * 3];
        direct_eval(&kernel, &srcs, &data, &trgs, &mut out_p);
        direct_eval_serial(&kernel, &srcs, &data, &trgs, &mut out_s);
        for (a, b) in out_p.iter().zip(&out_s) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn direct_eval_accumulates() {
        let srcs = vec![Vec3::new(1.0, 0.0, 0.0)];
        let trgs = vec![Vec3::ZERO];
        let kernel = LaplaceSL;
        let mut out = vec![5.0];
        direct_eval_serial(
            &kernel,
            &srcs,
            &[4.0 * std::f64::consts::PI],
            &trgs,
            &mut out,
        );
        assert!((out[0] - 6.0).abs() < 1e-14);
    }

    #[test]
    fn stokes_dl_kernel_matches_function() {
        let x = Vec3::new(0.4, 0.5, 0.6);
        let y = Vec3::new(-0.1, 0.0, 0.2);
        let phi = Vec3::new(1.0, 2.0, 3.0);
        let n = Vec3::new(0.0, 1.0, 0.0);
        let mut out = [0.0; 3];
        StokesDL.eval_acc(x, y, &[phi.x, phi.y, phi.z, n.x, n.y, n.z], &mut out);
        let u = stokes::stresslet(x, y, phi, n);
        assert!((Vec3::new(out[0], out[1], out[2]) - u).norm() < 1e-15);
    }

    #[test]
    fn stokes_equiv_adds_flux_carrying_source() {
        // the augmented kernel's 4th component is a potential source whose
        // flux through an enclosing sphere is exactly q
        let y = Vec3::ZERO;
        let q = 2.5;
        let data = [0.0, 0.0, 0.0, q];
        let k = StokesEquiv { mu: 1.0 };
        // flux through a sphere of radius 2, midpoint-sampled
        let gl = linalg::quad::gauss_legendre(24);
        let nphi = 48;
        let mut flux = 0.0;
        for i in 0..24 {
            let ct = gl.nodes[i];
            let st = (1.0 - ct * ct).sqrt();
            for j in 0..nphi {
                let ph = 2.0 * std::f64::consts::PI * j as f64 / nphi as f64;
                let n = Vec3::new(st * ph.cos(), st * ph.sin(), ct);
                let x = n * 2.0;
                let mut u = [0.0; 3];
                k.eval_acc(x, y, &data, &mut u);
                flux += (u[0] * n.x + u[1] * n.y + u[2] * n.z)
                    * gl.weights[i]
                    * (2.0 * std::f64::consts::PI / nphi as f64)
                    * 4.0; // r² = 4
            }
        }
        assert!((flux - q).abs() < 1e-10, "flux {flux} vs {q}");
        // with q = 0 it reduces to the plain Stokeslet
        let f = [1.0, -2.0, 0.5, 0.0];
        let x = Vec3::new(0.7, -0.3, 0.4);
        let mut u = [0.0; 3];
        k.eval_acc(x, y, &f, &mut u);
        let exact = stokes::stokeslet(x, y, Vec3::new(1.0, -2.0, 0.5), 1.0);
        assert!((Vec3::new(u[0], u[1], u[2]) - exact).norm() < 1e-14);
    }

    #[test]
    fn scale_exponents_mark_source_component() {
        assert_eq!(
            StokesEquiv { mu: 1.0 }.src_scale_exponents(),
            vec![0, 0, 0, 1]
        );
        assert_eq!(StokesSL { mu: 1.0 }.src_scale_exponents(), vec![0, 0, 0]);
        assert_eq!(LaplaceSL.src_scale_exponents(), vec![0]);
    }

    #[test]
    fn self_interaction_is_skipped() {
        let p = Vec3::new(0.5, 0.5, 0.5);
        let mut out = [0.0; 3];
        StokesSL { mu: 1.0 }.eval_acc(p, p, &[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, [0.0; 3]);
    }
}
