//! Stokes kernels: single-layer Stokeslet, double-layer stresslet, and the
//! associated pressure kernels (Eq. 2.4 and 2.5 of the paper).
//!
//! Sign conventions, fixed once and verified by the Gauss-type identities in
//! the tests below (`r = x − y`, `n` the outward normal of the closed
//! surface, fluid on the *interior* side as in a blood vessel):
//!
//! - single layer: `S(x,y) f = 1/(8πμ) (f/|r| + r (r·f)/|r|³)`;
//! - double layer: `D(x,y) φ = −3/(4π) · r (r·φ)(r·n)/|r|⁵`, chosen so that
//!   for constant density `c`, `∫_Γ D(x,·) c dS = c` for `x` strictly inside,
//!   `c/2` in the principal-value sense on `Γ`, and `0` outside. Hence the
//!   interior-limit operator is `(1/2) I + D_PV`, matching Eq. (2.5).

use linalg::Vec3;

/// Stokes single-layer (Stokeslet) velocity kernel.
///
/// Returns `S(x,y) f` where `r = x − y`; `mu` is the ambient viscosity.
/// Returns zero when `x == y` (the singular self term is handled by the
/// dedicated quadrature schemes, never by this function).
#[inline]
pub fn stokeslet(x: Vec3, y: Vec3, f: Vec3, mu: f64) -> Vec3 {
    let r = x - y;
    let r2 = r.norm_sq();
    if r2 == 0.0 {
        return Vec3::ZERO;
    }
    let rinv = 1.0 / r2.sqrt();
    let rinv3 = rinv * rinv * rinv;
    let c = 1.0 / (8.0 * std::f64::consts::PI * mu);
    c * (f * rinv + r * (r.dot(f) * rinv3))
}

/// The 3×3 Stokeslet matrix `S(x,y)` (row-major), without the force applied.
#[inline]
pub fn stokeslet_matrix(x: Vec3, y: Vec3, mu: f64) -> [[f64; 3]; 3] {
    let r = x - y;
    let r2 = r.norm_sq();
    let mut m = [[0.0; 3]; 3];
    if r2 == 0.0 {
        return m;
    }
    let rinv = 1.0 / r2.sqrt();
    let rinv3 = rinv / r2;
    let c = 1.0 / (8.0 * std::f64::consts::PI * mu);
    let ra = r.to_array();
    for i in 0..3 {
        for j in 0..3 {
            let delta = if i == j { rinv } else { 0.0 };
            m[i][j] = c * (delta + ra[i] * ra[j] * rinv3);
        }
    }
    m
}

/// Stokes double-layer (stresslet) velocity kernel.
///
/// Returns `D(x,y) φ` with source normal `n = n(y)`; `r = x − y`. See the
/// module docs for the sign convention. Independent of viscosity.
#[inline]
pub fn stresslet(x: Vec3, y: Vec3, phi: Vec3, n: Vec3) -> Vec3 {
    let r = x - y;
    let r2 = r.norm_sq();
    if r2 == 0.0 {
        return Vec3::ZERO;
    }
    let rinv = 1.0 / r2.sqrt();
    let rinv5 = rinv * rinv * rinv * rinv * rinv;
    let c = -3.0 / (4.0 * std::f64::consts::PI);
    r * (c * r.dot(phi) * r.dot(n) * rinv5)
}

/// Batched Stokeslet: `out[3i..3i+3] += Σ_j S(t_i, s_j) f_j`.
///
/// Tiled SoA inner loops; the `1/(8πμ)` constant is hoisted and applied
/// once per target, and the self-interaction guard compiles to a select,
/// so the lane loop autovectorizes.
pub fn stokeslet_block(trgs: &[Vec3], srcs: &[Vec3], data: &[f64], mu: f64, out: &mut [f64]) {
    use crate::traits::{load_tile, LANES, TILE};
    debug_assert_eq!(data.len(), srcs.len() * 3);
    debug_assert_eq!(out.len(), trgs.len() * 3);
    let c = 1.0 / (8.0 * std::f64::consts::PI * mu);
    let (mut xs, mut ys, mut zs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE]);
    let (mut fxs, mut fys, mut fzs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE]);
    for (tile, dt) in srcs.chunks(TILE).zip(data.chunks(TILE * 3)) {
        load_tile(tile, &mut xs, &mut ys, &mut zs);
        let m = tile.len();
        for l in 0..m {
            fxs[l] = dt[l * 3];
            fys[l] = dt[l * 3 + 1];
            fzs[l] = dt[l * 3 + 2];
        }
        // zero data ⇒ stale tail lanes contribute 0
        fxs[m..].fill(0.0);
        fys[m..].fill(0.0);
        fzs[m..].fill(0.0);
        for (i, &t) in trgs.iter().enumerate() {
            let mut ax = [0.0f64; LANES];
            let mut ay = [0.0f64; LANES];
            let mut az = [0.0f64; LANES];
            for g in 0..TILE / LANES {
                let o = g * LANES;
                for l in 0..LANES {
                    let rx = t.x - xs[o + l];
                    let ry = t.y - ys[o + l];
                    let rz = t.z - zs[o + l];
                    let r2 = rx * rx + ry * ry + rz * rz;
                    let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                    let rinv2 = rinv * rinv;
                    let fdotr = fxs[o + l] * rx + fys[o + l] * ry + fzs[o + l] * rz;
                    let s = fdotr * rinv2 * rinv;
                    ax[l] += fxs[o + l] * rinv + rx * s;
                    ay[l] += fys[o + l] * rinv + ry * s;
                    az[l] += fzs[o + l] * rinv + rz * s;
                }
            }
            out[i * 3] += c * ax.iter().sum::<f64>();
            out[i * 3 + 1] += c * ay.iter().sum::<f64>();
            out[i * 3 + 2] += c * az.iter().sum::<f64>();
        }
    }
}

/// Batched stresslet (`[φx, φy, φz, nx, ny, nz]` per source), same
/// convention as [`stresslet`].
pub fn stresslet_block(trgs: &[Vec3], srcs: &[Vec3], data: &[f64], out: &mut [f64]) {
    use crate::traits::{load_tile, LANES, TILE};
    debug_assert_eq!(data.len(), srcs.len() * 6);
    debug_assert_eq!(out.len(), trgs.len() * 3);
    let c = -3.0 / (4.0 * std::f64::consts::PI);
    let (mut xs, mut ys, mut zs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE]);
    let (mut pxs, mut pys, mut pzs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE]);
    let (mut nxs, mut nys, mut nzs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE]);
    for (tile, dt) in srcs.chunks(TILE).zip(data.chunks(TILE * 6)) {
        load_tile(tile, &mut xs, &mut ys, &mut zs);
        let m = tile.len();
        for l in 0..m {
            pxs[l] = dt[l * 6];
            pys[l] = dt[l * 6 + 1];
            pzs[l] = dt[l * 6 + 2];
            nxs[l] = dt[l * 6 + 3];
            nys[l] = dt[l * 6 + 4];
            nzs[l] = dt[l * 6 + 5];
        }
        // zero data ⇒ stale tail lanes contribute 0
        pxs[m..].fill(0.0);
        pys[m..].fill(0.0);
        pzs[m..].fill(0.0);
        for (i, &t) in trgs.iter().enumerate() {
            let mut ax = [0.0f64; LANES];
            let mut ay = [0.0f64; LANES];
            let mut az = [0.0f64; LANES];
            for g in 0..TILE / LANES {
                let o = g * LANES;
                for l in 0..LANES {
                    let rx = t.x - xs[o + l];
                    let ry = t.y - ys[o + l];
                    let rz = t.z - zs[o + l];
                    let r2 = rx * rx + ry * ry + rz * rz;
                    let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                    let rinv2 = rinv * rinv;
                    let rinv5 = rinv2 * rinv2 * rinv;
                    let rdotp = rx * pxs[o + l] + ry * pys[o + l] + rz * pzs[o + l];
                    let rdotn = rx * nxs[o + l] + ry * nys[o + l] + rz * nzs[o + l];
                    let s = rdotp * rdotn * rinv5;
                    ax[l] += rx * s;
                    ay[l] += ry * s;
                    az[l] += rz * s;
                }
            }
            out[i * 3] += c * ax.iter().sum::<f64>();
            out[i * 3 + 1] += c * ay.iter().sum::<f64>();
            out[i * 3 + 2] += c * az.iter().sum::<f64>();
        }
    }
}

/// Batched augmented Stokes equivalent kernel (`[fx, fy, fz, q]` per
/// source): Stokeslet plus a potential point source, the equivalent-density
/// basis of the Stokes double-layer FMM.
pub fn stokes_equiv_block(trgs: &[Vec3], srcs: &[Vec3], data: &[f64], mu: f64, out: &mut [f64]) {
    use crate::traits::{load_tile, LANES, TILE};
    debug_assert_eq!(data.len(), srcs.len() * 4);
    debug_assert_eq!(out.len(), trgs.len() * 3);
    let cs = 1.0 / (8.0 * std::f64::consts::PI * mu);
    let cq = 1.0 / (4.0 * std::f64::consts::PI);
    let (mut xs, mut ys, mut zs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE]);
    let (mut fxs, mut fys, mut fzs, mut qs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE], [0.0; TILE]);
    for (tile, dt) in srcs.chunks(TILE).zip(data.chunks(TILE * 4)) {
        load_tile(tile, &mut xs, &mut ys, &mut zs);
        let m = tile.len();
        for l in 0..m {
            // fold the 1/8πμ and 1/4π constants into the tile data so the
            // inner loop applies no per-target scaling
            fxs[l] = cs * dt[l * 4];
            fys[l] = cs * dt[l * 4 + 1];
            fzs[l] = cs * dt[l * 4 + 2];
            qs[l] = cq * dt[l * 4 + 3];
        }
        // zero data ⇒ stale tail lanes contribute 0
        fxs[m..].fill(0.0);
        fys[m..].fill(0.0);
        fzs[m..].fill(0.0);
        qs[m..].fill(0.0);
        for (i, &t) in trgs.iter().enumerate() {
            let mut ax = [0.0f64; LANES];
            let mut ay = [0.0f64; LANES];
            let mut az = [0.0f64; LANES];
            for g in 0..TILE / LANES {
                let o = g * LANES;
                for l in 0..LANES {
                    let rx = t.x - xs[o + l];
                    let ry = t.y - ys[o + l];
                    let rz = t.z - zs[o + l];
                    let r2 = rx * rx + ry * ry + rz * rz;
                    let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                    let rinv2 = rinv * rinv;
                    let rinv3 = rinv2 * rinv;
                    let fdotr = fxs[o + l] * rx + fys[o + l] * ry + fzs[o + l] * rz;
                    let s = fdotr * rinv3 + qs[o + l] * rinv3;
                    ax[l] += fxs[o + l] * rinv + rx * s;
                    ay[l] += fys[o + l] * rinv + ry * s;
                    az[l] += fzs[o + l] * rinv + rz * s;
                }
            }
            out[i * 3] += ax.iter().sum::<f64>();
            out[i * 3 + 1] += ay.iter().sum::<f64>();
            out[i * 3 + 2] += az.iter().sum::<f64>();
        }
    }
}

/// Pressure kernel associated with the Stokeslet:
/// `p(x) = (1/4π) r·f / |r|³`.
#[inline]
pub fn stokeslet_pressure(x: Vec3, y: Vec3, f: Vec3) -> f64 {
    let r = x - y;
    let r2 = r.norm_sq();
    if r2 == 0.0 {
        return 0.0;
    }
    let rinv3 = 1.0 / (r2 * r2.sqrt());
    r.dot(f) * rinv3 / (4.0 * std::f64::consts::PI)
}

/// Pressure kernel associated with the stresslet double layer (with the same
/// sign convention as [`stresslet`]):
/// `p(x) = −(μ/2π) [ (n·φ)/|r|³ − 3 (r·φ)(r·n)/|r|⁵ ]`.
#[inline]
pub fn stresslet_pressure(x: Vec3, y: Vec3, phi: Vec3, n: Vec3, mu: f64) -> f64 {
    let r = x - y;
    let r2 = r.norm_sq();
    if r2 == 0.0 {
        return 0.0;
    }
    let rinv3 = 1.0 / (r2 * r2.sqrt());
    let rinv5 = rinv3 / r2;
    -(mu / (2.0 * std::f64::consts::PI))
        * (n.dot(phi) * rinv3 - 3.0 * r.dot(phi) * r.dot(n) * rinv5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::quad::gauss_legendre;
    use std::f64::consts::PI;

    /// Quadrature over the unit sphere: Gauss–Legendre in cos(theta),
    /// uniform in phi — spectrally accurate for smooth integrands.
    fn sphere_quadrature(nlat: usize) -> Vec<(Vec3, f64)> {
        let gl = gauss_legendre(nlat);
        let nphi = 2 * nlat;
        let mut out = Vec::new();
        for i in 0..nlat {
            let ct = gl.nodes[i];
            let st = (1.0 - ct * ct).sqrt();
            let wlat = gl.weights[i];
            for j in 0..nphi {
                let phi = 2.0 * PI * j as f64 / nphi as f64;
                let y = Vec3::new(st * phi.cos(), st * phi.sin(), ct);
                out.push((y, wlat * 2.0 * PI / nphi as f64));
            }
        }
        out
    }

    #[test]
    fn double_layer_gauss_identity_inside_on_outside() {
        // ∫ D(x,y) c dS over the unit sphere equals c inside, 0 outside.
        let quad = sphere_quadrature(24);
        let c = Vec3::new(0.3, -1.0, 2.0);
        for (x, expect) in [
            (Vec3::new(0.2, 0.1, -0.3), c),
            (Vec3::new(0.0, 0.0, 0.0), c),
            (Vec3::new(2.0, 1.0, 0.5), Vec3::ZERO),
        ] {
            let mut acc = Vec3::ZERO;
            for &(y, w) in &quad {
                let n = y; // unit sphere: outward normal = position
                acc += stresslet(x, y, c, n) * w;
            }
            assert!(
                (acc - expect).norm() < 1e-10,
                "x={x:?} got {acc:?} want {expect:?}"
            );
        }
    }

    #[test]
    fn single_layer_velocity_is_continuous_and_divergence_free() {
        // numerically check ∇·u = 0 for a Stokeslet field
        let y = Vec3::new(0.1, -0.2, 0.05);
        let f = Vec3::new(1.0, 2.0, -0.5);
        let x = Vec3::new(1.0, 0.7, -0.4);
        let h = 1e-5;
        let mut div = 0.0;
        for k in 0..3 {
            let mut xp = x;
            let mut xm = x;
            xp[k] += h;
            xm[k] -= h;
            div += (stokeslet(xp, y, f, 1.0)[k] - stokeslet(xm, y, f, 1.0)[k]) / (2.0 * h);
        }
        assert!(div.abs() < 1e-8, "div={div}");
    }

    #[test]
    fn stresslet_field_is_divergence_free() {
        let y = Vec3::new(0.0, 0.0, 0.0);
        let n = Vec3::new(0.0, 0.0, 1.0);
        let phi = Vec3::new(1.0, -1.0, 0.5);
        let x = Vec3::new(0.8, 0.3, 0.6);
        let h = 1e-5;
        let mut div = 0.0;
        for k in 0..3 {
            let mut xp = x;
            let mut xm = x;
            xp[k] += h;
            xm[k] -= h;
            div += (stresslet(xp, y, phi, n)[k] - stresslet(xm, y, phi, n)[k]) / (2.0 * h);
        }
        assert!(div.abs() < 1e-8, "div={div}");
    }

    #[test]
    fn stokeslet_satisfies_stokes_equation_away_from_source() {
        // μ Δu = ∇p away from the singularity
        let y = Vec3::ZERO;
        let f = Vec3::new(0.7, -0.3, 1.1);
        let x = Vec3::new(0.9, 0.5, -0.7);
        let mu = 2.0;
        let h = 1e-4;
        for comp in 0..3 {
            // Laplacian of u_comp by central differences
            let mut lap = 0.0;
            let u0 = stokeslet(x, y, f, mu)[comp];
            for k in 0..3 {
                let mut xp = x;
                let mut xm = x;
                xp[k] += h;
                xm[k] -= h;
                lap += (stokeslet(xp, y, f, mu)[comp] + stokeslet(xm, y, f, mu)[comp] - 2.0 * u0)
                    / (h * h);
            }
            // pressure gradient component
            let mut xp = x;
            let mut xm = x;
            xp[comp] += h;
            xm[comp] -= h;
            let dp = (stokeslet_pressure(xp, y, f) - stokeslet_pressure(xm, y, f)) / (2.0 * h);
            assert!(
                (mu * lap - dp).abs() < 1e-4,
                "comp {comp}: mu lap {} vs dp {}",
                mu * lap,
                dp
            );
        }
    }

    #[test]
    fn stokeslet_matrix_matches_apply() {
        let x = Vec3::new(1.0, 2.0, 3.0);
        let y = Vec3::new(-0.5, 0.3, 0.9);
        let f = Vec3::new(0.2, -0.7, 1.3);
        let m = stokeslet_matrix(x, y, 1.7);
        let u = stokeslet(x, y, f, 1.7);
        for i in 0..3 {
            let v = m[i][0] * f.x + m[i][1] * f.y + m[i][2] * f.z;
            assert!((v - u[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn kernels_scale_correctly_with_viscosity_and_distance() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::ZERO;
        let f = Vec3::new(0.0, 1.0, 0.0);
        // Stokeslet homogeneous of degree −1
        let u1 = stokeslet(x, y, f, 1.0);
        let u2 = stokeslet(x * 2.0, y, f, 1.0);
        assert!((u1.norm() / u2.norm() - 2.0).abs() < 1e-12);
        // viscosity scaling 1/μ
        let umu = stokeslet(x, y, f, 4.0);
        assert!((u1.norm() / umu.norm() - 4.0).abs() < 1e-12);
        // stresslet homogeneous of degree −2 (normal chosen with r·n ≠ 0)
        let n = Vec3::new(1.0, 0.0, 1.0).normalized();
        let phi = Vec3::new(1.0, 1.0, 1.0);
        let d1 = stresslet(x, y, phi, n);
        let d2 = stresslet(x * 2.0, y, phi, n);
        assert!((d1.norm() / d2.norm() - 4.0).abs() < 1e-12);
    }
}
