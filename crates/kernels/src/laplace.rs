//! Laplace kernels (single and double layer).
//!
//! Not used by the blood-flow model itself, but they are the cheapest
//! elliptic kernels and serve as the reference case for validating the
//! kernel-independent FMM and the singular-quadrature machinery — the
//! boundary solver of the paper is advertised as a general elliptic-PDE
//! solver, and these kernels exercise that generality.

use linalg::Vec3;

/// Laplace single-layer kernel `G(x,y) q = q / (4π |x−y|)`.
#[inline]
pub fn laplace_sl(x: Vec3, y: Vec3, q: f64) -> f64 {
    let r2 = (x - y).norm_sq();
    if r2 == 0.0 {
        return 0.0;
    }
    q / (4.0 * std::f64::consts::PI * r2.sqrt())
}

/// Laplace double-layer kernel with the interior-Gauss convention:
/// `K(x,y) q = q ((y−x)·n) / (4π |x−y|³)`, so that `∫_Γ K(x,·) dS = 1` for
/// `x` inside the closed surface `Γ` with outward normal `n` (the classical
/// identity `∫ ∂/∂n (1/4πr) dS = −1` carries the opposite sign).
#[inline]
pub fn laplace_dl(x: Vec3, y: Vec3, q: f64, n: Vec3) -> f64 {
    let r = x - y;
    let r2 = r.norm_sq();
    if r2 == 0.0 {
        return 0.0;
    }
    let rinv3 = 1.0 / (r2 * r2.sqrt());
    -q * r.dot(n) * rinv3 / (4.0 * std::f64::consts::PI)
}

/// Batched Laplace single layer: `out[i] += Σ_j q_j / (4π |t_i − s_j|)`.
///
/// Tiled SoA inner loops with the 1/4π constant hoisted; the lane loop has
/// a fixed trip count and no branches (the self-interaction guard compiles
/// to a select), so it autovectorizes.
pub fn laplace_sl_block(trgs: &[Vec3], srcs: &[Vec3], data: &[f64], out: &mut [f64]) {
    use crate::traits::{load_tile, LANES, TILE};
    debug_assert_eq!(data.len(), srcs.len());
    debug_assert_eq!(out.len(), trgs.len());
    let c = 1.0 / (4.0 * std::f64::consts::PI);
    let (mut xs, mut ys, mut zs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE]);
    let mut qs = [0.0; TILE];
    for (tile, qt) in srcs.chunks(TILE).zip(data.chunks(TILE)) {
        load_tile(tile, &mut xs, &mut ys, &mut zs);
        qs[..qt.len()].copy_from_slice(qt);
        qs[qt.len()..].fill(0.0); // zero data ⇒ stale tail lanes contribute 0
        for (i, &t) in trgs.iter().enumerate() {
            let mut acc = [0.0f64; LANES];
            for g in 0..TILE / LANES {
                let o = g * LANES;
                for l in 0..LANES {
                    let dx = t.x - xs[o + l];
                    let dy = t.y - ys[o + l];
                    let dz = t.z - zs[o + l];
                    let r2 = dx * dx + dy * dy + dz * dz;
                    let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                    acc[l] += qs[o + l] * rinv;
                }
            }
            out[i] += c * acc.iter().sum::<f64>();
        }
    }
}

/// Batched Laplace double layer (`[q, nx, ny, nz]` per source), same
/// convention as [`laplace_dl`].
pub fn laplace_dl_block(trgs: &[Vec3], srcs: &[Vec3], data: &[f64], out: &mut [f64]) {
    use crate::traits::{load_tile, LANES, TILE};
    debug_assert_eq!(data.len(), srcs.len() * 4);
    debug_assert_eq!(out.len(), trgs.len());
    let c = -1.0 / (4.0 * std::f64::consts::PI);
    let (mut xs, mut ys, mut zs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE]);
    let (mut qs, mut nxs, mut nys, mut nzs) = ([0.0; TILE], [0.0; TILE], [0.0; TILE], [0.0; TILE]);
    for (tile, dt) in srcs.chunks(TILE).zip(data.chunks(TILE * 4)) {
        load_tile(tile, &mut xs, &mut ys, &mut zs);
        let m = tile.len();
        for l in 0..m {
            qs[l] = dt[l * 4];
            nxs[l] = dt[l * 4 + 1];
            nys[l] = dt[l * 4 + 2];
            nzs[l] = dt[l * 4 + 3];
        }
        qs[m..].fill(0.0); // zero data ⇒ stale tail lanes contribute 0
        for (i, &t) in trgs.iter().enumerate() {
            let mut acc = [0.0f64; LANES];
            for g in 0..TILE / LANES {
                let o = g * LANES;
                for l in 0..LANES {
                    let dx = t.x - xs[o + l];
                    let dy = t.y - ys[o + l];
                    let dz = t.z - zs[o + l];
                    let r2 = dx * dx + dy * dy + dz * dz;
                    let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                    let rinv3 = rinv * rinv * rinv;
                    let rdotn = dx * nxs[o + l] + dy * nys[o + l] + dz * nzs[o + l];
                    acc[l] += qs[o + l] * rdotn * rinv3;
                }
            }
            out[i] += c * acc.iter().sum::<f64>();
        }
    }
}

/// Gradient of the Laplace single layer with respect to the target.
#[inline]
pub fn laplace_sl_grad(x: Vec3, y: Vec3, q: f64) -> Vec3 {
    let r = x - y;
    let r2 = r.norm_sq();
    if r2 == 0.0 {
        return Vec3::ZERO;
    }
    let rinv3 = 1.0 / (r2 * r2.sqrt());
    r * (-q * rinv3 / (4.0 * std::f64::consts::PI))
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::quad::gauss_legendre;
    use std::f64::consts::PI;

    #[test]
    fn gauss_identity_for_double_layer() {
        let gl = gauss_legendre(20);
        let nphi = 40;
        let eval = |x: Vec3| -> f64 {
            let mut acc = 0.0;
            for i in 0..20 {
                let ct = gl.nodes[i];
                let st = (1.0 - ct * ct).sqrt();
                for j in 0..nphi {
                    let phi = 2.0 * PI * j as f64 / nphi as f64;
                    let y = Vec3::new(st * phi.cos(), st * phi.sin(), ct);
                    acc += laplace_dl(x, y, 1.0, y) * gl.weights[i] * 2.0 * PI / nphi as f64;
                }
            }
            acc
        };
        assert!((eval(Vec3::new(0.1, 0.2, -0.3)) - 1.0).abs() < 1e-10);
        assert!(eval(Vec3::new(1.5, 0.0, 1.5)).abs() < 1e-10);
    }

    #[test]
    fn potential_is_harmonic_away_from_source() {
        let y = Vec3::new(0.2, 0.1, 0.0);
        let x = Vec3::new(1.0, -0.5, 0.7);
        let h = 1e-4;
        let u0 = laplace_sl(x, y, 1.0);
        let mut lap = 0.0;
        for k in 0..3 {
            let mut xp = x;
            let mut xm = x;
            xp[k] += h;
            xm[k] -= h;
            lap += (laplace_sl(xp, y, 1.0) + laplace_sl(xm, y, 1.0) - 2.0 * u0) / (h * h);
        }
        assert!(lap.abs() < 1e-6, "laplacian {lap}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let y = Vec3::new(-0.3, 0.4, 0.1);
        let x = Vec3::new(0.8, 0.2, -0.6);
        let g = laplace_sl_grad(x, y, 2.5);
        let h = 1e-6;
        for k in 0..3 {
            let mut xp = x;
            let mut xm = x;
            xp[k] += h;
            xm[k] -= h;
            let fd = (laplace_sl(xp, y, 2.5) - laplace_sl(xm, y, 2.5)) / (2.0 * h);
            assert!((g[k] - fd).abs() < 1e-8);
        }
    }
}
