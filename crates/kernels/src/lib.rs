//! # kernels — elliptic PDE kernels for the boundary-integral platform
//!
//! Implements the Green's functions the paper's formulation is built on
//! (§2.1.1): the Stokes single-layer (Stokeslet) kernel of Eq. (2.4), the
//! double-layer stresslet kernel of Eq. (2.5), their pressure counterparts,
//! and Laplace kernels used to validate the general elliptic machinery.
//!
//! The [`Kernel`] trait is the interface consumed by the `fmm` crate
//! (kernel-independent FMM, the PVFMM substitute) and by the direct
//! summation fallbacks.

pub mod laplace;
pub mod stokes;
pub mod traits;

pub use laplace::{laplace_dl, laplace_dl_block, laplace_sl, laplace_sl_block, laplace_sl_grad};
pub use stokes::{
    stokes_equiv_block, stokeslet, stokeslet_block, stokeslet_matrix, stokeslet_pressure,
    stresslet, stresslet_block, stresslet_pressure,
};
pub use traits::{
    direct_eval, direct_eval_serial, Kernel, LaplaceDL, LaplaceSL, StokesDL, StokesEquiv, StokesSL,
};
