//! Wall-refinement regression suite on the *tube* geometry — the vessel
//! configuration whose boundary operator the coarse registry layout leaves
//! polluted (ROADMAP "vessel boundary resolution").
//!
//! A capsule tube at the registry aspect ratio (`L̂ ≈ 1.4·radius` at the
//! coarsest layout) is solved with an exact exterior-source solution at
//! successive [`patch::BoundarySurface::refine`] levels, with the
//! scenario-default check spec per level (`check_r = 0.06` unrefined,
//! `0.15` refined — see `driver`'s `bie_options`). The analytic error must
//! *decrease monotonically* with refinement: this is the property the
//! coarse vessels could not have, because no check family was
//! simultaneously inside the lumen and resolved by the fine quadrature.
//!
//! Also pins the dense ↔ FMM [`MatvecBackend`] seam: both backends must
//! apply the same discrete operator up to the FMM truncation error.

use bie::{BieOptions, CheckSpec, DoubleLayerSolver, MatvecBackend};
use kernels::{laplace_sl, stokeslet, LaplaceDL, LaplaceSL, StokesDL, StokesEquiv};
use linalg::{GmresOptions, Vec3};
use patch::{capsule_tube, BoundarySurface, StraightLine};

/// Registry-aspect tube: radius 1.6, axis length 4, minimal segment count
/// (the coarsest, most polluted layout: 14 patches, `L̂_max ≈ 2.3`).
fn tube(q: usize, refine: u32) -> BoundarySurface {
    let line = StraightLine {
        a: Vec3::ZERO,
        b: Vec3::new(0.0, 0.0, 4.0),
    };
    capsule_tube(&line, 1.6, 1, q).refine(refine)
}

/// Scenario-style options at a refinement level: `check_r = 0.06`
/// unrefined / `0.15` refined (mirrors `driver`'s `bie_options`), fine
/// order `qf` supplied by the caller.
fn tube_opts(refine: u32, qf: usize, backend: MatvecBackend) -> BieOptions {
    let check_r = if refine > 0 { 0.15 } else { 0.06 };
    BieOptions {
        backend,
        qf,
        check: CheckSpec::Linear {
            big_r: check_r,
            small_r: check_r,
        },
        p_extrap: 5,
        null_space: false,
        gmres: GmresOptions {
            tol: 1e-6,
            max_iters: 40,
            restart: 10,
            stall_ratio: 0.9,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Interior sample points: on-axis and at 60 % radius, away from the caps.
fn targets() -> Vec<Vec3> {
    vec![
        Vec3::new(0.0, 0.0, 1.2),
        Vec3::new(0.0, 0.0, 2.0),
        Vec3::new(0.0, 0.0, 2.8),
        Vec3::new(0.96, 0.0, 2.0),
        Vec3::new(0.0, -0.96, 2.0),
        Vec3::new(-0.68, 0.68, 1.5),
    ]
}

/// Exterior Laplace point source (outside the tube).
const SRC: Vec3 = Vec3 {
    x: 3.0,
    y: 4.0,
    z: 6.0,
};

/// Max relative interior-field error of the Laplace Dirichlet solve on the
/// tube at one refinement level.
fn laplace_tube_error(refine: u32, backend: MatvecBackend) -> f64 {
    let q = 6;
    // the fine order follows the level: constraint (b) — `R ≳ 3 h_fine`,
    // `h_fine ∝ L̂ / qf` — must keep the check-resolution floor *below*
    // the shrinking Nyström error, or every refined level sits on the
    // same floor and the ladder flattens (measured: at flat qf the
    // level-2 error stagnates at the level-1 value)
    let qf = q + 2 + 2 * refine as usize;
    let solver = DoubleLayerSolver::new(
        tube(q, refine),
        LaplaceDL,
        LaplaceSL,
        tube_opts(refine, qf, backend),
    );
    let g: Vec<f64> = solver
        .quad
        .points
        .iter()
        .map(|&y| laplace_sl(y, SRC, 1.0))
        .collect();
    let (phi, _res) = solver.solve(&g);
    let targets = targets();
    let u = solver.eval_at(&phi, &targets);
    let mut worst = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        let exact = laplace_sl(t, SRC, 1.0);
        worst = worst.max((u[i] - exact).abs() / exact.abs());
    }
    worst
}

#[test]
fn analytic_tube_error_decreases_monotonically_with_refinement() {
    let e0 = laplace_tube_error(0, MatvecBackend::Dense);
    let e1 = laplace_tube_error(1, MatvecBackend::Dense);
    let e2 = laplace_tube_error(2, MatvecBackend::Auto);
    println!("analytic tube (Laplace): e0 = {e0:.3e}, e1 = {e1:.3e}, e2 = {e2:.3e}");
    // level 0 is the polluted coarse-registry regime: O(1) error
    assert!(e0 > 0.1, "coarse tube unexpectedly accurate: {e0}");
    // each refinement level must improve the operator substantially — a
    // plain `<` would also pass on a plateau, which is the failure mode
    // wall refinement exists to remove (measured ladder:
    // 9.1e-1 → 7.2e-4 → 4.9e-5)
    assert!(
        e1 < 0.01 * e0,
        "level 1 did not improve on level 0: {e1} vs {e0}"
    );
    assert!(
        e2 < 0.25 * e1,
        "level 2 did not improve on level 1: {e2} vs {e1}"
    );
}

#[test]
fn refined_tube_stokes_error_below_threshold_with_fmm() {
    // the acceptance number of the wall-resolution work: wall_refine = 2
    // with the FMM backend takes the analytic tube below 0.1 relative
    // (the coarse registry layout sits at O(1); see also
    // `bench --bin tube_accuracy` for the registry-scale version)
    let q = 6;
    let refine = 2;
    let solver = DoubleLayerSolver::new(
        tube(q, refine),
        StokesDL,
        StokesEquiv { mu: 1.0 },
        BieOptions {
            null_space: true,
            gmres: GmresOptions {
                // the scenario-default refined tolerance (attainable;
                // see driver's bie_options)
                tol: 2e-3,
                max_iters: 40,
                restart: 10,
                stall_ratio: 0.9,
                ..Default::default()
            },
            // the scenario-default refined matvec order: 4 — this test
            // pins the end-to-end refined accuracy at the *production*
            // order, so lowering the default below the quadrature floor
            // would fail here, not in a scenario run
            fmm: fmm::FmmOptions {
                order: 4,
                ..Default::default()
            },
            // the scenario-default refined fine order q + 4
            ..tube_opts(refine, q + 4, MatvecBackend::Fmm)
        },
    );
    assert_eq!(solver.solve_backend(), MatvecBackend::Fmm);
    let f0 = Vec3::new(1.0, -0.5, 2.0);
    let mut g = Vec::with_capacity(solver.dim());
    for &y in &solver.quad.points {
        let u = stokeslet(y, SRC, f0, 1.0);
        g.extend_from_slice(&[u.x, u.y, u.z]);
    }
    let (phi, _res) = solver.solve(&g);
    let targets = targets();
    let u = solver.eval_at(&phi, &targets);
    let mut worst = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        let exact = stokeslet(t, SRC, f0, 1.0);
        let got = Vec3::new(u[i * 3], u[i * 3 + 1], u[i * 3 + 2]);
        worst = worst.max((got - exact).norm() / exact.norm());
    }
    println!("refined tube (Stokes, FMM): max rel err {worst:.3e}");
    assert!(worst < 0.1, "refined-tube Stokes error {worst} ≥ 0.1");
}

#[test]
fn dense_and_fmm_backends_apply_the_same_operator() {
    // one refinement level: 56 patches — small enough for a fast dense
    // apply, large enough that the FMM tree actually has far-field work
    let q = 6;
    let refine = 1;
    let dense = DoubleLayerSolver::new(
        tube(q, refine),
        StokesDL,
        StokesEquiv { mu: 1.0 },
        tube_opts(refine, q + 4, MatvecBackend::Dense),
    );
    assert_eq!(dense.solve_backend(), MatvecBackend::Dense);
    let n = dense.dim();
    // a smooth but non-trivial density
    let phi: Vec<f64> = (0..n).map(|i| 1.0 + (0.13 * i as f64).sin()).collect();
    let mut y_dense = vec![0.0; n];
    dense.apply(&phi, &mut y_dense);
    let scale = y_dense.iter().map(|v| v * v).sum::<f64>().sqrt();

    // tolerance tied to the FMM truncation order. The check targets sit
    // right against the source surface (R = 0.15 L̂), so the agreement is
    // set by the near-field translation accuracy, not the far-field
    // "5–6 digits at order 6" figure: measured 1.6e-2 at order 4, 4.1e-4
    // at order 6, and 2.0e-5 at order 8 on this geometry. Assert each
    // order's bound and that the distance tightens with order; order 4
    // heads the ladder because it is the refined-path matvec default
    // (driver `bie_fmm_order`) — a ~2-digit operator perturbation that
    // GMRES absorbs without moving the end-to-end interior error off the
    // quadrature floor (pinned at the default order by
    // `refined_tube_stokes_error_below_threshold_with_fmm` above).
    let mut dist = Vec::new();
    for (order, bound) in [(4usize, 3e-2), (6, 1.5e-3), (8, 1e-4)] {
        let fmm_solver = DoubleLayerSolver::new(
            tube(q, refine),
            StokesDL,
            StokesEquiv { mu: 1.0 },
            BieOptions {
                fmm: fmm::FmmOptions {
                    order,
                    ..Default::default()
                },
                ..tube_opts(refine, q + 4, MatvecBackend::Fmm)
            },
        );
        assert_eq!(fmm_solver.solve_backend(), MatvecBackend::Fmm);
        assert_eq!(fmm_solver.dim(), n);
        let mut y_fmm = vec![0.0; n];
        fmm_solver.apply(&phi, &mut y_fmm);
        let diff = y_dense
            .iter()
            .zip(&y_fmm)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        println!(
            "fmm order {order}: rel operator distance {:.3e}",
            diff / scale
        );
        assert!(
            diff < bound * scale,
            "order {order}: dense vs FMM matvec diverge: ‖Δ‖/‖y‖ = {:.3e} ≥ {bound:.1e}",
            diff / scale
        );
        dist.push(diff);
    }
    for w in dist.windows(2) {
        assert!(
            w[1] < w[0],
            "FMM operator distance did not tighten with order: {dist:?}"
        );
    }
}
