//! Analytic accuracy regression suite for the boundary solver.
//!
//! Interior Stokes Dirichlet problem with a known exact solution (a
//! Stokeslet placed *outside* the domain): `solve` must recover a density
//! whose double-layer potential reproduces the exact field inside, at two
//! quadrature orders, with the error decreasing as the order rises. This
//! pins the whole pipeline — upsampling, packing, check-point
//! extrapolation, GMRES (warm-started or not), and near/far `eval_at` —
//! against closed-form truth, so solver refactors (preconditioning, warm
//! starts, scratch-buffer recycling) cannot silently degrade accuracy.

use bie::{BieOptions, CheckSpec, DoubleLayerSolver, MatvecBackend};
use kernels::{stokeslet, StokesDL, StokesEquiv};
use linalg::{GmresOptions, Vec3};
use patch::cube_sphere;

/// Exterior Stokeslet: position, strength.
const X0: Vec3 = Vec3 {
    x: 0.0,
    y: 2.2,
    z: 1.1,
};
const F0: Vec3 = Vec3 {
    x: 1.0,
    y: -0.5,
    z: 2.0,
};

fn solve_on_sphere(q: usize) -> (DoubleLayerSolver<StokesDL, StokesEquiv>, Vec<f64>) {
    let s = cube_sphere(1.0, Vec3::ZERO, 1, q);
    // the completed Stokes system's residual floor sits at the
    // discrete-compatibility level, which shrinks with quadrature order
    let tol = if q >= 8 { 5e-5 } else { 5e-4 };
    let opts = BieOptions {
        eta: 2,
        p_extrap: 8,
        check: CheckSpec::Linear {
            big_r: 0.15,
            small_r: 0.15,
        },
        backend: MatvecBackend::Dense,
        null_space: true,
        gmres: GmresOptions {
            tol,
            max_iters: 60,
            ..Default::default()
        },
        ..Default::default()
    };
    let solver = DoubleLayerSolver::new(s, StokesDL, StokesEquiv { mu: 1.0 }, opts);
    let mut g = Vec::with_capacity(solver.dim());
    for &y in &solver.quad.points {
        let u = stokeslet(y, X0, F0, 1.0);
        g.extend_from_slice(&[u.x, u.y, u.z]);
    }
    let (phi, res) = solver.solve(&g);
    assert!(res.converged, "q={q}: GMRES residual {}", res.rel_residual);
    assert!(res.iterations <= 30, "q={q}: iterations {}", res.iterations);
    (solver, phi)
}

/// Max relative error of `eval_at` against the exact field at a target set
/// spanning deep-interior and near-surface (near-singular) points.
fn field_error(solver: &DoubleLayerSolver<StokesDL, StokesEquiv>, phi: &[f64]) -> f64 {
    let targets = vec![
        Vec3::new(0.25, 0.1, 0.0),
        Vec3::new(-0.3, -0.2, 0.35),
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(0.55, 0.55, 0.3),                    // mid-radius
        Vec3::new(0.8, 0.2, 0.1),                      // moderately near
        Vec3::new(0.4, -0.6, 0.2).normalized() * 0.93, // near-singular zone
    ];
    let u = solver.eval_at(phi, &targets);
    let mut worst = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        let exact = stokeslet(t, X0, F0, 1.0);
        let got = Vec3::new(u[i * 3], u[i * 3 + 1], u[i * 3 + 2]);
        worst = worst.max((got - exact).norm() / exact.norm());
    }
    worst
}

#[test]
fn stokes_accuracy_regression_two_orders() {
    // order 6: the workhorse tolerance
    let (s6, phi6) = solve_on_sphere(6);
    let e6 = field_error(&s6, &phi6);
    assert!(e6 < 2e-2, "q=6 field error {e6}");

    // order 8: tighter
    let (s8, phi8) = solve_on_sphere(8);
    let e8 = field_error(&s8, &phi8);
    assert!(e8 < 3e-3, "q=8 field error {e8}");

    // convergence with order: the higher-order solve must be measurably
    // more accurate (guards against refactors that silently degrade the
    // singular quadrature while staying under the absolute tolerances)
    assert!(
        e8 < 0.5 * e6,
        "no order convergence: q=6 err {e6} vs q=8 err {e8}"
    );
}

#[test]
fn warm_start_reaches_same_solution() {
    // warm-starting from the converged density must return (essentially)
    // the same density, in O(1) iterations, and from a perturbed density
    // must still converge to the same solution
    let (solver, phi) = solve_on_sphere(6);
    let mut g = Vec::with_capacity(solver.dim());
    for &y in &solver.quad.points {
        let u = stokeslet(y, X0, F0, 1.0);
        g.extend_from_slice(&[u.x, u.y, u.z]);
    }
    let (phi2, res2) = solver.solve_warm(&g, Some(&phi));
    assert!(res2.converged);
    // the cold solve stops on the monotone Arnoldi estimate, so the true
    // residual of `phi` sits marginally above tol and a few polish
    // iterations are expected — but nowhere near a cold iteration count
    assert!(
        res2.iterations <= 8,
        "warm start from the solution should exit almost immediately, took {}",
        res2.iterations
    );
    let scale = phi.iter().map(|v| v * v).sum::<f64>().sqrt();
    let diff = phi
        .iter()
        .zip(&phi2)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    assert!(
        diff < 1e-3 * scale,
        "warm-started solution drifted: {diff} vs {scale}"
    );

    // perturbed warm start: a *smooth* perturbation (like the one a real
    // warm start carries — the previous step's density) must be corrected
    // back to the same solution
    let mut perturbed = phi.clone();
    for (l, &p) in solver.quad.points.iter().enumerate() {
        perturbed[l * 3] += 0.1 * (1.3 * p.y).sin();
        perturbed[l * 3 + 1] += 0.1 * p.z.cos();
        perturbed[l * 3 + 2] += 0.1 * p.x;
    }
    let (phi3, res3) = solver.solve_warm(&g, Some(&perturbed));
    assert!(res3.converged, "residual {}", res3.rel_residual);
    let e3 = field_error(&solver, &phi3);
    assert!(
        e3 < 2e-2,
        "perturbed warm start degraded the solution: {e3}"
    );
}
